"""Unit tests for the RBE cost model (paper Table 2)."""

import pytest

from repro.core.config import BASELINE, LARGE, SMALL, FPUConfig
from repro.cost.rbe import (
    CostError,
    cache_block_cost,
    fp_unit_cost,
    fpu_cost,
    ipu_cost,
    machine_cost,
    total_cost,
)


class TestCacheBlockCost:
    @pytest.mark.parametrize(
        "size,cost", [(1024, 8000), (2048, 12000), (4096, 20000)]
    )
    def test_table2_points_exact(self, size, cost):
        assert cache_block_cost(size) == cost

    def test_interpolation_between_points(self):
        assert cache_block_cost(3072) == pytest.approx(16000)
        assert cache_block_cost(1536) == pytest.approx(10000)

    def test_extrapolation_above(self):
        assert cache_block_cost(8192) == pytest.approx(36000)

    def test_extrapolation_below_clamped(self):
        assert cache_block_cost(512) >= 0

    def test_invalid_size(self):
        with pytest.raises(CostError):
            cache_block_cost(0)

    def test_negative_size(self):
        with pytest.raises(CostError):
            cache_block_cost(-1024)


class TestFpUnitCost:
    def test_endpoints(self):
        assert fp_unit_cost("add", 1) == 5000
        assert fp_unit_cost("add", 5) == 1250
        assert fp_unit_cost("mul", 1) == 6875
        assert fp_unit_cost("mul", 5) == 2500
        assert fp_unit_cost("div", 10) == 2500
        assert fp_unit_cost("div", 30) == 625
        assert fp_unit_cost("cvt", 1) == 2500
        assert fp_unit_cost("cvt", 5) == 1250

    def test_interpolation(self):
        assert fp_unit_cost("add", 3) == pytest.approx((5000 + 1250) / 2)
        assert fp_unit_cost("div", 20) == pytest.approx(2500 - (2500 - 625) / 2)

    def test_latency_clamped(self):
        assert fp_unit_cost("add", 99) == 1250
        assert fp_unit_cost("div", 1) == 2500

    def test_depipelining_discount(self):
        piped = fp_unit_cost("mul", 5, pipelined=True)
        unpiped = fp_unit_cost("mul", 5, pipelined=False)
        assert unpiped == pytest.approx(0.75 * piped)

    def test_unknown_unit(self):
        with pytest.raises(CostError):
            fp_unit_cost("frobulator", 3)


class TestMachineCosts:
    def test_small_single_issue(self):
        # 8000 (1K I$) + 2*320 (WC) + 2*2*320 (PF) + 2*200 (ROB)
        # + 1*50 (MSHR) + 8192 (pipe) = 18,562
        assert ipu_cost(SMALL.single_issue()).total == pytest.approx(18562)

    def test_baseline_dual_issue(self):
        # 12000 + 4*320 + 4*2*320 + 6*200 + 2*50 + 2*8192 = 33,524
        assert ipu_cost(BASELINE.dual_issue()).total == pytest.approx(33524)

    def test_second_pipe_costs_8192(self):
        single = ipu_cost(BASELINE.single_issue()).total
        dual = ipu_cost(BASELINE.dual_issue()).total
        assert dual - single == pytest.approx(8192)

    def test_paper_dual_issue_cost_increase(self):
        """Large dual vs large single: the paper quotes ~20.4%."""
        single = ipu_cost(LARGE.single_issue()).total
        dual = ipu_cost(LARGE.dual_issue()).total
        assert dual / single == pytest.approx(1.204, abs=0.03)

    def test_prefetch_excluded_when_disabled(self):
        with_pf = ipu_cost(BASELINE).total
        without = ipu_cost(BASELINE.without_prefetch()).total
        assert with_pf - without == pytest.approx(4 * 2 * 320)

    def test_prefetch_is_about_20pct_of_baseline_icache(self):
        """Section 5.2: 'the prefetch buffers are only 20% of the
        instruction cache size' for the baseline configuration."""
        pf_bytes = BASELINE.prefetch_buffers * BASELINE.prefetch_line_depth * 32
        assert pf_bytes / BASELINE.icache_bytes == pytest.approx(0.2, abs=0.08)

    def test_model_cost_ordering(self):
        costs = [ipu_cost(m).total for m in (SMALL, BASELINE, LARGE)]
        assert costs == sorted(costs)

    def test_breakdown_sums_to_total(self):
        breakdown = ipu_cost(LARGE.dual_issue())
        assert sum(breakdown.items.values()) == pytest.approx(breakdown.total)

    def test_machine_cost_with_fpu(self):
        without = machine_cost(BASELINE, include_fpu=False).total
        with_fpu = machine_cost(BASELINE, include_fpu=True).total
        assert with_fpu - without == pytest.approx(fpu_cost(BASELINE.fpu).total)

    def test_area_conversions(self):
        breakdown = ipu_cost(SMALL)
        assert breakdown.area_um2 == pytest.approx(breakdown.total * 3600)
        assert breakdown.transistors == pytest.approx(breakdown.total * 16)

    def test_render_contains_total(self):
        text = ipu_cost(BASELINE).render("baseline")
        assert "TOTAL" in text and "baseline" in text


class TestTotalCost:
    @pytest.mark.parametrize("model", [SMALL, BASELINE, LARGE])
    def test_matches_machine_cost_total(self, model):
        assert total_cost(model) == pytest.approx(machine_cost(model).total)

    def test_fpu_included_on_request(self):
        assert total_cost(BASELINE, include_fpu=True) == pytest.approx(
            machine_cost(BASELINE, include_fpu=True).total
        )
        assert total_cost(BASELINE, include_fpu=True) > total_cost(BASELINE)

    def test_orders_the_models(self):
        costs = [total_cost(m) for m in (SMALL, BASELINE, LARGE)]
        assert costs == sorted(costs)


class TestFpuCost:
    def test_recommended_fpu_breakdown(self):
        breakdown = fpu_cost(FPUConfig())
        items = breakdown.items
        assert items["register file + scoreboard"] == 4000
        assert items["instruction queue"] == 5 * 50
        assert items["load queue"] == 2 * 80
        assert items["reorder buffer"] == 6 * 200
        assert breakdown.total > 10000

    def test_cheaper_units_reduce_cost(self):
        fast = fpu_cost(FPUConfig(add_latency=1))
        slow = fpu_cost(FPUConfig(add_latency=5))
        assert slow.total < fast.total
