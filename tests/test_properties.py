"""Property-based tests (hypothesis) over the core data structures and
the functional/timing pipeline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.biu import BusInterfaceUnit
from repro.core.caches import DirectMappedCache
from repro.core.config import BASELINE, MachineConfig
from repro.core.mshr import MSHRFile
from repro.core.processor import simulate_trace
from repro.core.writecache import WriteCache
from repro.func.machine import run_program
from repro.func.trace import NO_REG
from repro.isa.assembler import Assembler
from repro.isa.instructions import Kind
from repro.isa.program import TEXT_BASE
from repro.workloads.support import Lcg

# ---------------------------------------------------------------- machine

_SAFE_OPS = ("addu", "subu", "and", "or", "xor", "nor", "slt", "sltu")
_REGS = ("t0", "t1", "t2", "t3", "v0", "v1", "a0", "a1", "s0", "s1")


@st.composite
def random_alu_program(draw):
    """A random straight-line ALU program seeded with constants."""
    asm = Assembler()
    for reg in _REGS:
        asm.li(reg, draw(st.integers(-1000, 1000)))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(_SAFE_OPS),
                st.sampled_from(_REGS),
                st.sampled_from(_REGS),
                st.sampled_from(_REGS),
            ),
            min_size=1,
            max_size=40,
        )
    )
    for op, rd, rs, rt in ops:
        asm.op(op, rd, rs, rt)
    asm.halt()
    return asm.assemble(), len(ops)


class TestMachineProperties:
    @given(random_alu_program())
    @settings(max_examples=40, deadline=None)
    def test_random_programs_run_and_trace(self, prog_and_count):
        program, op_count = prog_and_count
        result = run_program(program)
        assert result.halted
        assert len(result.trace) == result.instructions
        # every register stays a signed 32-bit value
        for value in result.registers:
            assert -(2**31) <= value < 2**31
        # trace pcs stay within the text segment and are word aligned
        for pc, *_ in result.trace:
            assert pc >= TEXT_BASE and pc % 4 == 0

    @given(random_alu_program())
    @settings(max_examples=15, deadline=None)
    def test_timing_invariants_on_random_programs(self, prog_and_count):
        program, _ = prog_and_count
        trace = run_program(program).trace
        stats = simulate_trace(trace, BASELINE).stats
        stats.check_invariants()
        assert stats.instructions == len(trace)
        # an issue width of 2 bounds throughput
        assert stats.cycles >= stats.instructions / 2


# ------------------------------------------------------------- components


class TestCacheProperties:
    @given(
        st.lists(st.integers(0, 2**20).map(lambda a: a * 4), min_size=1,
                 max_size=300)
    )
    @settings(max_examples=30, deadline=None)
    def test_fill_then_probe_holds(self, addresses):
        cache = DirectMappedCache(2048, 32)
        for address in addresses:
            cache.fill(address, 0)
            assert cache.probe(address)  # most recent fill always resident

    @given(
        st.lists(st.integers(0, 2**16).map(lambda a: a * 4), min_size=1,
                 max_size=300)
    )
    @settings(max_examples=30, deadline=None)
    def test_hits_bounded_by_accesses(self, addresses):
        cache = DirectMappedCache(1024, 32)
        for address in addresses:
            if not cache.lookup(address):
                cache.fill(address, 0)
        assert 0 <= cache.hits <= cache.accesses == len(addresses)


class TestMshrProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 100), st.integers(1, 40)),
            min_size=1,
            max_size=60,
        ),
        st.integers(1, 8),
    )
    @settings(max_examples=30, deadline=None)
    def test_grants_never_precede_requests(self, stream, entries):
        mshr = MSHRFile(entries)
        for t, hold in stream:
            grant, slot = mshr.allocate(t)
            assert grant >= t
            mshr.set_release(slot, grant + hold)


class TestBiuProperties:
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_arrivals_monotone_for_monotone_requests(self, times):
        biu = BusInterfaceUnit(latency=17, occupancy=4)
        arrivals = [biu.request(t, "dread") for t in sorted(times)]
        assert arrivals == sorted(arrivals)
        assert all(a >= t + 17 for a, t in zip(arrivals, sorted(times)))


class TestWriteCacheProperties:
    @given(
        st.lists(st.integers(0, 2**14).map(lambda a: a * 4), min_size=1,
                 max_size=200)
    )
    @settings(max_examples=30, deadline=None)
    def test_transactions_never_exceed_stores(self, addresses):
        biu = BusInterfaceUnit(latency=17, occupancy=4)
        wc = WriteCache(4, 32, biu)
        for t, address in enumerate(addresses):
            wc.store(address, t)
        wc.flush(10_000)
        assert wc.stats.store_transactions <= wc.stats.store_instructions
        # coalescing can only reduce traffic to the number of dirty lines
        distinct_lines = len({a >> 5 for a in addresses})
        assert wc.stats.store_transactions >= min(distinct_lines, 1)


# ------------------------------------------------------------- timing model


def _synthetic_trace(seed: int, length: int = 400):
    """A random but structurally valid trace."""
    rng = Lcg(seed)
    records = []
    for i in range(length):
        pick = rng.next_below(10)
        pc = TEXT_BASE + 4 * (i % 200)
        if pick < 5:
            records.append((pc, int(Kind.ALU), 8 + rng.next_below(8),
                            8 + rng.next_below(8), NO_REG, 0))
        elif pick < 7:
            records.append((pc, int(Kind.LOAD), 8 + rng.next_below(8),
                            NO_REG, NO_REG, 0x10000 + 4 * rng.next_below(4096)))
        elif pick < 9:
            records.append((pc, int(Kind.STORE), NO_REG, NO_REG, 9,
                            0x10000 + 4 * rng.next_below(4096)))
        else:
            records.append((pc, int(Kind.NOP), NO_REG, NO_REG, NO_REG, 0))
    return records


class TestTimingProperties:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_invariants_on_synthetic_traces(self, seed):
        trace = _synthetic_trace(seed)
        stats = simulate_trace(trace, BASELINE).stats
        stats.check_invariants()

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_more_resources_never_hurt_much(self, seed):
        """A strictly larger machine should not be meaningfully slower."""
        trace = _synthetic_trace(seed)
        small = MachineConfig(
            name="tiny", icache_bytes=1024, dcache_bytes=16 * 1024,
            writecache_lines=2, rob_entries=2, prefetch_buffers=2,
            mshr_entries=1,
        )
        big = MachineConfig(
            name="big", icache_bytes=4096, dcache_bytes=64 * 1024,
            writecache_lines=8, rob_entries=8, prefetch_buffers=8,
            mshr_entries=4,
        )
        c_small = simulate_trace(trace, small).stats.cycles
        c_big = simulate_trace(trace, big).stats.cycles
        assert c_big <= c_small * 1.05

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_determinism(self, seed):
        trace = _synthetic_trace(seed)
        first = simulate_trace(trace, BASELINE).stats
        second = simulate_trace(trace, BASELINE).stats
        assert first.cycles == second.cycles
        assert first.stall_cycles == second.stall_cycles


class TestLcgProperties:
    @given(st.integers(0, 2**32 - 1), st.integers(1, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_next_below_in_range(self, seed, bound):
        rng = Lcg(seed)
        for _ in range(20):
            assert 0 <= rng.next_below(bound) < bound

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_float_in_range(self, seed):
        rng = Lcg(seed)
        for _ in range(20):
            value = rng.next_float(-2.5, 7.5)
            assert -2.5 <= value <= 7.5


# --------------------------------------------------------------- scheduler


@st.composite
def random_memory_program(draw):
    """Random straight-line program mixing ALU ops, loads and stores."""
    from repro.isa.instructions import Kind  # local: keep module header lean

    asm = Assembler()
    asm.data_label("pool")
    asm.word(*range(64))
    asm.la("a0", "pool")
    for reg in ("t0", "t1", "t2", "t3", "v0", "v1"):
        asm.li(reg, draw(st.integers(-100, 100)))
    steps = draw(
        st.lists(
            st.tuples(
                st.integers(0, 3),
                st.sampled_from(("t0", "t1", "t2", "t3", "v0", "v1")),
                st.sampled_from(("t0", "t1", "t2", "t3", "v0", "v1")),
                st.integers(0, 15),
            ),
            min_size=2,
            max_size=30,
        )
    )
    for kind, rd, rs, slot in steps:
        if kind == 0:
            asm.addu(rd, rs, rd)
        elif kind == 1:
            asm.xor(rd, rd, rs)
        elif kind == 2:
            asm.lw(rd, 4 * slot, "a0")
        else:
            asm.sw(rs, 4 * slot, "a0")
    asm.halt()
    return asm.assemble()


class TestSchedulerProperties:
    @given(random_memory_program())
    @settings(max_examples=40, deadline=None)
    def test_scheduling_preserves_architecture(self, program):
        from repro.isa.scheduler import schedule_load_use

        scheduled, _ = schedule_load_use(program)
        before = run_program(program)
        after = run_program(scheduled)
        assert before.registers == after.registers
        assert before.instructions == after.instructions
        # memory contents must match too
        for address in range(0x1000_0000, 0x1000_0000 + 64 * 4, 4):
            assert before.memory.read_word(address) == after.memory.read_word(
                address
            )

    @given(random_memory_program())
    @settings(max_examples=20, deadline=None)
    def test_disassembly_round_trip(self, program):
        from repro.isa.assembler import parse_asm
        from repro.isa.disassembler import disassemble

        reassembled = parse_asm(disassemble(program))
        assert len(reassembled.text) == len(program.text)
        for mine, theirs in zip(program.text, reassembled.text):
            assert mine.op == theirs.op
            assert mine.imm == theirs.imm
            assert mine.target == theirs.target
