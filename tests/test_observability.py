"""The production observability plane: structured JSON-lines logging,
Prometheus exposition, the metrics time-series ring, and declarative
SLOs (docs/OBSERVABILITY.md)."""

from __future__ import annotations

import io
import json
import sys
import threading

import pytest

from repro.telemetry import logging as structlog
from repro.telemetry.logging import (
    LogConfigError,
    get_logger,
    read_log,
)
from repro.telemetry.metrics import (
    LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    publish_bus_health,
)
from repro.telemetry.prom import (
    PromFormatError,
    parse_prom,
    prom_name,
    render_prom,
)
from repro.telemetry.slo import (
    SLOError,
    evaluate_slos,
    parse_slo,
    render_results,
)
from repro.telemetry.timeseries import (
    TimeSeriesRing,
    bucket_deltas,
    fraction_over,
    quantile_over_window,
    rate,
    sample_registry,
)


@pytest.fixture(autouse=True)
def _logging_off():
    """Every test starts and ends in the zero-overhead-off state."""
    structlog.shutdown()
    yield
    structlog.shutdown()


# ------------------------------------------------------ structured logging


class TestStructuredLogging:
    def test_disabled_is_silent(self, tmp_path, capsys):
        log = get_logger("test")
        log.warning("some.event", detail=1)
        assert capsys.readouterr().err == ""

    def test_configured_file_gets_json_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        structlog.configure(str(path))
        get_logger("cache").warning("cache.checksum_failure", path="x.npy")
        get_logger("serve").info("serve.start", port=8311)
        structlog.shutdown()
        records = read_log(path)
        assert [r["event"] for r in records] == [
            "cache.checksum_failure",
            "serve.start",
        ]
        first = records[0]
        assert first["component"] == "cache"
        assert first["level"] == "WARNING"
        assert first["path"] == "x.npy"
        assert isinstance(first["ts"], float)

    def test_level_filtering(self, tmp_path):
        path = tmp_path / "log.jsonl"
        structlog.configure(str(path), level="WARNING")
        log = get_logger("test")
        log.info("quiet.event")
        log.warning("loud.event")
        structlog.shutdown()
        assert [r["event"] for r in read_log(path)] == ["loud.event"]

    def test_append_mode_across_reconfigure(self, tmp_path):
        """Reconfiguring (as a pool worker does) appends, not clobbers."""
        path = tmp_path / "log.jsonl"
        structlog.configure(str(path))
        get_logger("parent").info("first.event")
        structlog.configure(str(path))  # simulate a worker re-opening
        get_logger("worker").info("second.event")
        structlog.shutdown()
        assert [r["event"] for r in read_log(path)] == [
            "first.event",
            "second.event",
        ]

    def test_span_correlation(self, tmp_path):
        from repro.telemetry import tracing
        from repro.telemetry.tracing import SpanTracer

        path = tmp_path / "log.jsonl"
        structlog.configure(str(path))
        tracer = SpanTracer("feedbeef1234")
        tracing.set_tracer(tracer)
        try:
            with tracer.span("experiment", "fig4"):
                get_logger("runner").warning("runner.interrupted")
        finally:
            tracing.set_tracer(None)
        structlog.shutdown()
        (record,) = read_log(path)
        assert record["trace_id"] == "feedbeef1234"
        assert record["span_id"]

    def test_bad_level_raises(self, tmp_path):
        with pytest.raises(LogConfigError, match="LOUD"):
            structlog.configure(str(tmp_path / "l.jsonl"), level="LOUD")

    def test_unopenable_path_raises(self, tmp_path):
        with pytest.raises(LogConfigError, match="cannot open"):
            structlog.configure(str(tmp_path / "absent" / "l.jsonl"))

    def test_configure_from_env(self, tmp_path):
        path = tmp_path / "env.jsonl"
        structlog.configure_from_env(
            {structlog.ENV_LOG: str(path), structlog.ENV_LOG_LEVEL: "ERROR"}
        )
        log = get_logger("test")
        log.warning("dropped.event")
        log.error("kept.event")
        structlog.shutdown()
        assert [r["event"] for r in read_log(path)] == ["kept.event"]

    def test_current_config_for_pool_propagation(self, tmp_path):
        assert structlog.current_config() is None
        path = tmp_path / "log.jsonl"
        structlog.configure(str(path), level="DEBUG")
        assert structlog.current_config() == (str(path), "DEBUG")

    def test_read_log_rejects_junk(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="log.jsonl:2"):
            read_log(path)

    def test_validate_environment_rejects_bad_level_and_dir(self, tmp_path):
        from repro.robustness.validation import (
            EnvValidationError,
            validate_environment,
        )

        with pytest.raises(EnvValidationError, match="REPRO_LOG_LEVEL"):
            validate_environment({"REPRO_LOG_LEVEL": "LOUD"})
        with pytest.raises(EnvValidationError, match="names a directory"):
            validate_environment({"REPRO_LOG": str(tmp_path)})
        with pytest.raises(EnvValidationError, match="set but empty"):
            validate_environment({"REPRO_LOG": "  "})
        validate_environment(
            {"REPRO_LOG": "stderr", "REPRO_LOG_LEVEL": "debug"}
        )  # aliases and lowercase levels are fine


# --------------------------------------------------- prometheus exposition


def _loaded_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("serve.requests").inc(17)
    registry.gauge("serve.in_flight").set(3)
    registry.gauge("serve.unset_gauge")  # no value: skipped in prom
    hist = registry.histogram("serve.latency_seconds", (0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.5, 5.0):
        hist.observe(value)
    return registry


class TestPromExposition:
    def test_name_mapping(self):
        assert prom_name("serve.memo.hit_rate") == "serve_memo_hit_rate"

    def test_render_parse_roundtrip(self):
        text = render_prom(_loaded_registry())
        doc = parse_prom(text)
        assert doc["types"]["serve_requests_total"] == "counter"
        assert doc["types"]["serve_latency_seconds"] == "histogram"
        assert doc["samples"]["serve_requests_total"] == 17.0
        assert doc["samples"]["serve_in_flight"] == 3.0
        assert doc["samples"]['serve_latency_seconds_bucket{le="0.01"}'] == 1.0
        assert (
            doc["samples"]['serve_latency_seconds_bucket{le="+Inf"}'] == 4.0
        )
        assert doc["samples"]["serve_latency_seconds_count"] == 4.0
        assert doc["samples"]["serve_latency_seconds_sum"] == pytest.approx(
            5.555
        )
        assert "serve_unset_gauge" not in doc["samples"]

    def test_counters_render_as_integers(self):
        text = render_prom(_loaded_registry())
        line = [l for l in text.splitlines()
                if l.startswith("serve_requests_total ")][0]
        assert line == "serve_requests_total 17"

    def test_parse_rejects_sample_before_type(self):
        with pytest.raises(PromFormatError, match="TYPE"):
            parse_prom("loose_metric 1\n")

    def test_parse_rejects_non_cumulative_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1.0\n"
            "h_count 5\n"
        )
        with pytest.raises(PromFormatError, match="cumulative"):
            parse_prom(text)

    def test_parse_rejects_inf_count_mismatch(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 4\n'
            "h_sum 1.0\n"
            "h_count 5\n"
        )
        with pytest.raises(PromFormatError, match="count"):
            parse_prom(text)

    def test_parse_rejects_duplicates(self):
        text = "# TYPE c_total counter\nc_total 1\nc_total 2\n"
        with pytest.raises(PromFormatError, match="duplicate"):
            parse_prom(text)


# ------------------------------------------------------- histogram quantile


class TestHistogramQuantile:
    def test_empty_is_zero(self):
        assert Histogram("h", (1.0, 2.0)).quantile(0.99) == 0.0

    def test_fraction_bounds(self):
        hist = Histogram("h", (1.0,))
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)

    def test_clamps_to_observed_max(self):
        """The p99 of all-tiny samples must not report the bucket bound."""
        hist = Histogram("h", LATENCY_BUCKETS)
        for _ in range(100):
            hist.observe(0.0003)
        assert hist.quantile(0.99) == 0.0003

    def test_overflow_returns_observed_max(self):
        hist = Histogram("h", (0.01,))
        hist.observe(5.0)
        assert hist.quantile(0.99) == 5.0

    def test_bucket_resolution(self):
        hist = Histogram("h", (0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5):
            hist.observe(value)
        assert hist.quantile(0.25) == 0.01
        assert hist.quantile(0.75) == 0.1
        assert hist.quantile(1.0) == 0.5  # clamped to observed max


# -------------------------------------------------------- metrics registry


class TestRegistryEdgeCases:
    def test_cross_type_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x.thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x.thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x.thing", (1.0,))

    @pytest.mark.parametrize(
        "bad", ["", "9starts.with.digit", "has space", "has-dash", "unié"]
    )
    def test_invalid_names_rejected(self, bad):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="metric name"):
            registry.counter(bad)

    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("c.hits")
        hist = registry.histogram("c.lat", (0.5,))

        def hammer():
            for _ in range(1000):
                counter.inc()
                hist.observe(0.1)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000
        assert hist.count == 8000
        assert hist.bucket_counts[0] == 8000

    def test_as_dict_exposition_roundtrip(self):
        """as_dict and the prom text agree on every sample."""
        registry = _loaded_registry()
        doc = parse_prom(render_prom(registry))
        snapshot = registry.as_dict()
        assert doc["samples"]["serve_requests_total"] == snapshot[
            "counters"
        ]["serve.requests"]
        hist = snapshot["histograms"]["serve.latency_seconds"]
        assert doc["samples"]["serve_latency_seconds_count"] == hist["count"]

    def test_publish_bus_health(self):
        from repro.telemetry.events import (
            Event,
            EventBus,
            EventKind,
            RingBufferSink,
        )

        bus = EventBus()
        sink = RingBufferSink(capacity=2)
        bus.attach(sink)
        for cycle in range(5):
            bus.emit(cycle, "proc", EventKind.RETIRE, index=cycle, issue=0)
        registry = MetricsRegistry()
        publish_bus_health(bus, registry)
        snapshot = registry.as_dict()["gauges"]
        assert snapshot["telemetry.sinks"] == 1
        assert snapshot["telemetry.events_recorded"] == 5
        assert snapshot["telemetry.events_dropped"] == 3


# -------------------------------------------------------- time-series ring


def _ring_with(counts: list[float], *, step: float = 1.0) -> TimeSeriesRing:
    ring = TimeSeriesRing(64)
    for index, count in enumerate(counts):
        ring.append(
            {"t": 100.0 + index * step, "values": {"c.total": count}}
        )
    return ring


class TestTimeSeriesRing:
    def test_capacity_bound(self):
        ring = TimeSeriesRing(4)
        for index in range(10):
            ring.append({"t": float(index), "values": {}})
        assert len(ring) == 4
        assert ring.latest()["t"] == 9.0

    def test_sample_registry_flattens_histograms(self):
        registry = _loaded_registry()
        sample = sample_registry(registry, now=123.0)
        values = sample["values"]
        assert sample["t"] == 123.0
        assert values["serve.requests"] == 17
        assert values["serve.latency_seconds.count"] == 4
        assert values["serve.latency_seconds.bucket.0.01"] == 1
        assert "serve.unset_gauge" not in values

    def test_rate_over_window(self):
        ring = _ring_with([0.0, 10.0, 30.0])
        assert rate(ring, "c.total", 2.0) == pytest.approx(15.0)

    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "ring.jsonl"
        ring = TimeSeriesRing(8, path=str(path))
        ring.append({"t": 1.0, "values": {"x": 1.0}})
        ring.append({"t": 2.0, "values": {"x": 4.0}})
        ring.close()
        loaded = TimeSeriesRing.load(str(path), capacity=8)
        assert [s["t"] for s in loaded.samples()] == [1.0, 2.0]

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "ring.jsonl"
        path.write_text(
            '{"t": 1.0, "values": {"x": 1.0}}\n'
            '{"t": 2.0, "values": {"x": 2.0}}\n'
            '{"t": 3.0, "val'  # torn mid-write
        )
        loaded = TimeSeriesRing.load(str(path), capacity=8)
        assert len(loaded) == 2
        assert loaded.malformed == 1

    def test_load_missing_file_is_empty(self, tmp_path):
        loaded = TimeSeriesRing.load(str(tmp_path / "absent"), capacity=8)
        assert len(loaded) == 0

    def test_bucket_deltas_and_windowed_quantile(self):
        ring = TimeSeriesRing(8)
        ring.append(
            {
                "t": 0.0,
                "values": {
                    "h.count": 0,
                    "h.bucket.0.01": 0,
                    "h.bucket.0.1": 0,
                },
            }
        )
        ring.append(
            {
                "t": 10.0,
                "values": {
                    "h.count": 10,
                    "h.bucket.0.01": 9,
                    "h.bucket.0.1": 10,
                },
            }
        )
        series, count = bucket_deltas(ring, "h", 10.0)
        assert count == 10
        assert series == [(0.01, 9.0), (0.1, 10.0)]
        assert quantile_over_window(ring, "h", 0.5, 10.0) == 0.01
        assert fraction_over(ring, "h", 0.01, 10.0) == pytest.approx(0.1)


# ------------------------------------------------------------------- SLOs


def _slo_ring(*, errors: float, requests: float = 100.0) -> TimeSeriesRing:
    ring = TimeSeriesRing(8)
    ring.append(
        {
            "t": 0.0,
            "values": {"loadgen.requests": 0.0, "loadgen.errors": 0.0},
        }
    )
    ring.append(
        {
            "t": 60.0,
            "values": {
                "loadgen.requests": requests,
                "loadgen.errors": errors,
            },
        }
    )
    return ring


class TestSLOs:
    def test_parse_valid(self):
        slo = parse_slo("p99:0.5")
        assert (slo.kind, slo.threshold) == ("p99", 0.5)
        assert parse_slo("error-rate:0.01").budget == 0.01
        assert parse_slo("availability:0.999").name == "availability:0.999"

    @pytest.mark.parametrize(
        "spec", ["", "p99", "p99:", "p99:zero", "p98:1", "error-rate:2",
                 "availability:0", "p99:-1"]
    )
    def test_parse_rejects(self, spec):
        with pytest.raises(SLOError):
            parse_slo(spec)

    def test_error_rate_within_budget_passes(self):
        results = evaluate_slos(
            [parse_slo("error-rate:0.05")], _slo_ring(errors=2.0)
        )
        (result,) = results
        assert not result.violated
        assert result.observations == 100

    def test_error_rate_over_budget_violates(self):
        (result,) = evaluate_slos(
            [parse_slo("error-rate:0.05")], _slo_ring(errors=50.0)
        )
        assert result.violated
        assert max(result.burn_rates.values()) > 1.0

    def test_availability(self):
        (result,) = evaluate_slos(
            [parse_slo("availability:0.999")], _slo_ring(errors=50.0)
        )
        assert result.violated
        (result,) = evaluate_slos(
            [parse_slo("availability:0.9")], _slo_ring(errors=2.0)
        )
        assert not result.violated

    def test_no_observations_is_not_a_violation(self):
        ring = TimeSeriesRing(8)
        ring.append({"t": 0.0, "values": {}})
        (result,) = evaluate_slos([parse_slo("error-rate:0.01")], ring)
        assert not result.violated
        assert result.observations == 0

    def test_render_results(self):
        results = evaluate_slos(
            [parse_slo("error-rate:0.05")], _slo_ring(errors=50.0)
        )
        text = render_results(results)
        assert "error-rate:0.05" in text and "VIOLATED" in text


# ------------------------------------------------------ sparkline renderer


class TestSparkline:
    def test_flat_series(self):
        from repro.serve.top import sparkline

        assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"

    def test_ramp_hits_both_ends(self):
        from repro.serve.top import SPARK_CHARS, sparkline

        strip = sparkline([0.0, 1.0, 2.0, 3.0])
        assert strip[0] == SPARK_CHARS[0]
        assert strip[-1] == SPARK_CHARS[-1]

    def test_width_truncates_to_tail(self):
        from repro.serve.top import sparkline

        assert len(sparkline(list(map(float, range(50))), width=10)) == 10
