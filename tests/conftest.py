"""Shared fixtures: small programs, traces and configurations."""

from __future__ import annotations

import pytest

from repro.core.config import baseline_model, large_model, small_model
from repro.func.machine import run_program
from repro.isa.assembler import Assembler
from repro.workloads import trace_cache


@pytest.fixture(autouse=True, scope="session")
def _isolated_trace_cache(tmp_path_factory):
    """Keep the persistent trace cache out of the repo during tests.

    Tests still exercise the disk tier (it is enabled), but under a
    session tmp dir instead of results/.trace_cache/.  Worker processes
    spawned by the parallel runner inherit this root via the pool
    initializer.
    """
    root = tmp_path_factory.mktemp("trace-cache")
    trace_cache.configure(root)
    yield
    trace_cache.configure(None)


def build_counting_loop(iterations: int = 64, body_nops: int = 0):
    """A minimal halting loop program: sums 0..iterations-1 into v0."""
    asm = Assembler()
    asm.li("t0", 0)  # i
    asm.li("v0", 0)  # sum
    asm.li("t1", iterations)
    asm.label("loop")
    asm.addu("v0", "v0", "t0")
    for _ in range(body_nops):
        asm.nop()
    asm.addiu("t0", "t0", 1)
    asm.bne("t0", "t1", "loop")
    asm.halt()
    return asm.assemble()


def build_streaming_loop(words: int = 256):
    """Loads and stores marching through an array (one pass)."""
    asm = Assembler()
    asm.data_label("arr")
    asm.word(*range(words))
    asm.data_label("out")
    asm.word(*([0] * words))
    asm.la("t0", "arr")
    asm.la("t1", "out")
    asm.li("t2", words)
    asm.label("loop")
    asm.lw("t3", 0, "t0")
    asm.addiu("t3", "t3", 1)
    asm.sw("t3", 0, "t1")
    asm.addiu("t0", "t0", 4)
    asm.addiu("t1", "t1", 4)
    asm.addiu("t2", "t2", -1)
    asm.bne("t2", "zero", "loop")
    asm.halt()
    return asm.assemble()


@pytest.fixture(scope="session")
def counting_trace():
    return run_program(build_counting_loop()).trace


@pytest.fixture(scope="session")
def streaming_trace():
    return run_program(build_streaming_loop()).trace


@pytest.fixture(scope="session")
def models():
    return small_model(), baseline_model(), large_model()


@pytest.fixture(scope="session")
def espresso_trace_small():
    from repro.workloads.registry import get_trace

    return get_trace("espresso", 16)


@pytest.fixture(scope="session")
def fp_trace_small():
    from repro.workloads.registry import get_trace

    return get_trace("hydro2d", 12)
