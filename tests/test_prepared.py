"""PreparedTrace: semantics preservation, stats regression, protocol.

The contract under test is the one docs/MODELING.md states: columnar
preparation is *semantics-preserving*.  A prepared trace must behave like
the record list it came from (sequence protocol), the timing model must
produce byte-identical SimStats on either representation, and the
vectorized ``compute_stats`` must exactly match the record-loop
implementation — across every workload in both suites.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import baseline_model, large_model, small_model
from repro.core.processor import simulate_trace
from repro.experiments.common import scaled_trace
from repro.func.prepared import (
    PreparedTrace,
    compute_stats_prepared,
    prepare_snapshot,
    prepare_trace,
)
from repro.func.trace import compute_stats
from repro.isa.instructions import Kind
from repro.workloads import registry
from repro.workloads.registry import FP_SUITE, INTEGER_SUITE

#: The acceptance factor: small enough to keep the sweep quick, large
#: enough that every workload still exercises its interesting paths.
FACTOR = 0.05
ALL_NAMES = INTEGER_SUITE + FP_SUITE


def _tiny_records():
    alu, load, branch = int(Kind.ALU), int(Kind.LOAD), int(Kind.BRANCH)
    return [
        (4096, alu, 8, 9, 10, 0),
        (4100, load, 11, 8, -1, 8192),
        (4104, branch, -1, 11, 8, 4096),  # taken
        (4108, branch, -1, 11, 8, 0),  # not taken
    ]


# ------------------------------------------------------- timing identity


@pytest.mark.parametrize("name", ALL_NAMES)
def test_simstats_identical_on_both_representations(name):
    """Acceptance: prepared-path SimStats == tuple-path SimStats."""
    prepared = scaled_trace(name, FACTOR)
    assert isinstance(prepared, PreparedTrace)
    records = prepared.to_records()
    config = baseline_model()
    assert (
        simulate_trace(prepared, config).stats
        == simulate_trace(records, config).stats
    )


@pytest.mark.parametrize(
    "make_config", [small_model, baseline_model, large_model]
)
def test_simstats_identical_across_configs(make_config):
    """One trace, several machine shapes: identity holds per config."""
    prepared = scaled_trace("espresso", FACTOR)
    records = prepared.to_records()
    config = make_config()
    assert (
        simulate_trace(prepared, config).stats
        == simulate_trace(records, config).stats
    )


def test_simstats_identical_on_synthetic_traces(counting_trace, streaming_trace):
    config = baseline_model()
    for records in (counting_trace, streaming_trace):
        prepared = prepare_trace(records)
        assert (
            simulate_trace(prepared, config).stats
            == simulate_trace(records, config).stats
        )


# ----------------------------------------------------- stats regression


@pytest.mark.parametrize("name", ALL_NAMES)
def test_compute_stats_vectorized_matches_loop(name):
    """Satellite: vectorized compute_stats == loop compute_stats."""
    prepared = scaled_trace(name, FACTOR)
    records = prepared.to_records()
    assert compute_stats(prepared) == compute_stats(records)


def test_compute_stats_dispatches_to_vectorized(monkeypatch):
    prepared = prepare_trace(_tiny_records())
    seen = {}

    def spy(trace, line_size=32):
        seen["called"] = True
        return compute_stats_prepared(trace, line_size)

    monkeypatch.setattr(
        "repro.func.prepared.compute_stats_prepared", spy
    )
    compute_stats(prepared)
    assert seen.get("called")


def test_compute_stats_empty_and_nondefault_line_size():
    assert compute_stats(prepare_trace([])) == compute_stats([])
    records = _tiny_records()
    assert compute_stats(prepare_trace(records), line_size=64) == compute_stats(
        records, line_size=64
    )


def test_compute_stats_counts_on_tiny_trace():
    stats = compute_stats(prepare_trace(_tiny_records()))
    assert stats.total == 4
    assert stats.by_kind[Kind.BRANCH] == 2
    assert stats.taken_branches == 1
    assert stats.unique_data_lines == 1


# ----------------------------------------------------- sequence protocol


class TestSequenceProtocol:
    def test_len_index_slice_iter(self):
        records = _tiny_records()
        prepared = prepare_trace(records)
        assert len(prepared) == len(records)
        assert prepared[0] == records[0]
        assert prepared[-1] == records[-1]
        assert prepared[1:3] == records[1:3]
        assert list(prepared) == records
        # indexing yields plain-int tuples (validation does isinstance int)
        assert all(type(v) is int for v in prepared[2])

    def test_equality_both_ways(self):
        records = _tiny_records()
        prepared = prepare_trace(records)
        assert prepared == records
        assert prepared == prepare_trace(records)
        assert prepared != records[:-1]
        assert prepared != prepare_trace(records[:-1])

    def test_unhashable_like_list(self):
        with pytest.raises(TypeError, match="unhashable"):
            hash(prepare_trace(_tiny_records()))

    def test_validate_trace_accepts_prepared(self):
        from repro.robustness.validation import validate_trace

        validate_trace(prepare_trace(_tiny_records()))

    def test_validate_trace_rejects_bad_prepared_like_records(self):
        """The vectorized fast path raises the same message, same index,
        as the record-loop path would on the equivalent list."""
        from repro.robustness.validation import (
            TraceValidationError,
            validate_trace,
        )

        for mutate in (
            lambda r: r.__setitem__(2, (-4, *r[2][1:])),          # pc < 0
            lambda r: r.__setitem__(2, (6, *r[2][1:])),           # unaligned
            lambda r: r.__setitem__(1, (*r[1][:1], 999, *r[1][2:])),  # kind
            lambda r: r.__setitem__(3, (*r[3][:2], 4096, *r[3][3:])),  # reg
            lambda r: r.__setitem__(0, (*r[0][:5], -8)),          # addr < 0
        ):
            records = _tiny_records()
            mutate(records)
            with pytest.raises(TraceValidationError) as loop_err:
                validate_trace(records)
            with pytest.raises(TraceValidationError) as fast_err:
                validate_trace(prepare_trace(records))
            assert str(fast_err.value) == str(loop_err.value)

    def test_validate_trace_memoizes_on_prepared(self):
        from repro.robustness.validation import validate_trace

        prepared = prepare_trace(_tiny_records())
        assert not prepared.validated
        validate_trace(prepared)
        assert prepared.validated
        validate_trace(prepared)  # second call is the memoized no-op

    def test_rejects_bad_shape_and_dtype(self):
        with pytest.raises(ValueError, match="shape"):
            PreparedTrace(np.zeros((3, 5), dtype=np.int64))
        with pytest.raises(ValueError, match="integral"):
            PreparedTrace(np.zeros((3, 6)))


# ------------------------------------------------------------ preparation


class TestPrepare:
    def test_idempotent(self):
        prepared = prepare_trace(_tiny_records())
        assert prepare_trace(prepared) is prepared

    def test_round_trip(self):
        records = _tiny_records()
        assert prepare_trace(records).to_records() == records

    def test_snapshot_advances(self):
        count0, seconds0 = prepare_snapshot()
        prepare_trace(_tiny_records())
        count1, seconds1 = prepare_snapshot()
        assert count1 == count0 + 1
        assert seconds1 >= seconds0

    def test_derived_masks(self):
        prepared = prepare_trace(_tiny_records())
        assert prepared.mem_mask.tolist() == [False, True, False, False]
        assert prepared.branch_taken_mask.tolist() == [
            False, False, True, False,
        ]

    def test_rows_match_records(self):
        records = _tiny_records()
        prepared = prepare_trace(records)
        rows = list(prepared.rows(5))
        assert [row[:6] for row in rows] == records
        for (pc, kind, *_rest, addr), row in zip(records, rows):
            assert row[8] == pc >> 5 and row[9] == addr >> 5


# ------------------------------------------------------- registry wiring


class TestRegistryTracePath:
    def test_default_returns_prepared(self):
        assert isinstance(registry.get_trace("sc", 7), PreparedTrace)

    def test_tuples_mode_returns_records(self, monkeypatch):
        monkeypatch.setenv(registry.ENV_TRACE_PATH, "tuples")
        registry.clear_trace_cache()
        try:
            trace = registry.get_trace("sc", 7)
            assert isinstance(trace, list)
            assert trace and isinstance(trace[0], tuple)
            monkeypatch.delenv(registry.ENV_TRACE_PATH)
            registry.clear_trace_cache()
            assert registry.get_trace("sc", 7) == trace
        finally:
            registry.clear_trace_cache()

    def test_invalid_mode_rejected(self, monkeypatch):
        monkeypatch.setenv(registry.ENV_TRACE_PATH, "rows")
        with pytest.raises(ValueError, match="REPRO_TRACE_PATH"):
            registry.get_trace("sc", 7)
