"""Kernel boundary tests: the scalar oracle, the batched kernel, selection.

The contract under test is the one the module docstring of
:mod:`repro.core.kernel` states: every kernel yields byte-identical
per-config :class:`~repro.core.stats.SimStats`, with the scalar kernel
as the oracle.  The oracle suite runs both benchmark suites (one small
trace each) across the three paper models at batch widths 1, 3 and a
full mixed grid.
"""

from __future__ import annotations

import math

import pytest

from repro.core.kernel import (
    ENV_KERNEL,
    KERNEL_NAMES,
    BatchedKernel,
    KernelError,
    ScalarKernel,
    batch_snapshot,
    get_kernel,
    kernel_mode,
    simulate_many,
)
from repro.telemetry import tracing
from repro.telemetry.events import EventBus


def _full_grid(models):
    """The three models plus variants that stress divergent structures.

    The first three entries are exactly ``models`` so width-3 oracle
    comparisons can reuse the grid's scalar reference.
    """
    small, baseline, large = models
    return [
        small,
        baseline,
        large,
        baseline.with_(issue_width=1),
        baseline.with_(mem_latency=35),
        baseline.with_(mshr_entries=1),
        baseline.with_(rob_entries=8),
        large.without_prefetch(),
    ]


@pytest.fixture(
    scope="module", params=["espresso_trace_small", "fp_trace_small"]
)
def suite_trace(request):
    """One small trace per benchmark suite (int: espresso, fp: hydro2d)."""
    return request.getfixturevalue(request.param)


class TestOracle:
    """Batched stats must equal the scalar kernel's, config for config."""

    def test_width_one(self, suite_trace, models):
        for config in _full_grid(models):
            expected = simulate_many(
                suite_trace, [config], kernel="scalar"
            )[0]
            got = simulate_many(suite_trace, [config], kernel="batched")[0]
            assert got.stats == expected.stats, config.label
            assert got.config is config

    def test_width_three(self, suite_trace, models):
        oracle = simulate_many(suite_trace, list(models), kernel="scalar")
        batch = simulate_many(suite_trace, list(models), kernel="batched")
        assert [r.stats for r in batch] == [r.stats for r in oracle]

    def test_full_grid(self, suite_trace, models):
        grid = _full_grid(models)
        oracle = simulate_many(suite_trace, grid, kernel="scalar")
        batch = simulate_many(suite_trace, grid, kernel="batched")
        assert [r.stats for r in batch] == [r.stats for r in oracle]
        # Results stay index-aligned with the configs passed in.
        for config, result in zip(grid, batch):
            assert result.config is config

    def test_plain_record_lists(self, counting_trace, models):
        # The batched kernel must also accept the tuple representation.
        oracle = simulate_many(counting_trace, list(models), kernel="scalar")
        batch = simulate_many(counting_trace, list(models), kernel="batched")
        assert [r.stats for r in batch] == [r.stats for r in oracle]

    def test_empty_trace(self, models):
        for kernel in KERNEL_NAMES:
            for result in simulate_many([], list(models), kernel=kernel):
                assert result.stats.instructions == 0
                assert math.isnan(result.cpi)

    def test_empty_config_list(self, counting_trace):
        assert simulate_many(counting_trace, [], kernel="batched") == []


class TestTelemetryRefusal:
    def test_active_bus_refused_naming_the_field(self, counting_trace, models):
        class Sink:
            def record(self, event):
                pass

        bus = EventBus(Sink())
        with pytest.raises(KernelError, match="telemetry"):
            BatchedKernel().simulate_many(
                counting_trace, [models[1]], telemetry=bus
            )

    def test_sinkless_bus_is_telemetry_off(self, counting_trace, models):
        # A bus with no sinks is falsy — same normalisation as the
        # scalar loop — so the batched kernel accepts it.
        results = BatchedKernel().simulate_many(
            counting_trace, [models[1]], telemetry=EventBus()
        )
        assert results[0].stats.instructions == len(counting_trace)


class TestSelection:
    def test_default_is_scalar(self):
        assert kernel_mode({}) == KERNEL_NAMES[0] == "scalar"

    def test_env_selects_batched_case_insensitive(self):
        assert kernel_mode({ENV_KERNEL: "BATCHED"}) == "batched"

    def test_bad_env_value_names_the_variable(self):
        with pytest.raises(KernelError, match=ENV_KERNEL):
            kernel_mode({ENV_KERNEL: "vectorised"})

    def test_get_kernel_by_name(self):
        assert isinstance(get_kernel("scalar"), ScalarKernel)
        assert isinstance(get_kernel("batched"), BatchedKernel)

    def test_get_kernel_unknown(self):
        with pytest.raises(KernelError, match="unknown kernel"):
            get_kernel("simd")

    def test_get_kernel_follows_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_KERNEL, "batched")
        assert isinstance(get_kernel(), BatchedKernel)
        monkeypatch.delenv(ENV_KERNEL)
        assert isinstance(get_kernel(), ScalarKernel)

    def test_validate_environment_rejects_bad_kernel(self, monkeypatch):
        from repro.robustness.validation import (
            EnvValidationError,
            validate_environment,
        )

        monkeypatch.setenv(ENV_KERNEL, "vectorised")
        with pytest.raises(EnvValidationError, match=ENV_KERNEL):
            validate_environment()


class TestAccounting:
    def test_batch_snapshot_counts_calls_and_configs(
        self, counting_trace, models
    ):
        calls, configs = batch_snapshot()
        simulate_many(counting_trace, list(models), kernel="batched")
        assert batch_snapshot() == (calls + 1, configs + 3)

    def test_scalar_kernel_does_not_count(self, counting_trace, models):
        before = batch_snapshot()
        simulate_many(counting_trace, list(models), kernel="scalar")
        assert batch_snapshot() == before

    def test_simulate_batch_span(self, counting_trace, models):
        tracer = tracing.SpanTracer()
        with tracing.use_tracer(tracer):
            simulate_many(counting_trace, list(models), kernel="batched")
        spans = [
            record
            for record in tracer.finished_records()
            if record["name"] == "simulate_batch"
        ]
        assert len(spans) == 1
        fields = spans[0]["args"]
        assert fields["records"] == len(counting_trace)
        assert fields["configs"] == 3
        assert fields["kernel"] == "batched"
