"""Unit tests for trace infrastructure (stats, persistence, encodings)."""

import pytest

from repro.func.trace import (
    FP_REG_BASE,
    HI_REG,
    NO_REG,
    compute_stats,
    is_fp_kind,
    is_memory_kind,
    load_trace,
    save_trace,
)
from repro.isa.instructions import Kind


def rec(pc, kind, dst=NO_REG, s1=NO_REG, s2=NO_REG, addr=0):
    return (pc, int(kind), dst, s1, s2, addr)


class TestComputeStats:
    def test_mix_counting(self):
        trace = [
            rec(0x400000, Kind.ALU, dst=8),
            rec(0x400004, Kind.LOAD, dst=9, addr=0x1000),
            rec(0x400008, Kind.STORE, s2=9, addr=0x1004),
            rec(0x40000C, Kind.BRANCH, s1=8, addr=0x400000),
            rec(0x400010, Kind.NOP),
        ]
        stats = compute_stats(trace)
        assert stats.total == 5
        assert stats.by_kind[Kind.ALU] == 1
        assert stats.loads == 1
        assert stats.stores == 1
        assert stats.taken_branches == 1
        assert stats.fraction(Kind.NOP) == pytest.approx(0.2)

    def test_footprints(self):
        trace = [
            rec(0x400000, Kind.ALU),
            rec(0x400020, Kind.ALU),  # second code line
            rec(0x400024, Kind.LOAD, addr=0x1000),
            rec(0x400028, Kind.LOAD, addr=0x1004),  # same data line
            rec(0x40002C, Kind.LOAD, addr=0x2000),
        ]
        stats = compute_stats(trace)
        assert stats.unique_code_lines == 2
        assert stats.unique_data_lines == 2
        assert stats.code_footprint_bytes == 64
        assert stats.data_footprint_bytes == 64

    def test_fp_counting(self):
        trace = [
            rec(0x400000, Kind.FP_ADD, dst=FP_REG_BASE + 2),
            rec(0x400004, Kind.FP_LOAD, dst=FP_REG_BASE + 4, addr=0x1000),
        ]
        stats = compute_stats(trace)
        assert stats.fp_ops == 2
        assert stats.loads == 1

    def test_empty_trace(self):
        stats = compute_stats([])
        assert stats.total == 0
        assert stats.fraction(Kind.ALU) == 0.0

    def test_fp_move_not_a_data_line(self):
        trace = [rec(0x400000, Kind.FP_MOVE, dst=FP_REG_BASE)]
        stats = compute_stats(trace)
        assert stats.unique_data_lines == 0


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace = [
            rec(0x400000, Kind.ALU, dst=8, s1=9, s2=10),
            rec(0x400004, Kind.LOAD, dst=11, s1=29, addr=0x7FFFFF00),
        ]
        path = str(tmp_path / "trace.npz")
        save_trace(path, trace)
        loaded = load_trace(path)
        assert loaded == trace

    def test_empty_roundtrip(self, tmp_path):
        path = str(tmp_path / "empty.npz")
        save_trace(path, [])
        assert load_trace(path) == []


class TestKindHelpers:
    def test_memory_kinds(self):
        for kind in (Kind.LOAD, Kind.STORE, Kind.FP_LOAD, Kind.FP_STORE,
                     Kind.FP_MOVE):
            assert is_memory_kind(int(kind))
        assert not is_memory_kind(int(Kind.ALU))

    def test_fp_kinds(self):
        assert is_fp_kind(int(Kind.FP_MUL))
        assert not is_fp_kind(int(Kind.BRANCH))

    def test_unified_register_space_constants(self):
        assert FP_REG_BASE == 32
        assert HI_REG == 64
        assert NO_REG == -1
