"""Functional-simulator semantics tests: every instruction class."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.func.machine import Machine, SimulationError, run_program
from repro.func.trace import FP_REG_BASE, HI_REG, NO_REG
from repro.isa.assembler import Assembler
from repro.isa.instructions import Kind
from repro.isa.program import DATA_BASE, STACK_TOP

S32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)


def run_ops(setup, check_reg="v0"):
    """Build a program with `setup(asm)`, run it, return the check register."""
    asm = Assembler()
    setup(asm)
    asm.halt()
    result = run_program(asm.assemble())
    from repro.isa.registers import int_reg

    return result.registers[int_reg(check_reg)]


class TestAluSemantics:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("addu", 2, 3, 5),
            ("addu", 2**31 - 1, 1, -(2**31)),  # wraparound
            ("subu", 3, 5, -2),
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("nor", 0, 0, -1),
            ("slt", -1, 0, 1),
            ("slt", 1, 0, 0),
            ("sltu", -1, 0, 0),  # unsigned: 0xffffffff > 0
            ("sltu", 0, -1, 1),
        ],
    )
    def test_three_register(self, op, a, b, expected):
        def setup(asm):
            asm.li("t0", a)
            asm.li("t1", b)
            asm.op(op, "v0", "t0", "t1")

        assert run_ops(setup) == expected

    @pytest.mark.parametrize(
        "op,a,imm,expected",
        [
            ("addiu", 10, -3, 7),
            ("andi", 0xFF0F, 0x00FF, 0x000F),
            ("ori", 0xF000, 0x000F, 0xF00F),
            ("xori", 0xFF, 0x0F, 0xF0),
            ("slti", -5, 0, 1),
            ("sltiu", 5, 10, 1),
            ("sll", 1, 4, 16),
            ("srl", -1, 28, 0xF),
            ("sra", -16, 2, -4),
        ],
    )
    def test_immediate(self, op, a, imm, expected):
        def setup(asm):
            asm.li("t0", a)
            asm.op(op, "v0", "t0", imm)

        assert run_ops(setup) == expected

    def test_variable_shifts(self):
        def setup(asm):
            asm.li("t0", 1)
            asm.li("t1", 5)
            asm.sllv("v0", "t0", "t1")

        assert run_ops(setup) == 32

    def test_lui(self):
        def setup(asm):
            asm.lui("v0", 0x1234)

        assert run_ops(setup) == 0x12340000

    def test_zero_register_ignores_writes(self):
        def setup(asm):
            asm.li("t0", 7)
            asm.addu("zero", "t0", "t0")
            asm.move("v0", "zero")

        assert run_ops(setup) == 0


class TestHiLo:
    def test_mult_signed(self):
        def setup(asm):
            asm.li("t0", -3)
            asm.li("t1", 7)
            asm.mult("t0", "t1")
            asm.mflo("v0")

        assert run_ops(setup) == -21

    def test_mult_high_word(self):
        def setup(asm):
            asm.li("t0", 0x10000)
            asm.li("t1", 0x10000)
            asm.mult("t0", "t1")
            asm.mfhi("v0")

        assert run_ops(setup) == 1

    def test_multu_unsigned(self):
        def setup(asm):
            asm.li("t0", -1)  # 0xffffffff
            asm.li("t1", 2)
            asm.multu("t0", "t1")
            asm.mfhi("v0")

        assert run_ops(setup) == 1

    def test_div_quotient_remainder(self):
        def setup(asm):
            asm.li("t0", 17)
            asm.li("t1", 5)
            asm.div("t0", "t1")
            asm.mflo("v0")
            asm.mfhi("v1")

        asm = Assembler()
        setup(asm)
        asm.halt()
        result = run_program(asm.assemble())
        assert result.registers[2] == 3
        assert result.registers[3] == 2

    def test_div_truncates_toward_zero(self):
        def setup(asm):
            asm.li("t0", -7)
            asm.li("t1", 2)
            asm.div("t0", "t1")
            asm.mflo("v0")

        assert run_ops(setup) == -3

    def test_div_by_zero_defined_as_zero(self):
        def setup(asm):
            asm.li("t0", 5)
            asm.div("t0", "zero")
            asm.mflo("v0")

        assert run_ops(setup) == 0

    @given(a=S32, b=S32)
    @settings(max_examples=40)
    def test_mult_matches_python(self, a, b):
        def setup(asm):
            asm.li("t0", a)
            asm.li("t1", b)
            asm.mult("t0", "t1")
            asm.mflo("v0")

        product = (a * b) & 0xFFFFFFFF
        expected = product - 2**32 if product >= 2**31 else product
        assert run_ops(setup) == expected


class TestMemoryOps:
    def test_store_load_word(self):
        def setup(asm):
            asm.data_label("slot")
            asm.word(0)
            asm.la("t0", "slot")
            asm.li("t1", -42)
            asm.sw("t1", 0, "t0")
            asm.lw("v0", 0, "t0")

        assert run_ops(setup) == -42

    def test_byte_sign_extension(self):
        def setup(asm):
            asm.data_label("slot")
            asm.byte(0xFF)
            asm.la("t0", "slot")
            asm.lb("v0", 0, "t0")

        assert run_ops(setup) == -1

    def test_byte_zero_extension(self):
        def setup(asm):
            asm.data_label("slot")
            asm.byte(0xFF)
            asm.la("t0", "slot")
            asm.lbu("v0", 0, "t0")

        assert run_ops(setup) == 255

    def test_halfword(self):
        def setup(asm):
            asm.data_label("slot")
            asm.half(0x8000)
            asm.la("t0", "slot")
            asm.lhu("v0", 0, "t0")

        assert run_ops(setup) == 0x8000

    def test_stack_pointer_initialised(self):
        asm = Assembler()
        asm.halt()
        machine = Machine(program=asm.assemble())
        assert machine.regs[29] == STACK_TOP


class TestControlFlow:
    def test_delay_slot_executes_on_taken_branch(self):
        asm = Assembler()
        asm.li("v0", 0)
        with asm.noreorder():
            asm.beq("zero", "zero", "over")
            asm.addiu("v0", "v0", 1)  # delay slot: must execute
        asm.addiu("v0", "v0", 100)  # skipped
        asm.label("over")
        asm.halt()
        result = run_program(asm.assemble())
        assert result.registers[2] == 1

    def test_delay_slot_executes_on_untaken_branch(self):
        asm = Assembler()
        asm.li("v0", 0)
        asm.li("t0", 1)
        with asm.noreorder():
            asm.beq("t0", "zero", "over")
            asm.addiu("v0", "v0", 1)
        asm.addiu("v0", "v0", 100)
        asm.label("over")
        asm.halt()
        result = run_program(asm.assemble())
        assert result.registers[2] == 101

    def test_jal_links_past_delay_slot(self):
        asm = Assembler()
        asm.jal("func")
        asm.li("v1", 7)  # executed after return
        asm.halt()
        asm.label("func")
        asm.li("v0", 3)
        asm.jr("ra")
        result = run_program(asm.assemble())
        assert result.registers[2] == 3
        assert result.registers[3] == 7

    def test_jalr(self):
        asm = Assembler()
        asm.la("t0", "func")
        asm.jalr("ra", "t0")
        asm.halt()
        asm.label("func")
        asm.li("v0", 9)
        asm.jr("ra")
        result = run_program(asm.assemble())
        assert result.registers[2] == 9

    @pytest.mark.parametrize(
        "op,value,taken",
        [
            ("blez", 0, True),
            ("blez", -1, True),
            ("blez", 1, False),
            ("bgtz", 1, True),
            ("bgtz", 0, False),
            ("bltz", -1, True),
            ("bltz", 0, False),
            ("bgez", 0, True),
            ("bgez", -1, False),
        ],
    )
    def test_single_source_branches(self, op, value, taken):
        asm = Assembler()
        asm.li("v0", 0)
        asm.li("t0", value)
        asm.op(op, "t0", "skip")
        asm.addiu("v0", "v0", 1)
        asm.label("skip")
        asm.halt()
        result = run_program(asm.assemble())
        assert result.registers[2] == (0 if taken else 1)

    def test_runaway_detection(self):
        asm = Assembler()
        asm.label("spin")
        asm.b("spin")
        with pytest.raises(SimulationError):
            run_program(asm.assemble(), max_instructions=1000)

    def test_fall_off_text_detected(self):
        asm = Assembler()
        asm.nop()
        with pytest.raises(SimulationError):
            run_program(asm.assemble())


class TestFloatingPoint:
    def test_double_arithmetic(self):
        asm = Assembler()
        asm.data_label("vals")
        asm.float_double(3.0, 4.0, 0.0)
        asm.la("t0", "vals")
        asm.ldc1("f2", 0, "t0")
        asm.ldc1("f4", 8, "t0")
        asm.mul_d("f6", "f2", "f4")
        asm.add_d("f6", "f6", "f2")
        asm.sdc1("f6", 16, "t0")
        asm.halt()
        result = run_program(asm.assemble())
        assert result.memory.read_double(DATA_BASE + 16) == 15.0

    def test_single_arithmetic(self):
        asm = Assembler()
        asm.data_label("vals")
        asm.float_single(1.5, 2.5, 0.0)
        asm.la("t0", "vals")
        asm.lwc1("f1", 0, "t0")
        asm.lwc1("f2", 4, "t0")
        asm.add_s("f3", "f1", "f2")
        asm.swc1("f3", 8, "t0")
        asm.halt()
        result = run_program(asm.assemble())
        assert result.memory.read_float(DATA_BASE + 8) == 4.0

    def test_divide_and_sqrt(self):
        asm = Assembler()
        asm.data_label("vals")
        asm.float_double(16.0, 2.0, 0.0, 0.0)
        asm.la("t0", "vals")
        asm.ldc1("f2", 0, "t0")
        asm.ldc1("f4", 8, "t0")
        asm.div_d("f6", "f2", "f4")
        asm.sqrt_d("f8", "f2")
        asm.sdc1("f6", 16, "t0")
        asm.sdc1("f8", 24, "t0")
        asm.halt()
        result = run_program(asm.assemble())
        assert result.memory.read_double(DATA_BASE + 16) == 8.0
        assert result.memory.read_double(DATA_BASE + 24) == 4.0

    def test_compare_and_branch(self):
        asm = Assembler()
        asm.data_label("vals")
        asm.float_double(1.0, 2.0)
        asm.la("t0", "vals")
        asm.ldc1("f2", 0, "t0")
        asm.ldc1("f4", 8, "t0")
        asm.c_lt_d("f2", "f4")
        asm.li("v0", 0)
        asm.bc1t("less")
        asm.addiu("v0", "v0", 100)
        asm.label("less")
        asm.addiu("v0", "v0", 1)
        asm.halt()
        result = run_program(asm.assemble())
        assert result.registers[2] == 1

    def test_mtc1_mfc1_and_convert(self):
        asm = Assembler()
        asm.li("t0", 21)
        asm.mtc1("t0", "f2")
        asm.cvt_d_w("f2", "f2")
        asm.add_d("f2", "f2", "f2")
        asm.cvt_w_d("f2", "f2")
        asm.mfc1("v0", "f2")
        asm.halt()
        result = run_program(asm.assemble())
        assert result.registers[2] == 42


class TestTraceRecords:
    def test_alu_record_shape(self):
        asm = Assembler()
        asm.li("t0", 1)
        asm.li("t1", 2)
        asm.addu("v0", "t0", "t1")
        asm.halt()
        result = run_program(asm.assemble())
        pc, kind, dst, s1, s2, addr = result.trace[2]
        assert kind == int(Kind.ALU)
        assert dst == 2  # v0
        assert s1 == 8 and s2 == 9
        assert addr == 0

    def test_zero_register_sources_suppressed(self):
        asm = Assembler()
        asm.addu("v0", "zero", "zero")
        asm.halt()
        result = run_program(asm.assemble())
        _, _, dst, s1, s2, _ = result.trace[0]
        assert dst == 2
        assert s1 == NO_REG and s2 == NO_REG

    def test_load_record_address(self):
        asm = Assembler()
        asm.data_label("x")
        asm.word(5)
        asm.la("t0", "x")
        asm.lw("v0", 0, "t0")
        asm.halt()
        result = run_program(asm.assemble())
        load = [r for r in result.trace if r[1] == int(Kind.LOAD)][0]
        assert load[5] == DATA_BASE

    def test_branch_record_target(self):
        from repro.isa.program import TEXT_BASE

        asm = Assembler()
        asm.li("t0", 1)
        asm.beq("t0", "zero", "skip")  # not taken -> addr field 0
        asm.label("skip")
        asm.beq("t0", "t0", "end")  # taken -> addr field = target pc
        asm.label("end")
        asm.halt()
        result = run_program(asm.assemble())
        branches = [r for r in result.trace if r[1] == int(Kind.BRANCH)]
        assert branches[0][5] == 0  # not taken
        taken_target = branches[1][5]
        assert taken_target > TEXT_BASE
        # the target is the pc of the instruction after the delay slot
        following = [r for r in result.trace if r[0] == taken_target]
        assert following

    def test_hi_lo_dependency_encoding(self):
        asm = Assembler()
        asm.li("t0", 2)
        asm.mult("t0", "t0")
        asm.mflo("v0")
        asm.halt()
        result = run_program(asm.assemble())
        mult = [r for r in result.trace if r[2] == HI_REG]
        assert mult, "mult should write the HI/LO resource"
        mflo = [r for r in result.trace if r[3] == HI_REG]
        assert mflo, "mflo should read the HI/LO resource"

    def test_fp_register_encoding(self):
        asm = Assembler()
        asm.data_label("x")
        asm.float_double(1.0)
        asm.la("t0", "x")
        asm.ldc1("f2", 0, "t0")
        asm.add_d("f4", "f2", "f2")
        asm.halt()
        result = run_program(asm.assemble())
        add = [r for r in result.trace if r[1] == int(Kind.FP_ADD)][0]
        assert add[2] == FP_REG_BASE + 4
        assert add[3] == FP_REG_BASE + 2
