"""Unit tests for the stream-buffer prefetch pool."""

import pytest

from repro.core.biu import BusInterfaceUnit
from repro.core.prefetch import SplitStreamBufferPool, StreamBufferPool


def make_pool(buffers=2, depth=2, latency=17, enabled=True, split=False):
    biu = BusInterfaceUnit(latency=latency, occupancy=4)
    cls = SplitStreamBufferPool if split else StreamBufferPool
    return cls(buffers, depth, biu, enabled=enabled), biu


class TestStreamBufferPool:
    def test_validation(self):
        biu = BusInterfaceUnit(latency=17)
        with pytest.raises(ValueError):
            StreamBufferPool(0, 2, biu)
        with pytest.raises(ValueError):
            StreamBufferPool(2, 0, biu)

    def test_miss_then_sequential_hit(self):
        pool, _ = make_pool()
        assert pool.lookup(100, 0, "D") is None  # cold
        pool.allocate(100, 0)  # starts prefetching line 101
        arrival = pool.lookup(101, 5, "D")
        assert arrival is not None and arrival >= 5 or arrival <= 17 + 4
        assert pool.stats.d_hits == 1
        assert pool.stats.d_lookups == 2

    def test_ramping_after_hit(self):
        pool, biu = make_pool(depth=3)
        pool.allocate(100, 0)
        fetched_before = pool.stats.lines_fetched
        pool.lookup(101, 20, "D")  # hit -> ramp to depth
        assert pool.stats.lines_fetched > fetched_before
        # lines 102 and 103 should now be pending
        assert pool.lookup(102, 60, "D") is not None
        assert pool.lookup(103, 90, "D") is not None

    def test_non_sequential_does_not_hit(self):
        pool, _ = make_pool()
        pool.allocate(100, 0)
        assert pool.lookup(105, 10, "D") is None  # skipped ahead

    def test_lru_replacement_thrash(self):
        """Two buffers, three interleaved streams: the paper's small-model
        thrash — the oldest stream keeps getting evicted."""
        pool, _ = make_pool(buffers=2)
        pool.allocate(100, 0)
        pool.allocate(200, 1)
        pool.allocate(300, 2)  # evicts the stream at 100
        assert pool.lookup(101, 10, "I") is None
        assert pool.lookup(201, 12, "D") is not None

    def test_disabled_pool_never_hits(self):
        pool, biu = make_pool(enabled=False)
        pool.allocate(100, 0)
        assert pool.lookup(101, 10, "D") is None
        assert biu.stats.prefetch == 0
        assert pool.stats.d_lookups == 0

    def test_stats_split_by_stream(self):
        pool, _ = make_pool(buffers=4)
        pool.allocate(100, 0)
        pool.allocate(500, 0)
        pool.lookup(101, 10, "I")
        pool.lookup(501, 10, "D")
        assert pool.stats.i_hits == 1
        assert pool.stats.d_hits == 1
        assert pool.stats.hit_rate("I") == 1.0
        with pytest.raises(ValueError):
            pool.stats.hit_rate("X")

    def test_drop_line(self):
        pool, _ = make_pool()
        pool.allocate(100, 0)
        pool.drop_line(101)
        assert pool.lookup(101, 10, "D") is None

    def test_consuming_hit_removes_line(self):
        pool, _ = make_pool(depth=1)
        pool.allocate(100, 0)
        assert pool.lookup(101, 30, "D") is not None
        # after consumption the buffer prefetched 102, not 101 again
        assert pool.lookup(101, 40, "D") is None

    def test_prefetch_uses_bus_bandwidth(self):
        pool, biu = make_pool()
        pool.allocate(100, 0)
        assert biu.stats.prefetch == 1


class TestSplitPool:
    def test_needs_two_buffers(self):
        biu = BusInterfaceUnit(latency=17)
        with pytest.raises(ValueError):
            SplitStreamBufferPool(1, 2, biu)

    def test_streams_do_not_thrash_each_other(self):
        pool, _ = make_pool(buffers=2, split=True)
        pool.allocate(100, 0, stream="I")
        pool.allocate(200, 1, stream="D")
        pool.allocate(300, 2, stream="D")  # evicts D stream only
        assert pool.lookup(101, 10, "I") is not None

    def test_merged_stats(self):
        pool, _ = make_pool(buffers=4, split=True)
        pool.allocate(100, 0, stream="I")
        pool.lookup(101, 5, "I")
        pool.allocate(900, 0, stream="D")
        pool.lookup(901, 5, "D")
        stats = pool.stats
        assert stats.i_hits == 1
        assert stats.d_hits == 1
        assert stats.lines_fetched >= 2

    def test_drop_line_covers_both(self):
        pool, _ = make_pool(buffers=2, split=True)
        pool.allocate(100, 0, stream="I")
        pool.drop_line(101)
        assert pool.lookup(101, 10, "I") is None
