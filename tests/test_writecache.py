"""Unit tests for the coalescing write cache."""

import pytest

from repro.core.biu import BusInterfaceUnit
from repro.core.writecache import WriteCache


def make_wc(lines=4, latency=17, validation=True):
    biu = BusInterfaceUnit(latency=latency, occupancy=4)
    return WriteCache(lines, 32, biu, write_validation=validation), biu


class TestCoalescing:
    def test_needs_one_line(self):
        biu = BusInterfaceUnit(latency=17)
        with pytest.raises(ValueError):
            WriteCache(0, 32, biu)

    def test_same_line_stores_coalesce(self):
        wc, biu = make_wc()
        wc.store(0x1000, 0)
        wc.store(0x1004, 1)
        wc.store(0x1000, 2)  # overwrite
        assert wc.stats.hits == 2
        assert wc.stats.store_transactions == 0  # nothing evicted yet

    def test_eviction_on_capacity(self):
        wc, biu = make_wc(lines=2)
        wc.store(0x1000, 0)
        wc.store(0x2000, 1)
        wc.store(0x3000, 2)  # evicts LRU (0x1000 line)
        assert wc.stats.store_transactions == 1
        assert biu.stats.write == 1
        assert not wc.contains_line(0x1000 >> 5)
        assert wc.contains_line(0x3000 >> 5)

    def test_lru_refresh_on_hit(self):
        wc, _ = make_wc(lines=2)
        wc.store(0x1000, 0)
        wc.store(0x2000, 1)
        wc.store(0x1004, 2)  # refresh line 0x1000
        wc.store(0x3000, 3)  # should evict 0x2000, not 0x1000
        assert wc.contains_line(0x1000 >> 5)
        assert not wc.contains_line(0x2000 >> 5)

    def test_flush_writes_all_dirty(self):
        wc, biu = make_wc(lines=4)
        for i in range(3):
            wc.store(0x1000 + 0x100 * i, i)
        done = wc.flush(10)
        assert wc.stats.store_transactions == 3
        assert done >= 10
        # flushed lines are gone
        assert not wc.contains_line(0x1000 >> 5)

    def test_traffic_ratio(self):
        wc, _ = make_wc(lines=2)
        # eight sequential words: one line, one eventual transaction
        for i in range(8):
            wc.store(0x1000 + 4 * i, i)
        wc.flush(100)
        assert wc.stats.store_instructions == 8
        assert wc.stats.store_transactions == 1
        assert wc.stats.traffic_ratio == pytest.approx(1 / 8)


class TestLoadForwarding:
    def test_load_hit_requires_written_word(self):
        wc, _ = make_wc()
        wc.store(0x1000, 0)
        assert wc.load_lookup(0x1000, 1)  # written word forwards
        assert not wc.load_lookup(0x1004, 2)  # same line, unwritten word
        assert not wc.load_lookup(0x2000, 3)  # absent line

    def test_hit_rate_includes_loads_and_stores(self):
        wc, _ = make_wc()
        wc.store(0x1000, 0)  # miss (allocate)
        wc.store(0x1004, 1)  # hit
        wc.load_lookup(0x1000, 2)  # hit
        wc.load_lookup(0x3000, 3)  # miss
        assert wc.stats.accesses == 4
        assert wc.stats.hits == 2
        assert wc.stats.hit_rate == pytest.approx(0.5)


class TestWriteValidation:
    def test_first_store_to_new_page_validates(self):
        wc, biu = make_wc()
        done = wc.store(0x1000, 0)
        assert wc.stats.validation_misses == 1
        assert biu.stats.mmu == 1
        assert done >= 17  # waited for the MMU round trip

    def test_same_page_match_is_fast(self):
        wc, biu = make_wc()
        wc.store(0x1000, 0)
        done = wc.store(0x1200, 30)  # different line, same 4 KB page
        assert wc.stats.validation_misses == 1  # no second MMU query
        assert done == 31

    def test_validation_disabled(self):
        wc, biu = make_wc(validation=False)
        done = wc.store(0x1000, 0)
        assert biu.stats.mmu == 0
        assert done == 1

    def test_micro_tlb_capacity(self):
        """Four lines = four page slots; a fifth page re-validates."""
        wc, biu = make_wc(lines=4)
        for page in range(4):
            wc.store(0x10_000 * page, page)
        assert biu.stats.mmu == 4
        wc.store(0x50_000, 10)  # fifth distinct page
        assert biu.stats.mmu == 5


class TestFpStoreSync:
    def test_line_waits_for_fp_data_before_eviction(self):
        wc, biu = make_wc(lines=1)
        wc.store(0x1000, 0, fp_data_at=100)  # FP store, data arrives late
        done = wc.store(0x2000, 5)  # forces eviction of the FP line
        # the eviction cannot have gone out before the data existed
        assert done >= 100

    def test_fp_data_time_updates_on_coalesce(self):
        wc, _ = make_wc(lines=1)
        wc.store(0x1000, 0, fp_data_at=50)
        wc.store(0x1004, 1, fp_data_at=90)
        done = wc.store(0x2000, 5)
        assert done >= 90
