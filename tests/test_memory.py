"""Unit + property tests for the sparse memory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.func.memory import MemoryError_, SparseMemory

ALIGNED_ADDR = st.integers(min_value=0, max_value=0x7FFF_FFF0).map(lambda a: a & ~3)
WORD_VALUE = st.integers(min_value=-(2**31), max_value=2**31 - 1)


class TestWords:
    def test_default_zero(self):
        assert SparseMemory().read_word(0x1000) == 0

    def test_write_read(self):
        mem = SparseMemory()
        mem.write_word(0x1000, 0x12345678)
        assert mem.read_word(0x1000) == 0x12345678

    def test_negative_roundtrip(self):
        mem = SparseMemory()
        mem.write_word(0x1000, -1)
        assert mem.read_word(0x1000) == -1

    def test_unaligned_raises(self):
        mem = SparseMemory()
        with pytest.raises(MemoryError_):
            mem.read_word(0x1001)
        with pytest.raises(MemoryError_):
            mem.write_word(0x1002, 1)

    def test_cross_page_bytes(self):
        mem = SparseMemory()
        mem.write_bytes(0xFFE, b"\x01\x02\x03\x04")
        assert mem.read_bytes(0xFFE, 4) == b"\x01\x02\x03\x04"

    def test_resident_accounting(self):
        mem = SparseMemory()
        assert mem.resident_bytes == 0
        mem.write_byte(0, 1)
        mem.write_byte(0x10_0000, 1)
        assert mem.resident_bytes == 2 * 4096

    @given(addr=ALIGNED_ADDR, value=WORD_VALUE)
    @settings(max_examples=60)
    def test_word_roundtrip_property(self, addr, value):
        mem = SparseMemory()
        mem.write_word(addr, value)
        assert mem.read_word(addr) == value


class TestHalvesAndBytes:
    def test_half_signed_unsigned(self):
        mem = SparseMemory()
        mem.write_half(0x2000, 0x8001)
        assert mem.read_half(0x2000, signed=False) == 0x8001
        assert mem.read_half(0x2000, signed=True) == 0x8001 - 0x10000

    def test_half_unaligned(self):
        with pytest.raises(MemoryError_):
            SparseMemory().read_half(0x2001)

    def test_byte_signed_unsigned(self):
        mem = SparseMemory()
        mem.write_byte(0x2000, 0xFF)
        assert mem.read_byte(0x2000, signed=False) == 255
        assert mem.read_byte(0x2000, signed=True) == -1

    def test_little_endian_word_assembly(self):
        mem = SparseMemory()
        for i, b in enumerate((0x78, 0x56, 0x34, 0x12)):
            mem.write_byte(0x3000 + i, b)
        assert mem.read_word(0x3000) == 0x12345678


class TestFloats:
    def test_float_roundtrip(self):
        mem = SparseMemory()
        mem.write_float(0x1000, 1.5)
        assert mem.read_float(0x1000) == 1.5

    def test_double_roundtrip(self):
        mem = SparseMemory()
        mem.write_double(0x1008, 3.141592653589793)
        assert mem.read_double(0x1008) == 3.141592653589793

    def test_double_alignment(self):
        with pytest.raises(MemoryError_):
            SparseMemory().read_double(0x1004)
        with pytest.raises(MemoryError_):
            SparseMemory().write_double(0x1004, 1.0)

    @given(value=st.floats(allow_nan=False, allow_infinity=False))
    @settings(max_examples=60)
    def test_double_roundtrip_property(self, value):
        mem = SparseMemory()
        mem.write_double(0x4000, value)
        assert mem.read_double(0x4000) == value

    def test_load_initial(self):
        mem = SparseMemory()
        mem.load_initial({0x1000: 0x78, 0x1001: 0x56, 0x1002: 0x34, 0x1003: 0x12})
        assert mem.read_word(0x1000) == 0x12345678
