"""Tests for the high-level public API and the CLI plumbing."""

import pytest

import repro
from repro.api import simulate_program, simulate_workload, suite_results
from repro.experiments.cli import main as cli_main
from repro.isa.assembler import Assembler


class TestPublicApi:
    def test_package_exposes_api_lazily(self):
        assert repro.BASELINE.name == "baseline"
        assert callable(repro.simulate_workload)
        assert repro.__version__

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing

    def test_simulate_workload(self):
        result = simulate_workload("sc", repro.BASELINE, scale=8)
        assert result.cpi > 0
        assert result.config is repro.BASELINE

    def test_simulate_program(self):
        asm = Assembler()
        asm.li("t0", 100)
        asm.label("loop")
        asm.addiu("t0", "t0", -1)
        asm.bne("t0", "zero", "loop")
        asm.halt()
        result = simulate_program(asm.assemble(), repro.SMALL)
        assert result.stats.instructions > 300

    def test_suite_results(self):
        results = suite_results(repro.BASELINE, suite="int", scale=None)
        assert set(results) == set(repro.INTEGER_SUITE)

    def test_suite_results_fp(self):
        results = suite_results(repro.BASELINE, suite="fp", scale=16)
        assert set(results) == set(repro.FP_SUITE)

    def test_suite_results_rejects_unknown_suite(self):
        # Regression: any non-"int" suite name used to silently run the
        # FP suite, so e.g. suite="integer" returned the wrong results.
        with pytest.raises(ValueError, match="unknown suite 'integer'"):
            suite_results(repro.BASELINE, suite="integer")


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "espresso" in out and "su2cor" in out

    def test_run(self, capsys):
        assert cli_main(["run", "sc", "--scale", "8", "--model", "small"]) == 0
        out = capsys.readouterr().out
        assert "CPI" in out

    def test_cost(self, capsys):
        assert cli_main(["cost", "--model", "large", "--issue", "1"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out

    def test_run_with_knobs(self, capsys):
        assert (
            cli_main(
                ["run", "sc", "--scale", "8", "--latency", "35",
                 "--no-prefetch", "--mshrs", "4"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "L35" in out
