"""Experiment-driver tests: every paper table/figure regenerates, with
the paper's qualitative findings holding at reduced workload scale."""

import pytest

from repro.core.config import FPIssuePolicy
from repro.experiments import (
    fig1_clock_trend,
    fig4_issue,
    fig5_prefetch,
    fig6_stalls,
    fig7_mshr,
    fig8_design_space,
    fig9_fpu,
    hit_rates,
    prefetch_tables,
    table2_cost,
    table6_fpu_issue,
    writecache_table,
)
from repro.core.stats import StallKind

# One shared small factor keeps this module fast while preserving shapes.
FACTOR = 0.3


class TestSuiteStats:
    def test_rejects_unknown_suite(self):
        # Regression: any non-"int" name silently ran the FP suite.
        from repro.core.config import BASELINE
        from repro.experiments.common import suite_stats

        with pytest.raises(ValueError, match="unknown suite"):
            suite_stats(BASELINE, suite="integer", factor=0.1)


@pytest.fixture(scope="module")
def fig4_result():
    return fig4_issue.run(latencies=(17, 35), factor=FACTOR)


@pytest.fixture(scope="module")
def table6_result():
    return table6_fpu_issue.run(factor=FACTOR)


class TestFig1:
    def test_growth_near_forty_percent(self):
        result = fig1_clock_trend.run()
        assert 25 <= result.trend.growth_percent <= 55

    def test_prediction_monotone(self):
        result = fig1_clock_trend.run()
        assert result.trend.predict(1994) > result.trend.predict(1984)

    def test_fastest_slowest_gap(self):
        result = fig1_clock_trend.run()
        assert all(ratio >= 1.0 for ratio in result.ratios.values())

    def test_render(self):
        text = fig1_clock_trend.run().render()
        assert "Alpha" in text and "per year" in text


class TestTable2:
    def test_report_totals(self):
        report = table2_cost.run()
        assert report.total("small/single") < report.total("large/dual")
        assert "TOTAL" in report.render()


class TestFig4:
    def test_twelve_configurations(self, fig4_result):
        assert len(fig4_result.by_latency[17]) == 6
        assert len(fig4_result.by_latency[35]) == 6

    def test_dual_helps_baseline_and_large_at_17(self, fig4_result):
        assert fig4_result.dual_issue_gain(17, "baseline") > 0
        assert fig4_result.dual_issue_gain(17, "large") > 0

    def test_large_dual_is_best(self, fig4_result):
        points = fig4_result.by_latency[17]
        best = min(points, key=lambda p: p.cpi_avg)
        assert best.label == "large/dual"

    def test_single_baseline_beats_dual_small(self, fig4_result):
        """Paper: 'The single issue base model has a similar cost and much
        better performance than the dual issue small model.'"""
        base_single = fig4_result.summary(17, "baseline/single")
        small_dual = fig4_result.summary(17, "small/dual")
        assert base_single.cpi_avg < small_dual.cpi_avg
        assert abs(base_single.cost - small_dual.cost) < 5000

    def test_latency_35_worse_than_17(self, fig4_result):
        for label in ("small/dual", "baseline/dual", "large/dual"):
            assert (
                fig4_result.summary(35, label).cpi_avg
                > fig4_result.summary(17, label).cpi_avg
            )

    def test_min_avg_max_ordering(self, fig4_result):
        for points in fig4_result.by_latency.values():
            for point in points:
                assert point.cpi_min <= point.cpi_avg <= point.cpi_max

    def test_render(self, fig4_result):
        assert "17-cycle" in fig4_result.render()


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5_prefetch.run(latencies=(17, 35), factor=FACTOR)

    def test_prefetch_helps_every_model(self, result):
        for model in ("small", "baseline", "large"):
            assert result.prefetch_gain(17, model) > 0

    def test_prefetch_helps_more_at_35(self, result):
        """Paper: baseline gains ~11% at 17 cycles, ~19% at 35."""
        assert result.prefetch_gain(35, "baseline") > result.prefetch_gain(
            17, "baseline"
        )

    def test_worst_case_improves(self, result):
        assert result.worst_case_gain(17, "baseline") > 0

    def test_render(self, result):
        assert "prefetch" in result.render()


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6_stalls.run(factor=FACTOR)

    def test_small_model_is_lsu_bound(self, result):
        """Paper: 'In the small model, most cycles are spent waiting for
        data from the LSU.'"""
        assert result.dominant("small") is StallKind.LSU

    def test_base_and_large_not_rob_bound(self, result):
        """Paper: performance is not very sensitive to ROB size in the
        base and large models."""
        for model in ("baseline", "large"):
            penalties = result.penalties[model]
            assert penalties[StallKind.ROB_FULL] <= penalties[StallKind.LOAD]

    def test_total_cpi_ordering(self, result):
        assert (
            result.total_cpi["small"]
            > result.total_cpi["baseline"]
            > result.total_cpi["large"]
        )

    def test_render(self, result):
        assert "stall" in result.render()


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7_mshr.run(factor=FACTOR, sweep_counts=(1, 2, 4))

    def test_small_gains_most_from_second_mshr(self, result):
        gains = {m: result.gain_from_variation(m) for m in ("small", "baseline")}
        assert gains["small"] > 0
        assert gains["small"] >= gains["baseline"]

    def test_large_loses_when_reduced(self, result):
        assert result.gain_from_variation("large") <= 0

    def test_best_at_four(self, result):
        """Paper: 'All models get highest performance when 4 MSHR entries
        are available.'"""
        for model in ("small", "baseline", "large"):
            sweep = result.sweep[model]
            assert sweep[4] <= sweep[1]
            assert result.best_count(model) in (2, 4)

    def test_render(self, result):
        assert "MSHR" in result.render()


class TestPrefetchTables:
    @pytest.fixture(scope="class")
    def result(self):
        return prefetch_tables.run(factor=FACTOR)

    def test_instruction_stream_hits_more_than_data(self, result):
        """Paper: integer averages ~58% (I) vs ~12% (D)."""
        assert result.average("I") > result.average("D")

    def test_all_benchmarks_present(self, result):
        for table in (result.instruction, result.data):
            for model_row in table.values():
                assert len(model_row) == 6

    def test_rates_are_rates(self, result):
        for table in (result.instruction, result.data):
            for row in table.values():
                for rate in row.values():
                    assert 0.0 <= rate <= 1.0

    def test_render(self, result):
        text = result.render()
        assert "Table 3" in text and "Table 4" in text


class TestTable5:
    @pytest.fixture(scope="class")
    def result(self):
        return writecache_table.run(factor=FACTOR)

    def test_hit_rate_grows_with_size(self, result):
        """Paper: hit rates rise from the small to the large model."""
        assert (
            result.average_hit_rate("small")
            < result.average_hit_rate("large")
        )

    def test_traffic_reduction_grows_with_size(self, result):
        """Paper: store traffic drops to 44% / 30% / 22% of stores."""
        assert (
            result.traffic_ratio["small"]
            > result.traffic_ratio["baseline"]
            > result.traffic_ratio["large"]
        )

    def test_traffic_is_a_reduction(self, result):
        assert result.traffic_ratio["small"] < 1.0

    def test_render(self, result):
        assert "write-cache" in result.render()


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8_design_space.run(factor=FACTOR)

    def test_single_mshr_points_are_bad(self, result):
        """Paper: points labeled A lie well above comparable systems."""
        a_points = result.marked("A")
        assert a_points
        others = [p for p in result.points if p.marker != "A"]
        avg_a = sum(p.cpi for p in a_points) / len(a_points)
        avg_others = sum(p.cpi for p in others) / len(others)
        assert avg_a > avg_others

    def test_large_plateau(self, result):
        """Paper: point B sits on a plateau; E achieves nearly the same
        CPI at much lower cost."""
        b = result.marked("B")[0]
        e = result.marked("E")[0]
        assert e.cost < b.cost
        assert e.cpi <= b.cpi * 1.15

    def test_prefetch_pair(self, result):
        c = result.marked("C")[0]
        d = result.marked("D")[0]
        assert d.cpi < c.cpi  # D adds prefetching

    def test_render(self, result):
        assert "Figure 8" in result.render()

    def test_frontier_is_nondominated_and_cost_sorted(self, result):
        frontier = result.frontier()
        assert frontier
        costs = [p.cost for p in frontier]
        assert costs == sorted(costs)
        live = [p for p in result.points if p.cpi > 0]
        for point in frontier:
            assert not any(
                other.cost < point.cost and other.cpi < point.cpi
                for other in live
            )

    def test_render_tags_frontier_points(self, result):
        text = result.render()
        assert "frontier" in text
        tagged = [
            line for line in text.splitlines() if line.rstrip().endswith("*")
        ]
        assert len(tagged) == len(result.frontier())


class TestHitRates:
    def test_near_paper_values(self):
        result = hit_rates.run(factor=FACTOR)
        assert result.icache_average == pytest.approx(0.965, abs=0.03)
        assert result.dcache_average == pytest.approx(0.954, abs=0.05)

    def test_render(self):
        assert "96.50" in hit_rates.run(factor=FACTOR).render()


class TestTable6:
    def test_policy_ordering(self, table6_result):
        """Better policies never hurt: in-order >= single >= dual CPI."""
        for name, row in table6_result.cpi.items():
            assert row[FPIssuePolicy.IN_ORDER_COMPLETION] >= row[
                FPIssuePolicy.SINGLE_ISSUE
            ] * 0.999
            assert row[FPIssuePolicy.SINGLE_ISSUE] >= row[
                FPIssuePolicy.DUAL_ISSUE
            ] * 0.999

    def test_average_gains_in_paper_ballpark(self, table6_result):
        """Paper: 12% for single OOC, 21% for dual."""
        assert 0.05 <= table6_result.gain(FPIssuePolicy.SINGLE_ISSUE) <= 0.35
        assert 0.08 <= table6_result.gain(FPIssuePolicy.DUAL_ISSUE) <= 0.40

    def test_spice_is_flat(self, table6_result):
        """Paper: spice2g6 barely moves (1.219 / 1.204 / 1.203)."""
        row = table6_result.cpi["spice2g6"]
        spread = (
            row[FPIssuePolicy.IN_ORDER_COMPLETION]
            - row[FPIssuePolicy.DUAL_ISSUE]
        )
        assert spread / row[FPIssuePolicy.DUAL_ISSUE] < 0.12

    def test_nasa7_gains_big(self, table6_result):
        """Paper: nasa7 shows the largest policy gains."""
        row = table6_result.cpi["nasa7"]
        gain = 1 - row[FPIssuePolicy.DUAL_ISSUE] / row[
            FPIssuePolicy.IN_ORDER_COMPLETION
        ]
        assert gain > 0.2

    def test_render(self, table6_result):
        assert "Average" in table6_result.render()


class TestFig9:
    @pytest.fixture(scope="class")
    def queues(self):
        return fig9_fpu.run(
            factor=FACTOR,
            sweeps=("a_instruction_queue", "b_load_queue", "f_div_latency",
                    "g_cvt_latency"),
        )

    def test_instruction_queue_flattens(self, queues):
        """Paper: single-issue performance is flat past 3 IQ entries."""
        points = queues.sweeps["a_instruction_queue"]
        cpis = {p.value: p.cpi_avg for p in points}
        assert cpis[1] >= cpis[3] * 0.999
        assert abs(cpis[3] - cpis[5]) / cpis[5] < 0.05

    def test_load_queue_two_enough(self, queues):
        """Paper: two load-queue entries are needed; more adds little."""
        points = queues.sweeps["b_load_queue"]
        cpis = {p.value: p.cpi_avg for p in points}
        assert abs(cpis[2] - cpis[5]) / cpis[5] < 0.05

    def test_divide_latency_matters_most_for_ora(self, queues):
        points = queues.sweeps["f_div_latency"]
        fastest, slowest = points[0], points[-1]
        ora_change = slowest.per_benchmark["ora"] / fastest.per_benchmark["ora"]
        ear_change = slowest.per_benchmark["ear"] / fastest.per_benchmark["ear"]
        assert ora_change > ear_change

    def test_convert_latency_is_immaterial(self, queues):
        """Paper: conversion instructions have little impact."""
        assert queues.sensitivity("g_cvt_latency") < 0.02

    def test_costs_fall_with_latency(self, queues):
        points = queues.sweeps["f_div_latency"]
        costs = [p.cost for p in points]
        assert costs == sorted(costs, reverse=True)

    def test_depipelining(self, queues):
        """Paper: removing add/mul pipeline latches degrades CPI <5%;
        our mul-heavier kernels allow a little more."""
        assert 0.0 <= queues.depipelining_penalty() < 0.25

    def test_render(self, queues):
        assert "Figure 9" in queues.render()


class TestEmptyRuns:
    """Empty-trace runs are skipped and counted, never folded into CPI.

    Regression: a zero-instruction run used to contribute a 0.0 "CPI" to
    suite aggregates (and, once the result layer made empty CPIs NaN,
    would have poisoned every average it touched).
    """

    def test_cpi_summary_skips_and_counts(self):
        from repro.core.stats import SimStats
        from repro.experiments.common import CpiSummary

        live = SimStats(instructions=100, cycles=150)
        summary = CpiSummary.from_stats(
            "baseline", 0.0, {"espresso": live, "compress": SimStats()}
        )
        assert summary.empty_runs == 1
        assert summary.per_benchmark == {"espresso": 1.5}
        assert summary.cpi_min == summary.cpi_avg == summary.cpi_max == 1.5

    def test_all_empty_raises_naming_the_counter(self):
        from repro.core.stats import SimStats
        from repro.experiments.common import CpiSummary

        with pytest.raises(ValueError, match="empty_runs"):
            CpiSummary.from_stats(
                "baseline", 0.0, {"a": SimStats(), "b": SimStats()}
            )

    def test_suite_average_skips_empty(self):
        from repro.core.stats import SimStats
        from repro.experiments.common import suite_average_cpi

        stats = {
            "live": SimStats(instructions=10, cycles=30),
            "empty": SimStats(),
        }
        assert suite_average_cpi(stats) == 3.0
        with pytest.raises(ValueError, match="zero instructions"):
            suite_average_cpi({"empty": SimStats()})

    @pytest.fixture
    def empty_compress(self, monkeypatch):
        """One suite workload (compress) hands the sweep an empty trace."""
        from repro.experiments import common

        real = common.scaled_trace
        monkeypatch.setattr(
            common,
            "scaled_trace",
            lambda name, factor=1.0: (
                [] if name == "compress" else real(name, factor)
            ),
        )

    def test_full_sweep_and_report_flag_the_empty_run(
        self, empty_compress
    ):
        result = fig4_issue.run(latencies=(17,), factor=FACTOR)
        for summary in result.by_latency[17]:
            assert summary.empty_runs == 1
            assert "compress" not in summary.per_benchmark
        assert "nan" not in result.render().lower()

    def test_fig8_empty_trace_report(self, monkeypatch):
        monkeypatch.setattr(
            fig8_design_space, "scaled_trace", lambda name, factor=1.0: []
        )
        result = fig8_design_space.run(factor=FACTOR)
        assert result.empty_runs == len(result.points) > 0
        text = result.render()
        assert "(empty)" in text
        assert "empty runs skipped" in text
        assert "nan" not in text.lower()
        with pytest.raises(ValueError, match="empty_runs"):
            result.best()
