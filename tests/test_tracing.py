"""Host-side observability: span tracing, profiling, perf baselines.

The load-bearing tests: a traced sweep (serial or parallel) produces one
merged span tree whose worker-side spans are grafted under the right
attempt, retries appear as sibling attempts, and switching tracing off
leaves the sweep report byte-identical.  The perf observatory must
append schema-valid history records and exit 3 from ``perf --check``
when throughput regresses beyond the threshold.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core.config import BASELINE
from repro.experiments import cli
from repro.robustness.faults import FaultPlan
from repro.robustness.runner import ResilientRunner
from repro.telemetry import tracing
from repro.telemetry.baseline import (
    BaselineError,
    PerfHistory,
    RegressionCheck,
    git_sha,
    validate_record,
)
from repro.telemetry.profiling import PerfReport, profile_workload
from repro.telemetry.tracing import (
    SpanError,
    SpanTracer,
    load_chrome_trace,
    render_span_tree,
)


def _span_index(spans):
    return {span.span_id: span for span in spans}


def _by_name(spans, name):
    return [span for span in spans if span.name == name]


# --------------------------------------------------------------- span tracer


class TestSpanTracer:
    def test_with_block_nests_and_records(self):
        tracer = SpanTracer("t1")
        with tracer.span("outer", "test") as outer:
            with tracer.span("inner", "test", detail=7) as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None
        spans = tracer.spans()
        assert [s.name for s in spans] == ["inner", "outer"]
        inner, outer = spans
        assert inner.parent_id == outer.span_id
        assert inner.args["detail"] == 7
        assert outer.parent_id is None
        assert 0 <= outer.start <= inner.start
        assert inner.end <= outer.end

    def test_begin_finish_manual_mode_inherits_parent_track(self):
        tracer = SpanTracer()
        parent = tracer.begin("exp", "experiment", track=3)
        child = tracer.begin("att", "attempt", parent=parent)
        assert child.parent_id == parent.span_id
        assert child.track == 3
        tracer.finish(child)
        tracer.finish(parent)
        assert len(tracer.spans()) == 2
        # Manual mode never touches the thread stack.
        assert tracer.current() is None

    def test_annotate_merges_args(self):
        tracer = SpanTracer()
        with tracer.span("s", "test", a=1) as span:
            span.annotate(b=2, a=3)
        assert tracer.spans()[0].args == {"a": 3, "b": 2}

    def test_adopt_parents_other_threads_spans(self):
        tracer = SpanTracer()
        anchor = tracer.begin("anchor", "test")
        seen = {}

        def worker():
            with tracer.adopt(anchor):
                with tracer.span("child", "test") as child:
                    seen["parent"] = child.parent_id

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        tracer.finish(anchor)
        assert seen["parent"] == anchor.span_id
        # The adopting thread's stack is clean afterwards.
        assert tracer.current() is None

    def test_graft_rebases_reprefixes_and_reparents(self):
        parent_tracer = SpanTracer("shared")
        worker_tracer = SpanTracer("shared")
        with worker_tracer.span("root", "trace"):
            with worker_tracer.span("leaf", "trace"):
                pass
        records = worker_tracer.finished_records()

        attempt = parent_tracer.begin("attempt#1", "attempt", track=2)
        grafted = parent_tracer.graft(
            records, parent=attempt, offset=10.0, prefix=attempt.span_id
        )
        parent_tracer.finish(attempt)
        assert grafted == 2
        spans = _span_index(parent_tracer.spans())
        root = _by_name(spans.values(), "root")[0]
        leaf = _by_name(spans.values(), "leaf")[0]
        # Orphan root re-parented onto the attempt; child lineage kept.
        assert root.parent_id == attempt.span_id
        assert leaf.parent_id == root.span_id
        assert root.span_id.startswith(f"{attempt.span_id}/")
        # Worker-relative times rebased by the offset, track adopted.
        assert root.start >= 10.0
        assert leaf.start >= root.start
        assert root.track == 2

    def test_module_probe_is_noop_without_tracer(self):
        assert tracing.current_tracer() is None
        with tracing.span("anything", "test") as span:
            assert span is None

    def test_use_tracer_installs_and_restores(self):
        tracer = SpanTracer()
        with tracing.use_tracer(tracer):
            assert tracing.current_tracer() is tracer
            with tracing.span("probed", "test") as span:
                assert span is not None
        assert tracing.current_tracer() is None
        assert [s.name for s in tracer.spans()] == ["probed"]


# ------------------------------------------------------------- chrome export


class TestChromeExport:
    def test_round_trip_preserves_tree_and_args(self, tmp_path):
        tracer = SpanTracer("rt")
        with tracer.span("sweep", "sweep", factor=0.5):
            with tracer.span("experiment:fig4", "experiment", status="ok"):
                pass
        path = tracer.write_chrome(tmp_path / "trace.json")
        document = json.loads(path.read_text())
        assert document["otherData"]["trace_id"] == "rt"

        restored = _span_index(load_chrome_trace(path))
        assert len(restored) == 2
        original = _span_index(tracer.spans())
        for span_id, span in original.items():
            twin = restored[span_id]
            assert twin.name == span.name
            assert twin.parent_id == span.parent_id
            assert twin.args == span.args
            assert twin.duration == pytest.approx(span.duration, abs=1e-5)

    def test_load_rejects_non_span_documents(self, tmp_path):
        not_chrome = tmp_path / "nope.json"
        not_chrome.write_text(json.dumps({"hello": 1}))
        with pytest.raises(SpanError, match="traceEvents"):
            load_chrome_trace(not_chrome)

        foreign = tmp_path / "foreign.json"
        foreign.write_text(
            json.dumps(
                {"traceEvents": [{"ph": "X", "name": "x", "ts": 0, "dur": 1}]}
            )
        )
        with pytest.raises(SpanError, match="span_id"):
            load_chrome_trace(foreign)

        garbage = tmp_path / "garbage.json"
        garbage.write_text("{nope")
        with pytest.raises(SpanError, match="unreadable"):
            load_chrome_trace(garbage)

    def test_render_span_tree_shows_notes_and_folds(self):
        tracer = SpanTracer()
        with tracer.span("sweep", "sweep"):
            with tracer.span("experiment:a", "experiment") as exp:
                exp.annotate(status="ok", worker="pid-1")
        text = render_span_tree(tracer.spans())
        assert "sweep" in text
        assert "experiment:a" in text
        assert "[status=ok, worker=pid-1]" in text
        assert "total" in text and "self" in text
        # A large min_duration folds everything away.
        assert render_span_tree(tracer.spans(), min_duration=1e6) == "(no spans)"


# ------------------------------------------------------------- runner spans


class _FakeResult:
    def __init__(self, text="fake-report"):
        self.text = text

    def render(self):
        return self.text


def _ok(factor):
    return _FakeResult(f"ok at {factor}")


def _par_trace_user(factor):
    from repro.workloads.registry import get_trace

    return _FakeResult(f"trace of {len(get_trace('sc', 9))} records")


def _par_slow(factor):
    time.sleep(0.3)
    return _FakeResult("slow done")


class TestRunnerSpans:
    def test_serial_sweep_records_retry_attempt_siblings(self, tmp_path):
        tracer = SpanTracer()
        plan = FaultPlan().add("flaky", "transient", count=1)
        runner = ResilientRunner(
            tmp_path / "m.json",
            fault_plan=plan,
            retries=2,
            backoff=0.0,
            tracer=tracer,
        )
        trace_path = tmp_path / "sweep.json"
        _results, report = runner.run(
            {"flaky": _ok, "solid": _ok}, trace_out=trace_path
        )
        assert report.ok
        spans = tracer.spans()
        index = _span_index(spans)

        (sweep,) = _by_name(spans, "sweep")
        assert sweep.parent_id is None
        experiments = {
            s.name: s for s in spans if s.category == "experiment"
        }
        assert set(experiments) == {"experiment:flaky", "experiment:solid"}
        for exp in experiments.values():
            assert exp.parent_id == sweep.span_id
        # Distinct Perfetto rows per experiment, sweep on row 0.
        assert sweep.track == 0
        assert {e.track for e in experiments.values()} == {1, 2}

        flaky = experiments["experiment:flaky"]
        attempts = sorted(
            (s for s in spans if s.category == "attempt"
             and s.parent_id == flaky.span_id),
            key=lambda s: s.start,
        )
        assert [a.name for a in attempts] == ["attempt#1", "attempt#2"]
        assert attempts[0].args["status"] == "failed"
        assert "TransientFault" in attempts[0].args["error"]
        assert attempts[1].args["status"] == "ok"
        assert flaky.args["status"] == "ok"
        assert flaky.args["attempts"] == 2

        # Checkpoint writes traced under the sweep lineage.
        checkpoints = _by_name(spans, "checkpoint")
        assert checkpoints
        for checkpoint in checkpoints:
            assert checkpoint.parent_id in index

        # The Chrome export landed and the manifest points at it.
        assert trace_path.exists()
        manifest = json.loads((tmp_path / "m.json").read_text())
        assert manifest["trace"] == str(trace_path)
        restored = load_chrome_trace(trace_path)
        assert len(restored) == len(spans)

    def test_timeout_attempt_annotated(self, tmp_path):
        tracer = SpanTracer()

        def hang(factor):
            time.sleep(10)

        runner = ResilientRunner(
            tmp_path / "m.json", timeout=0.2, tracer=tracer
        )
        _results, report = runner.run({"hang": hang})
        assert report.outcomes[0].status == "timeout"
        (attempt,) = (s for s in tracer.spans() if s.category == "attempt")
        assert attempt.args["status"] == "timeout"

    def test_tracing_off_report_is_byte_identical(self, tmp_path):
        experiments = {"a": _ok, "b": _ok}
        _r1, plain = ResilientRunner(tmp_path / "p.json").run(experiments)
        _r2, traced = ResilientRunner(
            tmp_path / "t.json", tracer=SpanTracer()
        ).run(experiments)
        assert plain.render() == traced.render()

    def test_parallel_sweep_merges_worker_spans(self, tmp_path):
        tracer = SpanTracer()
        runner = ResilientRunner(
            tmp_path / "m.json", jobs=2, tracer=tracer
        )
        trace_path = tmp_path / "sweep.json"
        _results, report = runner.run(
            {"left": _par_trace_user, "right": _par_trace_user},
            trace_out=trace_path,
        )
        assert report.ok
        spans = tracer.spans()

        experiments = {
            s.name: s for s in spans if s.category == "experiment"
        }
        assert set(experiments) == {"experiment:left", "experiment:right"}
        assert {e.track for e in experiments.values()} == {1, 2}
        (sweep,) = _by_name(spans, "sweep")
        for exp in experiments.values():
            assert exp.parent_id == sweep.span_id
            assert exp.args["status"] == "ok"
            assert exp.args["worker"].startswith("pid-")

        attempts = [s for s in spans if s.category == "attempt"]
        assert len(attempts) == 2
        for attempt in attempts:
            assert attempt.args["worker"].startswith("pid-")
            assert attempt.args["status"] == "ok"
            # Worker-side spans were grafted under this attempt: ids are
            # prefixed with the attempt's id and lineage reaches it.
            grafted = [
                s
                for s in spans
                if s.span_id.startswith(f"{attempt.span_id}/")
            ]
            assert grafted, "no worker spans grafted under the attempt"
            assert any(s.name == "cache_lookup" for s in grafted)
            for span in grafted:
                assert span.start >= attempt.start - 0.25
                assert span.track == attempt.track

        restored = load_chrome_trace(trace_path)
        assert len(restored) == len(spans)

    def test_parallel_retry_attempts_are_siblings(self, tmp_path):
        tracer = SpanTracer()
        plan = FaultPlan().add("flaky", "transient", count=1)
        runner = ResilientRunner(
            tmp_path / "m.json",
            jobs=2,
            fault_plan=plan,
            retries=2,
            backoff=0.0,
            tracer=tracer,
        )
        _results, report = runner.run({"flaky": _ok, "solid": _ok})
        assert report.ok
        spans = tracer.spans()
        flaky = next(
            s for s in spans if s.name == "experiment:flaky"
        )
        attempts = sorted(
            (s for s in spans if s.category == "attempt"
             and s.parent_id == flaky.span_id),
            key=lambda s: s.start,
        )
        assert len(attempts) == 2
        assert attempts[0].args["status"] == "failed"
        assert attempts[1].args["status"] == "ok"

    def test_parallel_tracing_off_report_identical(self, tmp_path):
        import re

        experiments = {"left": _par_trace_user, "right": _par_trace_user}
        _r1, plain = ResilientRunner(tmp_path / "p.json", jobs=2).run(
            experiments
        )
        _r2, traced = ResilientRunner(
            tmp_path / "t.json", jobs=2, tracer=SpanTracer()
        ).run(experiments)

        def normalize(report):
            # Worker pids and wall times vary run to run with or
            # without tracing; everything else must match exactly.
            text = re.sub(r"pid-\d+", "pid-N", report.render())
            return re.sub(r"\d+\.\d+s", "T", text)

        assert normalize(plain) == normalize(traced)


# ------------------------------------------------------------ perf baseline


def _record(**overrides):
    base = {
        "git_sha": "abc123",
        "recorded_at": 1722950000.0,
        "workload": "compress",
        "factor": 0.05,
        "config": "baseline/dual/L17",
        "instructions": 40000,
        "sim_cycles": 90000,
        "wall_seconds": 0.5,
        "cycles_per_second": 180000.0,
        "instructions_per_second": 80000.0,
        "cache_hits": 1,
        "cache_misses": 0,
    }
    base.update(overrides)
    return base


class TestPerfHistory:
    def test_validate_record_accepts_good(self):
        assert validate_record(_record()) == _record()

    @pytest.mark.parametrize(
        "mutation, match",
        [
            ({"git_sha": None}, "git_sha"),
            ({"sim_cycles": 1.5}, "sim_cycles"),
            ({"cache_hits": True}, "cache_hits"),
            ({"wall_seconds": -1.0}, "wall_seconds"),
        ],
    )
    def test_validate_record_rejects_bad_fields(self, mutation, match):
        with pytest.raises(BaselineError, match=match):
            validate_record(_record(**mutation))

    def test_validate_record_rejects_missing_field(self):
        record = _record()
        del record["workload"]
        with pytest.raises(BaselineError, match="workload"):
            validate_record(record)

    def test_append_and_load_round_trip(self, tmp_path):
        history = PerfHistory(tmp_path / "BENCH_history.json")
        assert history.records() == []
        history.append(_record())
        history.append(_record(git_sha="def456"))
        records = history.records()
        assert len(records) == 2
        assert records[1]["git_sha"] == "def456"
        assert history.baseline() is None

    def test_corrupt_history_is_an_error_not_data_loss(self, tmp_path):
        path = tmp_path / "BENCH_history.json"
        path.write_text("{broken")
        with pytest.raises(BaselineError, match="unreadable"):
            PerfHistory(path).records()

    def test_compare_requires_baseline(self, tmp_path):
        history = PerfHistory(tmp_path / "h.json")
        history.append(_record())
        with pytest.raises(BaselineError, match="no baseline"):
            history.compare(_record())

    def test_compare_refuses_cross_series(self, tmp_path):
        history = PerfHistory(tmp_path / "h.json")
        history.seed_baseline(_record())
        with pytest.raises(BaselineError, match="workload"):
            history.compare(_record(workload="li"))
        with pytest.raises(BaselineError, match="factor"):
            history.compare(_record(factor=0.1))

    def test_regression_thresholds(self, tmp_path):
        history = PerfHistory(tmp_path / "h.json")
        history.seed_baseline(_record(cycles_per_second=100000.0))
        fine = history.compare(_record(cycles_per_second=85000.0))
        assert not fine.regressed
        bad = history.compare(_record(cycles_per_second=75000.0))
        assert bad.regressed
        assert "REGRESSION" in bad.render()
        assert bad.ratio == pytest.approx(0.75)

    def test_regression_check_math(self):
        check = RegressionCheck(
            baseline_throughput=200.0,
            current_throughput=100.0,
            threshold=0.2,
        )
        assert check.ratio == pytest.approx(0.5)
        assert check.delta_percent == pytest.approx(-50.0)
        assert check.regressed

    def test_git_sha_smoke(self):
        sha = git_sha()
        assert isinstance(sha, str) and sha

    def test_trace_path_field_optional_but_validated(self):
        validate_record(_record())  # absent is fine (legacy records)
        validate_record(_record(trace_path="prepared"))
        validate_record(_record(trace_path="tuples"))
        with pytest.raises(BaselineError, match="trace_path"):
            validate_record(_record(trace_path="columns"))
        with pytest.raises(BaselineError, match="trace_path"):
            validate_record(_record(trace_path=7))

    def test_compare_refuses_cross_trace_path(self, tmp_path):
        history = PerfHistory(tmp_path / "h.json")
        history.seed_baseline(_record(trace_path="tuples"))
        with pytest.raises(BaselineError, match="trace_path"):
            history.compare(_record(trace_path="prepared"))
        # Same path compares fine.
        assert not history.compare(_record(trace_path="tuples")).regressed

    def test_legacy_records_default_to_tuples_path(self, tmp_path):
        # A baseline written before the field existed is a tuple-path
        # series: it may be compared against explicit tuple-path runs
        # but never against prepared-path runs.
        history = PerfHistory(tmp_path / "h.json")
        history.seed_baseline(_record())
        assert not history.compare(_record(trace_path="tuples")).regressed
        with pytest.raises(BaselineError, match="trace_path"):
            history.compare(_record(trace_path="prepared"))


# --------------------------------------------------------------- profiling


class TestProfiling:
    def test_profile_workload_smoke(self):
        report = profile_workload(
            "compress", BASELINE, factor=0.02, sample=False
        )
        assert isinstance(report, PerfReport)
        assert report.instructions > 0
        assert report.sim_cycles > 0
        assert report.wall_seconds > 0
        assert report.cycles_per_second > 0
        record = report.as_record(git_sha="abc", recorded_at=1.0)
        assert validate_record(record) == record
        text = report.render()
        assert "sim-cycles/s" in text

    def test_trace_path_recorded_and_identical_stats(self):
        prepared = profile_workload(
            "compress", BASELINE, factor=0.02, sample=False
        )
        tuples = profile_workload(
            "compress",
            BASELINE,
            factor=0.02,
            sample=False,
            trace_path="tuples",
        )
        assert prepared.trace_path == "prepared"
        assert tuples.trace_path == "tuples"
        rec = prepared.as_record(git_sha="abc", recorded_at=1.0)
        assert rec["trace_path"] == "prepared"
        # Representation changes wall time only, never simulation output.
        assert prepared.sim_cycles == tuples.sim_cycles
        assert prepared.instructions == tuples.instructions
        assert "[tuples trace path, scalar kernel]" in tuples.render()

    def test_trace_path_validated(self):
        with pytest.raises(ValueError, match="trace_path"):
            profile_workload(
                "compress", BASELINE, factor=0.02, trace_path="rows"
            )

    def test_cprofile_opt_in(self):
        report = profile_workload(
            "compress",
            BASELINE,
            factor=0.02,
            sample=False,
            use_cprofile=True,
            top=5,
        )
        assert report.cprofile_top
        assert "cumulative" in report.render()


# --------------------------------------------------------------- CLI verbs


class TestPerfCli:
    def test_perf_appends_and_seeds(self, tmp_path, capsys):
        history_path = tmp_path / "BENCH_history.json"
        code = cli.main(
            [
                "perf", "compress", "--factor", "0.02", "--no-sample",
                "--history", str(history_path), "--seed-baseline",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sim-cycles/s" in out
        history = PerfHistory(history_path)
        assert len(history.records()) == 1
        assert history.baseline() is not None
        assert validate_record(history.records()[0])

    def test_perf_check_exits_3_on_injected_regression(self, tmp_path, capsys):
        history_path = tmp_path / "BENCH_history.json"
        assert cli.main(
            [
                "perf", "compress", "--factor", "0.02", "--no-sample",
                "--history", str(history_path), "--seed-baseline",
            ]
        ) == 0
        # Inject a >20% regression by inflating the stored baseline.
        history = PerfHistory(history_path)
        document = history.load()
        document["baseline"]["cycles_per_second"] *= 100.0
        history_path.write_text(json.dumps(document))
        code = cli.main(
            [
                "perf", "compress", "--factor", "0.02", "--no-sample",
                "--history", str(history_path), "--check",
            ]
        )
        assert code == 3
        assert "REGRESSION" in capsys.readouterr().out

    def test_perf_trace_path_tagged_and_cross_path_check_refused(
        self, tmp_path, capsys
    ):
        history_path = tmp_path / "BENCH_history.json"
        assert cli.main(
            [
                "perf", "compress", "--factor", "0.02", "--no-sample",
                "--history", str(history_path), "--seed-baseline",
                "--trace-path", "tuples",
            ]
        ) == 0
        history = PerfHistory(history_path)
        assert history.records()[0]["trace_path"] == "tuples"
        assert history.baseline()["trace_path"] == "tuples"
        capsys.readouterr()
        # A prepared-path run may append to the history but --check must
        # refuse to judge it against the tuple-path baseline.
        code = cli.main(
            [
                "perf", "compress", "--factor", "0.02", "--no-sample",
                "--history", str(history_path), "--check",
                "--trace-path", "prepared",
            ]
        )
        assert code == 2
        assert "trace_path" in capsys.readouterr().err
        assert history.records()[1]["trace_path"] == "prepared"

    def test_perf_check_without_baseline_exits_2(self, tmp_path, capsys):
        code = cli.main(
            [
                "perf", "compress", "--factor", "0.02", "--no-sample",
                "--history", str(tmp_path / "h.json"), "--check",
            ]
        )
        assert code == 2
        assert "no baseline" in capsys.readouterr().err

    def test_spans_verb_renders_tree(self, tmp_path, capsys):
        tracer = SpanTracer()
        with tracer.span("sweep", "sweep"):
            with tracer.span("experiment:x", "experiment"):
                pass
        path = tracer.write_chrome(tmp_path / "trace.json")
        assert cli.main(["spans", str(path)]) == 0
        out = capsys.readouterr().out
        assert "experiment:x" in out
        assert "total" in out

    def test_spans_verb_rejects_foreign_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert cli.main(["spans", str(bad)]) == 1
        assert "traceEvents" in capsys.readouterr().err

    def test_experiments_trace_flag_end_to_end(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        trace_path = tmp_path / "sweep-trace.json"
        code = cli.main(
            [
                "experiments", "--factor", "0.02", "--only", "fig1",
                "--out", str(out_dir), "--trace", str(trace_path),
            ]
        )
        assert code == 0
        spans = load_chrome_trace(trace_path)
        names = {s.name for s in spans}
        assert "sweep" in names
        assert "experiment:fig1" in names
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert manifest["trace"] == str(trace_path)
