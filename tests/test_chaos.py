"""Chaos harness: every injected failure either recovers byte-identically
or degrades to an explicit, documented partial result.

Organised by boundary, mirroring docs/ROBUSTNESS.md's failure-mode
matrix: plan parsing, cache integrity (checksums / quarantine), injected
filesystem faults, pre-run disk corruption, pool faults (kill / hang /
straggler), torn checkpoint manifests, graceful SIGINT/SIGTERM shutdown,
eager environment validation, and concurrent cache eviction.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.experiments.exit_codes import (
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_PARTIAL,
    EXIT_USAGE,
    sweep_exit_code,
)
from repro.robustness import chaos
from repro.robustness.chaos import ChaosError, ChaosFault, ChaosPlan
from repro.robustness.faults import FaultPlan
from repro.robustness.runner import ExperimentOutcome, ResilientRunner, RunReport
from repro.robustness.validation import (
    EnvValidationError,
    validate_environment,
)
from repro.workloads import trace_cache
from repro.workloads.trace_cache import TraceCache


@pytest.fixture(autouse=True)
def _no_leaked_chaos():
    """No chaos plan ever leaks into another test."""
    yield
    chaos.deactivate()


def _array(seed: int = 0, records: int = 64) -> np.ndarray:
    """A structurally valid (n, 6) trace array with seed-dependent bytes."""
    base = np.zeros((records, 6), dtype=np.int64)
    base[:, 0] = 4096 + 4 * np.arange(records)  # pc
    base[:, 1] = 0  # kind
    base[:, 2] = (seed + np.arange(records)) % 30 + 1  # dst
    base[:, 3:5] = -1
    return base


# --------------------------------------------------------------------------
# Plan parsing and compilation
# --------------------------------------------------------------------------


class TestChaosPlan:
    def test_parse_full_grammar(self):
        plan = ChaosPlan.parse(
            "kill:fig4:2, bitflip:*, enospc:cache.store, hang:h:1:9.5",
            seed=7,
        )
        kinds = [f.kind for f in plan.faults]
        assert kinds == ["kill", "bitflip", "enospc", "hang"]
        assert plan.seed == 7
        assert plan.faults[0].count == 2
        assert plan.faults[3].seconds == 9.5

    @pytest.mark.parametrize(
        "spec, match",
        [
            ("explode", "unknown chaos kind"),
            ("enospc:nowhere", "fault site"),
            ("kill:a:0", "count"),
            ("hang:a:1:-3", "seconds"),
            ("kill:a:x", "kill:a:x"),
            ("kill:a:1:2:3", "expected"),
            ("", "names no faults"),
        ],
    )
    def test_bad_specs_rejected(self, spec, match):
        with pytest.raises(ChaosError, match=match):
            ChaosPlan.parse(spec)

    def test_fs_kind_requires_site_target(self):
        with pytest.raises(ChaosError, match="cache.store"):
            ChaosFault(kind="eio", target="*")

    def test_pool_faults_compile_to_fault_plan(self):
        plan = ChaosPlan.parse("kill:a, straggler:b:1:0.5, hang:c:1:30")
        compiled = plan.fault_plan(["a", "b", "c", "d"])
        assert compiled.faults["a"].kind == "kill"
        assert compiled.faults["b"].kind == "straggler"
        assert compiled.faults["c"].kind == "timeout"  # hang IS a sleep
        assert "d" not in compiled.faults

    def test_star_target_expands_to_all_experiments(self):
        compiled = ChaosPlan.parse("straggler:*:1:0.1").fault_plan(["x", "y"])
        assert set(compiled.faults) == {"x", "y"}

    def test_disk_only_plan_has_no_fault_plan(self):
        assert ChaosPlan.parse("bitflip:*").fault_plan(["a"]) is None

    def test_plan_is_picklable_for_pool_workers(self):
        plan = ChaosPlan.parse("kill:a,enospc:cache.store", seed=3)
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_fs_budgets_per_site(self):
        plan = ChaosPlan.parse("enospc:cache.store:3, eio:manifest.save")
        budgets = plan.fs_budgets()
        assert budgets["cache.store"]["remaining"] == 3
        assert budgets["manifest.save"]["kind"] == "eio"


# --------------------------------------------------------------------------
# Cache integrity: checksums, quarantine, self-heal
# --------------------------------------------------------------------------


class TestCacheIntegrity:
    def test_store_writes_checksum_sidecar(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.store("w", 4, _array())
        path = cache.path_for("w", 4)
        sidecar = cache.sidecar_for(path)
        assert sidecar.exists()
        crc_hex, size = sidecar.read_text().split()
        assert int(size) == path.stat().st_size
        assert len(crc_hex) >= 8

    def test_bitflip_detected_quarantined_and_rebuilt(self, tmp_path):
        writer = TraceCache(tmp_path)
        original = _array(seed=5)
        writer.store("w", 4, original)
        path = writer.path_for("w", 4)
        assert chaos.bitflip_file(path, seed=1)

        reader = TraceCache(tmp_path)  # fresh memo: simulates a new process
        assert reader.load("w", 4) is None
        assert reader.checksum_failures == 1
        assert reader.quarantined == 1
        assert not path.exists()
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert any(entry.name == path.name for entry in quarantined)

        # Rebuild: the next store re-creates the entry, byte-identical.
        reader.store("w", 4, original)
        healed = reader.load("w", 4)
        assert healed is not None
        assert np.array_equal(np.asarray(healed.array), original)

    def test_checksum_failure_emits_correlated_json_log(self, tmp_path):
        """A bitflipped entry produces a parseable structured log line
        carrying the active trace_id (docs/OBSERVABILITY.md)."""
        from repro.telemetry import logging as structlog
        from repro.telemetry import tracing
        from repro.telemetry.logging import read_log
        from repro.telemetry.tracing import SpanTracer

        writer = TraceCache(tmp_path / "cache")
        writer.store("w", 4, _array(seed=5))
        path = writer.path_for("w", 4)
        assert chaos.bitflip_file(path, seed=1)

        log_path = tmp_path / "log.jsonl"
        structlog.configure(str(log_path))
        tracer = SpanTracer("cafecafe0001")
        tracing.set_tracer(tracer)
        try:
            with tracer.span("experiment", "chaos-smoke"):
                reader = TraceCache(tmp_path / "cache")
                assert reader.load("w", 4) is None
        finally:
            tracing.set_tracer(None)
            structlog.shutdown()

        records = read_log(log_path)  # every line must be valid JSON
        events = [r["event"] for r in records]
        assert "cache.checksum_failure" in events
        assert "cache.quarantined" in events
        failure = next(
            r for r in records if r["event"] == "cache.checksum_failure"
        )
        assert failure["component"] == "trace_cache"
        assert failure["level"] == "WARNING"
        assert failure["path"] == path.name
        assert failure["want_crc"] != failure["got_crc"]
        assert failure["trace_id"] == "cafecafe0001"
        assert failure["span_id"]

    def test_truncation_detected_as_corruption(self, tmp_path):
        writer = TraceCache(tmp_path)
        writer.store("w", 4, _array())
        path = writer.path_for("w", 4)
        assert chaos.truncate_file(path, seed=2)
        reader = TraceCache(tmp_path)
        assert reader.load("w", 4) is None
        assert reader.checksum_failures == 1

    def test_stale_v1_never_shadows_v2(self, tmp_path):
        cache = TraceCache(tmp_path)
        original = _array(seed=9)
        cache.store("w", 4, original)
        v1 = chaos.plant_stale_v1(cache.path_for("w", 4))
        assert v1 is not None and v1.exists()
        loaded = TraceCache(tmp_path).load("w", 4)
        assert np.array_equal(np.asarray(loaded.array), original)

    def test_legacy_entry_gets_sidecar_backfilled(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.store("w", 4, _array())
        sidecar = cache.sidecar_for(cache.path_for("w", 4))
        sidecar.unlink()
        reader = TraceCache(tmp_path)
        assert reader.load("w", 4) is not None
        assert sidecar.exists()
        assert reader.checksum_failures == 0

    def test_malformed_sidecar_is_a_mismatch(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.store("w", 4, _array())
        cache.sidecar_for(cache.path_for("w", 4)).write_text("not a crc")
        reader = TraceCache(tmp_path)
        assert reader.load("w", 4) is None
        assert reader.checksum_failures == 1

    def test_verify_off_skips_checksums(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.store("w", 4, _array())
        chaos.bitflip_file(cache.path_for("w", 4), seed=1)
        reader = TraceCache(tmp_path, verify=False)
        assert reader.load("w", 4) is not None  # silently wrong, by request
        assert reader.checksum_failures == 0

    def test_mmap_failure_falls_back_to_eager_load(self, tmp_path, monkeypatch):
        cache = TraceCache(tmp_path)
        original = _array()
        cache.store("w", 4, original)
        real = trace_cache.load_trace_array

        def flaky_mmap(path, *, mmap=True):
            if mmap:
                from repro.func.trace import TraceIOError

                raise TraceIOError(f"{path}: mmap unsupported here")
            return real(path, mmap=False)

        monkeypatch.setattr(trace_cache, "load_trace_array", flaky_mmap)
        reader = TraceCache(tmp_path)
        loaded = reader.load("w", 4)
        assert loaded is not None
        assert reader.mmap_fallbacks == 1
        assert np.array_equal(np.asarray(loaded.array), original)


# --------------------------------------------------------------------------
# Injected filesystem faults: degrade, never die
# --------------------------------------------------------------------------


class TestFilesystemFaults:
    def test_enospc_on_store_degrades_to_memory_only(self, tmp_path):
        cache = TraceCache(tmp_path)
        with chaos.active(ChaosPlan.parse("enospc:cache.store")):
            cache.store("w", 4, _array())  # must not raise
            assert cache.degraded == 1
            assert not cache.path_for("w", 4).exists()
            cache.store("w", 4, _array())  # budget spent: this one lands
        assert cache.path_for("w", 4).exists()
        assert cache.degraded == 1

    def test_eacces_on_load_is_a_miss(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.store("w", 4, _array())
        with chaos.active(ChaosPlan.parse("eacces:cache.load")):
            assert cache.load("w", 4) is None
            assert cache.degraded == 1
            assert cache.load("w", 4) is not None  # budget spent

    def test_fault_site_errno_matches_kind(self, tmp_path):
        import errno

        with chaos.active(ChaosPlan.parse("eio:manifest.save")):
            with pytest.raises(OSError) as caught:
                chaos.fs_check("manifest.save")
            assert caught.value.errno == errno.EIO
            chaos.fs_check("cache.store")  # other sites unaffected

    def test_manifest_save_fault_degrades_not_fatal(self, tmp_path):
        calls = []
        with chaos.active(ChaosPlan.parse("eio:manifest.save:99")):
            runner = ResilientRunner(tmp_path / "m.json")
            _results, report = runner.run(_local_experiments(calls))
        assert report.ok  # the sweep finished, only durability was lost
        assert not (tmp_path / "m.json").exists()
        degraded = report.metrics.counter("runner.manifest_degraded").value
        assert degraded >= 1

    def test_cache_degradation_surfaces_in_runner_metrics(self, tmp_path):
        previous = trace_cache._default
        trace_cache._default = TraceCache(tmp_path / "cache")

        def storer(factor):
            trace_cache.default_cache().store("wx", 3, _array())
            return _FakeResult("stored")

        try:
            with chaos.active(ChaosPlan.parse("enospc:cache.store")):
                _r, report = ResilientRunner(tmp_path / "m.json").run(
                    {"s": storer}
                )
        finally:
            trace_cache._default = previous
        assert report.ok
        assert report.outcomes[0].cache_degraded == 1
        assert report.metrics.counter("runner.cache_degraded").value == 1

    def test_checksum_failures_surface_in_runner_metrics(self, tmp_path):
        previous = trace_cache._default
        seeded = TraceCache(tmp_path / "cache")
        seeded.store("wy", 3, _array())
        chaos.bitflip_file(seeded.path_for("wy", 3), seed=4)
        trace_cache._default = TraceCache(tmp_path / "cache")  # fresh memo

        def loader(factor):
            trace_cache.default_cache().load("wy", 3)
            return _FakeResult("loaded")

        try:
            _r, report = ResilientRunner(tmp_path / "m.json").run(
                {"l": loader}
            )
        finally:
            trace_cache._default = previous
        assert report.ok
        assert report.outcomes[0].cache_checksum_failures == 1
        counter = report.metrics.counter("runner.cache_checksum_failures")
        assert counter.value == 1


# --------------------------------------------------------------------------
# Pre-run disk corruption (apply_disk)
# --------------------------------------------------------------------------


class TestDiskChaos:
    def test_apply_disk_is_deterministic(self, tmp_path):
        blobs = []
        for attempt in ("one", "two"):
            root = tmp_path / attempt
            cache = TraceCache(root)
            cache.store("w", 4, _array())
            plan = ChaosPlan.parse("bitflip:w", seed=11)
            applied = plan.apply_disk(root, None)
            assert applied and "bit-flipped" in applied[0]
            blobs.append(cache.path_for("w", 4).read_bytes())
        assert blobs[0] == blobs[1]

    def test_apply_disk_targets_only_named_workload(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.store("hit", 4, _array(1))
        cache.store("spared", 4, _array(2))
        spared_bytes = cache.path_for("spared", 4).read_bytes()
        ChaosPlan.parse("bitflip:hit").apply_disk(tmp_path, None)
        assert cache.path_for("spared", 4).read_bytes() == spared_bytes

    def test_torn_manifest_fault(self, tmp_path):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({"version": 1, "entries": {}}) * 3)
        plan = ChaosPlan.parse("torn-manifest")
        stream = io.StringIO()
        applied = plan.apply_disk(None, manifest, stream=stream)
        assert applied == [f"tore manifest {manifest}"]
        assert "chaos: tore manifest" in stream.getvalue()
        with pytest.raises(json.JSONDecodeError):
            json.loads(manifest.read_text())

    def test_cold_cache_applies_nothing(self, tmp_path):
        plan = ChaosPlan.parse("bitflip:*,truncate:*,stale-v1:*")
        assert plan.apply_disk(tmp_path / "absent", None) == []


# --------------------------------------------------------------------------
# Pool faults: kill, hang, straggler
# --------------------------------------------------------------------------


class _FakeResult:
    def __init__(self, text):
        self.text = text

    def render(self):
        return self.text


def _local_experiments(calls):
    def make(exp_id):
        def run(factor):
            calls.append(exp_id)
            return _FakeResult(f"{exp_id} at factor {factor}")

        return run

    return {"alpha": make("alpha"), "beta": make("beta")}


def _det_a(factor):
    return _FakeResult(f"det-a at {factor}")


def _det_b(factor):
    return _FakeResult(f"det-b at {factor}")


class TestPoolChaos:
    def test_kill_recovers_byte_identical(self, tmp_path):
        experiments = {"a": _det_a, "b": _det_b}
        ref_out = tmp_path / "ref"
        _r, ref = ResilientRunner(
            tmp_path / "ref.json", jobs=2
        ).run(experiments, out_dir=ref_out)
        assert ref.ok

        plan = ChaosPlan.parse("kill:a")
        chaos_out = tmp_path / "chaos"
        runner = ResilientRunner(
            tmp_path / "chaos.json",
            jobs=2,
            fault_plan=plan.fault_plan(list(experiments)),
            chaos_plan=plan,
        )
        _r, report = runner.run(experiments, out_dir=chaos_out)
        # Killed once, re-run in the quarantine pool, recovered fully.
        assert report.ok
        for exp_id in experiments:
            assert (ref_out / f"{exp_id}.txt").read_text() == (
                chaos_out / f"{exp_id}.txt"
            ).read_text()

    def test_kill_every_execution_convicts_the_victim(self, tmp_path):
        plan = ChaosPlan.parse("kill:a:99")
        runner = ResilientRunner(
            tmp_path / "m.json",
            jobs=2,
            fault_plan=plan.fault_plan(["a", "b"]),
            chaos_plan=plan,
        )
        _r, report = runner.run({"a": _det_a, "b": _det_b})
        outcomes = {o.exp_id: o for o in report.outcomes}
        assert outcomes["a"].status == "failed"
        assert "worker process died" in outcomes["a"].error
        assert outcomes["b"].status == "ok"

    def test_serial_kill_is_contained_as_crash(self, tmp_path):
        plan = ChaosPlan.parse("kill:alpha")
        calls = []
        runner = ResilientRunner(
            tmp_path / "m.json",
            fault_plan=plan.fault_plan(["alpha", "beta"]),
            backoff=0.0,
        )
        _r, report = runner.run(_local_experiments(calls))
        outcomes = {o.exp_id: o for o in report.outcomes}
        assert outcomes["alpha"].status == "failed"
        assert "serial mode: contained as crash" in outcomes["alpha"].error
        assert outcomes["beta"].status == "ok"

    def test_straggler_delays_but_completes(self, tmp_path):
        plan = ChaosPlan.parse("straggler:alpha:1:0.2")
        calls = []
        started = time.monotonic()
        runner = ResilientRunner(
            tmp_path / "m.json", fault_plan=plan.fault_plan(["alpha"])
        )
        _r, report = runner.run(_local_experiments(calls))
        assert report.ok
        assert time.monotonic() - started >= 0.2

    def test_hang_trips_timeout_then_resume_completes(self, tmp_path):
        manifest = tmp_path / "m.json"
        plan = ChaosPlan.parse("hang:a:1:60")
        runner = ResilientRunner(
            manifest,
            jobs=2,
            timeout=0.5,
            fault_plan=plan.fault_plan(["a", "b"]),
            chaos_plan=plan,
        )
        _r, wedged = runner.run({"a": _det_a, "b": _det_b})
        outcomes = {o.exp_id: o for o in wedged.outcomes}
        assert outcomes["a"].status == "timeout"
        assert outcomes["b"].status == "ok"

        # Resume without the chaos plan: only the victim re-runs.
        _r, resumed = ResilientRunner(manifest, jobs=2).run(
            {"a": _det_a, "b": _det_b}
        )
        statuses = {o.exp_id: o.status for o in resumed.outcomes}
        assert statuses == {"a": "ok", "b": "checkpointed"}


# --------------------------------------------------------------------------
# Torn checkpoint manifests
# --------------------------------------------------------------------------


class TestManifestRecovery:
    def test_save_keeps_previous_manifest_as_bak(self, tmp_path):
        manifest = tmp_path / "m.json"
        calls = []
        ResilientRunner(manifest).run(_local_experiments(calls))
        bak = manifest.with_suffix(manifest.suffix + ".bak")
        assert manifest.exists() and bak.exists()
        assert json.loads(bak.read_text())["version"] == 1

    def test_torn_manifest_salvages_from_bak(self, tmp_path):
        manifest = tmp_path / "m.json"
        calls = []
        ResilientRunner(manifest).run(_local_experiments(calls))
        assert chaos.tear_manifest(manifest)

        stream = io.StringIO()
        second = []
        _r, report = ResilientRunner(manifest).run(
            _local_experiments(second), stream=stream
        )
        assert "salvaged" in stream.getvalue()
        assert report.metrics.counter("runner.manifest_salvaged").value == 1
        # Both experiments were in the .bak: nothing re-ran.
        assert [o.status for o in report.outcomes] == [
            "checkpointed",
            "checkpointed",
        ]
        assert second == []

    def test_torn_manifest_without_bak_starts_fresh_with_warning(
        self, tmp_path
    ):
        manifest = tmp_path / "m.json"
        manifest.write_text('{"version": 1, "entr')  # torn, no history
        stream = io.StringIO()
        calls = []
        _r, report = ResilientRunner(manifest).run(
            _local_experiments(calls), stream=stream
        )
        assert report.ok
        assert "no backup exists" in stream.getvalue()
        assert sorted(calls) == ["alpha", "beta"]

    def test_code_change_invalidation_is_announced(self, tmp_path):
        manifest = tmp_path / "m.json"
        calls = []
        ResilientRunner(manifest).run(
            _local_experiments(calls), code_hash="a" * 16
        )
        stream = io.StringIO()
        second = []
        _r, report = ResilientRunner(manifest).run(
            _local_experiments(second), code_hash="b" * 16, stream=stream
        )
        text = stream.getvalue()
        assert "checkpoint invalidated (code changed)" in text
        assert f"old={'a' * 16}" in text and f"new={'b' * 16}" in text
        invalidated = report.metrics.counter(
            "runner.checkpoints_invalidated"
        ).value
        assert invalidated == 2
        assert sorted(second) == ["alpha", "beta"]  # recomputed, loudly


# --------------------------------------------------------------------------
# Graceful shutdown (SIGINT / SIGTERM)
# --------------------------------------------------------------------------


class TestGracefulShutdown:
    @pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
    def test_signal_flushes_checkpoint_and_reports_partial(
        self, tmp_path, signum
    ):
        manifest = tmp_path / "m.json"

        def first(factor):
            os.kill(os.getpid(), signum)
            return _FakeResult("finished despite signal")

        def second(factor):  # pragma: no cover - must never run
            raise AssertionError("ran past a graceful shutdown")

        stream = io.StringIO()
        _r, report = ResilientRunner(manifest).run(
            {"a": first, "b": second}, stream=stream
        )
        assert report.interrupted == signal.Signals(signum).name
        statuses = {o.exp_id: o.status for o in report.outcomes}
        assert statuses == {"a": "ok", "b": "interrupted"}
        assert "interrupted by" in report.render()
        assert sweep_exit_code(report) == EXIT_INTERRUPTED
        # The finished experiment was checkpointed before shutdown.
        assert "a" in json.loads(manifest.read_text())["entries"]

    def test_resume_after_interruption_completes_the_rest(self, tmp_path):
        manifest = tmp_path / "m.json"

        def first(factor):
            os.kill(os.getpid(), signal.SIGINT)
            return _FakeResult("first done")

        ResilientRunner(manifest).run(
            {"a": first, "b": lambda factor: _FakeResult("second done")}
        )
        _r, resumed = ResilientRunner(manifest).run(
            {
                "a": lambda factor: _FakeResult("first done"),
                "b": lambda factor: _FakeResult("second done"),
            }
        )
        assert resumed.interrupted is None
        statuses = {o.exp_id: o.status for o in resumed.outcomes}
        assert statuses == {"a": "checkpointed", "b": "ok"}
        assert sweep_exit_code(resumed) == EXIT_OK

    def test_handlers_are_restored(self, tmp_path):
        before = signal.getsignal(signal.SIGINT)
        ResilientRunner(tmp_path / "m.json").run(
            {"a": lambda factor: _FakeResult("ok")}
        )
        assert signal.getsignal(signal.SIGINT) is before


class TestExitCodes:
    def test_table(self):
        ok = RunReport(outcomes=[ExperimentOutcome("a", "ok")])
        assert sweep_exit_code(ok) == EXIT_OK
        partial = RunReport(outcomes=[ExperimentOutcome("a", "failed")])
        assert sweep_exit_code(partial) == EXIT_PARTIAL
        stopped = RunReport(
            outcomes=[ExperimentOutcome("a", "interrupted")],
            interrupted="SIGINT",
        )
        assert sweep_exit_code(stopped) == EXIT_INTERRUPTED

    def test_cli_rejects_bad_chaos_spec(self, capsys):
        from repro.experiments.cli import main as cli_main

        code = cli_main(
            ["experiments", "--only", "fig1", "--chaos", "explode"]
        )
        assert code == EXIT_USAGE
        assert "unknown chaos kind" in capsys.readouterr().err


# --------------------------------------------------------------------------
# Eager environment validation
# --------------------------------------------------------------------------


class TestEnvValidation:
    def test_clean_environment_passes(self):
        validate_environment({})

    def test_unknown_trace_path_named(self):
        with pytest.raises(EnvValidationError, match="REPRO_TRACE_PATH"):
            validate_environment({"REPRO_TRACE_PATH": "prepard"})

    def test_defaults_and_valid_values_pass(self):
        validate_environment(
            {
                "REPRO_TRACE_PATH": "tuples",
                "REPRO_TRACE_CACHE": "off",
                "REPRO_TRACE_CACHE_VERIFY": "1",
                "REPRO_TRACE_CACHE_DIR": "/tmp/somewhere-new",
            }
        )

    def test_all_problems_collected(self):
        with pytest.raises(EnvValidationError) as caught:
            validate_environment(
                {
                    "REPRO_TRACE_PATH": "bogus",
                    "REPRO_TRACE_CACHE": "maybe",
                    "REPRO_TRACE_CACHE_DIR": "  ",
                }
            )
        message = str(caught.value)
        for name in (
            "REPRO_TRACE_PATH",
            "REPRO_TRACE_CACHE",
            "REPRO_TRACE_CACHE_DIR",
        ):
            assert name in message

    def test_cache_dir_must_not_be_a_file(self, tmp_path):
        blocker = tmp_path / "a-file"
        blocker.write_text("")
        with pytest.raises(EnvValidationError, match="not a directory"):
            validate_environment({"REPRO_TRACE_CACHE_DIR": str(blocker)})

    def test_run_all_cli_exits_usage_on_bad_env(self, monkeypatch, capsys):
        from repro.experiments.run_all import main as run_all_main

        monkeypatch.setenv("REPRO_TRACE_PATH", "bogus")
        assert run_all_main(["--only", "fig1"]) == EXIT_USAGE
        assert "REPRO_TRACE_PATH" in capsys.readouterr().err

    def test_aurora_cli_exits_usage_on_bad_env(self, monkeypatch, capsys):
        from repro.experiments.cli import main as cli_main

        monkeypatch.setenv("REPRO_TRACE_CACHE", "sometimes")
        assert cli_main(["list"]) == EXIT_USAGE
        assert "REPRO_TRACE_CACHE" in capsys.readouterr().err


# --------------------------------------------------------------------------
# Concurrent eviction (two real processes, one cache directory)
# --------------------------------------------------------------------------

_EVICTOR = """
import sys
import numpy as np
from repro.workloads.trace_cache import TraceCache
root, which = sys.argv[1], int(sys.argv[2])
cache = TraceCache(root, max_entries=4)
for i in range(25):
    arr = np.full((8, 6), which * 100 + i, dtype=np.int64)
    arr[:, 3:5] = -1
    cache.store(f"w{which}x{i}", 1, arr)
    cache.load(f"w{which}x{i}", 1)
print("done", which)
"""


class TestConcurrentEviction:
    def test_two_processes_never_crash_or_orphan_tmp(self, tmp_path):
        src = os.path.dirname(
            os.path.dirname(os.path.dirname(trace_cache.__file__))
        )
        env = {**os.environ, "PYTHONPATH": src}
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _EVICTOR, str(tmp_path), str(which)],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for which in (0, 1)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert "done" in out
        leftovers = [
            entry.name
            for entry in tmp_path.iterdir()
            if ".tmp" in entry.name
        ]
        assert leftovers == []
        # A final sweep restores the bound no matter how the races fell.
        cache = TraceCache(tmp_path, max_entries=4)
        cache._evict()
        entries = [
            entry
            for entry in tmp_path.glob("*.npy")
            if ".tmp" not in entry.name
        ]
        assert len(entries) <= 4
        # Sidecars always travel with their entries.
        for sidecar in tmp_path.glob("*.crc"):
            assert sidecar.with_name(sidecar.name[: -len(".crc")]).exists()

    def test_stale_tmp_debris_is_reaped(self, tmp_path):
        cache = TraceCache(tmp_path, max_entries=2)
        debris = tmp_path / "w-s1-deadbeefdeadbeefXXXX.tmp"
        debris_npy = tmp_path / "w-s1-deadbeefdeadbeefXXXX.tmp.npy"
        debris.write_bytes(b"")
        debris_npy.write_bytes(b"garbage")
        old = time.time() - 2 * trace_cache.TMP_REAP_SECONDS
        os.utime(debris, (old, old))
        os.utime(debris_npy, (old, old))
        cache.store("w", 1, _array())  # store triggers the eviction sweep
        assert not debris.exists()
        assert not debris_npy.exists()

    def test_fresh_tmp_files_are_left_alone(self, tmp_path):
        cache = TraceCache(tmp_path, max_entries=2)
        live = tmp_path / "w-s1-deadbeefdeadbeefYYYY.tmp.npy"
        live.write_bytes(b"in-flight write")
        cache.store("w", 1, _array())
        assert live.exists()  # a concurrent writer's file is not debris
