"""The serve subsystem: protocol, memo store, batching, HTTP end to end."""

from __future__ import annotations

import io
import json
import threading
import http.client

import pytest

from repro.core.config import BASELINE, FPIssuePolicy, FPUConfig, LARGE
from repro.core.stats import SimStats, StallKind
from repro.serve.protocol import (
    Query,
    QueryError,
    config_from_spec,
    config_to_spec,
    parse_query,
    query_to_payload,
    workload_error_text,
)
from repro.serve.server import BackgroundServer, ServeConfig, percentile
from repro.serve.store import MemoStore
from repro.workloads.registry import WorkloadError

FACTOR = 0.05  # espresso scale 12 (its floor): seconds, not minutes


# ----------------------------------------------------------------- protocol


class TestProtocol:
    def test_config_spec_roundtrip_exact(self):
        config = LARGE.with_(
            issue_width=1,
            mem_latency=35,
            fpu=FPUConfig(
                issue_policy=FPIssuePolicy.SINGLE_ISSUE, mul_latency=7
            ),
        )
        spec = config_to_spec(config)
        json.dumps(spec)  # must be JSON-serializable as-is
        assert config_from_spec(spec) == config

    def test_model_shorthand_with_overrides(self):
        query = parse_query(
            {
                "workload": "espresso",
                "factor": FACTOR,
                "config": {"model": "baseline", "issue_width": 1},
            }
        )
        assert query.config == BASELINE.with_(issue_width=1)
        assert len(query.fingerprint) == 16

    def test_query_payload_roundtrip(self):
        query = parse_query(
            {"workload": "sc", "factor": 0.1, "config": {"model": "large"}}
        )
        again = parse_query(query_to_payload(query))
        assert again == query

    @pytest.mark.parametrize(
        ("payload", "needle"),
        [
            ({"workload": "espresso", "factor": -1}, "factor"),
            ({"workload": "espresso", "factor": "x"}, "factor"),
            ({"workload": ""}, "workload"),
            ({"factor": 1.0}, "workload"),
            ({"workload": "espresso", "bogus": 1}, "bogus"),
            (
                {"workload": "espresso", "config": {"issue_width": 3}},
                "issue_width",
            ),
            (
                {"workload": "espresso", "config": {"nonfield": 1}},
                "nonfield",
            ),
            (
                {"workload": "espresso", "config": {"model": "huge"}},
                "model",
            ),
            (
                {
                    "workload": "espresso",
                    "config": {"fpu": {"mul_latency": 0}},
                },
                "mul_latency",
            ),
            (
                {
                    "workload": "espresso",
                    "config": {"fpu": {"issue_policy": "warp"}},
                },
                "issue_policy",
            ),
        ],
    )
    def test_field_named_errors(self, payload, needle):
        with pytest.raises(QueryError, match=needle):
            parse_query(payload)

    def test_unknown_workload_matches_cli_message(self, capsys):
        """The 400 body is the CLI's error text, kernel list included."""
        from repro.experiments.cli import main

        with pytest.raises(WorkloadError) as excinfo:
            parse_query({"workload": "nosuchkernel"})
        served = workload_error_text(excinfo.value)

        assert main(["run", "nosuchkernel"]) == 2
        cli_text = capsys.readouterr().err
        assert served.strip() == cli_text.strip()
        assert "valid kernels:" in served
        assert "espresso" in served


# ----------------------------------------------------- stats serialization


class TestSimStatsDict:
    def test_roundtrip_equal_and_byte_stable(self):
        stats = SimStats(
            instructions=40, cycles=90, icache_accesses=5, icache_hits=2
        )
        stats.stall_cycles[StallKind.LOAD] = 7
        again = SimStats.from_dict(stats.to_dict())
        assert again == stats
        assert json.dumps(again.to_dict()) == json.dumps(stats.to_dict())

    def test_field_order_is_definition_order(self):
        payload = SimStats().to_dict()
        names = list(payload)
        assert names[0] == "instructions"
        assert list(payload["stall_cycles"]) == [
            kind.value for kind in StallKind
        ]

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda d: d.pop("cycles"),
            lambda d: d.update(cycles="ninety"),
            lambda d: d.update(surprise=1),
            lambda d: d["stall_cycles"].update(warp=1),
            lambda d: d.update(stall_cycles=[]),
        ],
    )
    def test_corrupt_payloads_raise_value_error(self, mangle):
        payload = SimStats(instructions=40, cycles=90).to_dict()
        mangle(payload)
        with pytest.raises(ValueError):
            SimStats.from_dict(payload)


# --------------------------------------------------------------- memo store


def _stats(cycles: int = 90) -> SimStats:
    stats = SimStats(instructions=40, cycles=cycles)
    stats.stall_cycles[StallKind.LOAD] = 7
    return stats


class TestMemoStore:
    def test_roundtrip_identical(self, tmp_path):
        store = MemoStore(tmp_path, code_hash="c0de")
        stats = _stats()
        store.put("espresso", FACTOR, "f" * 16, stats)
        again = MemoStore(tmp_path, code_hash="c0de").get(
            "espresso", FACTOR, "f" * 16
        )
        assert again == stats
        assert json.dumps(again.to_dict()) == json.dumps(stats.to_dict())

    def test_code_hash_change_invalidates_with_warning(self, tmp_path):
        stream = io.StringIO()
        MemoStore(tmp_path, code_hash="old1").put(
            "espresso", FACTOR, "f" * 16, _stats()
        )
        store = MemoStore(tmp_path, code_hash="new2", stream=stream)
        assert store.get("espresso", FACTOR, "f" * 16) is None
        assert store.invalidated == 1
        assert (
            "memo invalidated (code changed): old=old1 new=new2"
            in stream.getvalue()
        )
        # the stale entry is gone; a recompute re-populates in place
        store.put("espresso", FACTOR, "f" * 16, _stats(99))
        assert store.get("espresso", FACTOR, "f" * 16) == _stats(99)

    def test_corrupt_entry_self_heals(self, tmp_path):
        store = MemoStore(tmp_path, code_hash="c0de")
        store.put("espresso", FACTOR, "f" * 16, _stats())
        path = store.path_for("espresso", FACTOR, "f" * 16)
        path.write_text('{"torn": ')
        fresh = MemoStore(tmp_path, code_hash="c0de", stream=io.StringIO())
        assert fresh.get("espresso", FACTOR, "f" * 16) is None
        assert fresh.corrupt == 1
        assert not path.exists()

    def test_torn_stats_payload_self_heals(self, tmp_path):
        store = MemoStore(tmp_path, code_hash="c0de")
        store.put("espresso", FACTOR, "f" * 16, _stats())
        path = store.path_for("espresso", FACTOR, "f" * 16)
        payload = json.loads(path.read_text())
        del payload["stats"]["cycles"]
        path.write_text(json.dumps(payload))
        fresh = MemoStore(tmp_path, code_hash="c0de")
        assert fresh.get("espresso", FACTOR, "f" * 16) is None
        assert fresh.corrupt == 1

    def test_default_code_hash_is_code_fingerprint(self, tmp_path):
        from repro.robustness.runner import code_fingerprint

        assert MemoStore(tmp_path).code_hash == code_fingerprint()

    def test_key_shape_matches_manifest_discipline(self):
        key = MemoStore.key("espresso", 0.05, "abcd", "c0de")
        assert key == "espresso|factor=0.05|config=abcd|code=c0de"


# ------------------------------------------------------------------- server


def _post(port: int, payload: dict, timeout: float = 300.0):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        connection.request(
            "POST",
            "/query",
            body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _get(port: int, path: str, timeout: float = 60.0):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    config = ServeConfig(
        store_root=str(tmp_path_factory.mktemp("sim-memo")),
        window=0.05,
        jobs=1,
    )
    with BackgroundServer(config) as handle:
        yield handle


def _grid_queries(count: int) -> list[dict]:
    """Distinct-config espresso queries off the Figure 8 grid."""
    from repro.experiments.fig8_design_space import _design_points

    queries = []
    seen = set()
    for _label, config, _marker in _design_points():
        spec = config_to_spec(config)
        key = json.dumps(spec, sort_keys=True)
        if key in seen:
            continue
        seen.add(key)
        queries.append(
            {"workload": "espresso", "factor": FACTOR, "config": spec}
        )
        if len(queries) == count:
            break
    assert len(queries) == count
    return queries


class TestServerEndToEnd:
    def test_concurrent_distinct_queries_coalesce(self, server):
        """N distinct-config queries -> fewer than N kernel dispatches,
        and every response is byte-identical to a direct sweep."""
        queries = _grid_queries(6)
        before = _get(server.port, "/metrics")[1]["counters"][
            "serve.dispatches"
        ]

        results: dict[int, tuple[int, dict]] = {}

        def fire(index: int, payload: dict) -> None:
            results[index] = _post(server.port, payload)

        threads = [
            threading.Thread(target=fire, args=(index, payload))
            for index, payload in enumerate(queries)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert sorted(results) == list(range(len(queries)))
        for status, payload in results.values():
            assert status == 200, payload
            assert payload["stats"]["instructions"] > 0

        after = _get(server.port, "/metrics")[1]
        dispatches = after["counters"]["serve.dispatches"] - before
        assert 0 < dispatches < len(queries)
        assert after["histograms"]["serve.batch_width"]["max"] > 1

        # Byte-identity against the direct API (one grouped trace pass,
        # the same path api.sweep_results takes per workload).
        from repro import api
        from repro.workloads.registry import get_trace

        configs = [config_from_spec(query["config"]) for query in queries]
        trace = get_trace("espresso", _espresso_scale(FACTOR))
        direct = api.simulate_many(trace, configs)
        for index in range(len(queries)):
            served = json.dumps(results[index][1]["stats"])
            fresh = json.dumps(direct[index].stats.to_dict())
            assert served == fresh, index

    def test_repeat_query_is_memoized_and_identical(self, server):
        query = _grid_queries(1)[0]
        first_status, first = _post(server.port, query)
        assert first_status == 200
        second_status, second = _post(server.port, query)
        assert second_status == 200
        assert second["memo"] is True
        assert json.dumps(second["stats"]) == json.dumps(first["stats"])
        metrics = _get(server.port, "/metrics")[1]
        assert metrics["counters"]["serve.memo.hits"] >= 1

    def test_identical_concurrent_queries_share_one_slot(self, server):
        payload = {
            "workload": "sc",
            "factor": FACTOR,
            "config": {"model": "small", "mshr_entries": 3},
        }
        results: list[dict] = []

        def fire() -> None:
            status, body = _post(server.port, payload)
            assert status == 200
            results.append(body)

        threads = [threading.Thread(target=fire) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats_texts = {json.dumps(body["stats"]) for body in results}
        assert len(stats_texts) == 1
        assert any(body["coalesced"] or body["memo"] for body in results)

    def test_validation_400s(self, server):
        status, body = _post(
            server.port, {"workload": "espresso", "factor": -2}
        )
        assert status == 400
        assert "factor" in body["error"]

        status, body = _post(
            server.port,
            {"workload": "espresso", "config": {"issue_width": 5}},
        )
        assert status == 400
        assert "issue_width" in body["error"]

    def test_unknown_workload_400_gives_kernel_list(self, server):
        status, body = _post(server.port, {"workload": "nosuchkernel"})
        assert status == 400
        assert body["error"].startswith("error: unknown workload")
        assert "valid kernels:" in body["error"]
        assert "espresso" in body["error"]

    def test_bad_json_400(self, server):
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=60
        )
        try:
            connection.request(
                "POST",
                "/query",
                body="{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert "JSON" in json.loads(response.read())["error"]
        finally:
            connection.close()

    def test_healthz(self, server):
        status, body = _get(server.port, "/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_unknown_route_404(self, server):
        status, body = _get(server.port, "/nope")
        assert status == 404
        assert "no route" in body["error"]

    def test_metrics_expose_serve_instruments(self, server):
        _post(server.port, _grid_queries(1)[0])
        status, metrics = _get(server.port, "/metrics")
        assert status == 200
        for name in (
            "serve.requests",
            "serve.queries",
            "serve.errors",
            "serve.memo.hits",
            "serve.memo.misses",
            "serve.dispatches",
        ):
            assert name in metrics["counters"], name
        assert "serve.batch_width" in metrics["histograms"]
        assert "serve.latency_seconds" in metrics["histograms"]
        for name in (
            "serve.in_flight",
            "serve.memo.hit_rate",
            "serve.latency_p50_seconds",
            "serve.latency_p99_seconds",
            "serve.store.stores",
        ):
            assert name in metrics["gauges"], name
        assert metrics["gauges"]["serve.latency_p50_seconds"] > 0


class TestObservabilityRoutes:
    def _get_raw(self, port: int, path: str) -> tuple[int, str, bytes]:
        connection = http.client.HTTPConnection(
            "127.0.0.1", port, timeout=60.0
        )
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            return (
                response.status,
                response.getheader("Content-Type", ""),
                response.read(),
            )
        finally:
            connection.close()

    def test_prom_exposition_parses(self, server):
        from repro.telemetry.prom import parse_prom

        _post(server.port, _grid_queries(1)[0])
        status, content_type, body = self._get_raw(
            server.port, "/metrics?format=prom"
        )
        assert status == 200
        assert content_type.startswith("text/plain")
        doc = parse_prom(body.decode())
        assert doc["types"]["serve_requests_total"] == "counter"
        assert doc["samples"]["serve_queries_total"] >= 1
        assert doc["types"]["serve_latency_seconds"] == "histogram"
        assert doc["samples"]['serve_latency_seconds_bucket{le="+Inf"}'] == (
            doc["samples"]["serve_latency_seconds_count"]
        )

    def test_readyz_ready(self, server):
        status, body = _get(server.port, "/readyz")
        assert status == 200
        assert body["status"] == "ready"

    def test_readyz_not_ready_before_start(self, tmp_path):
        from repro.serve.batcher import QueryBatcher
        from repro.serve.server import ServeApp
        from repro.telemetry.metrics import MetricsRegistry

        store = MemoStore(tmp_path / "memo")
        metrics = MetricsRegistry()
        batcher = QueryBatcher(store, metrics, window=0.01)
        try:
            app = ServeApp(store, batcher, metrics)
            status, payload = app.readyz_payload()
            assert status == 503
            assert payload["status"] == "starting"
            app.mark_ready()
            assert app.readyz_payload()[0] == 200
        finally:
            batcher.executor.shutdown(wait=False)

    def test_timeseries_route(self, server):
        import time

        _post(server.port, _grid_queries(1)[0])
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            status, body = _get(server.port, "/timeseries")
            assert status == 200
            assert body["sampling"] is True
            if body["samples"]:
                break
            time.sleep(0.2)
        sample = body["samples"][-1]
        assert "serve.requests" in sample["values"]
        assert "serve.latency_seconds.count" in sample["values"]

    def test_top_renders_against_live_server(self, server):
        import io

        from repro.serve.top import run_top

        _post(server.port, _grid_queries(1)[0])
        out = io.StringIO()
        rc = run_top(
            server.url, interval=0.05, iterations=2, stream=out, clear=False
        )
        assert rc == 0
        text = out.getvalue()
        assert "aurora-sim top" in text
        for label in ("req/s", "p99 ms", "memo hit %", "batch width"):
            assert label in text
        assert text.count("aurora-sim top") == 2  # two frames, no clear

    def test_top_unreachable_raises(self):
        from repro.serve.top import TopError, run_top

        with pytest.raises(TopError, match="cannot scrape"):
            run_top("http://127.0.0.1:1", iterations=1, clear=False)


class TestLoadgenSLOExitCodes:
    def _drive(self, server, *slo_flags) -> int:
        from repro.experiments.cli import main

        return main(
            [
                "loadgen",
                "--url",
                server.url,
                "--count",
                "4",
                "--factor",
                str(FACTOR),
                "--concurrency",
                "2",
                *slo_flags,
            ]
        )

    def test_generous_slos_exit_ok(self, server, capsys):
        rc = self._drive(
            server, "--slo", "p99:300", "--slo", "error-rate:0.99"
        )
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "slo p99:300" in out and "ok" in out

    def test_impossible_slo_exits_6(self, server, capsys):
        from repro.experiments.exit_codes import EXIT_SLO_VIOLATION

        rc = self._drive(server, "--slo", "p99:0.000001")
        out = capsys.readouterr().out
        assert rc == EXIT_SLO_VIOLATION == 6, out
        assert "VIOLATED" in out


def _espresso_scale(factor: float) -> int:
    from repro.experiments.common import _MIN_SCALES
    from repro.workloads.registry import get_spec

    spec = get_spec("espresso")
    return max(_MIN_SCALES["espresso"], int(spec.default_scale * factor))


class TestShutdown:
    def test_background_stop_drains_and_returns_ok(self, tmp_path):
        config = ServeConfig(
            store_root=str(tmp_path / "memo"), window=0.02, jobs=1
        )
        handle = BackgroundServer(config).start()
        status, _ = _post(
            handle.port,
            {"workload": "sc", "factor": FACTOR, "config": {"model": "small"}},
        )
        assert status == 200
        assert handle.stop() == 0  # programmatic stop, not a signal

    def test_sigterm_exits_5(self, tmp_path):
        """The CLI verb honours the exit-code table's EXIT_INTERRUPTED."""
        import os
        import signal as signal_module
        import subprocess
        import sys

        repo_src = os.path.join(os.path.dirname(__file__), "..", "src")
        env = dict(os.environ, PYTHONPATH=os.path.abspath(repo_src))
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.experiments.cli",
                "serve",
                "--port",
                "0",
                "--store",
                str(tmp_path / "memo"),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            line = process.stdout.readline()
            assert line.startswith("serving on http://"), line
            process.send_signal(signal_module.SIGTERM)
            output, _ = process.communicate(timeout=120)
        finally:
            if process.poll() is None:
                process.kill()
        assert process.returncode == 5, output
        assert "draining in-flight batches" in output
        assert "drained:" in output


# ---------------------------------------------------------------- utilities


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.99) == 0.0

    def test_orders_input(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 0.5) == 3.0
        assert percentile(samples, 1.0) == 5.0

    def test_query_group_key(self):
        query = Query(
            workload="espresso", factor=0.5, config=BASELINE, fingerprint="x"
        )
        assert query.group == ("espresso", 0.5)
