"""Unit tests for the MSHR file."""

import pytest

from repro.core.mshr import MSHRFile


class TestMSHRFile:
    def test_needs_one_entry(self):
        with pytest.raises(ValueError):
            MSHRFile(0)

    def test_immediate_grant_when_free(self):
        mshr = MSHRFile(2)
        grant, slot = mshr.allocate(10)
        assert grant == 10
        assert mshr.allocations == 1

    def test_single_entry_serialises(self):
        mshr = MSHRFile(1)
        grant, slot = mshr.allocate(0)
        mshr.set_release(slot, 20)
        grant2, _ = mshr.allocate(5)
        assert grant2 == 20
        assert mshr.stall_cycles == 15

    def test_two_entries_overlap(self):
        mshr = MSHRFile(2)
        g1, s1 = mshr.allocate(0)
        mshr.set_release(s1, 20)
        g2, s2 = mshr.allocate(1)
        assert g2 == 1  # second entry available
        mshr.set_release(s2, 25)
        g3, _ = mshr.allocate(2)
        assert g3 == 20  # back to waiting on the earliest release

    def test_earliest_grant_is_side_effect_free(self):
        mshr = MSHRFile(1)
        _, slot = mshr.allocate(0)
        mshr.set_release(slot, 50)
        assert mshr.earliest_grant(10) == 50
        assert mshr.earliest_grant(60) == 60
        assert mshr.allocations == 1  # probing didn't allocate

    def test_set_release_never_shrinks(self):
        mshr = MSHRFile(1)
        _, slot = mshr.allocate(0)
        mshr.set_release(slot, 30)
        mshr.set_release(slot, 10)  # ignored
        assert mshr.earliest_grant(0) == 30

    def test_all_free_at(self):
        mshr = MSHRFile(2)
        _, s1 = mshr.allocate(0)
        mshr.set_release(s1, 15)
        _, s2 = mshr.allocate(0)
        mshr.set_release(s2, 40)
        assert mshr.all_free_at == 40

    def test_more_entries_never_later_grants(self):
        """With the same request stream, a bigger file grants no later."""
        stream = [(0, 17), (1, 17), (2, 17), (3, 3), (4, 17), (5, 3)]
        grants = {}
        for entries in (1, 2, 4):
            mshr = MSHRFile(entries)
            total = 0
            for t, hold in stream:
                grant, slot = mshr.allocate(t)
                mshr.set_release(slot, grant + hold)
                total += grant
            grants[entries] = total
        assert grants[1] >= grants[2] >= grants[4]
