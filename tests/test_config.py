"""Unit tests for machine configurations (Table 1)."""

import pytest

from repro.core.config import (
    BASELINE,
    LARGE,
    RECOMMENDED,
    SMALL,
    TABLE1_MODELS,
    ConfigError,
    FPIssuePolicy,
    FPUConfig,
    MachineConfig,
)


class TestTable1Models:
    def test_small(self):
        assert SMALL.icache_bytes == 1024
        assert SMALL.dcache_bytes == 16 * 1024
        assert SMALL.writecache_lines == 2
        assert SMALL.rob_entries == 2
        assert SMALL.prefetch_buffers == 2
        assert SMALL.mshr_entries == 1

    def test_baseline(self):
        assert BASELINE.icache_bytes == 2048
        assert BASELINE.dcache_bytes == 32 * 1024
        assert BASELINE.writecache_lines == 4
        assert BASELINE.rob_entries == 6
        assert BASELINE.prefetch_buffers == 4
        assert BASELINE.mshr_entries == 2

    def test_large(self):
        assert LARGE.icache_bytes == 4096
        assert LARGE.dcache_bytes == 64 * 1024
        assert LARGE.writecache_lines == 8
        assert LARGE.rob_entries == 8
        assert LARGE.prefetch_buffers == 8
        assert LARGE.mshr_entries == 4

    def test_recommended_point_e(self):
        assert RECOMMENDED.icache_bytes == 4096
        assert RECOMMENDED.writecache_lines == 4
        assert RECOMMENDED.rob_entries == 6
        assert RECOMMENDED.mshr_entries == 4

    def test_order(self):
        assert [m.name for m in TABLE1_MODELS] == ["small", "baseline", "large"]


class TestVariants:
    def test_issue_variants(self):
        assert BASELINE.single_issue().issue_width == 1
        assert BASELINE.dual_issue().issue_width == 2

    def test_with_latency(self):
        assert BASELINE.with_latency(35).mem_latency == 35

    def test_without_prefetch(self):
        assert not BASELINE.without_prefetch().prefetch_enabled

    def test_with_mshrs(self):
        assert BASELINE.with_mshrs(4).mshr_entries == 4

    def test_variants_do_not_mutate(self):
        BASELINE.with_latency(35)
        assert BASELINE.mem_latency == 17

    def test_label(self):
        assert BASELINE.dual_issue().label == "baseline/dual/L17"
        assert SMALL.single_issue().with_latency(35).label == "small/single/L35"

    def test_line_counts(self):
        assert BASELINE.icache_lines == 64
        assert BASELINE.dcache_lines == 1024


class TestValidation:
    def test_bad_issue_width(self):
        with pytest.raises(ConfigError):
            MachineConfig(issue_width=3)

    def test_bad_line_size(self):
        with pytest.raises(ConfigError):
            MachineConfig(line_bytes=24)

    def test_bad_cache_size(self):
        with pytest.raises(ConfigError):
            MachineConfig(icache_bytes=1000)

    @pytest.mark.parametrize(
        "field",
        ["writecache_lines", "rob_entries", "mshr_entries",
         "prefetch_buffers", "prefetch_line_depth", "mem_latency",
         "dcache_latency"],
    )
    def test_positive_fields(self, field):
        with pytest.raises(ConfigError):
            MachineConfig(**{field: 0})

    def test_split_pool_needs_buffers(self):
        with pytest.raises(ConfigError):
            MachineConfig(split_prefetch_pool=True, prefetch_buffers=1)


class TestFPUConfig:
    def test_defaults_match_section_5_11(self):
        fpu = FPUConfig()
        assert fpu.issue_policy is FPIssuePolicy.DUAL_ISSUE
        assert fpu.instruction_queue == 5
        assert fpu.load_queue == 2
        assert fpu.rob_entries == 6
        assert fpu.add_latency == 3
        assert fpu.mul_latency == 5
        assert fpu.div_latency == 19
        assert fpu.result_buses == 2

    def test_with_(self):
        fpu = FPUConfig().with_(add_latency=2)
        assert fpu.add_latency == 2
        assert FPUConfig().add_latency == 3

    @pytest.mark.parametrize(
        "field",
        ["instruction_queue", "load_queue", "store_queue", "rob_entries",
         "add_latency", "mul_latency", "div_latency", "cvt_latency",
         "result_buses"],
    )
    def test_positive_fields(self, field):
        with pytest.raises(ConfigError):
            FPUConfig(**{field: 0})
