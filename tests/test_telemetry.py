"""Telemetry subsystem: event bus, analysis, metrics, CLI and runner export.

The load-bearing tests here are the cross-checks: the stall breakdown
reconstructed from STALL events must agree *exactly* with the SimStats
counters for every workload in both suites (the two accountings are
maintained by independent code paths), and running with telemetry off
must leave the simulation results byte-identical.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.core.config import BASELINE
from repro.core.processor import simulate_trace
from repro.core.stats import StallKind
from repro.experiments import cli
from repro.experiments.common import scaled_trace
from repro.telemetry import (
    Event,
    EventBus,
    EventKind,
    MetricsRegistry,
    NDJSONSink,
    RingBufferSink,
    StallMismatchError,
    TelemetryError,
    assert_stalls_match,
    cross_check_stalls,
    fpu_queue_occupancy,
    interval_cpi,
    load_ndjson,
    mshr_occupancy,
    occupancy_export,
    occupancy_histogram,
    occupancy_summaries,
    publish_stats,
    stall_breakdown,
    stall_timeline,
    writecache_occupancy,
)
from repro.telemetry.events import event_from_dict, iter_ndjson
from repro.telemetry.validate import validate_file
from repro.workloads.registry import FP_SUITE, INTEGER_SUITE

FACTOR = 0.05


def run_with_telemetry(name, factor=FACTOR, config=BASELINE):
    """Simulate one workload capturing the full event stream."""
    trace = scaled_trace(name, factor)
    bus = EventBus()
    ring = RingBufferSink()
    bus.attach(ring)
    result = simulate_trace(trace, config, telemetry=bus)
    return ring.events, result


# ---------------------------------------------------------------- event bus


class TestEventBus:
    def test_bus_without_sinks_is_falsy(self):
        bus = EventBus()
        assert not bus
        bus.emit(0, "test", EventKind.STALL, stall="lsu", cycles=1)  # no-op

    def test_bus_with_sink_is_truthy_and_records(self):
        bus = EventBus()
        ring = RingBufferSink()
        bus.attach(ring)
        assert bus
        bus.emit(7, "test", EventKind.RETIRE, index=0, issue=5)
        assert len(ring) == 1
        (event,) = list(ring)
        assert event.cycle == 7
        assert event.kind is EventKind.RETIRE
        assert event.fields == {"index": 0, "issue": 5}

    def test_detach_returns_bus_to_zero_cost(self):
        bus = EventBus()
        ring = RingBufferSink()
        bus.attach(ring)
        bus.detach(ring)
        assert not bus
        bus.emit(0, "test", EventKind.RETIRE, index=0)
        assert len(ring) == 0

    def test_bounded_ring_drops_oldest_and_counts(self):
        ring = RingBufferSink(capacity=2)
        bus = EventBus(ring)
        for cycle in range(5):
            bus.emit(cycle, "test", EventKind.RETIRE, index=cycle)
        assert ring.recorded == 5
        assert ring.dropped == 3
        assert [e.cycle for e in ring] == [3, 4]

    def test_ring_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_ndjson_round_trip(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        bus = EventBus(NDJSONSink(path))
        bus.emit(3, "mshr", EventKind.MSHR_ALLOC, slot=1, requested=3, wait=0)
        bus.emit(9, "mshr", EventKind.MSHR_RELEASE, slot=1)
        bus.close()
        events = load_ndjson(path)
        assert events == [
            Event(3, "mshr", EventKind.MSHR_ALLOC, slot=1, requested=3, wait=0),
            Event(9, "mshr", EventKind.MSHR_RELEASE, slot=1),
        ]

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            '["a", "list"]',
            '{"source": "x", "kind": "retire"}',  # missing cycle
            '{"cycle": -1, "source": "x", "kind": "retire"}',
            '{"cycle": 0, "source": "x", "kind": "no_such_kind"}',
            '{"cycle": 0, "kind": "retire"}',  # missing source
        ],
    )
    def test_iter_ndjson_rejects_malformed_lines(self, line):
        with pytest.raises(TelemetryError):
            list(iter_ndjson([line]))

    def test_event_from_dict_round_trips_to_dict(self):
        event = Event(5, "biu", EventKind.BIU_TXN, txn="write", requested=4)
        assert event_from_dict(event.to_dict()) == event

    def test_validate_file_accepts_real_trace(self, tmp_path, capsys):
        path = tmp_path / "ok.ndjson"
        bus = EventBus(NDJSONSink(path))
        bus.emit(0, "rob", EventKind.RETIRE, index=0, issue=0)
        bus.close()
        assert validate_file(path) == 1
        with pytest.raises(TelemetryError):
            bad = tmp_path / "bad.ndjson"
            bad.write_text('{"cycle": "zero"}\n')
            validate_file(bad)


# ------------------------------------------------- event/counter cross-check


class TestStallCrossCheck:
    """Figure 6 reconstructed from events must equal the counters exactly."""

    @pytest.mark.parametrize("name", INTEGER_SUITE + FP_SUITE)
    def test_events_match_counters_exactly(self, name):
        events, result = run_with_telemetry(name)
        assert events, f"{name}: telemetry produced no events"
        assert cross_check_stalls(events, result.stats) == []
        assert_stalls_match(events, result.stats)  # must not raise

    def test_mismatch_is_reported(self):
        events, result = run_with_telemetry("compress")
        result.stats.stall_cycles[StallKind.LSU] += 1
        mismatches = cross_check_stalls(events, result.stats)
        assert len(mismatches) == 1
        assert "lsu" in mismatches[0]
        with pytest.raises(StallMismatchError):
            assert_stalls_match(events, result.stats)

    def test_timeline_buckets_sum_to_breakdown(self):
        events, _result = run_with_telemetry("compress")
        breakdown = stall_breakdown(events)
        timeline = stall_timeline(events, window=500)
        summed = {kind: 0 for kind in StallKind}
        for _start, bucket in timeline:
            for kind, cycles in bucket.items():
                summed[kind] += cycles
        assert summed == breakdown


# ------------------------------------------------------ zero overhead when off


class TestTelemetryOff:
    def test_disabled_run_is_byte_identical(self):
        trace = scaled_trace("compress", FACTOR)
        plain = simulate_trace(trace, BASELINE)
        events, instrumented = run_with_telemetry("compress")
        assert events
        assert plain.stats == instrumented.stats
        assert plain.stats.summary() == instrumented.stats.summary()
        assert plain.cpi == instrumented.cpi

    def test_sinkless_bus_records_nothing(self):
        trace = scaled_trace("compress", FACTOR)
        bus = EventBus()  # falsy: normalised away inside run()
        result = simulate_trace(trace, BASELINE, telemetry=bus)
        ring = RingBufferSink()
        bus.attach(ring)
        assert len(ring) == 0
        assert result.stats == simulate_trace(trace, BASELINE).stats

    def test_structures_default_to_no_telemetry(self):
        from repro.core.mshr import MSHRFile
        from repro.core.processor import AuroraProcessor

        assert MSHRFile(2).telemetry is None
        assert AuroraProcessor(BASELINE).telemetry is None


# --------------------------------------------------------------- NaN CPI


class TestEmptyTraceCpi:
    def test_empty_trace_cpi_is_nan(self):
        result = simulate_trace([], BASELINE)
        assert result.stats.instructions == 0
        assert math.isnan(result.cpi)


# -------------------------------------------------------------- occupancy


def _occ_events(pairs, enter=EventKind.MSHR_ALLOC, exit=EventKind.MSHR_RELEASE):
    events = []
    for start, end in pairs:
        events.append(Event(start, "t", enter, slot=0))
        events.append(Event(end, "t", exit, slot=0))
    return events


class TestOccupancy:
    def test_single_interval(self):
        histogram = mshr_occupancy(_occ_events([(0, 10)]))
        assert histogram.cycles_at == {1: 10}
        assert histogram.max_occupancy == 1
        assert histogram.time_weighted_mean == 1.0

    def test_overlapping_intervals_weight_by_time(self):
        # [0,10) and [5,15): occupancy 1 for 10 cycles, 2 for 5 cycles.
        histogram = mshr_occupancy(_occ_events([(0, 10), (5, 15)]))
        assert histogram.cycles_at == {1: 10, 2: 5}
        assert histogram.total_cycles == 15
        assert histogram.time_weighted_mean == pytest.approx(20 / 15)
        assert histogram.percentile(50) == 1
        assert histogram.percentile(99) == 2

    def test_exit_sorts_before_enter_at_same_cycle(self):
        # Back-to-back slot reuse must not count occupancy 2.
        histogram = mshr_occupancy(_occ_events([(0, 5), (5, 10)]))
        assert histogram.cycles_at == {1: 10}

    def test_queue_filter_separates_streams(self):
        events = [
            Event(0, "fpu", EventKind.FPQ_ENQUEUE, queue="iq"),
            Event(4, "fpu", EventKind.FPQ_DEQUEUE, queue="iq"),
            Event(0, "fpu", EventKind.FPQ_ENQUEUE, queue="lq"),
            Event(2, "fpu", EventKind.FPQ_DEQUEUE, queue="lq"),
        ]
        assert fpu_queue_occupancy(events, "iq").total_cycles == 4
        assert fpu_queue_occupancy(events, "lq").total_cycles == 2
        with pytest.raises(ValueError):
            fpu_queue_occupancy(events, "rq")

    def test_writecache_counts_allocations_only(self):
        events = [
            Event(0, "writecache", EventKind.WC_STORE, line=1, hit=False,
                  allocated=True),
            Event(3, "writecache", EventKind.WC_STORE, line=1, hit=True,
                  allocated=False),  # coalesced hit: not an enter
            Event(8, "writecache", EventKind.WC_EVICT, line=1, done=10),
        ]
        histogram = writecache_occupancy(events)
        assert histogram.cycles_at == {1: 8}

    def test_empty_histogram(self):
        histogram = occupancy_histogram(
            [], EventKind.MSHR_ALLOC, EventKind.MSHR_RELEASE
        )
        assert histogram.total_cycles == 0
        assert histogram.max_occupancy == 0
        assert histogram.time_weighted_mean == 0.0
        assert histogram.percentile(90) == 0

    def test_percentile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            mshr_occupancy(_occ_events([(0, 1)])).percentile(101)

    def test_real_run_occupancy_bounded_by_capacity(self):
        events, _result = run_with_telemetry("compress")
        histogram = mshr_occupancy(events)
        assert histogram.total_cycles > 0
        assert 0 < histogram.max_occupancy <= BASELINE.mshr_entries


class TestOccupancyExport:
    STRUCTURES = ("mshr", "fpq_iq", "fpq_lq", "fpq_sq", "writecache")

    def test_summaries_cover_every_structure_even_when_idle(self):
        summaries = occupancy_summaries([])
        assert set(summaries) == set(self.STRUCTURES)
        assert all(h.total_cycles == 0 for h in summaries.values())

    def test_to_dict_summary_fields(self):
        histogram = mshr_occupancy(_occ_events([(0, 10), (5, 15)]))
        payload = histogram.to_dict()
        assert payload["mean"] == pytest.approx(20 / 15)
        assert payload["p50"] == 1
        assert payload["p99"] == 2
        assert payload["max"] == 2
        assert payload["total_cycles"] == 15
        assert payload["cycles_at"] == {"1": 10, "2": 5}

    def test_export_is_versioned_stable_json(self):
        from repro.telemetry.analysis import OCCUPANCY_EXPORT_VERSION

        events, _result = run_with_telemetry("compress")
        document = occupancy_export(events)
        assert document["version"] == OCCUPANCY_EXPORT_VERSION
        assert set(document["structures"]) == set(self.STRUCTURES)
        mshr = document["structures"]["mshr"]
        assert mshr["total_cycles"] > 0
        assert 0 < mshr["max"] <= BASELINE.mshr_entries
        # round-trips through JSON unchanged (string keys throughout)
        assert json.loads(json.dumps(document)) == document


# ------------------------------------------------------------ interval CPI


class TestIntervalCpi:
    def test_windows_cover_run_and_report_inf_when_empty(self):
        events = [
            Event(10, "rob", EventKind.RETIRE, index=0, issue=9),
            Event(20, "rob", EventKind.RETIRE, index=1, issue=19),
            Event(250, "rob", EventKind.RETIRE, index=2, issue=249),
        ]
        stats = interval_cpi(events, window=100)
        assert [s.instructions for s in stats] == [2, 0, 1]
        assert stats[0].cpi == 50.0
        assert stats[1].cpi == math.inf
        assert stats[2].cpi == 100.0

    def test_no_retires_yields_no_windows(self):
        assert interval_cpi([], window=100) == []

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            interval_cpi([], window=0)

    def test_real_run_instruction_total_matches(self):
        events, result = run_with_telemetry("compress")
        stats = interval_cpi(events, window=1000)
        assert sum(s.instructions for s in stats) == result.stats.instructions


# ----------------------------------------------------------------- metrics


class TestMetrics:
    def test_counter_is_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc(3)
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert registry.counter("x") is counter
        assert counter.value == 3

    def test_cross_type_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_histogram_buckets_and_moments(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t", buckets=(1.0, 10.0))
        for value in (0.5, 2.0, 20.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.bucket_counts == [1, 2]
        assert histogram.min == 0.5 and histogram.max == 20.0
        assert histogram.mean == pytest.approx(22.5 / 3)
        with pytest.raises(ValueError):
            histogram.observe(math.inf)

    def test_publish_stats_flattens_counters_and_stalls(self):
        _events, result = run_with_telemetry("compress")
        registry = publish_stats(result.stats, MetricsRegistry())
        snapshot = registry.as_dict()
        assert (
            snapshot["counters"]["sim.instructions"]
            == result.stats.instructions
        )
        for kind in StallKind:
            assert (
                snapshot["counters"][f"sim.stall.{kind.value}"]
                == result.stats.stall_cycles[kind]
            )
        assert snapshot["gauges"]["sim.cpi"] == pytest.approx(result.cpi)

    def test_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        path = registry.write_json(tmp_path / "m" / "out.json")
        assert json.loads(path.read_text())["counters"] == {"a": 2}


# --------------------------------------------------------------------- CLI


class TestCli:
    def test_trace_and_report_verbs(self, tmp_path, capsys):
        out = tmp_path / "compress.ndjson"
        metrics = tmp_path / "compress.json"
        assert cli.main([
            "trace", "compress", "--factor", str(FACTOR),
            "--out", str(out), "--metrics-out", str(metrics),
        ]) == 0
        trace_output = capsys.readouterr().out
        assert "stall cross-check: OK" in trace_output
        assert out.exists() and metrics.exists()
        assert json.loads(metrics.read_text())["counters"]["sim.instructions"]

        assert cli.main(["report", str(out)]) == 0
        report_output = capsys.readouterr().out
        assert "stall cycles from events" in report_output

    def test_report_occupancy_out(self, tmp_path, capsys):
        out = tmp_path / "compress.ndjson"
        occupancy = tmp_path / "occupancy.json"
        assert cli.main([
            "trace", "compress", "--factor", str(FACTOR), "--out", str(out),
            "--metrics-out", str(tmp_path / "metrics.json"),
        ]) == 0
        capsys.readouterr()
        assert cli.main([
            "report", str(out), "--occupancy-out", str(occupancy),
        ]) == 0
        assert "occupancy:" in capsys.readouterr().out
        document = json.loads(occupancy.read_text())
        assert document["version"] == 1
        assert document["structures"]["mshr"]["total_cycles"] > 0

    @pytest.mark.parametrize(
        "argv",
        [
            ["run", "nosuchkernel"],
            ["trace", "nosuchkernel"],
        ],
    )
    def test_unknown_workload_exits_2_with_kernel_list(self, argv, capsys):
        assert cli.main(argv) == 2
        stderr = capsys.readouterr().err
        assert "unknown workload 'nosuchkernel'" in stderr
        assert "valid kernels:" in stderr
        assert "compress" in stderr


# ----------------------------------------------------------- runner metrics


class TestRunnerMetrics:
    def test_sweep_exports_metrics_tree_and_manifest(self, tmp_path):
        from repro.experiments.run_all import run_resilient

        out = tmp_path / "results"
        _results, report = run_resilient(
            factor=FACTOR, out_dir=str(out), only=["table2"], stream=None
        )
        assert report.ok
        snapshot = report.metrics.as_dict()
        assert snapshot["counters"]["runner.experiments_ok"] == 1
        assert snapshot["gauges"]["runner.factor"] == FACTOR
        assert snapshot["histograms"]["runner.elapsed_seconds"]["count"] == 1

        runner_json = json.loads((out / "metrics" / "runner.json").read_text())
        assert runner_json["counters"]["runner.experiments_ok"] == 1
        per_exp = json.loads((out / "metrics" / "table2.json").read_text())
        assert per_exp["counters"]["runner.attempts"] == 1
        assert per_exp["gauges"]["runner.ok"] == 1.0

        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["metrics"]["counters"]["runner.experiments_ok"] == 1

    def test_checkpointed_rerun_counts_in_metrics(self, tmp_path):
        from repro.experiments.run_all import run_resilient

        out = tmp_path / "results"
        run_resilient(
            factor=FACTOR, out_dir=str(out), only=["table2"], stream=None
        )
        _results, report = run_resilient(
            factor=FACTOR, out_dir=str(out), only=["table2"], stream=None
        )
        snapshot = report.metrics.as_dict()
        assert snapshot["counters"]["runner.experiments_checkpointed"] == 1
        assert "runner.experiments_ok" not in snapshot["counters"]


# ------------------------------------------------- gzip / sink lifecycle


class TestNDJSONSinkLifecycle:
    def _events(self, n=3):
        return [
            Event(cycle, "test", EventKind.RETIRE, index=cycle)
            for cycle in range(n)
        ]

    def test_gzip_round_trip(self, tmp_path):
        path = tmp_path / "trace.ndjson.gz"
        with NDJSONSink(path) as sink:
            for event in self._events():
                sink.record(event)
        # The file really is gzip, and loads back transparently.
        import gzip

        assert path.read_bytes()[:2] == b"\x1f\x8b"
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            assert len(handle.read().splitlines()) == 3
        assert load_ndjson(path) == self._events()

    def test_gzip_file_passes_validate(self, tmp_path, capsys):
        path = tmp_path / "trace.ndjson.gz"
        with NDJSONSink(path) as sink:
            for event in self._events():
                sink.record(event)
        assert validate_file(str(path)) == 3

    def test_context_manager_closes_and_flushes(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        with NDJSONSink(path) as sink:
            sink.record(self._events(1)[0])
            sink.flush()  # legal mid-stream
        assert sink._file.closed
        assert load_ndjson(path) == self._events(1)

    def test_truncated_then_closed_file_still_validates(self, tmp_path):
        """A stream cut short at a line boundary is short, not invalid."""
        path = tmp_path / "trace.ndjson"
        with NDJSONSink(path) as sink:
            for event in self._events(5):
                sink.record(event)
        # Simulate a crash that lost the tail: keep only two full lines.
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:2]))
        assert validate_file(str(path)) == 2
        assert load_ndjson(path) == self._events(2)


# ------------------------------------------------------- validate CLI I/O


class TestValidateCli:
    def _ndjson(self, events):
        return "".join(json.dumps(e.to_dict()) + "\n" for e in events)

    def test_stdin_dash_reads_stream(self, monkeypatch, capsys):
        import io

        from repro.telemetry import validate

        events = [Event(1, "test", EventKind.RETIRE, index=1)]
        monkeypatch.setattr("sys.stdin", io.StringIO(self._ndjson(events)))
        assert validate.main(["-"]) == 0
        assert "<stdin>: 1 events OK" in capsys.readouterr().out

    def test_stdin_dash_rejects_malformed(self, monkeypatch, capsys):
        import io

        from repro.telemetry import validate

        monkeypatch.setattr("sys.stdin", io.StringIO('{"cycle": -1}\n'))
        assert validate.main(["-"]) == 1
        err = capsys.readouterr().err
        assert "INVALID" in err and "line 1" in err

    def test_gz_path_through_main(self, tmp_path, capsys):
        from repro.telemetry import validate

        path = tmp_path / "t.ndjson.gz"
        with NDJSONSink(path) as sink:
            sink.record(Event(1, "test", EventKind.RETIRE))
        assert validate.main([str(path)]) == 0


# ------------------------------------------------------- dropped contract


class TestPartialTraceRefusal:
    def test_bounded_ring_refuses_cross_check(self):
        from repro.telemetry import PartialTraceError

        ring = RingBufferSink(capacity=1)
        bus = EventBus(ring)
        trace = scaled_trace("compress", FACTOR)
        result = simulate_trace(trace, BASELINE, telemetry=bus)
        assert ring.dropped > 0
        with pytest.raises(PartialTraceError, match="dropped"):
            assert_stalls_match(ring, result.stats)
        with pytest.raises(PartialTraceError, match="dropped"):
            cross_check_stalls(
                ring.events, result.stats, dropped=ring.dropped
            )

    def test_explicit_dropped_overrides_source(self):
        from repro.telemetry import PartialTraceError

        events, result = run_with_telemetry("compress")
        # The same complete stream passes without the override...
        assert_stalls_match(events, result.stats)
        # ...and refuses when the caller says events were lost.
        with pytest.raises(PartialTraceError):
            assert_stalls_match(events, result.stats, dropped=7)

    def test_unbounded_ring_still_passes(self):
        ring = RingBufferSink()
        bus = EventBus(ring)
        trace = scaled_trace("compress", FACTOR)
        result = simulate_trace(trace, BASELINE, telemetry=bus)
        assert ring.dropped == 0
        assert_stalls_match(ring, result.stats)


# ------------------------------------------------------ analysis edges


class TestAnalysisEdgeCases:
    def test_interval_cpi_empty_trace(self):
        assert interval_cpi([]) == []
        assert stall_timeline([]) == []

    def test_interval_cpi_window_larger_than_run(self):
        events = [
            Event(cycle, "test", EventKind.RETIRE, index=cycle, issue=0)
            for cycle in (3, 7, 9)
        ]
        stats = interval_cpi(events, window=10_000)
        assert len(stats) == 1
        assert stats[0].start == 0
        assert stats[0].instructions == 3
        assert stats[0].cpi == pytest.approx(10_000 / 3)

    def test_interval_cpi_boundary_on_final_cycle(self):
        # A retire exactly on a window boundary opens one more window.
        events = [
            Event(cycle, "test", EventKind.RETIRE, index=cycle, issue=0)
            for cycle in (0, 999, 1000)
        ]
        stats = interval_cpi(events, window=1000)
        assert [s.start for s in stats] == [0, 1000]
        assert [s.instructions for s in stats] == [2, 1]

    def test_stall_timeline_window_larger_than_run(self):
        events = [
            Event(5, "test", EventKind.STALL, stall="load", cycles=2, index=0,
                  pc=0),
            Event(90, "test", EventKind.STALL, stall="pairing", cycles=1,
                  index=1, pc=4),
        ]
        timeline = stall_timeline(events, window=1000)
        assert len(timeline) == 1
        start, bucket = timeline[0]
        assert start == 0
        assert bucket[StallKind.LOAD] == 2
        assert bucket[StallKind.PAIRING] == 1

    def test_stall_timeline_boundary_on_final_cycle(self):
        events = [
            Event(999, "test", EventKind.STALL, stall="load", cycles=3,
                  index=0, pc=0),
            Event(1000, "test", EventKind.STALL, stall="load", cycles=4,
                  index=1, pc=4),
        ]
        timeline = stall_timeline(events, window=1000)
        assert [start for start, _bucket in timeline] == [0, 1000]
        assert timeline[0][1][StallKind.LOAD] == 3
        assert timeline[1][1][StallKind.LOAD] == 4
