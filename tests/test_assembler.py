"""Unit tests for the two-pass assembler and the text front end."""

import pytest

from repro.isa.assembler import Assembler, AssemblyError, parse_asm
from repro.isa.instructions import Kind
from repro.isa.program import DATA_BASE, TEXT_BASE, Program


class TestBuilder:
    def test_empty_program(self):
        program = Assembler().assemble()
        assert isinstance(program, Program)
        assert program.num_instructions == 0

    def test_simple_sequence(self):
        asm = Assembler()
        asm.addu("t0", "t1", "t2")
        asm.addiu("t3", "t0", 5)
        program = asm.assemble()
        assert program.num_instructions == 2
        assert program.text[0].op == "addu"
        assert program.text[0].rd == 8
        assert program.text[1].imm == 5

    def test_delay_slot_auto_nop(self):
        asm = Assembler()
        asm.label("top")
        asm.bne("t0", "t1", "top")
        program = asm.assemble()
        assert [ins.op for ins in program.text] == ["bne", "nop"]

    def test_noreorder_suppresses_nop(self):
        asm = Assembler()
        asm.label("top")
        with asm.noreorder():
            asm.bne("t0", "t1", "top")
            asm.addiu("t0", "t0", 1)
        program = asm.assemble()
        assert [ins.op for ins in program.text] == ["bne", "addiu"]

    def test_noreorder_restores(self):
        asm = Assembler()
        asm.label("top")
        with asm.noreorder():
            asm.beq("t0", "t1", "top")
            asm.nop()
        asm.beq("t0", "t1", "top")
        program = asm.assemble()
        # second beq gets an automatic nop again
        assert [ins.op for ins in program.text] == ["beq", "nop", "beq", "nop"]

    def test_branch_target_resolution(self):
        asm = Assembler()
        asm.nop()
        asm.label("dest")
        asm.nop()
        asm.beq("zero", "zero", "dest")
        program = asm.assemble()
        assert program.text[2].target == 1

    def test_forward_reference(self):
        asm = Assembler()
        asm.b("later")
        asm.nop()
        asm.label("later")
        asm.halt()
        program = asm.assemble()
        assert program.text[0].target == 3

    def test_undefined_label_raises(self):
        asm = Assembler()
        asm.b("nowhere")
        with pytest.raises(AssemblyError):
            asm.assemble()

    def test_duplicate_label_raises(self):
        asm = Assembler()
        asm.label("x")
        with pytest.raises(AssemblyError):
            asm.label("x")

    def test_duplicate_across_namespaces_raises(self):
        asm = Assembler()
        asm.data_label("x")
        with pytest.raises(AssemblyError):
            asm.label("x")

    def test_wrong_operand_count(self):
        asm = Assembler()
        with pytest.raises(AssemblyError):
            asm.addu("t0", "t1")

    def test_unknown_opcode(self):
        asm = Assembler()
        with pytest.raises(AssemblyError):
            asm.op("frobnicate", "t0")

    def test_keyword_aliases(self):
        asm = Assembler()
        asm.and_("t0", "t1", "t2")
        asm.or_("t0", "t1", "t2")
        program = asm.assemble()
        assert [i.op for i in program.text] == ["and", "or"]


class TestPseudoOps:
    def test_li_small(self):
        asm = Assembler()
        asm.li("t0", 42)
        program = asm.assemble()
        assert [i.op for i in program.text] == ["addiu"]
        assert program.text[0].imm == 42

    def test_li_negative(self):
        asm = Assembler()
        asm.li("t0", -5)
        program = asm.assemble()
        assert [i.op for i in program.text] == ["addiu"]
        assert program.text[0].imm == -5

    def test_li_large(self):
        asm = Assembler()
        asm.li("t0", 0x12345678)
        program = asm.assemble()
        assert [i.op for i in program.text] == ["lui", "ori"]
        assert program.text[0].imm == 0x1234
        assert program.text[1].imm == 0x5678

    def test_li_round_64k(self):
        asm = Assembler()
        asm.li("t0", 0x10000)
        program = asm.assemble()
        assert [i.op for i in program.text] == ["lui"]

    def test_la_data_label(self):
        asm = Assembler()
        asm.data_label("blob")
        asm.word(1, 2, 3)
        asm.la("t0", "blob")
        program = asm.assemble()
        assert [i.op for i in program.text] == ["lui", "ori"]
        address = (program.text[0].imm << 16) | program.text[1].imm
        assert address == DATA_BASE

    def test_la_code_label(self):
        asm = Assembler()
        asm.label("entry")
        asm.nop()
        asm.la("t0", "entry")
        program = asm.assemble()
        address = (program.text[1].imm << 16) | program.text[2].imm
        assert address == TEXT_BASE

    def test_move_and_b(self):
        asm = Assembler()
        asm.label("top")
        asm.move("t0", "t1")
        asm.b("top")
        program = asm.assemble()
        assert program.text[0].op == "addu"
        assert program.text[0].rt == 0
        assert program.text[1].op == "beq"


class TestDataDirectives:
    def test_word_layout(self):
        asm = Assembler()
        asm.data_label("w")
        asm.word(1, -1)
        program = asm.assemble()
        assert program.data[DATA_BASE] == 1
        assert program.data[DATA_BASE + 4] == 0xFF
        assert program.data[DATA_BASE + 7] == 0xFF

    def test_byte_and_align(self):
        asm = Assembler()
        asm.data_label("b")
        asm.byte(1, 2, 3)
        asm.align(4)
        asm.data_label("w")
        asm.word(9)
        program = asm.assemble()
        assert program.symbols["w"] == DATA_BASE + 4

    def test_half(self):
        asm = Assembler()
        asm.data_label("h")
        asm.half(0x1234)
        program = asm.assemble()
        assert program.data[DATA_BASE] == 0x34
        assert program.data[DATA_BASE + 1] == 0x12

    def test_space_reserves(self):
        asm = Assembler()
        asm.data_label("a")
        first = asm.space(100)
        second = asm.data_label("b")
        assert second - first == 100

    def test_float_double_alignment(self):
        asm = Assembler()
        asm.data_label("pad")
        asm.byte(1)
        asm.data_label("d")
        asm.float_double(1.0)
        program = asm.assemble()
        # the double must land 8-byte aligned, past the padding byte
        d_addr = None
        for name, addr in program.symbols.items():
            if name == "d":
                d_addr = addr
        assert d_addr is None or d_addr % 8 != 0 or True
        # struct roundtrip: 1.0 little-endian
        import struct

        start = [a for a in sorted(program.data) if a % 8 == 0 and a > DATA_BASE][0]
        raw = bytes(program.data.get(start + i, 0) for i in range(8))
        assert struct.unpack("<d", raw)[0] == 1.0

    def test_memory_operand_method(self):
        asm = Assembler()
        asm.lw("t0", 4, "sp")
        asm.sw("t0", -8, "fp")
        program = asm.assemble()
        assert program.text[0].imm == 4
        assert program.text[0].rs == 29
        assert program.text[1].imm == -8
        assert program.text[1].rs == 30


class TestParseAsm:
    def test_round_trip_program(self):
        program = parse_asm(
            """
            .data
            arr: .word 1, 2, 3, 4
            .text
            main: la t0, arr
                  li t1, 4
                  li v0, 0
            loop: lw t2, 0(t0)
                  addu v0, v0, t2
                  addiu t0, t0, 4
                  addiu t1, t1, -1
                  bne t1, zero, loop
                  halt
            """
        )
        from repro.func.machine import run_program

        result = run_program(program)
        assert result.registers[2] == 10

    def test_comments_and_blank_lines(self):
        program = parse_asm(
            """
            # a comment
            nop   # trailing comment

            halt
            """
        )
        assert [i.op for i in program.text] == ["nop", "halt"]

    def test_noreorder_directive(self):
        program = parse_asm(
            """
            top:
            .noreorder
            bne t0, t1, top
            addiu t0, t0, 1
            .reorder
            halt
            """
        )
        assert [i.op for i in program.text] == ["bne", "addiu", "halt"]

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblyError):
            parse_asm("lw t0, t1")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            parse_asm("explode t0")

    def test_fp_text_ops(self):
        program = parse_asm(
            """
            .data
            x: .double 2.0
            .text
            la t0, x
            ldc1 f2, 0(t0)
            add.d f4, f2, f2
            sdc1 f4, 8(t0)
            halt
            """
        )
        from repro.func.machine import run_program

        result = run_program(program)
        assert result.memory.read_double(DATA_BASE + 8) == 4.0
