"""The loadgen driver: query sources, the closed loop, perf records."""

from __future__ import annotations

import json

import pytest

from repro.serve.loadgen import (
    LoadError,
    LoadReport,
    load_queries,
    run_load,
    synthetic_queries,
    write_queries,
)
from repro.serve.protocol import parse_query
from repro.serve.server import BackgroundServer, ServeConfig
from repro.telemetry.baseline import BaselineError, PerfHistory


class TestQuerySources:
    def test_synthetic_is_seed_deterministic(self):
        assert synthetic_queries(seed=7, count=16) == synthetic_queries(
            seed=7, count=16
        )
        assert synthetic_queries(seed=7, count=16) != synthetic_queries(
            seed=8, count=16
        )

    def test_synthetic_queries_all_parse(self):
        queries = synthetic_queries(seed=0, count=32)
        assert len(queries) == 32
        for payload in queries:
            query = parse_query(payload)
            assert query.workload in ("espresso", "sc")
            assert query.factor == 0.05

    def test_record_replay_roundtrip(self, tmp_path):
        queries = synthetic_queries(seed=3, count=8)
        path = write_queries(tmp_path / "queries.jsonl", queries)
        assert load_queries(path) == queries

    def test_load_queries_rejects_bad_line(self, tmp_path):
        path = tmp_path / "queries.jsonl"
        path.write_text('{"workload": "espresso"}\n{broken\n')
        with pytest.raises(LoadError, match=r"queries\.jsonl:2"):
            load_queries(path)

    def test_load_queries_rejects_empty(self, tmp_path):
        path = tmp_path / "queries.jsonl"
        path.write_text("\n\n")
        with pytest.raises(LoadError, match="no queries"):
            load_queries(path)

    def test_load_queries_rejects_missing_file(self, tmp_path):
        with pytest.raises(LoadError, match="cannot read"):
            load_queries(tmp_path / "absent.jsonl")


class TestLoadReport:
    def test_render_and_percentiles(self):
        report = LoadReport(
            requests=5,
            errors=1,
            memo_hits=2,
            wall_seconds=2.5,
            latencies=[0.010, 0.020, 0.030, 0.040, 0.050],
            error_samples=["HTTP 400: b'...'"],
        )
        assert report.throughput == 2.0
        # Bucket-resolution quantile over LATENCY_BUCKETS: the rank-3
        # sample (0.030) lands in the 0.050 le-bucket, clamped to the
        # observed max — identical derivation to the server's histogram.
        assert report.p50_ms == 50.0
        text = report.render()
        assert "requests" in text and "latency p99" in text
        assert "error sample: HTTP 400" in text

    def test_as_perf_record_validates_and_keys_serve_series(self, tmp_path):
        report = LoadReport(
            requests=8,
            memo_hits=3,
            instructions=4000,
            sim_cycles=9000,
            wall_seconds=0.5,
            latencies=[0.002] * 8,
        )
        record = report.as_perf_record(
            git_sha="abc1234",
            recorded_at=1_722_950_000.0,
            workload="mixed",
            factor=0.05,
        )
        history = PerfHistory(tmp_path / "BENCH_history.json")
        stored = history.append(record)
        assert stored["mode"] == "serve"
        assert stored["requests_per_second"] == 16.0
        assert stored["cache_misses"] == 5

    def test_compare_refuses_cross_mode(self, tmp_path):
        """A serve-mode run is a different series from a simulate
        baseline; perf --check must refuse, not report a regression."""
        history = PerfHistory(tmp_path / "BENCH_history.json")
        simulate_baseline = {
            "git_sha": "abc1234",
            "recorded_at": 1_722_950_000.0,
            "workload": "mixed",
            "factor": 0.05,
            "config": "grid",
            "instructions": 4000,
            "sim_cycles": 9000,
            "wall_seconds": 0.5,
            "cycles_per_second": 18000.0,
            "instructions_per_second": 8000.0,
            "cache_hits": 0,
            "cache_misses": 1,
        }
        history.seed_baseline(simulate_baseline)
        serve_record = LoadReport(
            requests=8,
            instructions=4000,
            sim_cycles=9000,
            wall_seconds=0.5,
            latencies=[0.002] * 8,
        ).as_perf_record(
            git_sha="abc1234",
            recorded_at=1_722_950_001.0,
            workload="mixed",
            factor=0.05,
        )
        with pytest.raises(BaselineError, match="mode='simulate'"):
            history.compare(serve_record)

    def test_negative_latency_field_rejected(self, tmp_path):
        record = LoadReport(
            requests=1, wall_seconds=0.1, latencies=[0.001]
        ).as_perf_record(
            git_sha="abc1234",
            recorded_at=1.0,
            workload="mixed",
            factor=0.05,
        )
        record["latency_p99_ms"] = -1.0
        with pytest.raises(BaselineError, match="latency_p99_ms"):
            PerfHistory(tmp_path / "h.json").append(record)


class TestRunLoad:
    def test_bad_url(self):
        with pytest.raises(LoadError, match="url must be"):
            run_load("ftp://nope", [{}])

    def test_bad_concurrency(self):
        with pytest.raises(LoadError, match="concurrency"):
            run_load("http://127.0.0.1:1", [{}], concurrency=0)

    def test_closed_loop_against_live_server(self, tmp_path):
        """One warm pass then a concurrent replay: zero errors, all
        memo hits, sane percentiles — the CI smoke in miniature."""
        queries = synthetic_queries(seed=1, count=6, workloads=("sc",))
        config = ServeConfig(
            store_root=str(tmp_path / "memo"), window=0.02, jobs=1
        )
        with BackgroundServer(config) as server:
            warm = run_load(server.url, queries, concurrency=2)
            assert warm.errors == 0, warm.error_samples
            assert warm.requests == len(queries)

            replay = run_load(server.url, queries, concurrency=4)
            assert replay.errors == 0, replay.error_samples
            assert replay.requests == len(queries)
            assert replay.memo_hits == len(queries)
            assert replay.instructions > 0
            assert replay.sim_cycles > 0
            assert 0 < replay.p50_ms <= replay.p99_ms
            assert replay.throughput > 0

            record = replay.as_perf_record(
                git_sha="abc1234",
                recorded_at=1_722_950_000.0,
                workload="mixed",
                factor=0.05,
            )
            history = PerfHistory(tmp_path / "BENCH_history.json")
            assert history.append(record)["mode"] == "serve"

    def test_request_budget_overrides_query_count(self, tmp_path):
        queries = synthetic_queries(seed=2, count=4, workloads=("sc",))
        config = ServeConfig(
            store_root=str(tmp_path / "memo"), window=0.02, jobs=1
        )
        with BackgroundServer(config) as server:
            report = run_load(
                server.url, queries, concurrency=2, requests=9
            )
            assert report.requests == 9
            assert report.errors == 0, report.error_samples

    def test_errors_are_counted_not_raised(self, tmp_path):
        config = ServeConfig(
            store_root=str(tmp_path / "memo"), window=0.02, jobs=1
        )
        bad = [{"workload": "espresso", "factor": -1}]
        with BackgroundServer(config) as server:
            report = run_load(server.url, bad, concurrency=1)
        assert report.requests == 1
        assert report.errors == 1
        assert "HTTP 400" in report.error_samples[0]


class TestCLI:
    def test_record_then_replay_via_cli(self, tmp_path, capsys):
        from repro.experiments.cli import main

        recorded = tmp_path / "queries.jsonl"
        assert (
            main(
                [
                    "loadgen",
                    "--record",
                    str(recorded),
                    "--seed",
                    "5",
                    "--count",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "recorded 4 queries" in out
        assert len(load_queries(recorded)) == 4

        config = ServeConfig(
            store_root=str(tmp_path / "memo"), window=0.02, jobs=1
        )
        history = tmp_path / "BENCH_history.json"
        with BackgroundServer(config) as server:
            code = main(
                [
                    "loadgen",
                    "--url",
                    server.url,
                    "--queries",
                    str(recorded),
                    "--concurrency",
                    "2",
                    "--history",
                    str(history),
                ]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "errors" in out and "latency p99" in out
        document = json.loads(history.read_text())
        assert document["records"][-1]["mode"] == "serve"

    def test_missing_query_file_is_usage_error(self, capsys):
        from repro.experiments.cli import main

        code = main(
            ["loadgen", "--url", "http://127.0.0.1:1", "--queries", "/nope"]
        )
        assert code == 2
        assert "cannot read" in capsys.readouterr().err
