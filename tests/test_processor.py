"""Integration tests for the Aurora III timing model.

Synthetic traces with known properties pin down issue, stall and memory
behaviour; the workload fixtures exercise the full machine.
"""

import pytest

from repro.core.config import BASELINE, LARGE, SMALL, MachineConfig
from repro.core.processor import simulate_trace
from repro.core.stats import StallKind
from repro.func.trace import NO_REG
from repro.isa.instructions import Kind
from repro.isa.program import TEXT_BASE

ALU = int(Kind.ALU)
LOAD = int(Kind.LOAD)
STORE = int(Kind.STORE)
BRANCH = int(Kind.BRANCH)
JUMP = int(Kind.JUMP)
NOP = int(Kind.NOP)


def alu(pc, dst=NO_REG, s1=NO_REG, s2=NO_REG):
    return (TEXT_BASE + 4 * pc, ALU, dst, s1, s2, 0)


def load(pc, dst, base_reg, addr):
    return (TEXT_BASE + 4 * pc, LOAD, dst, base_reg, NO_REG, addr)


def store(pc, s_data, addr):
    return (TEXT_BASE + 4 * pc, STORE, NO_REG, NO_REG, s_data, addr)


def independent_alu_trace(count, wrap=128):
    """ALU ops with no dependencies; pcs loop over a small code footprint."""
    return [alu(i % wrap, dst=(i % 8) + 8) for i in range(count)]


def dependent_alu_trace(count, wrap=128):
    """Every op reads the previous op's destination."""
    records = []
    for i in range(count):
        dst = (i % 2) + 8
        src = ((i + 1) % 2) + 8
        records.append(alu(i % wrap, dst=dst, s1=src))
    return records


class TestIssueBandwidth:
    def test_dual_issue_halves_alu_cpi(self):
        trace = independent_alu_trace(10000)
        dual = simulate_trace(trace, BASELINE.dual_issue()).stats
        single = simulate_trace(trace, BASELINE.single_issue()).stats
        assert dual.cpi == pytest.approx(0.5, abs=0.1)
        assert single.cpi == pytest.approx(1.0, abs=0.1)

    def test_dependent_chain_cannot_pair(self):
        trace = dependent_alu_trace(2000)
        dual = simulate_trace(trace, BASELINE.dual_issue()).stats
        assert dual.cpi == pytest.approx(1.0, abs=0.1)
        assert dual.dual_issued_pairs < 20

    def test_pairing_requires_alignment(self):
        # all instructions at odd word slots cannot be the even half
        trace = [alu(2 * i + 1, dst=8) for i in range(1000)]
        dual = simulate_trace(trace, BASELINE.dual_issue()).stats
        assert dual.cpi >= 0.95

    def test_two_memory_ops_never_pair(self):
        trace = []
        for i in range(0, 1000, 2):
            trace.append(load(i, 8, NO_REG, 0x1000))
            trace.append(load(i + 1, 9, NO_REG, 0x1000))
        stats = simulate_trace(trace, LARGE.dual_issue()).stats
        # one memory port: at most one per cycle
        assert stats.cpi >= 0.95


class TestLoadBehaviour:
    def test_load_use_stall_matches_dcache_latency(self):
        # load; dependent ALU; repeat (always hitting after warmup)
        trace = []
        pc = 0
        for _ in range(500):
            trace.append(load(pc, 8, NO_REG, 0x1000))
            trace.append(alu(pc + 1, dst=9, s1=8))
            pc += 2
        stats = simulate_trace(trace, LARGE.dual_issue()).stats
        # each load-use pair costs ~(1 + dcache_latency + 1) cycles:
        # address generation, the pipelined 3-cycle array, use
        assert stats.cpi == pytest.approx(2.5, abs=0.4)
        assert stats.stall_cycles[StallKind.LOAD] > 0

    def test_independent_work_hides_load_latency(self):
        trace = []
        pc = 0
        for _ in range(400):
            trace.append(load(pc, 8, NO_REG, 0x1000))
            for k in range(6):
                trace.append(alu(pc + 1 + k, dst=10 + k))
            trace.append(alu(pc + 7, dst=9, s1=8))
            pc += 8
        stats = simulate_trace(trace, LARGE.dual_issue()).stats
        assert stats.cpi < 1.0  # latency overlapped with the filler ops

    def test_miss_costs_memory_latency(self):
        # march through memory: every 8th load misses a 32-byte line
        trace = [
            load(i, 8, NO_REG, 0x10000 + 4 * i) for i in range(2000)
        ]
        fast = simulate_trace(trace, LARGE.with_latency(17).without_prefetch()).stats
        slow = simulate_trace(trace, LARGE.with_latency(35).without_prefetch()).stats
        assert slow.cycles > fast.cycles
        assert fast.dcache_hit_rate == pytest.approx(7 / 8, abs=0.02)

    def test_prefetch_hides_sequential_misses(self):
        trace = [
            load(i, 8, NO_REG, 0x10000 + 4 * i) for i in range(2000)
        ]
        with_pf = simulate_trace(trace, LARGE).stats
        without = simulate_trace(trace, LARGE.without_prefetch()).stats
        assert with_pf.cycles < without.cycles
        assert with_pf.dprefetch_hits > 0


class TestMshrEffects:
    def test_single_mshr_serialises_even_hits(self):
        trace = [load(i, (i % 8) + 8, NO_REG, 0x1000) for i in range(1000)]
        one = simulate_trace(trace, LARGE.with_mshrs(1)).stats
        four = simulate_trace(trace, LARGE.with_mshrs(4)).stats
        assert one.cycles > 1.5 * four.cycles
        assert one.stall_cycles[StallKind.LSU] > 0

    def test_miss_overlap_with_multiple_mshrs(self):
        # strided loads: every access a different line (all miss)
        trace = [load(i, 8, NO_REG, 0x10000 + 64 * i) for i in range(500)]
        config = LARGE.without_prefetch()
        one = simulate_trace(trace, config.with_mshrs(1)).stats
        four = simulate_trace(trace, config.with_mshrs(4)).stats
        assert four.cycles < one.cycles


class TestStoresAndWriteCache:
    def test_sequential_stores_coalesce(self):
        trace = [store(i, 9, 0x10000 + 4 * i) for i in range(800)]
        stats = simulate_trace(trace, BASELINE).stats
        # 8 words per line -> at most ~1/8 of stores go off chip
        assert stats.store_traffic_ratio < 0.25
        assert stats.writecache_hit_rate > 0.8

    def test_scattered_stores_thrash_small_write_cache(self):
        trace = [store(i, 9, 0x10000 + 256 * i) for i in range(800)]
        small_wc = simulate_trace(trace, SMALL).stats
        assert small_wc.store_traffic_ratio > 0.9

    def test_store_counts(self):
        trace = [store(i, 9, 0x1000) for i in range(100)]
        stats = simulate_trace(trace, BASELINE).stats
        assert stats.stores == 100
        assert stats.store_instructions == 100


class TestFetchSide:
    def test_code_fitting_in_icache_hits(self, counting_trace):
        stats = simulate_trace(counting_trace, BASELINE).stats
        assert stats.icache_hit_rate > 0.99

    def test_large_code_footprint_misses(self):
        # 8 KB straight-line code re-run twice > any model's I-cache
        big = [alu(i, dst=8) for i in range(2048)] * 2
        small_stats = simulate_trace(big, SMALL).stats
        large_stats = simulate_trace(big, LARGE).stats
        assert small_stats.icache_hit_rate < 1.0
        assert small_stats.stall_cycles[StallKind.ICACHE] > 0
        assert large_stats.cycles <= small_stats.cycles

    def test_branch_folding_removes_taken_penalty(self):
        # tight taken-branch loop (branch, delay slot) x many
        trace = []
        for i in range(600):
            target = TEXT_BASE
            trace.append((TEXT_BASE, BRANCH, NO_REG, 8, NO_REG, target))
            trace.append((TEXT_BASE + 4, NOP, NO_REG, NO_REG, NO_REG, 0))
        folded = simulate_trace(trace, BASELINE.single_issue()).stats
        unfolded = simulate_trace(
            trace, BASELINE.single_issue().with_(branch_folding=False)
        ).stats
        assert unfolded.cycles > folded.cycles

    def test_register_jumps_always_pay_redirect(self):
        trace = []
        for i in range(0, 900, 3):
            # jr (register jump), delay slot, landing pad
            trace.append((TEXT_BASE + 4 * i, JUMP, NO_REG, 31, NO_REG,
                          TEXT_BASE + 4 * (i + 2)))
            trace.append(alu(i + 1))
            trace.append(alu(i + 2))
        stats = simulate_trace(trace, BASELINE.single_issue()).stats
        assert stats.cpi > 1.0  # the redirect bubble is visible

    @pytest.mark.parametrize("issue", ["single_issue", "dual_issue"])
    def test_back_to_back_taken_jumps_both_pay_redirect(self, issue):
        # Regression: two taken register jumps are in flight at once (the
        # second in the first one's shadow); a scalar pending-redirect
        # slot let the second overwrite the first, silently dropping the
        # first bubble.  The traces below are identical except for the
        # first jump's taken-target field, so any cycle difference is
        # exactly that bubble: the load at the first redirect's landing
        # index issues a cycle later, and its dependent use follows.
        def jump(pc, taken):
            target = TEXT_BASE + 4 * (pc + 2) if taken else 0
            return (TEXT_BASE + 4 * pc, JUMP, NO_REG, 31, NO_REG, target)

        def probe(first_taken):
            return [
                jump(0, first_taken),
                jump(1, True),
                load(2, 8, NO_REG, 0x1000),
                alu(3, dst=9, s1=8),
                alu(4),
            ]

        config = getattr(BASELINE, issue)().without_prefetch()
        both_taken = simulate_trace(probe(True), config).stats.cycles
        first_untaken = simulate_trace(probe(False), config).stats.cycles
        assert both_taken > first_untaken


class TestInflightFillTracking:
    def test_bound_crossing_never_double_requests_pending_line(
        self, monkeypatch
    ):
        # Regression: crossing INFLIGHT_BOUND distinct D-lines wholesale-
        # cleared the in-flight fill map, forgetting fills still on the
        # bus; re-touching such a line issued a second BIU read for data
        # already in flight.  With correct tracking every distinct line
        # is read exactly once: the final re-load of line A must join
        # A's pending fill (A was evicted by an aliasing line, and the
        # line that crosses the bound lands while A's fill is in flight).
        import repro.core.processor as proc_module
        from repro.core.processor import INFLIGHT_BOUND

        counted = {"dread": 0}

        class CountingBIU(proc_module.BusInterfaceUnit):
            def request(self, time, kind):
                if kind == "dread":
                    counted["dread"] += 1
                return super().request(time, kind)

        line_size = 32
        sets = 1024  # 32 KB direct-mapped dcache
        trace = []
        pc = 0
        lines = set()
        k = 1
        # Warm up to INFLIGHT_BOUND - 2 distinct lines, none mapping to
        # set 0 (where the critical lines live).
        while len(lines) < INFLIGHT_BOUND - 2:
            if k % sets != 0:
                trace.append(load(pc, (pc % 8) + 8, NO_REG, k * line_size))
                lines.add(k)
                pc += 1
            k += 1
        # Drain the ROB so the critical tail issues back-to-back.
        for j in range(12):
            trace.append(alu(pc, dst=16 + (j % 8)))
            pc += 1
        line_a = 0
        alias = sets * line_size  # same set as A: evicts it
        crosser = (k + 7) * line_size  # crosses the bound while A fills
        for addr in (line_a, alias, crosser, line_a):
            trace.append(load(pc, (pc % 8) + 8, NO_REG, addr))
            pc += 1
        lines |= {0, sets, k + 7}

        monkeypatch.setattr(proc_module, "BusInterfaceUnit", CountingBIU)
        config = BASELINE.without_prefetch().with_mshrs(8).with_latency(200)
        simulate_trace(trace, config)
        # one read per distinct line; the buggy clear() produced one more
        assert counted["dread"] == len(lines)


class TestStatsIntegrity:
    @pytest.mark.parametrize("model_name", ["small", "baseline", "large"])
    def test_invariants_on_real_workload(
        self, model_name, espresso_trace_small, models
    ):
        model = {m.name: m for m in models}[model_name]
        stats = simulate_trace(espresso_trace_small, model).stats
        stats.check_invariants()
        assert stats.instructions == len(espresso_trace_small)
        assert stats.cycles >= stats.instructions / 2  # issue width bound

    def test_fp_workload_invariants(self, fp_trace_small, models):
        for model in models:
            stats = simulate_trace(fp_trace_small, model).stats
            stats.check_invariants()
            assert stats.fp_instructions > 0

    def test_violated_invariant_raises_real_exception(self):
        # Regression: bare asserts made check_invariants a no-op under
        # python -O; it must raise an explicit exception type.
        from repro.core.stats import InvariantError, SimStats

        stats = SimStats(instructions=100, cycles=50)
        stats.icache_hits = 10
        stats.icache_accesses = 5  # more hits than accesses
        with pytest.raises(InvariantError, match="icache hits"):
            stats.check_invariants()
        # back-compat: callers that caught the old assert failures
        assert issubclass(InvariantError, AssertionError)

    def test_negative_cycles_violates_invariant(self):
        from repro.core.stats import InvariantError, SimStats

        with pytest.raises(InvariantError, match="negative cycles"):
            SimStats(instructions=1, cycles=-1).check_invariants()

    def test_monotone_in_memory_latency(self, espresso_trace_small):
        cycles = [
            simulate_trace(espresso_trace_small, BASELINE.with_latency(lat)).stats.cycles
            for lat in (5, 17, 35, 70)
        ]
        assert cycles == sorted(cycles)

    def test_model_ordering_on_real_workload(self, espresso_trace_small, models):
        small, baseline, large = models
        cpis = [
            simulate_trace(espresso_trace_small, m.dual_issue()).stats.cpi
            for m in (small, baseline, large)
        ]
        assert cpis[0] >= cpis[1] >= cpis[2]

    def test_summary_renders(self, counting_trace):
        stats = simulate_trace(counting_trace, BASELINE).stats
        text = stats.summary()
        assert "CPI" in text and "instructions" in text

    def test_empty_trace(self):
        stats = simulate_trace([], BASELINE).stats
        assert stats.instructions == 0
        assert stats.cpi == 0.0

    def test_result_carries_config(self, counting_trace):
        result = simulate_trace(counting_trace, SMALL)
        assert result.config is SMALL
        assert result.cpi == result.stats.cpi
