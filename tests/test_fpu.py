"""Unit tests for the decoupled FPU timing engine."""

import pytest

from repro.core.config import FPIssuePolicy, FPUConfig
from repro.core.fpu import DecoupledFPU, FPUnit
from repro.isa.instructions import Kind

ADD = int(Kind.FP_ADD)
MUL = int(Kind.FP_MUL)
DIV = int(Kind.FP_DIV)
CVT = int(Kind.FP_CVT)


def make(policy=FPIssuePolicy.SINGLE_ISSUE, **overrides):
    cfg = FPUConfig(issue_policy=policy, **overrides)
    return DecoupledFPU(cfg)


class TestInOrderCompletion:
    def test_fully_serialised(self):
        fpu = make(FPIssuePolicy.IN_ORDER_COMPLETION)
        first = fpu.arith(ADD, 2, 4, 6, arrive=0)  # 3-cycle add
        second = fpu.arith(ADD, 8, 10, 12, arrive=0)  # independent!
        assert second >= first + 3  # still waits for completion

    def test_loads_serialise_too(self):
        fpu = make(FPIssuePolicy.IN_ORDER_COMPLETION)
        first = fpu.arith(MUL, 2, 4, 6, arrive=0)  # 5-cycle mul
        write = fpu.load(8, data_arrival=0, arrive=0)
        assert write > first


class TestSingleIssue:
    def test_independent_ops_overlap(self):
        fpu = make()
        first = fpu.arith(ADD, 2, 4, 6, arrive=0)
        second = fpu.arith(MUL, 8, 10, 12, arrive=0)
        # second issues one cycle after the first, not after completion
        assert second < first + 5

    def test_one_issue_per_cycle(self):
        fpu = make(add_pipelined=True)
        c1 = fpu.arith(ADD, 2, 4, 6, arrive=0)
        c2 = fpu.arith(ADD, 8, 10, 12, arrive=0)
        # pipelined adds: completions one cycle apart (issue serialised)
        assert c2 == c1 + 1

    def test_raw_dependency_respected(self):
        fpu = make()
        first = fpu.arith(ADD, 2, 4, 6, arrive=0)
        second = fpu.arith(ADD, 8, 2, 6, arrive=0)  # reads f2
        assert second >= first + 3  # waits for f2 then takes add latency

    def test_iterative_unit_blocks(self):
        fpu = make(mul_pipelined=False, mul_latency=5)
        c1 = fpu.arith(MUL, 2, 4, 6, arrive=0)
        c2 = fpu.arith(MUL, 8, 10, 12, arrive=0)  # independent muls
        assert c2 - c1 >= 5  # the iterative multiplier serialises them

    def test_pipelined_unit_streams(self):
        fpu = make(mul_pipelined=True, mul_latency=5)
        c1 = fpu.arith(MUL, 2, 4, 6, arrive=0)
        c2 = fpu.arith(MUL, 8, 10, 12, arrive=0)
        assert c2 - c1 == 1

    def test_divider_shared_and_slow(self):
        fpu = make(div_latency=19)
        c1 = fpu.arith(DIV, 2, 4, 6, arrive=0)
        c2 = fpu.arith(DIV, 8, 10, 12, arrive=0)
        assert c1 >= 19
        assert c2 - c1 >= 19

    def test_rob_limits_inflight(self):
        fpu = make(rob_entries=2, div_latency=19)
        fpu.arith(DIV, 2, 4, 6, arrive=0)  # blocks retirement
        fpu.arith(ADD, 8, 10, 12, arrive=0)
        third = fpu.arith(ADD, 14, 16, 18, arrive=2)
        # with only 2 ROB entries the third op waits for the divide
        assert third >= 19

    def test_compare_sets_condition_time(self):
        fpu = make()
        fpu.arith(ADD, -1, 4, 6, arrive=0)  # compare: fd == -1
        assert fpu.cond_ready >= 3


class TestDualIssue:
    def test_two_units_same_cycle(self):
        fpu = make(FPIssuePolicy.DUAL_ISSUE, add_pipelined=True)
        c_add = fpu.arith(ADD, 2, 4, 6, arrive=5)
        c_mul = fpu.arith(MUL, 8, 10, 12, arrive=5)
        # same issue cycle: completions differ exactly by latency delta
        assert (c_mul - c_add) == (5 - 3)

    def test_same_unit_cannot_pair(self):
        fpu = make(FPIssuePolicy.DUAL_ISSUE, add_pipelined=True)
        c1 = fpu.arith(ADD, 2, 4, 6, arrive=5)
        c2 = fpu.arith(ADD, 8, 10, 12, arrive=5)
        assert c2 == c1 + 1  # next cycle

    def test_at_most_two_per_cycle(self):
        fpu = make(FPIssuePolicy.DUAL_ISSUE, add_pipelined=True,
                   cvt_pipelined=True)
        fpu.arith(ADD, 2, 4, 6, arrive=5)
        fpu.arith(MUL, 8, 10, 12, arrive=5)
        third = fpu.arith(CVT, 14, 16, -1, arrive=5)
        assert third >= 5 + 2 + 1  # issued the following cycle


class TestQueues:
    def test_dispatch_floor_tracks_queue(self):
        fpu = make(instruction_queue=2, div_latency=19)
        assert fpu.dispatch_floor() == 0
        fpu.arith(DIV, 2, 4, 6, arrive=5)  # issues at 5
        fpu.arith(DIV, 8, 10, 12, arrive=5)  # divider busy: issues at ~24
        # queue holds 2: the next instruction may only enter once the
        # *first* left the queue (its issue time, 5)
        assert fpu.dispatch_floor() == 5

    def test_load_queue_backpressure(self):
        fpu = make(load_queue=1)
        fpu.load(2, data_arrival=10, arrive=0)
        floor = fpu.load_data_floor()
        assert floor >= 10

    def test_load_writes_out_of_band(self):
        """A stalled arithmetic op must not delay load-data RF writes."""
        fpu = make(div_latency=19)
        fpu.arith(DIV, 2, 4, 6, arrive=0)
        fpu.arith(ADD, 8, 2, -1, arrive=0)  # stuck waiting on the divide
        write = fpu.load(10, data_arrival=3, arrive=1)
        assert write <= 5  # landed long before the divide finished

    def test_store_issues_before_data_ready(self):
        """The store queue decouples issue from data availability."""
        fpu = make(div_latency=19)
        fpu.arith(DIV, 2, 4, 6, arrive=0)  # f2 ready at ~19
        data_out = fpu.store(2, arrive=1)  # store of f2
        follow = fpu.arith(ADD, 8, 10, 12, arrive=2)
        assert data_out >= 19  # data leaves only when produced
        assert follow < 19  # but issue flow was not blocked

    def test_store_queue_full_blocks(self):
        fpu = make(store_queue=1, div_latency=19)
        fpu.arith(DIV, 2, 4, 6, arrive=0)
        fpu.store(2, arrive=0)  # waits for the divide in the queue
        second = fpu.store(4, arrive=1)  # queue is full
        assert second >= 19

    def test_mtc1_behaves_like_load(self):
        fpu = make()
        write = fpu.mtc1(4, data_arrival=7, arrive=0)
        assert write >= 7
        assert fpu.reg_read_floor(4) == write


class TestResultBuses:
    def test_single_bus_serialises_writes(self):
        narrow = make(add_pipelined=True, result_buses=1)
        c1 = narrow.arith(ADD, 2, 4, 6, arrive=0)
        c2 = narrow.arith(ADD, 8, 10, 12, arrive=0)
        assert c2 > c1

    def test_instruction_count(self):
        fpu = make()
        fpu.arith(ADD, 2, 4, 6, arrive=0)
        fpu.load(8, 0, 0)
        fpu.store(2, 5)
        assert fpu.instructions == 3
