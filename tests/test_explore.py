"""Guided design-space exploration: pareto, spaces, model, search, CLI.

The load-bearing test is the acceptance criterion from the paper study:
at the standard test factor the guided explorer must recover the
exhaustive Figure 8 Pareto frontier *exactly* while simulating at most
half of the 58-config grid, with the analytic model inside its error
budget over the full grid.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import BASELINE
from repro.core.kernel import simulate_many
from repro.experiments import cli
from repro.experiments.common import scaled_trace
from repro.explore import (
    CPIEstimator,
    ExploreError,
    ModelError,
    dominates,
    explore,
    frontier_indices,
    get_space,
    rank_correlation,
    space_names,
)
from repro.explore.model import ModelReport
from repro.explore.space import SpaceError, fig8_space
from repro.telemetry import MetricsRegistry

FACTOR = 0.05
WORKLOAD = "espresso"


# ------------------------------------------------------------------ pareto


class TestPareto:
    def test_strict_dominance(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert dominates((1.0, 2.0), (2.0, 2.0))
        assert not dominates((1.0, 3.0), (2.0, 2.0))  # trade-off
        assert not dominates((2.0, 2.0), (1.0, 1.0))

    def test_equal_points_do_not_dominate_each_other(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0))

    def test_frontier_keeps_ties(self):
        points = [(1.0, 2.0), (1.0, 2.0), (2.0, 1.0), (2.0, 3.0)]
        chosen = frontier_indices(points)
        assert set(chosen) == {0, 1, 2}

    def test_frontier_of_chain(self):
        points = [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0), (3.0, 2.0)]
        assert set(frontier_indices(points)) == {0, 1, 2}

    def test_empty(self):
        assert frontier_indices([]) == []


# ------------------------------------------------------------------ spaces


class TestSpace:
    def test_fig8_is_the_58_config_grid(self):
        candidates = get_space("fig8")
        assert len(candidates) == 58
        labels = [c.label for c in candidates]
        assert len(set(labels)) == 58

    def test_markers_ride_only_on_l17_points(self):
        for candidate in fig8_space():
            if candidate.label.endswith("@L21"):
                assert candidate.marker == ""
                assert candidate.config.mem_latency == 21

    def test_l17_only_space(self):
        assert len(get_space("fig8-L17")) == 29

    def test_unknown_space(self):
        with pytest.raises(SpaceError, match="unknown space"):
            get_space("fig99")

    def test_space_names(self):
        assert "fig8" in space_names()


# ------------------------------------------------------------- rank corr


class TestRankCorrelation:
    def test_perfect_order(self):
        assert rank_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_reversed_order(self):
        assert rank_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_ties_get_average_ranks(self):
        assert rank_correlation([1, 1, 2], [1, 1, 2]) == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            rank_correlation([1.0], [1.0, 2.0])

    def test_report_from_no_pairs(self):
        report = ModelReport.from_pairs([])
        assert report.count == 0
        assert "model error" in report.render()


# ----------------------------------------------------------------- model


@pytest.fixture(scope="module")
def trace():
    return scaled_trace(WORKLOAD, FACTOR)


@pytest.fixture(scope="module")
def estimator(trace):
    return CPIEstimator.calibrate(trace)


class TestEstimator:
    def test_twelve_calibration_runs(self, estimator):
        assert estimator.calibration_count == 12

    def test_reproduces_its_anchors(self, estimator):
        for config, stats in estimator.calibration_stats.items():
            if config.issue_width != 2 or config.mem_latency != 17:
                continue  # transferred points are tested via validate()
            assert estimator.predict(config) == pytest.approx(
                stats.cpi, rel=0.02
            )

    def test_validates_own_calibration_set(self, estimator):
        report = estimator.validate(
            list(estimator.calibration_stats.items())
        )
        assert report.count == 12
        assert report.mean_rel_error < 0.05

    def test_unknown_family_raises(self, estimator):
        alien = BASELINE.dual_issue().with_latency(17).with_(
            icache_bytes=8192
        )
        with pytest.raises(ModelError, match="no family anchor"):
            estimator.predict(alien)


# ---------------------------------------------------------------- search


@pytest.fixture(scope="module")
def space():
    return get_space("fig8")


@pytest.fixture(scope="module")
def metrics():
    return MetricsRegistry()


@pytest.fixture(scope="module")
def result(space, trace, metrics):
    return explore(
        space,
        trace,
        workload=WORKLOAD,
        factor=FACTOR,
        metrics=metrics,
    )


@pytest.fixture(scope="module")
def exhaustive_frontier(space, trace):
    stats = [r.stats for r in simulate_many(trace, [c.config for c in space])]
    from repro.cost.rbe import total_cost

    live = [
        (c, s) for c, s in zip(space, stats) if s.instructions
    ]
    chosen = frontier_indices(
        [(total_cost(c.config), s.cpi) for c, s in live]
    )
    return sorted(live[i][0].label for i in chosen), stats


class TestExplore:
    def test_simulates_at_most_half_the_grid(self, result):
        assert result.configs_considered == 58
        assert result.simulated_fraction <= 0.5
        assert not result.budget_exhausted

    def test_recovers_the_exhaustive_frontier_exactly(
        self, result, exhaustive_frontier
    ):
        labels, _stats = exhaustive_frontier
        assert sorted(result.frontier_labels()) == labels

    def test_grid_model_error_within_budget(
        self, result, exhaustive_frontier, space, estimator
    ):
        _labels, stats = exhaustive_frontier
        report = estimator.validate(
            [(c.config, s) for c, s in zip(space, stats)]
        )
        assert report.count == 58
        assert report.mean_rel_error <= 0.15
        assert report.rank_corr > 0.9

    def test_every_frontier_claim_is_simulated(self, result):
        assert result.frontier()
        for point in result.frontier():
            assert point.simulated_cpi is not None

    def test_render_tags_the_frontier(self, result):
        text = result.render()
        assert "frontier" in text
        assert "simulated" in text
        assert "*" in text

    def test_to_dict_round_trips_as_json(self, result):
        document = json.loads(json.dumps(result.to_dict()))
        assert document["configs_considered"] == 58
        assert document["frontier"] == result.frontier_labels()

    def test_metrics_published(self, result, metrics):
        snapshot = metrics.as_dict()
        assert snapshot["counters"]["explore.configs_considered"] == 58
        assert (
            snapshot["counters"]["explore.configs_simulated"]
            == result.configs_simulated
        )
        assert snapshot["gauges"]["explore.simulated_fraction"] <= 0.5

    def test_empty_space_refused(self, trace):
        with pytest.raises(ExploreError, match="empty"):
            explore([], trace)

    def test_bad_budget_refused(self, space, trace):
        with pytest.raises(ExploreError, match="budget"):
            explore(space, trace, budget=0.0)

    def test_budget_below_calibration_refused(self, space, trace):
        with pytest.raises(ExploreError, match="calibration alone"):
            explore(space, trace, budget=0.1)


# ------------------------------------------------------------------- CLI


class TestExploreCli:
    def test_full_run_with_history(self, tmp_path, capsys):
        out = tmp_path / "explore.json"
        metrics_out = tmp_path / "metrics.json"
        history = tmp_path / "BENCH_history.json"
        assert cli.main([
            "explore", WORKLOAD, "--factor", str(FACTOR),
            "--out", str(out), "--metrics-out", str(metrics_out),
            "--history", str(history), "--seed-baseline", "--check",
        ]) == 0
        stdout = capsys.readouterr().out
        assert "Guided exploration" in stdout
        assert "perf check:" in stdout

        document = json.loads(out.read_text())
        assert document["simulated_fraction"] <= 0.5
        assert document["frontier"]

        snapshot = json.loads(metrics_out.read_text())
        assert snapshot["counters"]["explore.configs_considered"] == 58

        record = json.loads(history.read_text())["records"][-1]
        assert record["mode"] == "explore"
        assert record["config"] == "space:fig8"
        assert record["configs_simulated"] <= 29

    def test_unknown_space_exits_2(self, capsys):
        assert cli.main(["explore", WORKLOAD, "--space", "fig99"]) == 2
        assert "unknown space" in capsys.readouterr().err


# --------------------------------------------- cross-series refusal text


class TestCrossSeriesRefusal:
    def _record(self, **overrides):
        record = {
            "git_sha": "deadbee",
            "recorded_at": 1.0,
            "workload": "espresso",
            "factor": 0.05,
            "config": "baseline",
            "instructions": 1000,
            "sim_cycles": 2000,
            "wall_seconds": 0.5,
            "cycles_per_second": 4000.0,
            "instructions_per_second": 2000.0,
            "cache_hits": 1,
            "cache_misses": 0,
            "trace_path": "prepared",
            "kernel": "batched",
            "mode": "explore",
        }
        record.update(overrides)
        return record

    def test_refusal_names_every_offending_axis(self, tmp_path):
        from repro.telemetry.baseline import BaselineError, PerfHistory

        history = PerfHistory(tmp_path / "history.json")
        history.seed_baseline(self._record())
        divergent = self._record(
            workload="compress", kernel="scalar", mode="simulate"
        )
        with pytest.raises(BaselineError) as excinfo:
            history.compare(divergent)
        message = str(excinfo.value)
        assert "workload='espresso'" in message
        assert "workload='compress'" in message
        assert "kernel='batched'" in message
        assert "mode='explore'" in message
        assert "factor" not in message  # matching axes stay out of it
