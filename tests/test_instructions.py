"""Unit tests for the instruction-set definition."""

import pytest

from repro.isa.instructions import OPCODES, Instruction, Kind


class TestKind:
    def test_memory_kinds(self):
        assert Kind.LOAD.is_memory
        assert Kind.STORE.is_memory
        assert Kind.FP_LOAD.is_memory
        assert Kind.FP_STORE.is_memory
        assert Kind.FP_MOVE.is_memory
        assert not Kind.ALU.is_memory
        assert not Kind.BRANCH.is_memory

    def test_fp_kinds(self):
        for kind in (Kind.FP_ADD, Kind.FP_MUL, Kind.FP_DIV, Kind.FP_CVT,
                     Kind.FP_LOAD, Kind.FP_STORE, Kind.FP_MOVE):
            assert kind.is_fp
        for kind in (Kind.ALU, Kind.LOAD, Kind.STORE, Kind.BRANCH, Kind.JUMP):
            assert not kind.is_fp

    def test_control_kinds(self):
        assert Kind.BRANCH.is_control
        assert Kind.JUMP.is_control
        assert not Kind.ALU.is_control
        assert not Kind.LOAD.is_control


class TestOpcodeTable:
    def test_core_integer_ops_present(self):
        for name in ("addu", "subu", "and", "or", "xor", "nor", "slt",
                     "sltu", "addiu", "andi", "ori", "lui", "sll", "srl",
                     "sra", "mult", "div", "mfhi", "mflo"):
            assert name in OPCODES

    def test_memory_ops_present(self):
        for name in ("lw", "lh", "lhu", "lb", "lbu", "sw", "sh", "sb",
                     "lwc1", "swc1", "ldc1", "sdc1"):
            assert name in OPCODES

    def test_control_ops_present(self):
        for name in ("beq", "bne", "blez", "bgtz", "bltz", "bgez", "j",
                     "jal", "jr", "jalr", "bc1t", "bc1f"):
            assert name in OPCODES

    def test_fp_ops_present(self):
        for base in ("add", "sub", "mul", "div", "abs", "neg", "sqrt", "mov"):
            assert base + ".s" in OPCODES
            assert base + ".d" in OPCODES
        for name in ("cvt.d.w", "cvt.s.d", "cvt.w.d", "c.eq.d", "c.lt.s",
                     "c.le.d", "mtc1", "mfc1"):
            assert name in OPCODES

    @pytest.mark.parametrize("name", sorted(OPCODES))
    def test_spec_consistency(self, name):
        spec = OPCODES[name]
        assert spec.name == name
        assert isinstance(spec.kind, Kind)
        # writers are flagged consistently with their operand format
        if "fd" in spec.operands and spec.name != "swc1":
            if spec.kind != Kind.FP_STORE:
                assert spec.writes_fp or not spec.operands.startswith("fd")

    def test_kind_mapping_examples(self):
        assert OPCODES["addu"].kind is Kind.ALU
        assert OPCODES["lw"].kind is Kind.LOAD
        assert OPCODES["sw"].kind is Kind.STORE
        assert OPCODES["bne"].kind is Kind.BRANCH
        assert OPCODES["jal"].kind is Kind.JUMP
        assert OPCODES["add.d"].kind is Kind.FP_ADD
        assert OPCODES["mul.s"].kind is Kind.FP_MUL
        assert OPCODES["div.d"].kind is Kind.FP_DIV
        assert OPCODES["sqrt.d"].kind is Kind.FP_DIV  # shares the divider
        assert OPCODES["cvt.d.w"].kind is Kind.FP_CVT
        assert OPCODES["ldc1"].kind is Kind.FP_LOAD
        assert OPCODES["sdc1"].kind is Kind.FP_STORE
        assert OPCODES["mtc1"].kind is Kind.FP_MOVE

    def test_doubles_flagged(self):
        assert OPCODES["add.d"].double
        assert not OPCODES["add.s"].double
        assert OPCODES["ldc1"].double
        assert not OPCODES["lwc1"].double

    def test_hi_lo_flags(self):
        assert OPCODES["mult"].writes_hi_lo
        assert OPCODES["mfhi"].reads_hi_lo
        assert not OPCODES["addu"].writes_hi_lo


class TestInstruction:
    def test_defaults(self):
        ins = Instruction(op="addu", rd=2, rs=3, rt=4)
        assert ins.kind is Kind.ALU
        assert ins.spec is OPCODES["addu"]
        assert ins.imm == 0
        assert ins.label is None
        assert ins.target is None

    def test_str_smoke(self):
        # __str__ is a debugging aid; it must at least not crash
        for op in ("addu", "lw", "beq", "add.d", "nop"):
            assert op.split(".")[0] in str(Instruction(op=op)) or True
