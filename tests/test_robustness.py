"""Tests for the robustness subsystem: config validation, runtime
invariant guards, and the fault-tolerant checkpointing experiment runner.

See docs/ROBUSTNESS.md for the contract under test.
"""

import json
import time

import pytest

from repro.core.config import BASELINE, ConfigError, FPUConfig, MachineConfig
from repro.core.fpu import DecoupledFPU
from repro.core.mshr import MSHRFile
from repro.core.processor import AuroraProcessor, simulate_trace
from repro.experiments.common import CpiSummary, scaled_trace
from repro.robustness.faults import FaultPlan, FaultSpec, TransientFault, corrupt_trace
from repro.robustness.guards import (
    GuardViolation,
    RobustnessPolicy,
    SimulationError,
    Watchdog,
    config_fingerprint,
)
from repro.robustness.runner import (
    CheckpointedResult,
    ResilientRunner,
    code_fingerprint,
)
from repro.robustness.validation import (
    TraceValidationError,
    validate_factor,
    validate_scale,
    validate_trace,
)
from repro.workloads.registry import get_trace


@pytest.fixture(scope="module")
def small_trace():
    return get_trace("espresso", 12)


# --------------------------------------------------------------------------
# Layer 1: configuration and input validation
# --------------------------------------------------------------------------


class TestConfigValidationMatrix:
    """Each invalid shape is rejected with a message naming the field."""

    @pytest.mark.parametrize(
        "overrides, field",
        [
            ({"issue_width": 3}, "issue_width"),
            ({"line_bytes": 24}, "line_bytes"),
            ({"icache_bytes": 3000}, "icache_bytes"),  # not a power of two
            ({"dcache_bytes": 48 * 1024}, "dcache_bytes"),
            ({"writecache_lines": 0}, "writecache_lines"),
            ({"rob_entries": -1}, "rob_entries"),
            ({"mshr_entries": 0}, "mshr_entries"),
            ({"prefetch_buffers": 0}, "prefetch_buffers"),
            ({"prefetch_line_depth": 0}, "prefetch_line_depth"),
            ({"mem_latency": -5}, "mem_latency"),
            ({"dcache_latency": 0}, "dcache_latency"),
            ({"bus_occupancy": 0}, "bus_occupancy"),
            ({"retire_width": 0}, "retire_width"),
            ({"page_bytes": 100}, "page_bytes"),
            # Write cache the BIU cannot drain: 1024 lines x 1000-cycle
            # bus occupancy >> 16 memory round trips.
            ({"writecache_lines": 1024, "bus_occupancy": 1000},
             "writecache_lines"),
            ({"mem_latency": 10_000_000}, "mem_latency"),  # sanity ceiling
        ],
    )
    def test_rejected_naming_field(self, overrides, field):
        with pytest.raises(ConfigError, match=field):
            MachineConfig(**overrides)

    @pytest.mark.parametrize(
        "overrides, field",
        [
            ({"instruction_queue": 0}, "instruction_queue"),
            ({"load_queue": -2}, "load_queue"),
            ({"store_queue": 0}, "store_queue"),
            ({"rob_entries": 0}, "rob_entries"),
            ({"add_latency": 0}, "add_latency"),
            ({"div_latency": -1}, "div_latency"),
            ({"result_buses": 0}, "result_buses"),
            ({"instruction_queue": 10**6}, "instruction_queue"),  # ceiling
        ],
    )
    def test_fpu_rejected_naming_field(self, overrides, field):
        with pytest.raises(ConfigError, match=field):
            FPUConfig(**overrides)

    def test_all_violations_collected(self):
        """One error message lists every bad field, not just the first."""
        with pytest.raises(ConfigError) as excinfo:
            MachineConfig(mshr_entries=0, mem_latency=0, rob_entries=0)
        message = str(excinfo.value)
        assert "mshr_entries" in message
        assert "mem_latency" in message
        assert "rob_entries" in message

    def test_nested_fpu_violations_prefixed(self):
        fpu = object.__new__(FPUConfig)  # bypass __init__ validation
        object.__setattr__(fpu, "__dict__", FPUConfig().__dict__.copy())
        object.__setattr__(fpu, "load_queue", 0)
        with pytest.raises(ConfigError, match=r"fpu\.load_queue"):
            MachineConfig(fpu=fpu)

    def test_validate_returns_self(self):
        assert BASELINE.validate() is BASELINE

    def test_valid_configs_pass(self):
        for config in (BASELINE, MachineConfig(name="big", icache_bytes=1 << 20)):
            config.validate()


class TestTraceValidation:
    def test_valid_trace_passes(self, small_trace):
        validate_trace(small_trace)

    def test_empty_trace_allowed_by_default(self):
        validate_trace([])
        stats = simulate_trace([], BASELINE).stats
        assert stats.instructions == 0

    def test_empty_trace_rejected_when_asked(self):
        with pytest.raises(TraceValidationError, match="empty"):
            validate_trace([], allow_empty=False)

    def test_not_a_sequence(self):
        with pytest.raises(TraceValidationError, match="sequence"):
            validate_trace(42)

    @pytest.mark.parametrize(
        "record, field",
        [
            ((4, 0, 18), "6-tuple"),
            ((4, 0, 18, -1, -1, 0.5), "addr"),
            ((-4, 0, 18, -1, -1, 0), "pc"),
            ((6, 0, 18, -1, -1, 0), "aligned"),
            ((4, 127, 18, -1, -1, 0), "kind"),
            ((4, 0, 999, -1, -1, 0), "dst"),
            ((4, 0, 18, -2, -1, 0), "src1"),
            ((4, 0, 18, -1, 66, 0), "src2"),
            ((4, 1, 18, -1, -1, -8), "addr"),
        ],
    )
    def test_bad_record_named(self, record, field):
        with pytest.raises(TraceValidationError, match=field):
            validate_trace([record])

    def test_error_names_record_index(self, small_trace):
        bad = list(small_trace)
        bad[3] = (bad[3][0], 127, *bad[3][2:])
        with pytest.raises(TraceValidationError, match="record 3"):
            validate_trace(bad)

    def test_corrupt_trace_caught_by_simulate(self, small_trace):
        with pytest.raises(TraceValidationError):
            simulate_trace(corrupt_trace(small_trace, seed=7), BASELINE)

    def test_corrupt_trace_is_deterministic(self, small_trace):
        assert corrupt_trace(small_trace, seed=3) == corrupt_trace(
            small_trace, seed=3
        )
        assert corrupt_trace(small_trace, seed=3) != list(small_trace)


class TestPreparedValidationMemo:
    """The vectorized prepared-trace pass runs once per trace object."""

    @staticmethod
    def _fresh_prepared(small_trace):
        from repro.func.prepared import prepare_trace

        records = (
            small_trace.to_records()
            if hasattr(small_trace, "to_records")
            else list(small_trace)
        )
        return prepare_trace(records, workload="espresso")

    def test_revalidation_hits_the_memo(self, small_trace):
        from repro.robustness.validation import validation_snapshot

        prepared = self._fresh_prepared(small_trace)
        assert not prepared.validated
        passes, hits = validation_snapshot()
        validate_trace(prepared)
        assert prepared.validated
        assert validation_snapshot() == (passes + 1, hits)
        # A sweep re-validating the shared trace per config pays nothing:
        # no second vectorized pass, only memo hits.
        validate_trace(prepared)
        validate_trace(prepared)
        assert validation_snapshot() == (passes + 1, hits + 2)

    def test_memo_keyed_per_instance(self, small_trace):
        from repro.robustness.validation import validation_snapshot

        first = self._fresh_prepared(small_trace)
        second = self._fresh_prepared(small_trace)
        validate_trace(first)
        passes, hits = validation_snapshot()
        # A different PreparedTrace over the same records is a different
        # memo entry: it gets its own (single) vectorized pass.
        validate_trace(second)
        assert validation_snapshot() == (passes + 1, hits)

    def test_memo_does_not_pin_the_trace(self, small_trace):
        import gc
        import weakref

        prepared = self._fresh_prepared(small_trace)
        validate_trace(prepared)
        ref = weakref.ref(prepared)
        del prepared
        gc.collect()
        assert ref() is None, (
            "validation memo kept a shared PreparedTrace alive"
        )


class TestFactorAndScaleValidation:
    @pytest.mark.parametrize("factor", [0, -1, -0.5, float("nan"), float("inf")])
    def test_bad_factors(self, factor):
        with pytest.raises(ValueError, match="factor"):
            validate_factor(factor)

    def test_good_factor_passes_through(self):
        assert validate_factor(0.5) == 0.5

    @pytest.mark.parametrize("factor", [0, -2])
    def test_scaled_trace_rejects(self, factor):
        with pytest.raises(ValueError, match="factor"):
            scaled_trace("espresso", factor)

    @pytest.mark.parametrize("scale", [0, -3, 1.5])
    def test_bad_scales(self, scale):
        with pytest.raises(ValueError, match="scale"):
            validate_scale(scale)

    def test_simulate_workload_rejects_bad_scale(self):
        from repro.api import simulate_workload

        with pytest.raises(ValueError, match="scale"):
            simulate_workload("espresso", BASELINE, scale=0)

    def test_cpi_summary_empty_stats(self):
        with pytest.raises(ValueError, match="empty suite stats"):
            CpiSummary.from_stats("baseline/dual", 100.0, {})

    def test_run_all_cli_rejects_zero_factor(self, capsys):
        from repro.experiments.run_all import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--factor", "0"])
        assert excinfo.value.code == 2  # argparse usage error
        assert "--factor" in capsys.readouterr().err

    def test_aurora_cli_rejects_negative_factor(self, capsys):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["experiments", "--factor", "-1"])
        assert excinfo.value.code == 2
        assert "--factor" in capsys.readouterr().err


# --------------------------------------------------------------------------
# Layer 2: runtime invariant guards
# --------------------------------------------------------------------------


class TestWatchdog:
    def test_normal_run_never_trips(self, small_trace):
        result = simulate_trace(
            small_trace, BASELINE, policy=RobustnessPolicy(check_period=64)
        )
        assert result.stats.instructions == len(small_trace)

    def test_guards_match_unguarded_numbers(self, small_trace):
        guarded = simulate_trace(small_trace, BASELINE)
        unguarded = simulate_trace(
            small_trace, BASELINE, policy=RobustnessPolicy(enabled=False)
        )
        assert guarded.stats.cycles == unguarded.stats.cycles

    def test_wedged_pipeline_trips_forward_progress(
        self, small_trace, monkeypatch
    ):
        """An MSHR that grants slots aeons in the future wedges the
        pipeline; the watchdog must trip within the configured bound."""
        original = MSHRFile.allocate

        def wedged(self, when):
            grant, slot = original(self, when)
            return grant + 10_000_000_000, slot

        monkeypatch.setattr(MSHRFile, "allocate", wedged)
        policy = RobustnessPolicy(max_stall_cycles=50_000)
        with pytest.raises(SimulationError) as excinfo:
            AuroraProcessor(BASELINE, policy).run(small_trace)
        error = excinfo.value
        assert error.reason == "forward-progress"
        assert error.cycle > 10_000_000_000
        assert error.fingerprint == config_fingerprint(BASELINE)
        assert error.config_label == BASELINE.label
        assert isinstance(error.stall_snapshot, dict)

    def test_cycle_overflow_trips(self, small_trace, monkeypatch):
        original = MSHRFile.allocate

        def wedged(self, when):
            grant, slot = original(self, when)
            return grant + (1 << 40), slot

        monkeypatch.setattr(MSHRFile, "allocate", wedged)
        policy = RobustnessPolicy(
            max_stall_cycles=1 << 50, cycle_limit=1 << 41
        )
        with pytest.raises(SimulationError) as excinfo:
            AuroraProcessor(BASELINE, policy).run(small_trace)
        assert excinfo.value.reason == "cycle-overflow"

    def test_occupancy_violation_becomes_simulation_error(self):
        watchdog = Watchdog(BASELINE, RobustnessPolicy(check_period=1))
        mshr = MSHRFile(2)
        mshr._free_at.append(0)  # corrupt: 3 entries in a 2-entry file
        watchdog.watch(mshr)
        with pytest.raises(SimulationError) as excinfo:
            watchdog.observe(0, 10)
        assert excinfo.value.reason == "occupancy"
        assert "MSHR" in str(excinfo.value)

    def test_policy_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            RobustnessPolicy(max_stall_cycles=0)
        with pytest.raises(ValueError):
            RobustnessPolicy(check_period=0)

    def test_error_message_carries_context(self, small_trace, monkeypatch):
        original = MSHRFile.allocate
        monkeypatch.setattr(
            MSHRFile,
            "allocate",
            lambda self, when: (original(self, when)[0] + 10**12, 0),
        )
        with pytest.raises(SimulationError) as excinfo:
            AuroraProcessor(
                BASELINE, RobustnessPolicy(max_stall_cycles=1000)
            ).run(small_trace)
        message = str(excinfo.value)
        assert "forward-progress" in message
        assert "baseline/dual/L17" in message
        assert "fingerprint" in message


class TestStructureGuards:
    def test_mshr_healthy(self):
        mshr = MSHRFile(4)
        mshr.allocate(5)
        mshr.assert_capacity()

    def test_mshr_corrupt_timestamp(self):
        mshr = MSHRFile(2)
        mshr._free_at[1] = -7
        with pytest.raises(GuardViolation, match="busy-until"):
            mshr.assert_capacity()

    def test_writecache_healthy_and_duplicate_line(self):
        from repro.core.biu import BusInterfaceUnit
        from repro.core.writecache import WriteCache

        wc = WriteCache(4, 32, BusInterfaceUnit(latency=17, occupancy=4))
        wc.store(0x1000, 1)
        wc.store(0x2000, 2)
        wc.assert_capacity()
        wc._lines[1].line = wc._lines[0].line  # corrupt: duplicate resident
        with pytest.raises(GuardViolation, match="twice"):
            wc.assert_capacity()

    def test_fpu_overfull_queue(self):
        fpu = DecoupledFPU(FPUConfig())
        fpu.assert_capacity()
        fpu._iq_releases.extend([0] * (FPUConfig().instruction_queue + 1))
        with pytest.raises(GuardViolation, match="instruction queue"):
            fpu.assert_capacity()

    def test_config_fingerprint_distinguishes_configs(self):
        assert config_fingerprint(BASELINE) == config_fingerprint(BASELINE)
        assert config_fingerprint(BASELINE) != config_fingerprint(
            BASELINE.with_mshrs(4)
        )


# --------------------------------------------------------------------------
# Layer 3: fault-tolerant checkpointing runner
# --------------------------------------------------------------------------


class _FakeResult:
    def __init__(self, text="fake-report"):
        self.text = text

    def render(self):
        return self.text


def _experiments(calls):
    """Two fake experiments that record their invocations."""

    def make(exp_id):
        def run(factor):
            calls.append(exp_id)
            return _FakeResult(f"{exp_id} at factor {factor}")

        return run

    return {"alpha": make("alpha"), "beta": make("beta")}


class TestResilientRunner:
    def test_crash_is_contained_and_reported(self, tmp_path):
        calls = []
        plan = FaultPlan().add("alpha", "crash")
        runner = ResilientRunner(
            tmp_path / "m.json", fault_plan=plan, backoff=0.0
        )
        results, report = runner.run(_experiments(calls), factor=0.5)
        assert not report.ok
        assert [o.status for o in report.outcomes] == ["failed", "ok"]
        assert "injected crash" in report.failed[0].error
        assert "beta" in results and "alpha" not in results

    def test_transient_fault_retries_with_backoff(self, tmp_path):
        calls, delays = [], []
        plan = FaultPlan().add("alpha", "transient", count=2)
        runner = ResilientRunner(
            tmp_path / "m.json",
            fault_plan=plan,
            retries=2,
            backoff=0.25,
            max_backoff=0.4,
            sleep=delays.append,
        )
        _results, report = runner.run(_experiments(calls), factor=1.0)
        assert report.ok
        alpha = report.outcomes[0]
        assert alpha.status == "ok" and alpha.attempts == 3
        assert delays == [0.25, 0.4]  # exponential, capped at max_backoff

    def test_transient_fault_exhausts_retries(self, tmp_path):
        calls = []
        plan = FaultPlan().add("alpha", "transient", count=5)
        runner = ResilientRunner(
            tmp_path / "m.json", fault_plan=plan, retries=1, backoff=0.0
        )
        _results, report = runner.run(_experiments(calls), factor=1.0)
        assert report.outcomes[0].status == "failed"
        assert "TransientFault" in report.outcomes[0].error

    def test_timeout_abandons_hung_experiment(self, tmp_path):
        def hung(factor):
            time.sleep(30)

        runner = ResilientRunner(tmp_path / "m.json", timeout=0.05)
        _results, report = runner.run({"hung": hung, **_experiments([])})
        hung_outcome = report.outcomes[0]
        assert hung_outcome.status == "timeout"
        assert "wall-clock" in hung_outcome.error
        # The sweep continued past the hung experiment.
        assert [o.status for o in report.outcomes[1:]] == ["ok", "ok"]

    def test_render_failure_is_contained(self, tmp_path):
        plan = FaultPlan().add("alpha", "corrupt-result")
        runner = ResilientRunner(tmp_path / "m.json", fault_plan=plan)
        _results, report = runner.run(_experiments([]), factor=1.0)
        assert report.outcomes[0].status == "failed"
        assert "render" in report.outcomes[0].error

    def test_checkpoint_resume_skips_finished_work(self, tmp_path):
        manifest = tmp_path / "m.json"
        calls = []
        plan = FaultPlan().add("beta", "crash")
        ResilientRunner(manifest, fault_plan=plan, backoff=0.0).run(
            _experiments(calls), factor=0.5
        )
        assert calls == ["alpha"]
        # Second invocation: alpha restored from checkpoint, beta re-runs.
        results, report = ResilientRunner(manifest).run(
            _experiments(calls), factor=0.5
        )
        assert calls == ["alpha", "beta"]  # alpha did NOT re-run
        assert report.ok
        assert isinstance(results["alpha"], CheckpointedResult)
        assert results["alpha"].render() == "alpha at factor 0.5"
        assert [o.status for o in report.outcomes] == ["checkpointed", "ok"]

    def test_checkpoint_key_includes_factor(self, tmp_path):
        manifest = tmp_path / "m.json"
        calls = []
        ResilientRunner(manifest).run(_experiments(calls), factor=0.5)
        ResilientRunner(manifest).run(_experiments(calls), factor=0.9)
        # Different factor -> stale checkpoints are not reused.
        assert calls == ["alpha", "beta", "alpha", "beta"]

    def test_checkpoint_key_includes_code_hash(self, tmp_path):
        manifest = tmp_path / "m.json"
        calls = []
        ResilientRunner(manifest).run(
            _experiments(calls), factor=0.5, code_hash="v1"
        )
        ResilientRunner(manifest).run(
            _experiments(calls), factor=0.5, code_hash="v2"
        )
        assert calls == ["alpha", "beta", "alpha", "beta"]

    def test_no_resume_reruns_everything(self, tmp_path):
        manifest = tmp_path / "m.json"
        calls = []
        ResilientRunner(manifest).run(_experiments(calls), factor=0.5)
        ResilientRunner(manifest).run(
            _experiments(calls), factor=0.5, resume=False
        )
        assert calls == ["alpha", "beta", "alpha", "beta"]

    def test_corrupt_manifest_starts_fresh(self, tmp_path):
        manifest = tmp_path / "m.json"
        manifest.write_text("{not json")
        calls = []
        _results, report = ResilientRunner(manifest).run(
            _experiments(calls), factor=0.5
        )
        assert report.ok and calls == ["alpha", "beta"]
        # And the manifest was rewritten valid.
        assert json.loads(manifest.read_text())["version"] == 1

    def test_unknown_only_ids_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="nonesuch"):
            ResilientRunner(tmp_path / "m.json").run(
                _experiments([]), only=["nonesuch"]
            )

    def test_report_renders_causes(self, tmp_path):
        plan = FaultPlan().add("alpha", "crash")
        _results, report = ResilientRunner(
            tmp_path / "m.json", fault_plan=plan, backoff=0.0
        ).run(_experiments([]), factor=1.0)
        text = report.render()
        assert "1 failed" in text
        assert "injected crash" in text

    def test_out_dir_gets_text_reports_and_manifest(self, tmp_path):
        out = tmp_path / "results"
        ResilientRunner().run(_experiments([]), out_dir=out)
        assert (out / "alpha.txt").read_text().startswith("alpha at factor")
        assert (out / "manifest.json").exists()

    def test_fault_spec_validation(self):
        with pytest.raises(ValueError, match="fault kind"):
            FaultSpec(kind="explode")
        with pytest.raises(ValueError):
            FaultSpec(kind="transient", count=0)

    def test_code_fingerprint_is_stable(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16


class TestRunAllIntegration:
    """End-to-end through repro.experiments.run_all with real (fast)
    experiment drivers: the issue's acceptance scenario."""

    def test_injected_crash_then_resume(self, tmp_path):
        import io

        from repro.experiments.run_all import run_resilient

        out = tmp_path / "results"
        plan = FaultPlan().add("table2", "crash")
        stream = io.StringIO()
        _results, report = run_resilient(
            factor=0.1,
            out_dir=str(out),
            only=["fig1", "table2"],
            stream=stream,
            fault_plan=plan,
            backoff=0.0,
        )
        # The crash did not abort the sweep; it is reported with cause.
        assert not report.ok
        statuses = {o.exp_id: o.status for o in report.outcomes}
        assert statuses == {"fig1": "ok", "table2": "failed"}
        assert "injected crash" in report.failed[0].error
        assert "sweep report" in stream.getvalue()

        # Second invocation resumes: only the failed experiment re-runs.
        results2, report2 = run_resilient(
            factor=0.1,
            out_dir=str(out),
            only=["fig1", "table2"],
            stream=io.StringIO(),
        )
        assert report2.ok
        statuses2 = {o.exp_id: o.status for o in report2.outcomes}
        assert statuses2 == {"fig1": "checkpointed", "table2": "ok"}
        assert isinstance(results2["fig1"], CheckpointedResult)
        assert "Alpha" in results2["fig1"].render()  # real fig1 content

    def test_run_all_back_compat_returns_results(self, tmp_path):
        import io

        from repro.experiments.run_all import run_all

        results = run_all(
            factor=0.1, only=["fig1"], stream=io.StringIO()
        )
        assert set(results) == {"fig1"}
        assert "per year" in results["fig1"].render()

    def test_run_all_rejects_bad_factor(self):
        from repro.experiments.run_all import run_all

        with pytest.raises(ValueError, match="factor"):
            run_all(factor=0)


# --------------------------------------------------------------------------
# Layer 4: process-parallel execution
# --------------------------------------------------------------------------
#
# The callables below live at module level because the process pool must
# pickle them (the lambda-style experiments above cannot cross a process
# boundary).


def _par_pid(factor):
    import os

    return _FakeResult(f"ran in pid {os.getpid()} at factor {factor}")


def _par_slow(factor):
    time.sleep(0.2)
    return _FakeResult("slow done")


def _par_die(factor):
    import os
    import signal

    os.kill(os.getpid(), signal.SIGKILL)


def _par_hang(factor):
    time.sleep(60)
    return _FakeResult("never")


class _UnpicklableResult:
    def __init__(self):
        self.blocker = lambda: None  # lambdas cannot pickle

    def render(self):
        return "unpicklable but rendered"


def _par_unpicklable(factor):
    return _UnpicklableResult()


def _par_trace_user(factor):
    from repro.workloads.registry import get_trace

    return _FakeResult(f"trace of {len(get_trace('sc', 9))} records")


class TestParallelRunner:
    def test_jobs_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            ResilientRunner(jobs=0)
        with pytest.raises(ValueError, match="jobs"):
            ResilientRunner(jobs=1.5)

    def test_runs_in_worker_processes(self, tmp_path):
        import os

        runner = ResilientRunner(tmp_path / "m.json", jobs=2)
        results, report = runner.run(
            {"a": _par_pid, "b": _par_pid, "c": _par_pid}, factor=0.5
        )
        assert report.ok
        for outcome in report.outcomes:
            assert outcome.status == "ok"
            assert outcome.worker.startswith("pid-")
            assert outcome.worker != f"pid-{os.getpid()}"
        assert "factor 0.5" in results["a"].render()

    def test_parallel_report_order_matches_serial(self, tmp_path):
        experiments = {"z": _par_pid, "a": _par_slow, "m": _par_pid}
        _r1, serial = ResilientRunner(tmp_path / "s.json").run(experiments)
        _r2, parallel = ResilientRunner(tmp_path / "p.json", jobs=3).run(
            experiments
        )
        # Canonical mapping order regardless of completion order.
        assert [o.exp_id for o in serial.outcomes] == ["z", "a", "m"]
        assert [o.exp_id for o in parallel.outcomes] == ["z", "a", "m"]

    def test_transient_fault_retries_across_processes(self, tmp_path):
        plan = FaultPlan().add("flaky", "transient", count=2)
        runner = ResilientRunner(
            tmp_path / "m.json",
            jobs=2,
            fault_plan=plan,
            retries=2,
            backoff=0.0,
        )
        _results, report = runner.run({"flaky": _par_pid, "b": _par_pid})
        outcomes = {o.exp_id: o for o in report.outcomes}
        assert outcomes["flaky"].status == "ok"
        assert outcomes["flaky"].attempts == 3  # parent-tracked attempts
        assert outcomes["b"].status == "ok"

    def test_injected_crash_contained_in_parallel(self, tmp_path):
        plan = FaultPlan().add("bad", "crash")
        runner = ResilientRunner(
            tmp_path / "m.json", jobs=2, fault_plan=plan, backoff=0.0
        )
        results, report = runner.run({"bad": _par_pid, "ok": _par_pid})
        outcomes = {o.exp_id: o for o in report.outcomes}
        assert outcomes["bad"].status == "failed"
        assert "injected crash" in outcomes["bad"].error
        assert outcomes["ok"].status == "ok"
        assert "bad" not in results

    def test_worker_death_does_not_kill_the_sweep(self, tmp_path):
        runner = ResilientRunner(tmp_path / "m.json", jobs=2)
        results, report = runner.run(
            {"die": _par_die, "b": _par_slow, "c": _par_pid}
        )
        outcomes = {o.exp_id: o for o in report.outcomes}
        # The SIGKILL'd worker is reported, bystanders complete.
        assert outcomes["die"].status == "failed"
        assert "worker process died" in outcomes["die"].error
        assert outcomes["b"].status == "ok"
        assert outcomes["c"].status == "ok"

    def test_timeout_kills_worker_for_real(self, tmp_path):
        started = time.monotonic()
        runner = ResilientRunner(tmp_path / "m.json", jobs=2, timeout=0.5)
        _results, report = runner.run({"hang": _par_hang, "b": _par_pid})
        wall = time.monotonic() - started
        outcomes = {o.exp_id: o for o in report.outcomes}
        assert outcomes["hang"].status == "timeout"
        assert "worker process killed" in outcomes["hang"].error
        assert outcomes["b"].status == "ok"
        # The 60s sleeper was killed, not waited for or abandoned.
        assert wall < 20

    def test_unpicklable_result_degrades_to_text(self, tmp_path):
        runner = ResilientRunner(tmp_path / "m.json", jobs=2)
        results, report = runner.run({"u": _par_unpicklable})
        assert report.ok
        assert isinstance(results["u"], CheckpointedResult)
        assert results["u"].render() == "unpicklable but rendered"

    def test_parallel_checkpoint_resume(self, tmp_path):
        manifest = tmp_path / "m.json"
        experiments = {"a": _par_pid, "b": _par_pid}
        _r, first = ResilientRunner(manifest, jobs=2).run(experiments)
        assert first.ok
        _r, second = ResilientRunner(manifest, jobs=2).run(experiments)
        assert [o.status for o in second.outcomes] == [
            "checkpointed",
            "checkpointed",
        ]

    def test_manifest_records_worker_and_cache_counters(self, tmp_path):
        manifest = tmp_path / "m.json"
        ResilientRunner(manifest, jobs=2).run({"a": _par_pid})
        entry = json.loads(manifest.read_text())["entries"]["a"]
        assert entry["worker"].startswith("pid-")
        assert isinstance(entry["trace_cache_hits"], int)
        assert isinstance(entry["trace_cache_misses"], int)

    def test_warm_disk_cache_visible_in_outcomes(self, tmp_path):
        # Workers are fresh processes: the first parallel run must build
        # the trace (a disk miss), the second must load it (a disk hit)
        # without re-running the functional simulator.
        from repro.workloads import trace_cache
        from repro.workloads.trace_cache import TraceCache

        previous = trace_cache._default
        trace_cache._default = TraceCache(tmp_path / "cache")
        try:
            _r, cold = ResilientRunner(jobs=2).run({"t": _par_trace_user})
            _r, warm = ResilientRunner(jobs=2).run({"t": _par_trace_user})
        finally:
            trace_cache._default = previous
        assert cold.outcomes[0].cache_misses >= 1
        assert cold.outcomes[0].cache_hits == 0
        assert warm.outcomes[0].cache_hits >= 1
        assert warm.outcomes[0].cache_misses == 0
        assert cold.outcomes[0].status == warm.outcomes[0].status == "ok"


class TestParallelRunAllIntegration:
    def test_parallel_matches_serial_byte_for_byte(self, tmp_path):
        import io

        from repro.experiments.run_all import run_resilient

        serial_out = tmp_path / "serial"
        parallel_out = tmp_path / "parallel"
        common = dict(factor=0.1, only=["fig1", "table2"], stream=io.StringIO())
        _r, serial = run_resilient(out_dir=str(serial_out), **common)
        _r, parallel = run_resilient(
            out_dir=str(parallel_out), jobs=2, **common
        )
        assert serial.ok and parallel.ok
        for exp_id in ("fig1", "table2"):
            assert (serial_out / f"{exp_id}.txt").read_text() == (
                parallel_out / f"{exp_id}.txt"
            ).read_text()

    def test_cli_rejects_negative_retries(self):
        from repro.experiments.cli import main as cli_main
        from repro.experiments.run_all import main as run_all_main

        with pytest.raises(SystemExit) as info:
            run_all_main(["--retries", "-3", "--only", "fig1"])
        assert info.value.code == 2  # argparse usage error, not a crash
        with pytest.raises(SystemExit) as info:
            cli_main(["experiments", "--retries", "-3", "--only", "fig1"])
        assert info.value.code == 2

    def test_cli_rejects_bad_jobs(self):
        from repro.experiments.run_all import main as run_all_main

        with pytest.raises(SystemExit) as info:
            run_all_main(["--jobs", "0", "--only", "fig1"])
        assert info.value.code == 2

    def test_runner_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="retries"):
            ResilientRunner(retries=-3)
