"""Tests for the persistent on-disk trace cache and its registry tier."""

import pytest

from repro.func.trace import TraceIOError, save_trace
from repro.isa.instructions import Kind
from repro.workloads import registry, trace_cache
from repro.workloads.trace_cache import TraceCache, trace_fingerprint

ALU = int(Kind.ALU)


def _trace(n=50):
    return [(4096 + 4 * i, ALU, 8, 9, -1, 0) for i in range(n)]


class TestTraceCache:
    def test_roundtrip(self, tmp_path):
        cache = TraceCache(tmp_path)
        assert cache.load("sc", 8) is None  # cold
        cache.store("sc", 8, _trace())
        assert cache.load("sc", 8) == _trace()
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1
        assert cache.mmap_loads == 1  # v2 entries come back memory-mapped

    def test_roundtrip_returns_prepared(self, tmp_path):
        from repro.func.prepared import PreparedTrace

        cache = TraceCache(tmp_path)
        cache.store("sc", 8, _trace())
        loaded = cache.load("sc", 8)
        assert isinstance(loaded, PreparedTrace)
        assert loaded.to_records() == _trace()

    def test_distinct_keys_per_name_and_scale(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.store("sc", 8, _trace(10))
        cache.store("sc", 9, _trace(20))
        cache.store("li", 8, _trace(30))
        assert len(cache.load("sc", 8)) == 10
        assert len(cache.load("sc", 9)) == 20
        assert len(cache.load("li", 8)) == 30

    def test_corrupt_file_is_dropped_and_missed(self, tmp_path):
        cache = TraceCache(tmp_path)
        path = cache.path_for("sc", 8)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a numpy archive at all")
        assert cache.load("sc", 8) is None
        assert not path.exists()  # poisoned entry deleted on contact
        assert cache.misses == 1

    def test_fingerprint_mismatch_is_a_miss(self, tmp_path, monkeypatch):
        cache = TraceCache(tmp_path)
        cache.store("sc", 8, _trace())
        # A changed functional/ISA/workload source changes the
        # fingerprint, which changes the file name: old entries are
        # simply never looked up again.
        monkeypatch.setattr(
            trace_cache, "trace_fingerprint", lambda: "0" * 16
        )
        assert cache.load("sc", 8) is None

    def test_eviction_keeps_newest(self, tmp_path):
        import os

        cache = TraceCache(tmp_path, max_entries=2)
        for i, name in enumerate(("a", "b", "c", "d")):
            cache.store(name, 8, _trace(10))
            # mtime resolution can be coarse; force a strict ordering
            stamp = 1_000_000_000 + i
            os.utime(cache.path_for(name, 8), (stamp, stamp))
            cache._evict()
        remaining = sorted(p.name for p in tmp_path.glob("*.npy"))
        assert len(remaining) == 2
        assert cache.load("c", 8) is not None
        assert cache.load("d", 8) is not None
        assert cache.load("a", 8) is None

    def test_disabled_cache_never_touches_disk(self, tmp_path):
        cache = TraceCache(tmp_path, enabled=False)
        cache.store("sc", 8, _trace())
        assert list(tmp_path.iterdir()) == []
        assert cache.load("sc", 8) is None
        assert cache.misses == 1 and cache.stores == 0

    def test_max_entries_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_entries"):
            TraceCache(tmp_path, max_entries=0)

    def test_fingerprint_is_stable(self):
        assert trace_fingerprint() == trace_fingerprint()
        assert len(trace_fingerprint()) == 16

    def test_clear(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.store("sc", 8, _trace())
        cache.clear()
        assert list(tmp_path.glob("*.npy")) == []
        assert list(tmp_path.glob("*.npz")) == []


class TestCacheMigration:
    """Format v1 -> v2 migration and v2 self-healing."""

    def test_v1_entry_is_read_and_rebuilt_as_v2(self, tmp_path):
        cache = TraceCache(tmp_path)
        v1 = cache.v1_path_for("sc", 8)
        v1.parent.mkdir(parents=True, exist_ok=True)
        save_trace(str(v1), _trace())
        loaded = cache.load("sc", 8)
        assert loaded == _trace()  # served without error, counted a hit
        assert cache.hits == 1 and cache.v1_rebuilds == 1
        assert not v1.exists()  # archive replaced by ...
        assert cache.path_for("sc", 8).exists()  # ... a v2 entry
        # The rebuilt entry round-trips through the mmap path.
        assert cache.load("sc", 8) == _trace()
        assert cache.mmap_loads == 1

    def test_corrupt_v1_entry_is_dropped(self, tmp_path):
        cache = TraceCache(tmp_path)
        v1 = cache.v1_path_for("sc", 8)
        v1.parent.mkdir(parents=True, exist_ok=True)
        v1.write_bytes(b"not an archive")
        assert cache.load("sc", 8) is None
        assert not v1.exists()
        assert cache.misses == 1 and cache.v1_rebuilds == 0

    def test_truncated_v2_self_heals(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.store("sc", 8, _trace(200))
        path = cache.path_for("sc", 8)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # torn write / bad disk
        assert cache.load("sc", 8) is None  # miss, not garbage
        assert not path.exists()  # poisoned entry deleted on contact
        cache.store("sc", 8, _trace(200))  # next store rewrites it
        assert cache.load("sc", 8) == _trace(200)

    def test_v2_preferred_over_stale_v1(self, tmp_path):
        cache = TraceCache(tmp_path)
        v1 = cache.v1_path_for("sc", 8)
        v1.parent.mkdir(parents=True, exist_ok=True)
        save_trace(str(v1), _trace(10))
        cache.store("sc", 8, _trace(20))
        assert len(cache.load("sc", 8)) == 20  # v2 wins
        assert cache.v1_rebuilds == 0

    def test_env_switch_bypasses_both_formats(self, tmp_path, monkeypatch):
        # Populate entries in both formats, then flip the kill switch:
        # neither may be consulted.
        cache = TraceCache(tmp_path)
        cache.store("sc", 8, _trace())
        save_trace(str(cache.v1_path_for("li", 8)), _trace())
        monkeypatch.setenv(trace_cache.ENV_SWITCH, "0")
        monkeypatch.setenv(trace_cache.ENV_DIR, str(tmp_path))
        monkeypatch.setattr(trace_cache, "_default", None)
        disabled = trace_cache.default_cache()
        assert not disabled.enabled
        assert disabled.load("sc", 8) is None
        assert disabled.load("li", 8) is None
        assert disabled.v1_path_for("li", 8).exists()  # untouched


class TestDefaultCache:
    def test_env_switch_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv(trace_cache.ENV_SWITCH, "off")
        monkeypatch.setenv(trace_cache.ENV_DIR, str(tmp_path))
        monkeypatch.setattr(trace_cache, "_default", None)
        cache = trace_cache.default_cache()
        assert not cache.enabled
        assert cache.root == tmp_path

    def test_set_enabled_flips_default(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            trace_cache, "_default", TraceCache(tmp_path)
        )
        trace_cache.set_enabled(False)
        assert not trace_cache.default_cache().enabled

    def test_snapshot_counts_default_cache(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            trace_cache, "_default", TraceCache(tmp_path)
        )
        trace_cache.default_cache().load("nope", 1)
        assert trace_cache.snapshot() == (0, 1)


class TestRegistryDiskTier:
    def test_disk_tier_avoids_rebuild(self, tmp_path, monkeypatch):
        # Build once (disk miss -> functional sim -> store) ...
        monkeypatch.setattr(trace_cache, "_default", TraceCache(tmp_path))
        registry.clear_trace_cache()
        first = registry.get_trace("sc", 7)
        assert trace_cache.snapshot() == (0, 1)
        assert list(tmp_path.glob("sc-s7-*.v2.npy"))
        # ... then drop the memory memo and break the functional
        # simulator: the second lookup must come from disk.
        registry.clear_trace_cache()

        def boom(*args, **kwargs):
            raise AssertionError("trace was rebuilt despite a disk hit")

        monkeypatch.setattr(registry, "run_program", boom)
        second = registry.get_trace("sc", 7)
        assert second == first
        assert trace_cache.snapshot() == (1, 1)

    def test_corrupt_disk_entry_falls_back_to_build(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(trace_cache, "_default", TraceCache(tmp_path))
        registry.clear_trace_cache()
        cache = trace_cache.default_cache()
        path = cache.path_for("sc", 7)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"garbage")
        trace = registry.get_trace("sc", 7)
        assert len(trace) > 0
        # rebuilt and re-stored a good copy
        assert cache.load("sc", 7) == trace


class TestTraceIOValidation:
    def test_unreadable_archive_raises(self, tmp_path):
        from repro.func.trace import load_trace

        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"\x00\x01\x02")
        with pytest.raises(TraceIOError, match="unreadable"):
            load_trace(bad)

    def test_missing_trace_array_raises(self, tmp_path):
        import numpy as np

        from repro.func.trace import load_trace

        path = tmp_path / "empty.npz"
        np.savez_compressed(path, other=np.zeros(3))
        with pytest.raises(TraceIOError, match="no 'trace' array"):
            load_trace(path)

    def test_version_mismatch_raises(self, tmp_path):
        import numpy as np

        from repro.func.trace import load_trace

        path = tmp_path / "vers.npz"
        np.savez_compressed(
            path,
            trace=np.zeros((2, 6), dtype=np.int64),
            version=np.int64(999),
        )
        with pytest.raises(TraceIOError, match="version 999"):
            load_trace(path)

    def test_wrong_shape_raises(self, tmp_path):
        import numpy as np

        from repro.func.trace import load_trace

        path = tmp_path / "shape.npz"
        np.savez_compressed(path, trace=np.zeros((4, 5), dtype=np.int64))
        with pytest.raises(TraceIOError, match="shape"):
            load_trace(path)

    def test_non_integral_dtype_raises(self, tmp_path):
        import numpy as np

        from repro.func.trace import load_trace

        path = tmp_path / "dtype.npz"
        np.savez_compressed(path, trace=np.zeros((4, 6)))
        with pytest.raises(TraceIOError, match="dtype"):
            load_trace(path)

    def test_trace_io_error_is_value_error(self):
        assert issubclass(TraceIOError, ValueError)

    def test_versioned_roundtrip(self, tmp_path):
        from repro.func.trace import load_trace

        path = tmp_path / "t.npz"
        save_trace(str(path), _trace())
        assert load_trace(path) == _trace()
