"""Unit tests for the bus interface unit."""

import pytest

from repro.core.biu import BusInterfaceUnit


class TestBIU:
    def test_basic_latency(self):
        biu = BusInterfaceUnit(latency=17, occupancy=4)
        assert biu.request(0, "dread") == 17

    def test_transmit_serialisation(self):
        biu = BusInterfaceUnit(latency=17, occupancy=4)
        assert biu.request(0, "dread") == 17
        # second transaction waits for the transmit path
        assert biu.request(0, "dread") == 4 + 17
        assert biu.request(0, "dread") == 8 + 17

    def test_idle_bus_takes_request_time(self):
        biu = BusInterfaceUnit(latency=17, occupancy=4)
        biu.request(0, "dread")
        assert biu.request(100, "dread") == 117

    def test_counts_by_kind(self):
        biu = BusInterfaceUnit(latency=17)
        biu.request(0, "ifetch")
        biu.request(0, "dread")
        biu.request(0, "write")
        biu.request(0, "prefetch")
        biu.request(0, "mmu")
        assert biu.stats.ifetch == 1
        assert biu.stats.dread == 1
        assert biu.stats.write == 1
        assert biu.stats.prefetch == 1
        assert biu.stats.mmu == 1
        assert biu.stats.total == 5

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            BusInterfaceUnit(latency=17).request(0, "teleport")

    def test_negative_time_raises(self):
        with pytest.raises(ValueError):
            BusInterfaceUnit(latency=17).request(-1, "dread")

    def test_busy_fraction(self):
        biu = BusInterfaceUnit(latency=17, occupancy=4)
        for _ in range(10):
            biu.request(0, "dread")
        assert biu.busy_fraction(100) == pytest.approx(0.4)
        assert biu.busy_fraction(10) == 1.0  # clamped
        assert biu.busy_fraction(0) == 0.0
