"""Tests for the load-use scheduler (the paper's "better compiler
scheduling" future-work pass)."""

import pytest

from repro.core.config import LARGE
from repro.core.processor import simulate_trace
from repro.func.machine import run_program
from repro.isa.assembler import Assembler
from repro.isa.scheduler import schedule_load_use
from repro.workloads.registry import INTEGER_SUITE, build_program

KERNEL_SCALES = {
    "espresso": 14, "li": 150, "eqntott": 64, "compress": 1100,
    "sc": 8, "gcc": 240,
}


def build_load_use_block():
    """A block with an obvious load-use gap and a hoistable filler."""
    asm = Assembler()
    asm.data_label("arr")
    asm.word(*range(16))
    asm.la("a0", "arr")
    asm.li("t5", 0)
    asm.lw("t0", 0, "a0")  # load
    asm.addu("t1", "t0", "t0")  # immediate use
    asm.addiu("t5", "t5", 7)  # independent: should be hoisted
    asm.addu("v0", "t1", "t5")
    asm.halt()
    return asm.assemble()


class TestBasicScheduling:
    def test_hoists_independent_instruction(self):
        program = build_load_use_block()
        scheduled, moves = schedule_load_use(program)
        assert moves == 1
        ops = [i.op for i in scheduled.text]
        # the addiu now sits between the load and its use
        lw_at = ops.index("lw")
        assert scheduled.text[lw_at + 1].op == "addiu"
        assert scheduled.text[lw_at + 2].op == "addu"

    def test_architecture_preserved(self):
        program = build_load_use_block()
        scheduled, _ = schedule_load_use(program)
        before = run_program(program)
        after = run_program(scheduled)
        assert before.registers == after.registers

    def test_dependent_filler_not_hoisted(self):
        asm = Assembler()
        asm.data_label("arr")
        asm.word(1, 2)
        asm.la("a0", "arr")
        asm.lw("t0", 0, "a0")
        asm.addu("t1", "t0", "t0")  # use
        asm.addu("t2", "t1", "t1")  # depends on the use: cannot move
        asm.halt()
        program = asm.assemble()
        _, moves = schedule_load_use(program)
        assert moves == 0

    def test_memory_ops_do_not_reorder(self):
        asm = Assembler()
        asm.data_label("arr")
        asm.word(1, 2, 3, 4)
        asm.la("a0", "arr")
        asm.lw("t0", 0, "a0")
        asm.addu("t1", "t0", "t0")  # use
        asm.lw("t2", 0, "t1")  # depends on the use: cannot hoist
        asm.sw("t9", 8, "a0")  # hoisting would cross the lw above: mem-mem
        asm.halt()
        program = asm.assemble()
        _, moves = schedule_load_use(program)
        assert moves == 0

    def test_store_may_cross_alu_only(self):
        asm = Assembler()
        asm.data_label("arr")
        asm.word(1, 2, 3, 4)
        asm.la("a0", "arr")
        asm.lw("t0", 0, "a0")
        asm.addu("t1", "t0", "t0")  # use
        asm.sw("t9", 8, "a0")  # crosses only the addu: load->store order kept
        asm.halt()
        program = asm.assemble()
        scheduled, moves = schedule_load_use(program)
        assert moves == 1
        ops = [i.op for i in scheduled.text]
        assert ops.index("sw") > ops.index("lw")  # memory order preserved

    def test_control_flow_untouched(self):
        asm = Assembler()
        asm.data_label("arr")
        asm.word(5)
        asm.la("a0", "arr")
        asm.label("top")
        asm.lw("t0", 0, "a0")
        asm.addiu("t0", "t0", -1)
        asm.sw("t0", 0, "a0")
        asm.bne("t0", "zero", "top")
        asm.halt()
        program = asm.assemble()
        scheduled, _ = schedule_load_use(program)
        result = run_program(scheduled)
        assert result.halted

    def test_empty_program(self):
        scheduled, moves = schedule_load_use(Assembler().assemble())
        assert moves == 0
        assert scheduled.num_instructions == 0


@pytest.mark.parametrize("name", INTEGER_SUITE)
class TestKernelPreservation:
    def test_kernels_unchanged_architecturally(self, name):
        program = build_program(name, KERNEL_SCALES[name])
        scheduled, moves = schedule_load_use(program)
        before = run_program(program, max_instructions=20_000_000)
        after = run_program(scheduled, max_instructions=20_000_000)
        assert before.registers == after.registers
        assert before.instructions == after.instructions

    def test_scheduling_never_hurts_timing(self, name):
        program = build_program(name, KERNEL_SCALES[name])
        scheduled, _ = schedule_load_use(program)
        before = simulate_trace(
            run_program(program, max_instructions=20_000_000).trace,
            LARGE.dual_issue(),
        ).stats
        after = simulate_trace(
            run_program(scheduled, max_instructions=20_000_000).trace,
            LARGE.dual_issue(),
        ).stats
        assert after.cycles <= before.cycles * 1.01
