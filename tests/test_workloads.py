"""Workload-kernel tests: every SPEC92 analogue builds, runs, halts, and
exhibits the characteristics its benchmark is meant to model."""

import pytest

from repro.func.machine import run_program
from repro.func.trace import compute_stats
from repro.isa.instructions import Kind
from repro.workloads.registry import (
    FP_SUITE,
    INTEGER_SUITE,
    WorkloadError,
    all_specs,
    build_program,
    get_spec,
    get_trace,
)

# Small scales for fast unit testing.
SMALL_SCALES = {
    "espresso": 12,
    "li": 120,
    "eqntott": 48,
    "compress": 1100,
    "sc": 8,
    "gcc": 220,
    "alvinn": 32,
    "doduc": 400,
    "ear": 24,
    "hydro2d": 10,
    "mdljdp2": 10,
    "nasa7": 6,
    "ora": 64,
    "spice2g6": 32,
    "su2cor": 48,
}


class TestRegistry:
    def test_all_fifteen_registered(self):
        names = {spec.name for spec in all_specs()}
        assert set(INTEGER_SUITE) <= names
        assert set(FP_SUITE) <= names
        assert len(names) == 15

    def test_suites_disjoint(self):
        assert not set(INTEGER_SUITE) & set(FP_SUITE)

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            get_spec("doom")

    def test_specs_have_descriptions(self):
        for spec in all_specs():
            assert spec.description
            assert spec.default_scale > 0
            assert spec.suite in ("int", "fp")

    def test_trace_memoisation(self):
        first = get_trace("sc", 8)
        second = get_trace("sc", 8)
        assert first is second


class TestTraceMemoLRU:
    def test_bound_evicts_least_recently_used(self, monkeypatch):
        from repro.workloads import registry

        monkeypatch.setenv(registry.ENV_TRACE_MEMO_MAX, "2")
        registry.clear_trace_cache()
        evicted_before = registry.memo_snapshot()[2]
        get_trace("sc", 8)
        get_trace("sc", 10)
        get_trace("sc", 8)  # refresh: scale 8 is now most recent
        get_trace("sc", 12)  # third entry evicts the LRU (scale 10)
        assert registry.memo_snapshot()[2] == evicted_before + 1
        assert len(registry._TRACE_CACHE) == 2
        keep = get_trace("sc", 8)
        assert get_trace("sc", 8) is keep  # the refreshed entry survived

    def test_counters_in_snapshot(self, monkeypatch):
        from repro.workloads import registry

        registry.clear_trace_cache()
        hits_before, misses_before, _ = registry.memo_snapshot()
        get_trace("sc", 8)
        get_trace("sc", 8)
        hits, misses, _ = registry.memo_snapshot()
        assert hits == hits_before + 1
        assert misses == misses_before + 1

    def test_bad_env_value_is_named(self, monkeypatch):
        from repro.workloads import registry

        monkeypatch.setenv(registry.ENV_TRACE_MEMO_MAX, "zero")
        with pytest.raises(ValueError, match="REPRO_TRACE_MEMO_MAX"):
            registry.trace_memo_max()
        monkeypatch.setenv(registry.ENV_TRACE_MEMO_MAX, "0")
        with pytest.raises(ValueError, match="REPRO_TRACE_MEMO_MAX"):
            registry.trace_memo_max()

    def test_validate_environment_reports_bad_bound(self):
        from repro.robustness.validation import (
            EnvValidationError,
            validate_environment,
        )

        with pytest.raises(EnvValidationError, match="REPRO_TRACE_MEMO_MAX"):
            validate_environment({"REPRO_TRACE_MEMO_MAX": "-3"})


@pytest.mark.parametrize("name", INTEGER_SUITE + FP_SUITE)
class TestEveryKernel:
    def test_builds_and_halts(self, name):
        program = build_program(name, SMALL_SCALES[name])
        result = run_program(program, max_instructions=10_000_000)
        assert result.halted
        assert result.instructions > 500

    def test_deterministic(self, name):
        p1 = build_program(name, SMALL_SCALES[name])
        p2 = build_program(name, SMALL_SCALES[name])
        t1 = run_program(p1).trace
        t2 = run_program(p2).trace
        assert t1 == t2

    def test_has_memory_traffic(self, name):
        trace = get_trace(name, SMALL_SCALES[name])
        stats = compute_stats(trace)
        assert stats.loads > 0
        assert stats.stores > 0
        assert stats.taken_branches > 0


@pytest.mark.parametrize("name", FP_SUITE)
def test_fp_kernels_have_fp_work(name):
    trace = get_trace(name, SMALL_SCALES[name])
    stats = compute_stats(trace)
    assert stats.fp_ops / stats.total > 0.15


@pytest.mark.parametrize("name", INTEGER_SUITE)
def test_integer_kernels_have_no_fp(name):
    trace = get_trace(name, SMALL_SCALES[name])
    stats = compute_stats(trace)
    assert stats.fp_ops == 0


class TestCharacteristics:
    def test_integer_code_footprints_exceed_icaches(self):
        """Every integer kernel's dynamic code footprint must exceed the
        largest model's 4 KB I-cache, or Tables 3/4 would be vacuous."""
        for name in INTEGER_SUITE:
            stats = compute_stats(get_trace(name, SMALL_SCALES[name]))
            assert stats.code_footprint_bytes > 4 * 1024, name

    def test_compress_is_data_heavy(self):
        stats = compute_stats(get_trace("compress", 2000))
        assert stats.data_footprint_bytes > 16 * 1024

    def test_ora_is_divide_heavy(self):
        stats = compute_stats(get_trace("ora", SMALL_SCALES["ora"]))
        div_fraction = stats.by_kind.get(Kind.FP_DIV, 0) / stats.total
        assert div_fraction > 0.05

    def test_nasa7_is_multiply_heavy(self):
        stats = compute_stats(get_trace("nasa7", SMALL_SCALES["nasa7"]))
        assert stats.by_kind.get(Kind.FP_MUL, 0) > 0

    def test_li_is_pointer_chasing(self):
        stats = compute_stats(get_trace("li", SMALL_SCALES["li"]))
        load_fraction = stats.loads / stats.total
        assert load_fraction > 0.12

    def test_scale_grows_trace(self):
        small = len(get_trace("compress", 300))
        large = len(get_trace("compress", 900))
        assert large > 1.5 * small

    def test_espresso_validates_scale(self):
        with pytest.raises(ValueError):
            build_program("espresso", 1)

    def test_nasa7_requires_even_scale(self):
        with pytest.raises(ValueError):
            build_program("nasa7", 7)
