"""Unit tests for register-name resolution."""

import pytest

from repro.isa.registers import (
    NUM_FP_REGS,
    NUM_INT_REGS,
    RegisterError,
    fp_double_reg,
    fp_reg,
    fp_reg_name,
    int_reg,
    int_reg_name,
)


class TestIntRegisters:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("zero", 0),
            ("$zero", 0),
            ("at", 1),
            ("v0", 2),
            ("v1", 3),
            ("a0", 4),
            ("a3", 7),
            ("t0", 8),
            ("t7", 15),
            ("s0", 16),
            ("s7", 23),
            ("t8", 24),
            ("t9", 25),
            ("k0", 26),
            ("gp", 28),
            ("sp", 29),
            ("fp", 30),
            ("ra", 31),
            ("r8", 8),
            ("$8", 8),
            ("$31", 31),
        ],
    )
    def test_names_resolve(self, spec, expected):
        assert int_reg(spec) == expected

    @pytest.mark.parametrize("number", [0, 1, 15, 31])
    def test_ints_pass_through(self, number):
        assert int_reg(number) == number

    def test_case_insensitive(self):
        assert int_reg("T0") == 8
        assert int_reg("  sp ") == 29

    @pytest.mark.parametrize("bad", ["t99", "x0", "", "f0", "$f1"])
    def test_unknown_names_raise(self, bad):
        with pytest.raises(RegisterError):
            int_reg(bad)

    @pytest.mark.parametrize("bad", [-1, 32, 100])
    def test_out_of_range_numbers_raise(self, bad):
        with pytest.raises(RegisterError):
            int_reg(bad)

    def test_round_trip_names(self):
        for number in range(NUM_INT_REGS):
            assert int_reg(int_reg_name(number)) == number

    def test_name_out_of_range(self):
        with pytest.raises(RegisterError):
            int_reg_name(32)


class TestFpRegisters:
    @pytest.mark.parametrize(
        "spec,expected", [("f0", 0), ("$f0", 0), ("f31", 31), ("F4", 4)]
    )
    def test_names_resolve(self, spec, expected):
        assert fp_reg(spec) == expected

    def test_round_trip(self):
        for number in range(NUM_FP_REGS):
            assert fp_reg(fp_reg_name(number)) == number

    @pytest.mark.parametrize("bad", ["f32", "t0", "", "$32"])
    def test_unknown_raise(self, bad):
        with pytest.raises(RegisterError):
            fp_reg(bad)

    def test_double_requires_even(self):
        assert fp_double_reg("f4") == 4
        with pytest.raises(RegisterError):
            fp_double_reg("f5")

    def test_out_of_range_numbers(self):
        with pytest.raises(RegisterError):
            fp_reg(32)
        with pytest.raises(RegisterError):
            fp_reg_name(-1)
