"""Unit tests for the direct-mapped cache tag model and the D-cache port."""

import pytest

from repro.core.caches import DirectMappedCache, PipelinedCachePort


class TestDirectMappedCache:
    def test_sizes_validated(self):
        with pytest.raises(ValueError):
            DirectMappedCache(1000, 32)  # not a multiple
        with pytest.raises(ValueError):
            DirectMappedCache(96, 32)  # 3 lines: not a power of two

    def test_cold_miss_then_hit(self):
        cache = DirectMappedCache(1024, 32)
        assert not cache.lookup(0x1000)
        cache.fill(0x1000, ready_at=5)
        assert cache.lookup(0x1000)
        assert cache.ready_time(0x1000) == 5

    def test_conflict_eviction(self):
        cache = DirectMappedCache(1024, 32)  # 32 lines
        cache.fill(0x0, 0)
        evicted = cache.fill(1024, 0)  # same index, different tag
        assert evicted == 0  # line number 0 evicted
        assert not cache.lookup(0x0)
        assert cache.lookup(1024)

    def test_distinct_indices_coexist(self):
        cache = DirectMappedCache(1024, 32)
        cache.fill(0, 0)
        cache.fill(32, 0)
        assert cache.probe(0)
        assert cache.probe(32)

    def test_probe_does_not_count(self):
        cache = DirectMappedCache(1024, 32)
        cache.fill(0, 0)
        before = cache.accesses
        cache.probe(0)
        assert cache.accesses == before

    def test_hit_rate_accounting(self):
        cache = DirectMappedCache(1024, 32)
        cache.lookup(0)  # miss
        cache.fill(0, 0)
        cache.lookup(0)  # hit
        cache.lookup(0)  # hit
        assert cache.accesses == 3
        assert cache.hits == 2
        assert cache.hit_rate == pytest.approx(2 / 3)
        assert cache.miss_rate == pytest.approx(1 / 3)

    def test_invalidate(self):
        cache = DirectMappedCache(1024, 32)
        cache.fill(64, 0)
        cache.invalidate(64)
        assert not cache.probe(64)
        # invalidating an absent line is a no-op
        cache.invalidate(64)

    def test_line_of(self):
        cache = DirectMappedCache(1024, 32)
        assert cache.line_of(0) == 0
        assert cache.line_of(31) == 0
        assert cache.line_of(32) == 1

    def test_full_sweep_capacity(self):
        cache = DirectMappedCache(256, 32)  # 8 lines
        for i in range(8):
            cache.fill(i * 32, 0)
        assert all(cache.probe(i * 32) for i in range(8))
        cache.fill(256, 0)  # evicts index 0
        assert not cache.probe(0)


class TestPipelinedCachePort:
    def test_one_access_per_cycle(self):
        port = PipelinedCachePort()
        assert port.start_access(10) == 10
        assert port.start_access(10) == 11
        assert port.start_access(10) == 12

    def test_idle_port_takes_request_time(self):
        port = PipelinedCachePort()
        assert port.start_access(100) == 100

    def test_fill_blocks_port(self):
        port = PipelinedCachePort(fill_cycles=2)
        done = port.occupy_for_fill(20)
        assert done == 22
        assert port.start_access(20) == 22

    def test_future_fill_does_not_block_earlier_access(self):
        port = PipelinedCachePort(fill_cycles=2)
        port.occupy_for_fill(20)  # data arrives much later
        assert port.start_access(5) == 5  # earlier access unaffected

    def test_fills_stack_up(self):
        port = PipelinedCachePort(fill_cycles=2)
        assert port.occupy_for_fill(10) == 12
        assert port.occupy_for_fill(10) == 14  # second fill queues
        assert port.start_access(11) == 14  # access inside the windows waits
