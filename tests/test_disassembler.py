"""Disassembler tests, including the assemble/disassemble round trip."""

import pytest

from repro.func.machine import run_program
from repro.isa.assembler import Assembler, parse_asm
from repro.isa.disassembler import disassemble
from repro.workloads.registry import build_program


def text_equal(a, b) -> bool:
    if len(a.text) != len(b.text):
        return False
    return all(
        x.op == y.op and x.rd == y.rd and x.rs == y.rs and x.rt == y.rt
        and x.fd == y.fd and x.fs == y.fs and x.ft == y.ft
        and x.imm == y.imm and x.target == y.target
        for x, y in zip(a.text, b.text)
    )


class TestBasics:
    def test_simple_sequence(self):
        asm = Assembler()
        asm.addu("t0", "t1", "t2")
        asm.lw("v0", 8, "sp")
        asm.sw("v0", -4, "fp")
        asm.halt()
        text = disassemble(asm.assemble())
        assert "addu t0, t1, t2" in text
        assert "lw v0, 8(sp)" in text
        assert "sw v0, -4(fp)" in text

    def test_branch_labels_synthesised(self):
        asm = Assembler()
        asm.label("top")
        asm.addiu("t0", "t0", -1)
        asm.bne("t0", "zero", "top")
        asm.halt()
        text = disassemble(asm.assemble())
        assert "L0:" in text
        assert "bne t0, zero, L0" in text

    def test_fp_operands(self):
        asm = Assembler()
        asm.add_d("f2", "f4", "f6")
        asm.ldc1("f8", 16, "a0")
        asm.mtc1("t0", "f10")
        asm.halt()
        text = disassemble(asm.assemble())
        assert "add.d f2, f4, f6" in text
        assert "ldc1 f8, 16(a0)" in text
        assert "mtc1 t0, f10" in text

    def test_wrapped_in_noreorder(self):
        asm = Assembler()
        asm.nop()
        asm.halt()
        text = disassemble(asm.assemble())
        assert text.index(".noreorder") < text.index("nop")


class TestRoundTrip:
    def test_small_program_round_trips(self):
        asm = Assembler()
        asm.li("t0", 5)
        asm.li("v0", 0)
        asm.label("loop")
        asm.addu("v0", "v0", "t0")
        asm.addiu("t0", "t0", -1)
        asm.bne("t0", "zero", "loop")
        asm.halt()
        original = asm.assemble()
        reassembled = parse_asm(disassemble(original))
        assert text_equal(original, reassembled)

    @pytest.mark.parametrize("name,scale", [("eqntott", 48), ("sc", 8)])
    def test_kernel_text_round_trips(self, name, scale):
        original = build_program(name, scale)
        reassembled = parse_asm(disassemble(original))
        assert text_equal(original, reassembled)

    def test_round_trip_preserves_behaviour_for_codeonly(self):
        asm = Assembler()
        asm.li("t0", 10)
        asm.li("v0", 1)
        asm.label("fact")
        asm.multu("v0", "t0")
        asm.mflo("v0")
        asm.addiu("t0", "t0", -1)
        asm.bgtz("t0", "fact")
        asm.halt()
        original = asm.assemble()
        reassembled = parse_asm(disassemble(original))
        assert (
            run_program(original).registers
            == run_program(reassembled).registers
        )
