"""Stall analysis: where do the cycles go? (the Figure 6 method, applied)

Decomposes CPI for every integer workload on each Table 1 model, then
shows how the two recommendations of Section 5.6 — more MSHRs and the
point-E configuration — move the breakdown.

Run with::

    python examples/stall_analysis.py
"""

from repro import BASELINE, LARGE, RECOMMENDED, SMALL, simulate_workload
from repro.core.stats import StallKind
from repro.workloads import INTEGER_SUITE

KINDS = StallKind.paper_categories()


def breakdown_row(name, config):
    stats = simulate_workload(name, config).stats
    cells = " ".join(f"{stats.stall_cpi(kind):>7.3f}" for kind in KINDS)
    return f"{name:<10} {stats.cpi:>6.3f}  {cells}"


def header():
    cells = " ".join(f"{kind.value:>7}" for kind in KINDS)
    return f"{'workload':<10} {'CPI':>6}  {cells}"


def main() -> None:
    for model in (SMALL, BASELINE, LARGE):
        print(f"\n=== {model.name} model (dual issue, 17-cycle memory) ===")
        print(header())
        for name in INTEGER_SUITE:
            print(breakdown_row(name, model.dual_issue()))

    print("\n=== the paper's fixes, applied to the small model ===")
    print(header())
    print(breakdown_row("li", SMALL.dual_issue()))
    print(breakdown_row("li", SMALL.dual_issue().with_mshrs(4)))
    print("(LSU stalls shrink once memory operations can overlap)")

    print("\n=== point E vs the large model (espresso) ===")
    print(header())
    print(breakdown_row("espresso", LARGE.dual_issue()))
    print(breakdown_row("espresso", RECOMMENDED.dual_issue()))


if __name__ == "__main__":
    main()
