"""FPU tuning: rebuild the paper's Section 5.11 recommendation.

Sweeps the decoupled FPU's queues and functional-unit latencies over the
FP suite, then picks, per structure, the cheapest setting within 2 % of
the best CPI — the paper's methodology for arriving at its recommended
FPU (dual issue, 5-entry instruction queue, 2-entry load queue, 6-entry
reorder buffer, 3-cycle add, 5-cycle multiply, 19-cycle divide).

Run with::

    python examples/fpu_tuning.py
"""

from repro import BASELINE, FPIssuePolicy
from repro.cost import fpu_cost
from repro.experiments.common import suite_stats

FACTOR = 0.5  # fraction of default workload sizes, for a quick run

SWEEPS = {
    "instruction_queue": (1, 2, 3, 4, 5),
    "load_queue": (1, 2, 3),
    "rob_entries": (3, 6, 9),
    "add_latency": (1, 2, 3, 4, 5),
    "mul_latency": (1, 3, 5),
    "div_latency": (10, 19, 30),
}


def average_cpi(config) -> float:
    stats = suite_stats(config, suite="fp", factor=FACTOR)
    return sum(s.cpi for s in stats.values()) / len(stats)


def main() -> None:
    base = BASELINE.with_(
        fpu=BASELINE.fpu.with_(issue_policy=FPIssuePolicy.DUAL_ISSUE)
    )
    chosen = {}
    for fpu_field, values in SWEEPS.items():
        results = []
        for value in values:
            config = base.with_(fpu=base.fpu.with_(**{fpu_field: value}))
            cpi = average_cpi(config)
            cost = fpu_cost(config.fpu).total
            results.append((value, cpi, cost))
        best_cpi = min(cpi for _, cpi, _ in results)
        # cheapest setting within 2 % of the best CPI
        affordable = [r for r in results if r[1] <= best_cpi * 1.02]
        pick = min(affordable, key=lambda r: r[2])
        chosen[fpu_field] = pick[0]
        print(f"{fpu_field}:")
        for value, cpi, cost in results:
            mark = " <== pick" if value == pick[0] else ""
            print(f"  {value:>3}  CPI={cpi:.3f}  FPU cost={cost:,.0f}{mark}")

    print("\nderived recommendation:", chosen)
    print(
        "paper's recommendation: instruction_queue=5 (dual), load_queue=2, "
        "rob_entries=6, add=3, mul=5, div=19"
    )


if __name__ == "__main__":
    main()
