"""Bring your own program: assemble, run, and time a custom kernel.

Two routes are shown:

1. textual assembly through :func:`repro.parse_asm` (a dot-product), and
2. the programmatic :class:`repro.Assembler` builder (a string search),

each functionally executed (architectural results checked!) and then
timed on the three Table 1 machines.

Run with::

    python examples/custom_workload.py
"""

from repro import (
    BASELINE,
    LARGE,
    SMALL,
    Assembler,
    parse_asm,
    run_program,
    simulate_trace,
)

DOT_PRODUCT = """
.data
vec_a:  .word 1, 2, 3, 4, 5, 6, 7, 8
vec_b:  .word 8, 7, 6, 5, 4, 3, 2, 1
result: .word 0

.text
        la   t0, vec_a
        la   t1, vec_b
        li   t2, 8
        li   v0, 0
loop:   lw   t3, 0(t0)
        lw   t4, 0(t1)
        mult t3, t4
        mflo t5
        addu v0, v0, t5
        addiu t0, t0, 4
        addiu t1, t1, 4
        addiu t2, t2, -1
        bne  t2, zero, loop
        la   t6, result
        sw   v0, 0(t6)
        halt
"""


def build_strchr(haystack: bytes, needle: int):
    """Programmatic builder: find the first index of `needle`, -1 if absent."""
    asm = Assembler()
    asm.data_label("haystack")
    asm.byte(*haystack)
    asm.byte(0)
    asm.la("t0", "haystack")
    asm.li("t1", needle)
    asm.li("v0", 0)
    asm.label("scan")
    asm.lbu("t2", 0, "t0")
    asm.beq("t2", "t1", "found")
    asm.beq("t2", "zero", "missing")
    asm.addiu("t0", "t0", 1)
    asm.addiu("v0", "v0", 1)
    asm.b("scan")
    asm.label("missing")
    asm.li("v0", -1)
    asm.label("found")
    asm.halt()
    return asm.assemble()


def main() -> None:
    # Route 1: textual assembly.
    program = parse_asm(DOT_PRODUCT)
    functional = run_program(program)
    expected = sum((i + 1) * (8 - i) for i in range(8))
    print(f"dot product = {functional.registers[2]} (expected {expected})")

    print("\ntiming the dot product:")
    for model in (SMALL, BASELINE, LARGE):
        result = simulate_trace(functional.trace, model.dual_issue())
        print(f"  {model.name:<10} CPI = {result.cpi:.3f}")

    # Route 2: the programmatic builder.
    program = build_strchr(b"the quick brown fox jumps", ord("f"))
    functional = run_program(program)
    print(f"\nstrchr('f') index = {functional.registers[2]} (expected 16)")
    result = simulate_trace(functional.trace, BASELINE.dual_issue())
    print(f"baseline CPI = {result.cpi:.3f} over {len(functional.trace)} instructions")


if __name__ == "__main__":
    main()
