"""Quickstart: simulate a SPEC92-analogue workload on the Table 1 models.

Run with::

    python examples/quickstart.py
"""

from repro import BASELINE, LARGE, SMALL, simulate_workload
from repro.cost import ipu_cost


def main() -> None:
    print("Aurora III resource-allocation study - quickstart")
    print("=" * 60)

    # One workload, one machine: the baseline model, dual issue.
    result = simulate_workload("espresso", BASELINE.dual_issue())
    print("\nespresso on the baseline model (dual issue, 17-cycle memory):")
    print(result.stats.summary())

    # The headline trade-off: CPI vs RBE cost across the three models.
    print("\nmodel comparison on espresso:")
    print(f"{'model':<10} {'issue':<7} {'cost (RBE)':>11} {'CPI':>7}")
    for model in (SMALL, BASELINE, LARGE):
        for config in (model.single_issue(), model.dual_issue()):
            r = simulate_workload("espresso", config)
            issue = "dual" if config.issue_width == 2 else "single"
            cost = ipu_cost(config).total
            print(f"{model.name:<10} {issue:<7} {cost:>11,.0f} {r.cpi:>7.3f}")

    # Knobs compose: add latency, drop prefetch, shrink MSHRs.
    degraded = BASELINE.dual_issue().with_latency(35).without_prefetch()
    r = simulate_workload("espresso", degraded)
    print(f"\n35-cycle memory, no prefetch: CPI = {r.cpi:.3f}")


if __name__ == "__main__":
    main()
