"""Design-space exploration: find Pareto-optimal machines for a workload.

Reproduces the *method* of the paper's Section 5.6 on any workload: cross
I-cache sizes, write-cache depths, reorder-buffer sizes, MSHR counts and
prefetch against the RBE cost model, then report the Pareto frontier —
the configurations no other configuration beats on both cost and CPI.
The paper's "point E" (4 KB I-cache, baseline-sized everything else,
4 MSHRs) should appear on or near the frontier.

Run with::

    python examples/design_space_exploration.py [workload]
"""

import sys

from repro import BASELINE, MachineConfig, get_trace, simulate_trace
from repro.cost import ipu_cost


def candidate_configs() -> list[MachineConfig]:
    configs = []
    for icache in (1024, 2048, 4096):
        for mshrs in (1, 2, 4):
            for rob in (2, 6, 8):
                for wc in (2, 4, 8):
                    configs.append(
                        BASELINE.with_(
                            name=f"i{icache // 1024}K-m{mshrs}-r{rob}-w{wc}",
                            icache_bytes=icache,
                            mshr_entries=mshrs,
                            rob_entries=rob,
                            writecache_lines=wc,
                            issue_width=2,
                        )
                    )
    return configs


def pareto_frontier(points: list[tuple[str, float, float]]):
    """Keep points not dominated on (cost, cpi) — both lower is better."""
    frontier = []
    for name, cost, cpi in points:
        dominated = any(
            other_cost <= cost and other_cpi <= cpi and (other_cost, other_cpi) != (cost, cpi)
            for _, other_cost, other_cpi in points
        )
        if not dominated:
            frontier.append((name, cost, cpi))
    return sorted(frontier, key=lambda p: p[1])


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "espresso"
    # A smaller trace keeps the 81-configuration sweep quick.
    trace = get_trace(workload, scale=None)
    print(f"sweeping {len(candidate_configs())} configurations on {workload} "
          f"({len(trace):,} instructions)...")

    points = []
    for config in candidate_configs():
        stats = simulate_trace(trace, config).stats
        points.append((config.name, ipu_cost(config).total, stats.cpi))

    frontier = pareto_frontier(points)
    print(f"\nPareto frontier ({len(frontier)} of {len(points)} points):")
    print(f"{'configuration':<18} {'cost (RBE)':>11} {'CPI':>8}")
    for name, cost, cpi in frontier:
        print(f"{name:<18} {cost:>11,.0f} {cpi:>8.3f}")

    # Where does the paper's recommendation land?
    e_point = BASELINE.with_(
        name="point-E", icache_bytes=4096, mshr_entries=4, issue_width=2
    )
    stats = simulate_trace(trace, e_point).stats
    print(
        f"\npaper's point E: cost={ipu_cost(e_point).total:,.0f} "
        f"CPI={stats.cpi:.3f}"
    )


if __name__ == "__main__":
    main()
