"""repro — reproduction of Upton et al., "Resource Allocation in a High
Clock Rate Microprocessor" (ASPLOS 1994).

The package rebuilds the Aurora III trace-driven resource-allocation study:

* :mod:`repro.isa` — a MIPS-R3000-like ISA subset with an assembler,
* :mod:`repro.func` — a functional simulator that turns programs into traces,
* :mod:`repro.workloads` — SPEC92-analogue workload kernels,
* :mod:`repro.core` — the Aurora III timing models (IFU, IEU, LSU, write
  cache, stream-buffer prefetch, BIU, decoupled FPU),
* :mod:`repro.cost` — the Register-Bit-Equivalent cost model (paper Table 2),
* :mod:`repro.experiments` — drivers that regenerate every paper table and
  figure.

Quickstart::

    from repro import BASELINE, simulate_workload
    result = simulate_workload("espresso", BASELINE.dual_issue())
    print(result.cpi, result.stats.icache_hit_rate)
"""

from repro.version import __version__

__all__ = ["__version__"]


def __getattr__(name: str):
    """Lazily expose the high-level API to keep import time low."""
    import importlib

    if name == "api":
        return importlib.import_module("repro.api")
    _api = importlib.import_module("repro.api")
    try:
        return getattr(_api, name)
    except AttributeError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
