"""Experiment drivers: one module per paper table/figure.

* :mod:`repro.experiments.fig1_clock_trend` — Figure 1
* :mod:`repro.experiments.table2_cost` — Tables 1-2
* :mod:`repro.experiments.fig4_issue` — Figure 4
* :mod:`repro.experiments.prefetch_tables` — Tables 3-4
* :mod:`repro.experiments.fig5_prefetch` — Figure 5
* :mod:`repro.experiments.fig6_stalls` — Figure 6
* :mod:`repro.experiments.fig7_mshr` — Figure 7
* :mod:`repro.experiments.writecache_table` — Table 5
* :mod:`repro.experiments.fig8_design_space` — Figure 8
* :mod:`repro.experiments.hit_rates` — Section 5's hit-rate check
* :mod:`repro.experiments.table6_fpu_issue` — Table 6
* :mod:`repro.experiments.fig9_fpu` — Figure 9 + Section 5.10 ablation
* :mod:`repro.experiments.run_all` — run everything
* :mod:`repro.experiments.cli` — the ``aurora-sim`` command
"""
