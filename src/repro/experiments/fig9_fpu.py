"""Figure 9: FPU cost studies.

Seven sweeps over the FP suite, reporting (cost in RBE, average CPI) per
point as the paper's bar charts do:

* (a) instruction-queue size 1-5 (single issue — the paper notes dual
  issue wants five entries),
* (b) load-data-queue size 1-5,
* (c) reorder-buffer size 3-11,
* (d) add-unit latency 1-5,
* (e) multiply-unit latency 1-5,
* (f) divide-unit latency 10-30,
* (g) convert-unit latency 1-5,

plus the Section 5.10 ablation: de-pipelining the add and multiply units
(expected <5 % CPI degradation for ~25 % unit-area savings).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import BASELINE, FPIssuePolicy, MachineConfig
from repro.cost.rbe import fpu_cost
from repro.experiments.common import (
    format_table,
    suite_average_cpi,
    sweep_suite_stats,
)

#: sweep name -> (FPUConfig field, values, issue policy)
SWEEPS: dict[str, tuple[str, tuple[int, ...], FPIssuePolicy]] = {
    "a_instruction_queue": (
        "instruction_queue",
        (1, 2, 3, 4, 5),
        FPIssuePolicy.SINGLE_ISSUE,
    ),
    "b_load_queue": ("load_queue", (1, 2, 3, 4, 5), FPIssuePolicy.SINGLE_ISSUE),
    "c_reorder_buffer": (
        "rob_entries",
        (3, 5, 7, 9, 11),
        FPIssuePolicy.SINGLE_ISSUE,
    ),
    "d_add_latency": ("add_latency", (1, 2, 3, 4, 5), FPIssuePolicy.DUAL_ISSUE),
    "e_mul_latency": ("mul_latency", (1, 2, 3, 4, 5), FPIssuePolicy.DUAL_ISSUE),
    "f_div_latency": (
        "div_latency",
        (10, 15, 19, 25, 30),
        FPIssuePolicy.DUAL_ISSUE,
    ),
    "g_cvt_latency": ("cvt_latency", (1, 2, 3, 4, 5), FPIssuePolicy.DUAL_ISSUE),
}


@dataclass
class SweepPoint:
    value: int
    cost: float
    cpi_avg: float
    per_benchmark: dict[str, float] = field(default_factory=dict)


@dataclass
class Fig9Result:
    #: sweep name -> points in sweep order
    sweeps: dict[str, list[SweepPoint]] = field(default_factory=dict)
    #: pipelining ablation: label -> average CPI
    pipelining: dict[str, float] = field(default_factory=dict)

    def sensitivity(self, sweep: str) -> float:
        """Relative CPI change from the sweep's best to worst point."""
        points = self.sweeps[sweep]
        cpis = [p.cpi_avg for p in points]
        return (max(cpis) - min(cpis)) / min(cpis)

    def depipelining_penalty(self) -> float:
        base = self.pipelining["pipelined"]
        return self.pipelining["non_pipelined"] / base - 1.0

    def render(self) -> str:
        parts = []
        for name, points in self.sweeps.items():
            rows = [
                [str(p.value), f"{p.cost:,.0f}", f"{p.cpi_avg:.3f}"]
                for p in points
            ]
            parts.append(
                format_table(
                    ["value", "FPU cost (RBE)", "avg CPI"],
                    rows,
                    title=f"Figure 9({name})",
                )
            )
        rows = [
            [label, f"{cpi:.3f}"] for label, cpi in self.pipelining.items()
        ]
        parts.append(
            format_table(
                ["add/mul units", "avg CPI"],
                rows,
                title="Section 5.10: de-pipelining the add and multiply units",
            )
        )
        return "\n\n".join(parts)


def _average_cpis(
    configs: list[MachineConfig], factor: float
) -> list[tuple[float, dict]]:
    """(suite-average CPI, per-benchmark CPI) per config, one trace pass.

    Empty (zero-instruction) runs are skipped from both, not averaged in.
    """
    out = []
    for stats in sweep_suite_stats(configs, suite="fp", factor=factor):
        per_benchmark = {
            name: s.cpi for name, s in stats.items() if s.instructions
        }
        out.append((suite_average_cpi(stats), per_benchmark))
    return out


def run(
    factor: float = 1.0,
    base: MachineConfig = BASELINE,
    sweeps: tuple[str, ...] | None = None,
) -> Fig9Result:
    result = Fig9Result()
    selected = sweeps if sweeps is not None else tuple(SWEEPS)
    for name in selected:
        fpu_field, values, policy = SWEEPS[name]
        fpus = [
            base.fpu.with_(**{fpu_field: value, "issue_policy": policy})
            for value in values
        ]
        averaged = _average_cpis(
            [base.with_(fpu=fpu) for fpu in fpus], factor
        )
        result.sweeps[name] = [
            SweepPoint(
                value=value,
                cost=fpu_cost(fpu).total,
                cpi_avg=avg,
                per_benchmark=per_benchmark,
            )
            for value, fpu, (avg, per_benchmark) in zip(values, fpus, averaged)
        ]
    # Pipelining ablation (Section 5.10).
    piped = base.with_(
        fpu=base.fpu.with_(add_pipelined=True, mul_pipelined=True)
    )
    unpiped = base.with_(
        fpu=base.fpu.with_(add_pipelined=False, mul_pipelined=False)
    )
    averaged = _average_cpis([piped, unpiped], factor)
    result.pipelining["pipelined"] = averaged[0][0]
    result.pipelining["non_pipelined"] = averaged[1][0]
    return result
