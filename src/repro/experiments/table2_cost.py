"""Tables 1 and 2 as executable artefacts: model resources and RBE costs.

Renders the Table 2 element-cost card and costs the three Table 1 models
(plus the Section 5.6 recommendation) in single- and dual-issue form —
the x-axis values of every cost/performance figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import (
    RECOMMENDED,
    TABLE1_MODELS,
    MachineConfig,
)
from repro.cost.rbe import (
    CACHE_BLOCK_RBE,
    FPU_UNIT_RANGES,
    INTEGER_PIPELINE_RBE,
    MSHR_ENTRY_RBE,
    PREFETCH_LINE_RBE,
    ROB_ENTRY_RBE,
    WRITE_CACHE_LINE_RBE,
    CostBreakdown,
    fpu_cost,
    ipu_cost,
)
from repro.experiments.common import format_table


@dataclass
class CostReport:
    #: config label -> breakdown
    machines: dict[str, CostBreakdown] = field(default_factory=dict)
    fpu: CostBreakdown | None = None

    def total(self, label: str) -> float:
        return self.machines[label].total

    def render(self) -> str:
        parts = []
        element_rows = [
            ["1 KB cache block", f"{CACHE_BLOCK_RBE[1024]:,.0f}"],
            ["2 KB cache block", f"{CACHE_BLOCK_RBE[2048]:,.0f}"],
            ["4 KB cache block", f"{CACHE_BLOCK_RBE[4096]:,.0f}"],
            ["write-cache line", f"{WRITE_CACHE_LINE_RBE:,.0f}"],
            ["prefetch line", f"{PREFETCH_LINE_RBE:,.0f}"],
            ["reorder-buffer entry", f"{ROB_ENTRY_RBE:,.0f}"],
            ["MSHR entry", f"{MSHR_ENTRY_RBE:,.0f}"],
            ["integer pipeline", f"{INTEGER_PIPELINE_RBE:,.0f}"],
        ]
        for unit, (lmin, cmax, lmax, cmin) in FPU_UNIT_RANGES.items():
            element_rows.append(
                [f"FPU {unit} unit ({lmin}-{lmax} cy)", f"{cmax:,.0f}-{cmin:,.0f}"]
            )
        parts.append(
            format_table(
                ["element", "cost (RBE)"],
                element_rows,
                title="Table 2: processor element costs",
            )
        )
        machine_rows = [
            [label, f"{bd.total:,.0f}"] for label, bd in self.machines.items()
        ]
        parts.append(
            format_table(
                ["configuration", "IPU cost (RBE)"],
                machine_rows,
                title="Table 1 models, costed",
            )
        )
        if self.fpu is not None:
            parts.append(self.fpu.render("Recommended FPU"))
        return "\n\n".join(parts)


def run(models: tuple[MachineConfig, ...] = TABLE1_MODELS) -> CostReport:
    report = CostReport()
    for model in tuple(models) + (RECOMMENDED,):
        report.machines[f"{model.name}/single"] = ipu_cost(model.single_issue())
        report.machines[f"{model.name}/dual"] = ipu_cost(model.dual_issue())
    report.fpu = fpu_cost(RECOMMENDED.fpu)
    return report
