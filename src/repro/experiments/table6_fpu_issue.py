"""Table 6: CPI for the three FPU issue policies.

Nine SPECfp92 analogues on the baseline machine, FPU configured per the
paper's recommendation, under: in-order issue with in-order completion;
in-order issue with out-of-order completion, single issue; and dual
issue.  Paper averages: 1.577 / 1.401 / 1.248 — a 12 % gain for single
OOC and 21 % for dual over the fully serialised policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import BASELINE, FPIssuePolicy, MachineConfig
from repro.experiments.common import format_table, sweep_suite_stats
from repro.workloads.registry import FP_SUITE

POLICIES = (
    FPIssuePolicy.IN_ORDER_COMPLETION,
    FPIssuePolicy.SINGLE_ISSUE,
    FPIssuePolicy.DUAL_ISSUE,
)


@dataclass
class Table6Result:
    #: benchmark -> {policy -> CPI}
    cpi: dict[str, dict[FPIssuePolicy, float]] = field(default_factory=dict)

    def average(self, policy: FPIssuePolicy) -> float:
        values = [row[policy] for row in self.cpi.values()]
        return sum(values) / len(values)

    def gain(self, policy: FPIssuePolicy) -> float:
        """Average improvement of ``policy`` over in-order completion."""
        base = self.average(FPIssuePolicy.IN_ORDER_COMPLETION)
        return 1.0 - self.average(policy) / base

    def render(self) -> str:
        headers = ["benchmark", "in-order", "single OOC", "dual OOC"]
        rows = [
            [name] + [f"{self.cpi[name][p]:.3f}" for p in POLICIES]
            for name in FP_SUITE
        ]
        rows.append(
            ["Average"] + [f"{self.average(p):.3f}" for p in POLICIES]
        )
        return format_table(
            headers,
            rows,
            title="Table 6: CPI for three FPU issue policies",
        )


def run(
    factor: float = 1.0,
    base: MachineConfig = BASELINE,
) -> Table6Result:
    result = Table6Result()
    configs = [
        base.with_(fpu=base.fpu.with_(issue_policy=policy))
        for policy in POLICIES
    ]
    sweep = sweep_suite_stats(configs, suite="fp", factor=factor)
    stats_by_policy = dict(zip(POLICIES, sweep))
    for name in FP_SUITE:
        result.cpi[name] = {
            policy: stats_by_policy[policy][name].cpi for policy in POLICIES
        }
    return result
