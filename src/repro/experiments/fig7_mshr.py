"""Figure 7: effects of changing the MSHR count.

The paper compares the three standard dual-issue configurations against
"mshr variations": small and baseline with their MSHR counts doubled
(1 -> 2 and 2 -> 4), and large with its count reduced (4 -> 2); it also
sweeps counts to find that all models peak at 4 MSHRs.  Checked in
EXPERIMENTS.md:

* the small model improves dramatically with a second MSHR (one MSHR
  means a fully blocking LSU),
* the baseline improves modestly from two to four,
* the large model loses performance when reduced below four,
* every model is at its best with 4 entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import TABLE1_MODELS, MachineConfig
from repro.cost.rbe import ipu_cost
from repro.experiments.common import (
    CpiSummary,
    format_capped_bars,
    format_table,
    suite_average_cpi,
    sweep_suite_stats,
)

#: The paper's "mshr variations": model name -> varied MSHR count.
VARIATIONS = {"small": 2, "baseline": 4, "large": 2}


@dataclass
class Fig7Result:
    standard: list[CpiSummary] = field(default_factory=list)
    varied: list[CpiSummary] = field(default_factory=list)
    #: model -> {mshr count -> average CPI} full sweep
    sweep: dict[str, dict[int, float]] = field(default_factory=dict)

    def gain_from_variation(self, model: str) -> float:
        std = next(s for s in self.standard if s.label.startswith(model))
        var = next(s for s in self.varied if s.label.startswith(model))
        return 1.0 - var.cpi_avg / std.cpi_avg

    def best_count(self, model: str) -> int:
        by_count = self.sweep[model]
        return min(by_count, key=by_count.get)

    def render(self) -> str:
        parts = [
            format_capped_bars(
                self.standard + self.varied,
                title="Figure 7: MSHR count effects (dual issue, 17-cycle)",
            )
        ]
        headers = ["model"] + [str(c) for c in sorted(next(iter(self.sweep.values())))]
        rows = []
        for model, by_count in self.sweep.items():
            rows.append(
                [model] + [f"{by_count[c]:.3f}" for c in sorted(by_count)]
            )
        parts.append(
            format_table(headers, rows, title="average CPI vs MSHR count")
        )
        return "\n\n".join(parts)


def run(
    latency: int = 17,
    factor: float = 1.0,
    models: tuple[MachineConfig, ...] = TABLE1_MODELS,
    sweep_counts: tuple[int, ...] = (1, 2, 4, 8),
) -> Fig7Result:
    result = Fig7Result()
    for model in models:
        standard = model.with_(issue_width=2, mem_latency=latency)
        varied = standard.with_(mshr_entries=VARIATIONS[model.name])
        configs = [standard, varied] + [
            standard.with_(mshr_entries=count) for count in sweep_counts
        ]
        sweep = sweep_suite_stats(configs, suite="int", factor=factor)
        result.standard.append(
            CpiSummary.from_stats(
                f"{model.name}/mshr{model.mshr_entries}",
                ipu_cost(standard).total,
                sweep[0],
            )
        )
        result.varied.append(
            CpiSummary.from_stats(
                f"{model.name}/mshr{varied.mshr_entries}",
                ipu_cost(varied).total,
                sweep[1],
            )
        )
        result.sweep[model.name] = {
            count: suite_average_cpi(stats)
            for count, stats in zip(sweep_counts, sweep[2:])
        }
    return result
