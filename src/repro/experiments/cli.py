"""Command-line interface: ``aurora-sim``.

Subcommands::

    aurora-sim run <workload> [--model baseline] [--issue 2] [--latency 17]
    aurora-sim suite [--suite int|fp] [--model baseline]
    aurora-sim experiments [--only fig4 table6 ...] [--factor 0.5] [--out d/]
    aurora-sim cost [--model baseline] [--issue 2]
    aurora-sim list
"""

from __future__ import annotations

import argparse

from repro.core.config import (
    BASELINE,
    LARGE,
    RECOMMENDED,
    SMALL,
    MachineConfig,
)
from repro.cost.rbe import fpu_cost, ipu_cost
from repro.experiments.run_all import nonneg_int, positive_float, positive_int
from repro.workloads.registry import all_specs

_MODELS = {
    "small": SMALL,
    "baseline": BASELINE,
    "large": LARGE,
    "recommended": RECOMMENDED,
}


def _configure(args: argparse.Namespace) -> MachineConfig:
    config = _MODELS[args.model]
    config = config.with_(issue_width=args.issue, mem_latency=args.latency)
    if getattr(args, "no_prefetch", False):
        config = config.without_prefetch()
    if getattr(args, "mshrs", None):
        config = config.with_mshrs(args.mshrs)
    return config


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", choices=sorted(_MODELS), default="baseline")
    parser.add_argument("--issue", type=int, choices=(1, 2), default=2)
    parser.add_argument("--latency", type=int, default=17)
    parser.add_argument("--no-prefetch", action="store_true")
    parser.add_argument("--mshrs", type=int, default=None)


def cmd_run(args: argparse.Namespace) -> int:
    from repro.api import simulate_workload

    config = _configure(args)
    result = simulate_workload(args.workload, config, scale=args.scale)
    print(f"workload:  {args.workload}")
    print(f"machine:   {config.label}")
    print(result.stats.summary())
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from repro.api import suite_results

    config = _configure(args)
    results = suite_results(config, suite=args.suite)
    print(f"machine: {config.label}")
    for name, result in results.items():
        print(f"  {name:<10} CPI={result.cpi:.3f}")
    average = sum(r.cpi for r in results.values()) / len(results)
    print(f"  {'average':<10} CPI={average:.3f}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.run_all import run_resilient

    _results, report = run_resilient(
        factor=args.factor,
        out_dir=args.out,
        only=args.only,
        resume=not args.no_resume,
        manifest=args.manifest,
        timeout=args.timeout,
        retries=args.retries,
        jobs=args.jobs,
        use_trace_cache=not args.no_trace_cache,
    )
    return 0 if report.ok else 1


def cmd_cost(args: argparse.Namespace) -> int:
    config = _configure(args)
    print(ipu_cost(config).render(f"IPU cost: {config.label}"))
    print()
    print(fpu_cost(config.fpu).render("FPU cost"))
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    for spec in all_specs():
        print(
            f"{spec.name:<10} [{spec.suite}] scale={spec.default_scale:<6} "
            f"{spec.description}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="aurora-sim", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one workload")
    p_run.add_argument("workload")
    p_run.add_argument("--scale", type=int, default=None)
    _add_machine_args(p_run)
    p_run.set_defaults(func=cmd_run)

    p_suite = sub.add_parser("suite", help="simulate a whole suite")
    p_suite.add_argument("--suite", choices=("int", "fp"), default="int")
    _add_machine_args(p_suite)
    p_suite.set_defaults(func=cmd_suite)

    p_exp = sub.add_parser("experiments", help="regenerate paper experiments")
    p_exp.add_argument("--factor", type=positive_float, default=1.0)
    p_exp.add_argument("--out", default=None)
    p_exp.add_argument("--only", nargs="*", default=None)
    p_exp.add_argument("--timeout", type=float, default=None,
                       help="per-experiment wall-clock budget (seconds)")
    p_exp.add_argument("--retries", type=nonneg_int, default=2,
                       help="retries for transient failures")
    p_exp.add_argument("--jobs", type=positive_int, default=1,
                       help="worker processes for parallel execution")
    p_exp.add_argument("--no-trace-cache", action="store_true",
                       help="disable the persistent on-disk trace cache")
    p_exp.add_argument("--no-resume", action="store_true",
                       help="ignore the checkpoint manifest")
    p_exp.add_argument("--manifest", default=None,
                       help="checkpoint manifest path")
    p_exp.set_defaults(func=cmd_experiments)

    p_cost = sub.add_parser("cost", help="RBE cost of a configuration")
    _add_machine_args(p_cost)
    p_cost.set_defaults(func=cmd_cost)

    p_list = sub.add_parser("list", help="list registered workloads")
    p_list.set_defaults(func=cmd_list)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
