"""Command-line interface: ``aurora-sim``.

Subcommands::

    aurora-sim run <workload> [--model baseline] [--issue 2] [--latency 17]
    aurora-sim suite [--suite int|fp] [--model baseline]
    aurora-sim experiments [--only fig4 table6 ...] [--factor 0.5] [--out d/]
                           [--trace sweep-trace.json] [--kernel batched]
    aurora-sim trace <workload> [--factor 0.05] [--out trace.ndjson]
    aurora-sim report <trace.ndjson> [--window 1000] [--occupancy-out o.json]
    aurora-sim explore [workload] [--space fig8] [--factor 0.05]
                       [--budget 0.5] [--jobs 2] [--kernel batched]
                       [--validate] [--out explore.json]
                       [--metrics-out m.json] [--trace spans.json]
                       [--history BENCH_history.json] [--check]
    aurora-sim spans <sweep-trace.json> [--min-ms 0.1]
    aurora-sim perf <workload> [--factor 0.05] [--check] [--seed-baseline]
                    [--trace-path prepared|tuples] [--kernel scalar|batched]
    aurora-sim serve [--host 127.0.0.1] [--port 8311] [--jobs 2]
                     [--window 0.01] [--store results/.sim_memo]
                     [--sample-interval 1.0] [--ring-out ring.jsonl]
    aurora-sim loadgen --url http://127.0.0.1:8311 [--queries q.jsonl]
                       [--concurrency 8] [--requests 64] [--record out.jsonl]
                       [--slo p99:0.5] [--slo error-rate:0.01]
    aurora-sim top --url http://127.0.0.1:8311 [--interval 2] [--no-clear]
    aurora-sim cost [--model baseline] [--issue 2]
    aurora-sim list

Structured JSON-lines logging is available on every subcommand via the
global ``--log-file PATH`` / ``--log-level LEVEL`` flags (or the
``REPRO_LOG`` / ``REPRO_LOG_LEVEL`` environment, validated eagerly);
see docs/OBSERVABILITY.md.

Exit codes are unified across subcommands (see
:mod:`repro.experiments.exit_codes`): 0 success, 1 internal error,
2 usage error (bad arguments, unknown workload, invalid ``REPRO_*``
environment, ``perf --check`` without a stored baseline), 3 perf
regression, 4 partial experiment results (some failed, the rest
completed and checkpointed), 5 interrupted by SIGINT/SIGTERM after a
graceful checkpoint flush, 6 SLO violation (``loadgen --slo``).
"""

from __future__ import annotations

import argparse
import os
import signal
import sys

from repro.core.config import (
    BASELINE,
    LARGE,
    RECOMMENDED,
    SMALL,
    MachineConfig,
)
from repro.core.kernel import KERNEL_NAMES
from repro.cost.rbe import fpu_cost, ipu_cost
from repro.experiments.exit_codes import (
    EXIT_ERROR,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_PARTIAL,
    EXIT_PERF_REGRESSION,
    EXIT_SLO_VIOLATION,
    EXIT_USAGE,
    sweep_exit_code,
)
from repro.experiments.run_all import nonneg_int, positive_float, positive_int
from repro.robustness.validation import EnvValidationError, validate_environment
from repro.telemetry import logging as structlog
from repro.workloads.registry import WorkloadError, all_specs

_MODELS = {
    "small": SMALL,
    "baseline": BASELINE,
    "large": LARGE,
    "recommended": RECOMMENDED,
}


def _configure(args: argparse.Namespace) -> MachineConfig:
    config = _MODELS[args.model]
    config = config.with_(issue_width=args.issue, mem_latency=args.latency)
    if getattr(args, "no_prefetch", False):
        config = config.without_prefetch()
    if getattr(args, "mshrs", None):
        config = config.with_mshrs(args.mshrs)
    return config


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", choices=sorted(_MODELS), default="baseline")
    parser.add_argument("--issue", type=int, choices=(1, 2), default=2)
    parser.add_argument("--latency", type=int, default=17)
    parser.add_argument("--no-prefetch", action="store_true")
    parser.add_argument("--mshrs", type=int, default=None)


def cmd_run(args: argparse.Namespace) -> int:
    from repro.api import simulate_workload

    config = _configure(args)
    result = simulate_workload(args.workload, config, scale=args.scale)
    print(f"workload:  {args.workload}")
    print(f"machine:   {config.label}")
    print(result.stats.summary())
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from repro.api import suite_results

    config = _configure(args)
    results = suite_results(config, suite=args.suite, kernel=args.kernel)
    print(f"machine: {config.label}")
    # Empty (zero-instruction) runs have NaN CPI by design; folding one
    # into the mean would poison it, so they are skipped and flagged.
    live = []
    for name, result in results.items():
        if result.stats.instructions:
            live.append(result.cpi)
            print(f"  {name:<10} CPI={result.cpi:.3f}")
        else:
            print(f"  {name:<10} CPI=n/a (empty run)")
    if live:
        average = sum(live) / len(live)
        print(f"  {'average':<10} CPI={average:.3f}")
    empty_runs = len(results) - len(live)
    if empty_runs:
        print(f"  ({empty_runs} empty runs skipped from the average)")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.run_all import run_resilient
    from repro.robustness.chaos import ChaosError

    try:
        _results, report = run_resilient(
            factor=args.factor,
            out_dir=args.out,
            only=args.only,
            resume=not args.no_resume,
            manifest=args.manifest,
            timeout=args.timeout,
            retries=args.retries,
            jobs=args.jobs,
            use_trace_cache=not args.no_trace_cache,
            trace_out=args.trace,
            chaos=args.chaos,
            chaos_seed=args.chaos_seed,
            kernel=args.kernel,
        )
    except ChaosError as error:
        print(f"error: --chaos: {error}", file=sys.stderr)
        return EXIT_USAGE
    return sweep_exit_code(report)


def cmd_trace(args: argparse.Namespace) -> int:
    """Simulate one workload with telemetry on, streaming events to disk."""
    from repro.core.processor import simulate_trace
    from repro.experiments.common import scaled_trace
    from repro.telemetry import (
        EventBus,
        MetricsRegistry,
        NDJSONSink,
        RingBufferSink,
        assert_stalls_match,
        publish_stats,
        render_summary,
    )

    config = _configure(args)
    trace = scaled_trace(args.workload, args.factor)
    out = args.out or f"{args.workload}-trace.ndjson"
    bus = EventBus()
    ring = RingBufferSink()
    bus.attach(ring)
    bus.attach(NDJSONSink(out))
    try:
        result = simulate_trace(trace, config, telemetry=bus)
    finally:
        bus.close()
    events = ring.events
    assert_stalls_match(events, result.stats, dropped=ring.dropped)
    metrics_out = args.metrics_out or f"{args.workload}-metrics.json"
    publish_stats(result.stats, MetricsRegistry()).write_json(metrics_out)
    print(f"workload:  {args.workload} (factor {args.factor})")
    print(f"machine:   {config.label}")
    print(f"events:    {len(events)} -> {out}")
    print(f"metrics:   {metrics_out}")
    print()
    print(render_summary(events, result.stats, window=args.window))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Summarise a previously captured NDJSON event trace."""
    import json

    from repro.telemetry import load_ndjson, occupancy_export, render_summary

    events = load_ndjson(args.trace)
    print(f"trace:  {args.trace}")
    print(f"events: {len(events)}")
    if args.occupancy_out:
        document = occupancy_export(events)
        with open(args.occupancy_out, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"occupancy: {args.occupancy_out}")
    print()
    print(render_summary(events, window=args.window))
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    """Model-guided Pareto exploration of a named config space.

    Calibrates the analytic CPI estimator, simulates only the
    predicted-frontier band (docs/EXPLORATION.md), and reports the
    simulated Pareto frontier.  ``--validate`` additionally simulates
    the *entire* space and asserts the guided frontier matches the
    exhaustive one (exit 1 when it does not); ``--history``/``--check``
    track a ``mode="explore"`` series in BENCH_history.json.  Exits 4
    when the simulation budget ran out before the frontier stabilised.
    """
    import json
    import time

    from repro.core.kernel import simulate_many
    from repro.explore import ExploreError, explore, get_space
    from repro.explore.model import ModelReport
    from repro.explore.pareto import frontier_indices
    from repro.explore.space import SpaceError
    from repro.experiments.common import scaled_trace
    from repro.telemetry import MetricsRegistry, tracing
    from repro.telemetry.baseline import BaselineError, PerfHistory, git_sha
    from repro.workloads import trace_cache

    try:
        candidates = get_space(args.space)
    except SpaceError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    trace = scaled_trace(args.workload, args.factor)
    registry = MetricsRegistry()
    tracer = None
    if args.trace:
        tracer = tracing.SpanTracer()
    base_hits, base_misses = trace_cache.snapshot()
    started = time.perf_counter()
    try:
        with tracing.use_tracer(tracer):
            result = explore(
                candidates,
                trace,
                workload=args.workload,
                factor=args.factor,
                budget=args.budget,
                safety=args.safety,
                kernel=args.kernel,
                jobs=args.jobs,
                metrics=registry,
            )
            validation = None
            if args.validate:
                exhaustive = simulate_many(
                    trace,
                    [c.config for c in candidates],
                    kernel=args.kernel,
                )
                validation = _explore_validation(
                    result, [r.stats for r in exhaustive], ModelReport,
                    frontier_indices,
                )
    except ExploreError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    wall = time.perf_counter() - started
    hits, misses = trace_cache.snapshot()
    if tracer is not None:
        tracer.write_chrome(args.trace)
        print(f"spans: {args.trace}")
    print(result.render())
    if validation is not None:
        grid = validation["grid_model"]
        registry.gauge("explore.grid_mean_rel_error").set(
            grid["mean_rel_error"]
        )
        verdict = "MATCH" if validation["frontier_match"] else "MISMATCH"
        print()
        print(
            f"validation: exhaustive frontier {verdict} "
            f"(grid model error: mean {grid['mean_rel_error'] * 100:.1f}%, "
            f"max {grid['max_rel_error'] * 100:.1f}%, "
            f"rank correlation {grid['rank_correlation']:.3f})"
        )
        if not validation["frontier_match"]:
            print(
                "  guided:     " + ", ".join(result.frontier_labels()),
            )
            print(
                "  exhaustive: "
                + ", ".join(validation["exhaustive_frontier"]),
            )
    if args.metrics_out:
        registry.write_json(args.metrics_out)
        print(f"metrics: {args.metrics_out}")
    if args.out:
        document = result.to_dict()
        if validation is not None:
            document["validation"] = validation
        with open(args.out, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"summary: {args.out}")
    status = EXIT_OK
    if args.history:
        record = {
            "git_sha": git_sha(),
            "recorded_at": time.time(),
            "workload": args.workload,
            "factor": args.factor,
            "config": f"space:{args.space}",
            "instructions": result.sim_instructions,
            "sim_cycles": result.sim_cycles,
            "wall_seconds": wall,
            "cycles_per_second": result.sim_cycles / wall if wall > 0 else 0.0,
            "instructions_per_second": (
                result.sim_instructions / wall if wall > 0 else 0.0
            ),
            "cache_hits": max(hits - base_hits, 0),
            "cache_misses": max(misses - base_misses, 0),
            "trace_path": "prepared",
            "kernel": result.kernel,
            "mode": "explore",
            "configs_considered": result.configs_considered,
            "configs_simulated": result.configs_simulated,
            "model_mean_rel_error": result.model.mean_rel_error,
        }
        history = PerfHistory(args.history)
        try:
            history.append(record)
            if args.seed_baseline:
                history.seed_baseline(record)
        except BaselineError as error:
            print(f"perf history: {error}", file=sys.stderr)
            return EXIT_ERROR
        print(f"perf history: {history.path} (explore-mode record appended)")
        if args.check:
            try:
                check = history.compare(record, threshold=args.threshold)
            except BaselineError as error:
                print(f"perf check: {error}", file=sys.stderr)
                return EXIT_USAGE
            print(f"perf check: {check.render()}")
            if check.regressed:
                status = EXIT_PERF_REGRESSION
    if validation is not None and not validation["frontier_match"]:
        return EXIT_ERROR
    if result.budget_exhausted:
        return EXIT_PARTIAL
    return status


def _explore_validation(result, grid_stats, report_cls, frontier_fn) -> dict:
    """Compare a guided result against exhaustive stats for the space."""
    live = [
        (point, stats)
        for point, stats in zip(result.points, grid_stats)
        if stats.instructions
    ]
    chosen = frontier_fn([(p.cost, s.cpi) for p, s in live])
    exhaustive = sorted(
        (live[i][0] for i in chosen), key=lambda p: p.cost
    )
    grid = report_cls.from_pairs(
        [(p.predicted_cpi, s.cpi) for p, s in live]
    )
    return {
        "exhaustive_frontier": [p.label for p in exhaustive],
        "frontier_match": (
            sorted(p.label for p in exhaustive)
            == sorted(result.frontier_labels())
        ),
        "grid_model": {
            "count": grid.count,
            "mean_rel_error": grid.mean_rel_error,
            "max_rel_error": grid.max_rel_error,
            "rank_correlation": grid.rank_corr,
        },
    }


def cmd_spans(args: argparse.Namespace) -> int:
    """Render a sweep's Chrome span trace as a text tree."""
    from repro.telemetry import SpanError, load_chrome_trace, render_span_tree

    try:
        spans = load_chrome_trace(args.trace)
    except SpanError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    print(f"spans:  {args.trace} ({len(spans)} spans)")
    print()
    print(render_span_tree(spans, min_duration=args.min_ms / 1000.0))
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    """Profile the simulator on one workload; track/check perf history."""
    from repro.telemetry.baseline import BaselineError, PerfHistory, record_now
    from repro.telemetry.profiling import profile_workload

    config = _configure(args)
    report = profile_workload(
        args.workload,
        config,
        factor=args.factor,
        sample=not args.no_sample,
        use_cprofile=args.cprofile,
        top=args.top,
        trace_path=args.trace_path,
        kernel=args.kernel,
    )
    print(report.render())
    history = PerfHistory(args.history)
    record = record_now(report)
    try:
        history.append(record)
        if args.seed_baseline:
            history.seed_baseline(record)
    except BaselineError as error:
        print(f"perf history: {error}", file=sys.stderr)
        return EXIT_ERROR
    print()
    print(
        f"perf history: {history.path} "
        f"({len(history.records())} records"
        + (", baseline seeded from this run)" if args.seed_baseline else ")")
    )
    if not args.check:
        return EXIT_OK
    try:
        check = history.compare(record, threshold=args.threshold)
    except BaselineError as error:
        print(f"perf check: {error}", file=sys.stderr)
        return EXIT_USAGE
    print(f"perf check: {check.render()}")
    return EXIT_PERF_REGRESSION if check.regressed else EXIT_OK


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived design-space query service (docs/SERVING.md).

    Exits 0 when stopped programmatically, 5 after a graceful
    SIGINT/SIGTERM drain (the PR 6 contract, shared with 'experiments'
    through robustness/signals.py); a second signal aborts hard through
    the generic KeyboardInterrupt path below.
    """
    from repro.serve.server import ServeConfig, serve_forever

    config = ServeConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        window=args.window,
        kernel=args.kernel,
        store_root=args.store,
        trace_out=args.trace,
        sample_interval=args.sample_interval,
        ring_capacity=args.ring_capacity,
        ring_out=args.ring_out,
    )
    return serve_forever(config)


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a live serve endpoint and report p50/p99/throughput.

    With ``--slo``, the declared objectives are evaluated over the
    run's own time-series samples; any violation exits 6
    (``EXIT_SLO_VIOLATION``) so CI can gate on service health.
    """
    from repro.serve.loadgen import (
        LoadError,
        load_queries,
        run_load,
        synthetic_queries,
        write_queries,
    )
    from repro.telemetry.baseline import BaselineError, PerfHistory, git_sha
    from repro.telemetry.slo import SLOError, parse_slo

    try:
        slos = [parse_slo(spec) for spec in args.slo or []]
    except SLOError as error:
        print(f"error: --slo: {error}", file=sys.stderr)
        return EXIT_USAGE
    try:
        if args.queries:
            queries = load_queries(args.queries)
        else:
            queries = synthetic_queries(
                seed=args.seed,
                factor=args.factor,
                count=args.count,
            )
        if args.record:
            path = write_queries(args.record, queries)
            print(f"recorded {len(queries)} queries -> {path}")
            if not args.url:
                return EXIT_OK
        if not args.url:
            raise LoadError("--url is required to drive a server")
        report = run_load(
            args.url,
            queries,
            concurrency=args.concurrency,
            requests=args.requests,
            duration=args.duration,
            slos=slos,
            sample_interval=args.sample_interval,
        )
    except LoadError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    print(f"target:   {args.url}")
    print(f"queries:  {len(queries)} ({'recorded' if args.queries else 'synthetic'})")
    print(f"workers:  {args.concurrency}")
    print(report.render())
    if args.history:
        import time as _time

        record = report.as_perf_record(
            git_sha=git_sha(),
            recorded_at=_time.time(),
            workload=args.series_workload,
            factor=args.factor,
        )
        history = PerfHistory(args.history)
        try:
            history.append(record)
        except BaselineError as error:
            print(f"perf history: {error}", file=sys.stderr)
            return EXIT_ERROR
        print(f"perf history: {history.path} (serve-mode record appended)")
    if report.slo_violated:
        return EXIT_SLO_VIOLATION
    return EXIT_ERROR if report.errors else EXIT_OK


def cmd_top(args: argparse.Namespace) -> int:
    """Live terminal dashboard over a running server's /metrics."""
    from repro.serve.top import TopError, run_top

    try:
        return run_top(
            args.url,
            interval=args.interval,
            iterations=args.iterations,
            clear=False if args.no_clear else None,
        )
    except TopError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    except KeyboardInterrupt:
        return EXIT_OK  # ^C is how a dashboard session normally ends


def cmd_cost(args: argparse.Namespace) -> int:
    config = _configure(args)
    print(ipu_cost(config).render(f"IPU cost: {config.label}"))
    print()
    print(fpu_cost(config.fpu).render("FPU cost"))
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    for spec in all_specs():
        print(
            f"{spec.name:<10} [{spec.suite}] scale={spec.default_scale:<6} "
            f"{spec.description}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="aurora-sim", description=__doc__)
    parser.add_argument("--log-file", default=None, metavar="PATH",
                        help="structured JSON-lines log destination "
                             "(a path, or 'stderr'/'-'); overrides "
                             "REPRO_LOG")
    parser.add_argument("--log-level", choices=structlog.LEVELS,
                        default=None,
                        help="structured log level (default INFO; "
                             "overrides REPRO_LOG_LEVEL)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one workload")
    p_run.add_argument("workload")
    p_run.add_argument("--scale", type=int, default=None)
    _add_machine_args(p_run)
    p_run.set_defaults(func=cmd_run)

    p_suite = sub.add_parser("suite", help="simulate a whole suite")
    p_suite.add_argument("--suite", choices=("int", "fp"), default="int")
    p_suite.add_argument("--kernel", choices=KERNEL_NAMES, default=None,
                         help="simulation kernel (default follows "
                              "REPRO_SIM_KERNEL)")
    _add_machine_args(p_suite)
    p_suite.set_defaults(func=cmd_suite)

    p_exp = sub.add_parser("experiments", help="regenerate paper experiments")
    p_exp.add_argument("--factor", type=positive_float, default=1.0)
    p_exp.add_argument("--out", default=None)
    p_exp.add_argument("--only", nargs="*", default=None)
    p_exp.add_argument("--timeout", type=float, default=None,
                       help="per-experiment wall-clock budget (seconds)")
    p_exp.add_argument("--retries", type=nonneg_int, default=2,
                       help="retries for transient failures")
    p_exp.add_argument("--jobs", type=positive_int, default=1,
                       help="worker processes for parallel execution")
    p_exp.add_argument("--no-trace-cache", action="store_true",
                       help="disable the persistent on-disk trace cache")
    p_exp.add_argument("--kernel", choices=KERNEL_NAMES, default=None,
                       help="simulation kernel: scalar walks the trace "
                            "once per config, batched once per sweep "
                            "(default follows REPRO_SIM_KERNEL)")
    p_exp.add_argument("--no-resume", action="store_true",
                       help="ignore the checkpoint manifest")
    p_exp.add_argument("--manifest", default=None,
                       help="checkpoint manifest path")
    p_exp.add_argument("--trace", default=None, metavar="PATH",
                       help="record host-side spans and export Chrome "
                            "trace-event JSON here (see 'spans')")
    p_exp.add_argument("--chaos", default=None, metavar="SPEC",
                       help="chaos plan: comma-separated "
                            "kind[:target[:count[:seconds]]] tokens "
                            "(see docs/ROBUSTNESS.md)")
    p_exp.add_argument("--chaos-seed", type=int, default=0,
                       help="seed for deterministic chaos injections")
    p_exp.set_defaults(func=cmd_experiments)

    p_trace = sub.add_parser(
        "trace", help="simulate a workload with event telemetry on"
    )
    p_trace.add_argument("workload")
    p_trace.add_argument("--factor", type=positive_float, default=1.0,
                         help="workload scale factor (as in 'experiments')")
    p_trace.add_argument("--out", default=None,
                         help="NDJSON output path "
                              "(default <workload>-trace.ndjson)")
    p_trace.add_argument("--metrics-out", default=None,
                         help="sim.* metrics JSON path "
                              "(default <workload>-metrics.json)")
    p_trace.add_argument("--window", type=positive_int, default=1000,
                         help="CPI phase-summary window (cycles)")
    _add_machine_args(p_trace)
    p_trace.set_defaults(func=cmd_trace)

    p_report = sub.add_parser(
        "report", help="summarise a captured NDJSON event trace"
    )
    p_report.add_argument("trace")
    p_report.add_argument("--window", type=positive_int, default=1000,
                          help="CPI phase-summary window (cycles)")
    p_report.add_argument("--occupancy-out", default=None, metavar="PATH",
                          dest="occupancy_out",
                          help="write per-structure occupancy summaries "
                               "(mean/p50/p90/p99/max + histogram) as "
                               "stable JSON — the explorer's calibration "
                               "inputs, inspectable offline")
    p_report.set_defaults(func=cmd_report)

    p_explore = sub.add_parser(
        "explore", help="model-guided Pareto exploration of a config space"
    )
    p_explore.add_argument("workload", nargs="?", default="espresso")
    p_explore.add_argument("--space", default="fig8",
                           help="candidate space to explore "
                                "(fig8 = the paper's 58-config grid; "
                                "fig8-L17 = its 17-cycle half)")
    p_explore.add_argument("--factor", type=positive_float, default=1.0,
                           help="workload scale factor (as in "
                                "'experiments')")
    p_explore.add_argument("--budget", type=positive_float, default=0.5,
                           help="max fraction of the space to simulate, "
                                "calibration runs included (exit 4 when "
                                "exhausted before the frontier settles)")
    p_explore.add_argument("--safety", type=positive_float, default=1.5,
                           help="uncertainty-margin multiplier on the "
                                "worst observed model residual")
    p_explore.add_argument("--jobs", type=positive_int, default=1,
                           help="process-pool workers for each "
                                "refinement round's band")
    p_explore.add_argument("--kernel", choices=KERNEL_NAMES, default=None,
                           help="simulation kernel for probe/band "
                                "batches (default follows "
                                "REPRO_SIM_KERNEL)")
    p_explore.add_argument("--validate", action="store_true",
                           help="also simulate the whole space; report "
                                "full-grid model error and exit 1 "
                                "unless the guided frontier matches "
                                "the exhaustive one exactly")
    p_explore.add_argument("--out", default=None, metavar="PATH",
                           help="write the exploration summary "
                                "(points, frontier, model error) as JSON")
    p_explore.add_argument("--metrics-out", default=None, metavar="PATH",
                           dest="metrics_out",
                           help="write explore.* metrics JSON")
    p_explore.add_argument("--trace", default=None, metavar="PATH",
                           help="export calibration/round spans as "
                                "Chrome trace-event JSON (see 'spans')")
    p_explore.add_argument("--history", default=None, metavar="PATH",
                           help="append a mode=\"explore\" record to "
                                "this BENCH_history.json")
    p_explore.add_argument("--seed-baseline", action="store_true",
                           help="promote this run to the stored baseline")
    p_explore.add_argument("--check", action="store_true",
                           help="compare throughput against the stored "
                                "baseline; exit 3 on regression")
    p_explore.add_argument("--threshold", type=float, default=0.20,
                           help="regression threshold as a fraction")
    p_explore.set_defaults(func=cmd_explore)

    p_spans = sub.add_parser(
        "spans", help="render a sweep span trace as a text tree"
    )
    p_spans.add_argument("trace", help="Chrome trace-event JSON "
                                       "(from 'experiments --trace')")
    p_spans.add_argument("--min-ms", type=float, default=0.0,
                         help="fold spans shorter than this many ms")
    p_spans.set_defaults(func=cmd_spans)

    p_perf = sub.add_parser(
        "perf", help="profile simulator throughput; track perf history"
    )
    p_perf.add_argument("workload")
    p_perf.add_argument("--factor", type=positive_float, default=1.0,
                        help="workload scale factor (as in 'experiments')")
    p_perf.add_argument("--history", default="BENCH_history.json",
                        help="perf-history JSON path")
    p_perf.add_argument("--no-sample", action="store_true",
                        help="skip the sampling phase profiler")
    p_perf.add_argument("--cprofile", action="store_true",
                        help="also run cProfile (exact but ~2x slower)")
    p_perf.add_argument("--top", type=positive_int, default=15,
                        help="cProfile rows to show")
    p_perf.add_argument("--seed-baseline", action="store_true",
                        help="promote this run to the stored baseline")
    p_perf.add_argument("--check", action="store_true",
                        help="compare against the baseline; exit 3 on "
                             "regression, 2 when no baseline is stored")
    p_perf.add_argument("--threshold", type=float, default=0.20,
                        help="regression threshold as a fraction "
                             "(0.20 = fail when >20%% slower)")
    p_perf.add_argument("--trace-path", choices=("prepared", "tuples"),
                        default="prepared", dest="trace_path",
                        help="trace representation to feed the simulator "
                             "(history records tag it; --check refuses "
                             "cross-path comparisons)")
    p_perf.add_argument("--kernel", choices=KERNEL_NAMES, default=None,
                        help="simulation kernel to profile (history "
                             "records tag it; --check refuses cross-"
                             "kernel comparisons; default follows "
                             "REPRO_SIM_KERNEL)")
    _add_machine_args(p_perf)
    p_perf.set_defaults(func=cmd_perf)

    p_serve = sub.add_parser(
        "serve", help="batched design-space query service (long-lived)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8311,
                         help="listen port (0 = ephemeral; the bound "
                              "port is announced on stdout)")
    p_serve.add_argument("--jobs", type=positive_int, default=1,
                         help="simulation workers (1 = in-process "
                              "thread, >1 = process pool over the "
                              "shared trace cache)")
    p_serve.add_argument("--window", type=positive_float, default=0.010,
                         help="batching window in seconds: queries "
                              "arriving within it coalesce into one "
                              "simulate_many dispatch")
    p_serve.add_argument("--kernel", choices=KERNEL_NAMES, default=None,
                         help="simulation kernel for batch dispatches "
                              "(default follows REPRO_SIM_KERNEL)")
    p_serve.add_argument("--store", default="results/.sim_memo",
                         help="persistent SimStats memo-store root")
    p_serve.add_argument("--trace", default=None, metavar="PATH",
                         help="export request spans as Chrome trace-"
                              "event JSON on shutdown (see 'spans')")
    p_serve.add_argument("--sample-interval", type=float, default=1.0,
                         dest="sample_interval",
                         help="metrics time-series sampling interval "
                              "in seconds (0 disables sampling and "
                              "the /timeseries route)")
    p_serve.add_argument("--ring-capacity", type=positive_int,
                         default=2048, dest="ring_capacity",
                         help="time-series ring capacity (samples)")
    p_serve.add_argument("--ring-out", default=None, metavar="PATH",
                         dest="ring_out",
                         help="persist time-series samples to this "
                              "JSONL file (reloaded on restart)")
    p_serve.set_defaults(func=cmd_serve)

    p_load = sub.add_parser(
        "loadgen", help="drive a live serve endpoint; report p50/p99"
    )
    p_load.add_argument("--url", default=None,
                        help="serve endpoint, e.g. http://127.0.0.1:8311")
    p_load.add_argument("--queries", default=None, metavar="PATH",
                        help="recorded query file (JSON lines); "
                             "default: seeded synthetic queries over "
                             "the Figure 8 grid")
    p_load.add_argument("--record", default=None, metavar="PATH",
                        help="write the query stream to PATH (replayable "
                             "with --queries); without --url, record "
                             "only and exit")
    p_load.add_argument("--concurrency", type=positive_int, default=4,
                        help="closed-loop client threads")
    p_load.add_argument("--requests", type=positive_int, default=None,
                        help="total requests to issue (default: one "
                             "pass over the query list)")
    p_load.add_argument("--duration", type=positive_float, default=None,
                        help="run for this many seconds instead of a "
                             "fixed request count")
    p_load.add_argument("--seed", type=nonneg_int, default=0,
                        help="synthetic-generator seed")
    p_load.add_argument("--count", type=positive_int, default=64,
                        help="synthetic queries to generate")
    p_load.add_argument("--factor", type=positive_float, default=0.05,
                        help="workload scale factor for synthetic queries")
    p_load.add_argument("--history", default=None, metavar="PATH",
                        help="append a serve-mode record to this "
                             "BENCH_history.json")
    p_load.add_argument("--series-workload", default="mixed",
                        help="workload label for the history record")
    p_load.add_argument("--slo", action="append", default=None,
                        metavar="KIND:VALUE",
                        help="declare an objective to evaluate after "
                             "the run: p99:SECONDS, error-rate:FRAC, "
                             "or availability:FRAC (repeatable; any "
                             "violation exits 6)")
    p_load.add_argument("--sample-interval", type=positive_float,
                        default=0.25, dest="sample_interval",
                        help="loadgen-side time-series sampling "
                             "interval for --slo evaluation (seconds)")
    p_load.set_defaults(func=cmd_loadgen)

    p_top = sub.add_parser(
        "top", help="live terminal dashboard over a serve endpoint"
    )
    p_top.add_argument("--url", required=True,
                       help="serve endpoint, e.g. http://127.0.0.1:8311")
    p_top.add_argument("--interval", type=positive_float, default=2.0,
                       help="refresh interval in seconds")
    p_top.add_argument("--iterations", type=positive_int, default=None,
                       help="render this many frames then exit "
                            "(default: run until ^C)")
    p_top.add_argument("--no-clear", action="store_true",
                       help="never emit the ANSI clear between frames "
                            "(frames append; good for piping)")
    p_top.set_defaults(func=cmd_top)

    p_cost = sub.add_parser("cost", help="RBE cost of a configuration")
    _add_machine_args(p_cost)
    p_cost.set_defaults(func=cmd_cost)

    p_list = sub.add_parser("list", help="list registered workloads")
    p_list.set_defaults(func=cmd_list)

    args = parser.parse_args(argv)
    try:
        validate_environment()
    except EnvValidationError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    try:
        if args.log_file is not None:
            structlog.configure(args.log_file, args.log_level or "INFO")
        elif args.log_level is not None and os.environ.get(structlog.ENV_LOG):
            structlog.configure(os.environ[structlog.ENV_LOG], args.log_level)
        else:
            structlog.configure_from_env()
    except structlog.LogConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    try:
        return args.func(args)
    except WorkloadError as error:
        # KeyError.__str__ wraps the message in quotes; unwrap it.
        print(f"error: {error.args[0]}", file=sys.stderr)
        print("valid kernels:", file=sys.stderr)
        for spec in all_specs():
            print(f"  {spec.name:<10} [{spec.suite}]", file=sys.stderr)
        return EXIT_USAGE
    except KeyboardInterrupt:
        # A second SIGINT aborts hard, past the runner's graceful path.
        print("aborted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed stdout: not a bug
        # in the sweep.  Point the interpreter's shutdown flush at
        # devnull so it cannot traceback, and report the conventional
        # 128+SIGPIPE status a signal-killed process would have.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 128 + signal.SIGPIPE
    finally:
        # Back to zero-overhead-off: close the log file so embedding
        # callers (tests drive main() in-process) stay hermetic.
        structlog.shutdown()


if __name__ == "__main__":
    raise SystemExit(main())
