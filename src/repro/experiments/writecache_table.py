"""Table 5: integer write-cache hit rates (and Section 5.5's traffic).

The hit rate counts both load and store accesses to the write cache.
Section 5.5 additionally reports the off-chip store traffic: store BIU
transactions as a fraction of store instructions — 44 % for the small
model, 30 % for the baseline, 22 % for the large (a two- to five-fold
write-traffic reduction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import TABLE1_MODELS, MachineConfig
from repro.experiments.common import format_table, percent, sweep_suite_stats
from repro.workloads.registry import INTEGER_SUITE


@dataclass
class WriteCacheTable:
    #: model -> benchmark -> write-cache hit rate (0..1)
    hit_rates: dict[str, dict[str, float]] = field(default_factory=dict)
    #: model -> store transactions / store instructions (aggregated)
    traffic_ratio: dict[str, float] = field(default_factory=dict)

    def average_hit_rate(self, model: str) -> float:
        row = self.hit_rates[model]
        return sum(row.values()) / len(row)

    def render(self) -> str:
        headers = ["model"] + list(INTEGER_SUITE) + ["store traffic"]
        rows = []
        for model, row in self.hit_rates.items():
            rows.append(
                [model]
                + [percent(row[b]) for b in INTEGER_SUITE]
                + [percent(self.traffic_ratio[model]) + "%"]
            )
        return format_table(
            headers,
            rows,
            title="Table 5: integer write-cache hit rate (%)",
        )


def run(
    latency: int = 17,
    factor: float = 1.0,
    models: tuple[MachineConfig, ...] = TABLE1_MODELS,
) -> WriteCacheTable:
    result = WriteCacheTable()
    configs = [
        model.with_(issue_width=2, mem_latency=latency) for model in models
    ]
    sweep = sweep_suite_stats(configs, suite="int", factor=factor)
    for model, stats in zip(models, sweep):
        result.hit_rates[model.name] = {
            name: s.writecache_hit_rate for name, s in stats.items()
        }
        total_stores = sum(s.store_instructions for s in stats.values())
        total_tx = sum(s.store_transactions for s in stats.values())
        result.traffic_ratio[model.name] = (
            total_tx / total_stores if total_stores else 0.0
        )
    return result
