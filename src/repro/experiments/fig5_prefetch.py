"""Figure 5: effects of removing the prefetch buffers.

All three models, dual issue, with and without stream buffers, at 17 and
35 cycle secondary latencies.  The paper's findings, checked in
EXPERIMENTS.md:

* prefetch barely helps the small model (two buffers thrash between the
  I and D streams),
* the baseline model improves ~11 % at 17 cycles and ~19 % at 35,
* the large model improves ~11 % / ~17 %,
* worst-case (max) CPI improves even more than the average,
* the buffers are cheap (~20 % of the baseline I-cache's area).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import TABLE1_MODELS, MachineConfig
from repro.cost.rbe import ipu_cost
from repro.experiments.common import (
    CpiSummary,
    format_capped_bars,
    sweep_suite_stats,
)


@dataclass
class Fig5Result:
    #: latency -> {"prefetch": [3 summaries], "no_prefetch": [3 summaries]}
    by_latency: dict[int, dict[str, list[CpiSummary]]] = field(
        default_factory=dict
    )

    def prefetch_gain(self, latency: int, model: str) -> float:
        """Average-CPI improvement from adding prefetch to a model."""
        with_pf = self._find(latency, "prefetch", model)
        without = self._find(latency, "no_prefetch", model)
        return 1.0 - with_pf.cpi_avg / without.cpi_avg

    def worst_case_gain(self, latency: int, model: str) -> float:
        with_pf = self._find(latency, "prefetch", model)
        without = self._find(latency, "no_prefetch", model)
        return 1.0 - with_pf.cpi_max / without.cpi_max

    def _find(self, latency: int, variant: str, model: str) -> CpiSummary:
        for point in self.by_latency[latency][variant]:
            if point.label.startswith(model):
                return point
        raise KeyError((latency, variant, model))

    def render(self) -> str:
        sections = []
        for latency, variants in sorted(self.by_latency.items()):
            rows = variants["no_prefetch"] + variants["prefetch"]
            sections.append(
                format_capped_bars(
                    rows,
                    title=(
                        f"Figure 5: prefetch removal, {latency}-cycle latency "
                        "(dual issue; hollow caps = prefetch)"
                    ),
                )
            )
        return "\n\n".join(sections)


def run(
    latencies: tuple[int, ...] = (17, 35),
    factor: float = 1.0,
    models: tuple[MachineConfig, ...] = TABLE1_MODELS,
) -> Fig5Result:
    result = Fig5Result()
    for latency in latencies:
        labelled = [
            (
                key,
                f"{model.name}/{'pf' if enabled else 'nopf'}",
                model.with_(
                    issue_width=2,
                    mem_latency=latency,
                    prefetch_enabled=enabled,
                ),
            )
            for model in models
            for enabled, key in ((True, "prefetch"), (False, "no_prefetch"))
        ]
        sweep = sweep_suite_stats(
            [config for _, _, config in labelled], suite="int", factor=factor
        )
        variants: dict[str, list[CpiSummary]] = {
            "prefetch": [],
            "no_prefetch": [],
        }
        for (key, label, config), stats in zip(labelled, sweep):
            variants[key].append(
                CpiSummary.from_stats(label, ipu_cost(config).total, stats)
            )
        result.by_latency[latency] = variants
    return result
