"""Section 5's primary-cache hit-rate check.

"The base model instruction cache hit rate is 96.5% and data cache hit
rate is 95.4%; these numbers agree with those published in [Gee et al.]."
This driver reports both rates per benchmark on the baseline model and
the suite averages for the comparison in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import BASELINE, MachineConfig
from repro.experiments.common import format_table, percent, suite_stats


@dataclass
class HitRateResult:
    icache: dict[str, float] = field(default_factory=dict)
    dcache: dict[str, float] = field(default_factory=dict)

    @property
    def icache_average(self) -> float:
        return sum(self.icache.values()) / len(self.icache)

    @property
    def dcache_average(self) -> float:
        return sum(self.dcache.values()) / len(self.dcache)

    def render(self) -> str:
        rows = [
            [name, percent(self.icache[name]), percent(self.dcache[name])]
            for name in self.icache
        ]
        rows.append(
            [
                "Average",
                percent(self.icache_average),
                percent(self.dcache_average),
            ]
        )
        rows.append(["paper baseline", "96.50", "95.40"])
        return format_table(
            ["benchmark", "I-cache hit %", "D-cache hit %"],
            rows,
            title="Section 5: baseline primary-cache hit rates",
        )


def run(factor: float = 1.0, base: MachineConfig = BASELINE) -> HitRateResult:
    stats = suite_stats(base.dual_issue(), suite="int", factor=factor)
    result = HitRateResult()
    for name, s in stats.items():
        result.icache[name] = s.icache_hit_rate
        result.dcache[name] = s.dcache_hit_rate
    return result
