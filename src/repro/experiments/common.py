"""Shared infrastructure for the experiment drivers.

Each paper table/figure has a driver module exposing ``run(...)`` that
returns a result object with structured data plus ``render()`` for the
paper-style text output.  This module holds what they share: scaled trace
access, suite sweeps, and plain-text table/figure rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MachineConfig
from repro.core.kernel import simulate_many
from repro.core.stats import SimStats
from repro.func.trace import TraceRecord
from repro.robustness.validation import validate_factor
from repro.workloads.registry import FP_SUITE, INTEGER_SUITE, get_spec, get_trace

#: Minimum sensible scale per workload when shrinking via ``factor``.
_MIN_SCALES = {
    "espresso": 12,
    "li": 120,
    "eqntott": 48,
    "compress": 1100,
    "sc": 8,
    "gcc": 200,
    "alvinn": 32,
    "doduc": 400,
    "ear": 24,
    "hydro2d": 10,
    "mdljdp2": 10,
    "nasa7": 6,
    "ora": 64,
    "spice2g6": 32,
    "su2cor": 48,
}


def scaled_trace(name: str, factor: float = 1.0) -> list[TraceRecord]:
    """Trace for ``name`` at ``factor`` x its default scale.

    ``factor < 1`` shrinks runs for quick benchmarking; workload-specific
    minimums and parity constraints (nasa7's even dimension) are honoured.
    Non-positive or non-finite factors are rejected up front (they would
    otherwise produce nonsense scales deep inside the trace generator).
    """
    factor = validate_factor(factor)
    if factor == 1.0:
        return get_trace(name)
    spec = get_spec(name)
    scale = max(_MIN_SCALES.get(name, 8), int(spec.default_scale * factor))
    if name in ("nasa7", "ora") and scale % 2:
        scale += 1  # these kernels process two elements per iteration
    return get_trace(name, scale)


def suite_names(suite: str) -> tuple[str, ...]:
    """Workload names for a suite id ("int" or "fp")."""
    if suite == "int":
        return INTEGER_SUITE
    if suite == "fp":
        return FP_SUITE
    raise ValueError(f"unknown suite {suite!r}; expected 'int' or 'fp'")


def sweep_suite_stats(
    configs: list[MachineConfig],
    suite: str = "int",
    factor: float = 1.0,
    kernel: str | None = None,
) -> list[dict[str, SimStats]]:
    """Run every workload in a suite on every config; one trace pass each.

    The workhorse of the multi-config figure drivers: each workload's
    trace is walked once through :func:`repro.core.kernel.simulate_many`
    (so the batched kernel can advance all configs together), and the
    result is a per-config list of ``{workload: SimStats}`` mappings,
    index-aligned with ``configs``.  ``kernel`` overrides the
    ``REPRO_SIM_KERNEL`` selection for this sweep.
    """
    names = suite_names(suite)
    results: list[dict[str, SimStats]] = [{} for _ in configs]
    for name in names:
        trace = scaled_trace(name, factor)
        for stats_map, result in zip(
            results, simulate_many(trace, configs, kernel=kernel)
        ):
            stats_map[name] = result.stats
    return results


def suite_stats(
    config: MachineConfig,
    suite: str = "int",
    factor: float = 1.0,
) -> dict[str, SimStats]:
    """Run every workload in a suite on ``config``; returns per-name stats."""
    return sweep_suite_stats([config], suite=suite, factor=factor)[0]


@dataclass
class CpiSummary:
    """Min / average / max CPI over a benchmark suite on one config —
    the capped-bar presentation of Figures 4, 5 and 7."""

    label: str
    cost: float
    cpi_min: float
    cpi_avg: float
    cpi_max: float
    per_benchmark: dict[str, float] = field(default_factory=dict)
    #: Benchmarks whose run retired zero instructions (empty trace).
    #: Their CPI is undefined (NaN at the result layer), so they are
    #: skipped — not folded into min/avg/max — and counted here.
    empty_runs: int = 0

    @classmethod
    def from_stats(
        cls, label: str, cost: float, stats: dict[str, SimStats]
    ) -> "CpiSummary":
        if not stats:
            raise ValueError(
                f"CpiSummary {label!r}: empty suite stats — no benchmarks "
                "were simulated for this configuration"
            )
        cpis = {
            name: s.cpi for name, s in stats.items() if s.instructions
        }
        empty_runs = len(stats) - len(cpis)
        if not cpis:
            raise ValueError(
                f"CpiSummary {label!r}: all {empty_runs} runs retired zero "
                "instructions (empty_runs counter); no CPI is defined"
            )
        values = list(cpis.values())
        return cls(
            label=label,
            cost=cost,
            cpi_min=min(values),
            cpi_avg=sum(values) / len(values),
            cpi_max=max(values),
            per_benchmark=cpis,
            empty_runs=empty_runs,
        )


def suite_average_cpi(stats: dict[str, SimStats]) -> float:
    """Average CPI over a suite, skipping zero-instruction (empty) runs.

    An empty run has no defined CPI (NaN at the result layer); folding it
    into a mean poisons the aggregate, so such runs are excluded.  Raises
    when every run is empty — there is no average to report.
    """
    values = [s.cpi for s in stats.values() if s.instructions]
    if not values:
        raise ValueError(
            f"all {len(stats)} suite runs retired zero instructions; "
            "no average CPI is defined"
        )
    return sum(values) / len(values)


def format_table(
    headers: list[str],
    rows: list[list[str]],
    title: str | None = None,
) -> str:
    """Render a plain-text table with aligned columns."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_capped_bars(
    summaries: list[CpiSummary],
    title: str,
    x_label: str = "cost (RBE)",
) -> str:
    """Text rendition of the paper's cost-vs-CPI capped-bar plots.

    One line per configuration: cost, then min - avg - max CPI.
    """
    rows = [
        [
            s.label,
            f"{s.cost:,.0f}",
            f"{s.cpi_min:.3f}",
            f"{s.cpi_avg:.3f}",
            f"{s.cpi_max:.3f}",
        ]
        for s in summaries
    ]
    return format_table(
        ["configuration", x_label, "CPI min", "CPI avg", "CPI max"],
        rows,
        title=title,
    )


def percent(value: float) -> str:
    return f"{100 * value:.2f}"
