"""Shared infrastructure for the experiment drivers.

Each paper table/figure has a driver module exposing ``run(...)`` that
returns a result object with structured data plus ``render()`` for the
paper-style text output.  This module holds what they share: scaled trace
access, suite sweeps, and plain-text table/figure rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MachineConfig
from repro.core.processor import simulate_trace
from repro.core.stats import SimStats
from repro.func.trace import TraceRecord
from repro.robustness.validation import validate_factor
from repro.workloads.registry import FP_SUITE, INTEGER_SUITE, get_spec, get_trace

#: Minimum sensible scale per workload when shrinking via ``factor``.
_MIN_SCALES = {
    "espresso": 12,
    "li": 120,
    "eqntott": 48,
    "compress": 1100,
    "sc": 8,
    "gcc": 200,
    "alvinn": 32,
    "doduc": 400,
    "ear": 24,
    "hydro2d": 10,
    "mdljdp2": 10,
    "nasa7": 6,
    "ora": 64,
    "spice2g6": 32,
    "su2cor": 48,
}


def scaled_trace(name: str, factor: float = 1.0) -> list[TraceRecord]:
    """Trace for ``name`` at ``factor`` x its default scale.

    ``factor < 1`` shrinks runs for quick benchmarking; workload-specific
    minimums and parity constraints (nasa7's even dimension) are honoured.
    Non-positive or non-finite factors are rejected up front (they would
    otherwise produce nonsense scales deep inside the trace generator).
    """
    factor = validate_factor(factor)
    if factor == 1.0:
        return get_trace(name)
    spec = get_spec(name)
    scale = max(_MIN_SCALES.get(name, 8), int(spec.default_scale * factor))
    if name in ("nasa7", "ora") and scale % 2:
        scale += 1  # these kernels process two elements per iteration
    return get_trace(name, scale)


def suite_stats(
    config: MachineConfig,
    suite: str = "int",
    factor: float = 1.0,
) -> dict[str, SimStats]:
    """Run every workload in a suite on ``config``; returns per-name stats."""
    if suite == "int":
        names = INTEGER_SUITE
    elif suite == "fp":
        names = FP_SUITE
    else:
        raise ValueError(f"unknown suite {suite!r}; expected 'int' or 'fp'")
    results = {}
    for name in names:
        trace = scaled_trace(name, factor)
        results[name] = simulate_trace(trace, config).stats
    return results


@dataclass
class CpiSummary:
    """Min / average / max CPI over a benchmark suite on one config —
    the capped-bar presentation of Figures 4, 5 and 7."""

    label: str
    cost: float
    cpi_min: float
    cpi_avg: float
    cpi_max: float
    per_benchmark: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_stats(
        cls, label: str, cost: float, stats: dict[str, SimStats]
    ) -> "CpiSummary":
        if not stats:
            raise ValueError(
                f"CpiSummary {label!r}: empty suite stats — no benchmarks "
                "were simulated for this configuration"
            )
        cpis = {name: s.cpi for name, s in stats.items()}
        values = list(cpis.values())
        return cls(
            label=label,
            cost=cost,
            cpi_min=min(values),
            cpi_avg=sum(values) / len(values),
            cpi_max=max(values),
            per_benchmark=cpis,
        )


def format_table(
    headers: list[str],
    rows: list[list[str]],
    title: str | None = None,
) -> str:
    """Render a plain-text table with aligned columns."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_capped_bars(
    summaries: list[CpiSummary],
    title: str,
    x_label: str = "cost (RBE)",
) -> str:
    """Text rendition of the paper's cost-vs-CPI capped-bar plots.

    One line per configuration: cost, then min - avg - max CPI.
    """
    rows = [
        [
            s.label,
            f"{s.cost:,.0f}",
            f"{s.cpi_min:.3f}",
            f"{s.cpi_avg:.3f}",
            f"{s.cpi_max:.3f}",
        ]
        for s in summaries
    ]
    return format_table(
        ["configuration", x_label, "CPI min", "CPI avg", "CPI max"],
        rows,
        title=title,
    )


def percent(value: float) -> str:
    return f"{100 * value:.2f}"
