"""Figure 1: single-chip microprocessor clock frequencies at ISSCC.

The paper's motivation figure plots clock rates of microprocessors
presented at the eleven ISSCC conferences before 1994 and draws a ~40 %
per-year growth line.  We reproduce it from a transcribed dataset of
representative ISSCC-era single-chip microprocessor clock rates
(1984-1994, MHz) and fit the exponential trend with a least-squares fit
in log space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: (ISSCC year, processor, MHz) — representative presentations per year.
CLOCK_DATA: tuple[tuple[int, str, float], ...] = (
    (1984, "Motorola 68020", 16.0),
    (1984, "NS32032", 10.0),
    (1985, "Intel 386", 16.0),
    (1985, "Clipper C100", 33.0),
    (1986, "MIPS R2000", 12.5),
    (1986, "Z80000", 25.0),
    (1987, "Acorn ARM2", 12.0),
    (1987, "CVAX", 25.0),
    (1988, "MIPS R3000", 25.0),
    (1988, "Am29000", 30.0),
    (1989, "Intel 486", 25.0),
    (1989, "i860", 40.0),
    (1990, "IBM RS/6000 RIOS", 30.0),
    (1990, "SPARC (BIT)", 66.0),
    (1991, "MIPS R4000", 50.0),
    (1991, "HP PA-RISC 7100", 99.0),
    (1992, "SuperSPARC", 40.0),
    (1992, "DEC Alpha 21064", 150.0),
    (1993, "Pentium", 66.0),
    (1993, "Alpha 21064A", 200.0),
    (1994, "PowerPC 604", 100.0),
    (1994, "Alpha 21164 (announced)", 300.0),
)


@dataclass
class ClockTrend:
    """Exponential fit f(year) = a * growth^(year - year0)."""

    year0: int
    base_mhz: float
    annual_growth: float  # e.g. 1.40 for +40 %/year

    def predict(self, year: float) -> float:
        return self.base_mhz * self.annual_growth ** (year - self.year0)

    @property
    def growth_percent(self) -> float:
        return 100.0 * (self.annual_growth - 1.0)


def fit_trend(
    data: tuple[tuple[int, str, float], ...] = CLOCK_DATA,
    fastest_only: bool = False,
) -> ClockTrend:
    """Least-squares exponential fit in log space.

    The paper's 40 %/year line tracks the leading edge, so
    ``fastest_only=True`` fits one point per year (the fastest chip);
    the default fits the whole cloud.
    """
    if fastest_only:
        fastest: dict[int, float] = {}
        for year, _, mhz in data:
            if mhz > fastest.get(year, 0.0):
                fastest[year] = mhz
        data = tuple((year, "fastest", mhz) for year, mhz in sorted(fastest.items()))
    years = [float(y) for y, _, _ in data]
    logs = [math.log(mhz) for _, _, mhz in data]
    n = len(years)
    mean_y = sum(years) / n
    mean_l = sum(logs) / n
    cov = sum((y - mean_y) * (l - mean_l) for y, l in zip(years, logs))
    var = sum((y - mean_y) ** 2 for y in years)
    slope = cov / var
    intercept = mean_l - slope * mean_y
    year0 = int(min(years))
    return ClockTrend(
        year0=year0,
        base_mhz=math.exp(intercept + slope * year0),
        annual_growth=math.exp(slope),
    )


def fastest_vs_slowest_ratio(
    data: tuple[tuple[int, str, float], ...] = CLOCK_DATA,
) -> dict[int, float]:
    """Per-year fastest/slowest ratio (the paper notes it is >= 2 and
    widening)."""
    by_year: dict[int, list[float]] = {}
    for year, _, mhz in data:
        by_year.setdefault(year, []).append(mhz)
    return {
        year: max(values) / min(values)
        for year, values in sorted(by_year.items())
        if len(values) >= 2
    }


@dataclass
class Fig1Result:
    trend: ClockTrend  # leading-edge fit (the paper's line)
    cloud_trend: ClockTrend  # fit over every presented chip
    ratios: dict[int, float]

    def render(self) -> str:
        lines = ["Figure 1: ISSCC single-chip microprocessor clock frequencies"]
        lines.append(f"{'year':>5}  {'processor':<26} {'MHz':>6}  trend")
        for year, name, mhz in CLOCK_DATA:
            lines.append(
                f"{year:>5}  {name:<26} {mhz:>6.1f}  {self.trend.predict(year):>6.1f}"
            )
        lines.append(
            f"leading-edge growth: {self.trend.growth_percent:.1f}% per year "
            "(paper's line: ~40% per year)"
        )
        lines.append(
            f"whole-cloud growth:  {self.cloud_trend.growth_percent:.1f}% per year"
        )
        for year, ratio in self.ratios.items():
            lines.append(f"  {year}: fastest/slowest = {ratio:.1f}x")
        return "\n".join(lines)


def run() -> Fig1Result:
    return Fig1Result(
        trend=fit_trend(fastest_only=True),
        cloud_trend=fit_trend(),
        ratios=fastest_vs_slowest_ratio(),
    )
