"""Figure 8: the full cost/performance design space on espresso.

All simulation points for the 17-cycle latency espresso runs: four
single-issue systems of various sizes (squares) and, for each I-cache
size (1 K / 2 K / 4 K), eight dual-issue systems sweeping the other
memory elements (diamonds / triangles / circles).  The paper labels
five noteworthy points:

* **A** — configurations with a single MSHR: they sit well above
  everything else at the same cost (blocking caches are bad),
* **B** — the large model: a performance plateau where extra cost buys
  little,
* **C**/**D** — a pair differing only in prefetch (D adds it),
* **E** — the recommendation: 4 KB I-cache with baseline-sized other
  elements and 4 MSHRs (nearly large-model performance at much lower
  cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import (
    BASELINE,
    LARGE,
    RECOMMENDED,
    SMALL,
    MachineConfig,
)
from repro.core.kernel import simulate_many
from repro.cost.rbe import total_cost
from repro.experiments.common import format_table, scaled_trace
from repro.explore.pareto import frontier_indices

_MODEL_BY_ICACHE = {1024: SMALL, 2048: BASELINE, 4096: LARGE}


@dataclass
class DesignPoint:
    label: str
    config: MachineConfig
    cost: float
    cpi: float
    marker: str = ""  # A/B/C/D/E annotations
    #: True when the run retired zero instructions: the CPI field is
    #: meaningless (0.0 placeholder) and the point must not compete in
    #: frontier math.
    empty: bool = False


@dataclass
class Fig8Result:
    points: list[DesignPoint] = field(default_factory=list)

    @property
    def empty_runs(self) -> int:
        """Design points whose run retired zero instructions (skipped)."""
        return sum(1 for p in self.points if p.empty)

    def marked(self, marker: str) -> list[DesignPoint]:
        return [p for p in self.points if p.marker == marker]

    def best(self) -> DesignPoint:
        live = [p for p in self.points if not p.empty]
        if not live:
            raise ValueError(
                f"Figure 8: all {self.empty_runs} design points retired "
                "zero instructions (empty_runs counter); no frontier exists"
            )
        return min(live, key=lambda p: p.cpi)

    def frontier(self) -> list[DesignPoint]:
        """The non-dominated cost/CPI set, cheapest first.

        What Figure 8 is actually about: the points where spending more
        RBE buys CPI and spending less costs it.  Empty runs have no
        defined CPI, so they never compete (``best()`` alone understates
        the figure — the paper's story is the whole lower-left edge, not
        one point).
        """
        live = [p for p in self.points if not p.empty]
        chosen = frontier_indices([(p.cost, p.cpi) for p in live])
        return sorted((live[i] for i in chosen), key=lambda p: p.cost)

    def render(self) -> str:
        on_frontier = {id(p) for p in self.frontier()}
        rows = [
            [
                p.label,
                f"{p.cost:,.0f}",
                "(empty)" if p.empty else f"{p.cpi:.3f}",
                p.marker,
                "*" if id(p) in on_frontier else "",
            ]
            for p in sorted(self.points, key=lambda p: p.cost)
        ]
        table = format_table(
            ["configuration", "cost (RBE)", "CPI", "mark", "frontier"],
            rows,
            title="Figure 8: espresso full cost-performance (17-cycle latency)",
        )
        if self.empty_runs:
            table += (
                f"\n({self.empty_runs} empty runs skipped: "
                "zero instructions retired)"
            )
        return table


def design_points() -> list[tuple[str, MachineConfig, str]]:
    """The catalogue of configurations plotted in Figure 8.

    ``(label, config, marker)`` triples at 17-cycle memory latency.  The
    guided explorer (:mod:`repro.explore.space`) and the batched-kernel
    benchmark both build their grids from this list, so "the Figure 8
    catalogue" has exactly one definition.
    """
    points: list[tuple[str, MachineConfig, str]] = []
    # Four single-issue systems of various sizes (the squares).
    for model in (SMALL, BASELINE, LARGE, RECOMMENDED):
        marker = ""
        config = model.single_issue().with_latency(17)
        if config.mshr_entries == 1:
            marker = "A"
        points.append((f"{model.name}/single", config, marker))
    # Dual-issue sweeps per I-cache size: vary each memory element away
    # from the matching model's value, plus a fully up/down-sized variant.
    for icache, base in _MODEL_BY_ICACHE.items():
        model = base.dual_issue().with_latency(17)
        tag = f"{icache // 1024}K"
        variants: list[tuple[str, MachineConfig]] = [(f"{tag}/std", model)]
        for count in (1, 2, 4):
            if count != model.mshr_entries:
                variants.append(
                    (f"{tag}/mshr{count}", model.with_(mshr_entries=count))
                )
        for rob in (2, 6, 8):
            if rob != model.rob_entries:
                variants.append((f"{tag}/rob{rob}", model.with_(rob_entries=rob)))
        for wc in (2, 4, 8):
            if wc != model.writecache_lines:
                variants.append(
                    (f"{tag}/wc{wc}", model.with_(writecache_lines=wc))
                )
        variants.append((f"{tag}/nopf", model.without_prefetch()))
        for label, config in variants:
            marker = ""
            if config.mshr_entries == 1:
                marker = "A"
            elif label == "4K/std":
                marker = "B"
            elif label == "2K/nopf":
                marker = "C"
            elif label == "2K/std":
                marker = "D"
            points.append((label, config, marker))
    # Point E: the Section 5.6 recommendation, dual issue.
    points.append(("E/recommended", RECOMMENDED.dual_issue().with_latency(17), "E"))
    return points


#: Backwards-compatible alias (the catalogue predates its export).
_design_points = design_points


def run(factor: float = 1.0, workload: str = "espresso") -> Fig8Result:
    trace = scaled_trace(workload, factor)
    result = Fig8Result()
    catalogue = design_points()
    batch = simulate_many(trace, [config for _, config, _ in catalogue])
    for (label, config, marker), sim in zip(catalogue, batch):
        stats = sim.stats
        result.points.append(
            DesignPoint(
                label=label,
                config=config,
                cost=total_cost(config),
                cpi=stats.cpi,
                marker=marker,
                empty=stats.instructions == 0,
            )
        )
    return result
