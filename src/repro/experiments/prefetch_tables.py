"""Tables 3 and 4: integer prefetch-buffer hit rates.

A prefetch hit is a primary-cache miss that finds its line in one of the
stream buffers.  Table 3 reports the instruction stream, Table 4 the
data stream, each as a percentage per benchmark per model (dual issue,
17-cycle latency).  Paper averages: ~58 % for the instruction stream,
~12 % for the data stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import TABLE1_MODELS, MachineConfig
from repro.experiments.common import format_table, percent, sweep_suite_stats
from repro.workloads.registry import INTEGER_SUITE


@dataclass
class PrefetchTables:
    #: model -> benchmark -> hit rate (0..1)
    instruction: dict[str, dict[str, float]] = field(default_factory=dict)
    data: dict[str, dict[str, float]] = field(default_factory=dict)

    def average(self, stream: str) -> float:
        table = self.instruction if stream == "I" else self.data
        rates = [rate for row in table.values() for rate in row.values()]
        return sum(rates) / len(rates) if rates else 0.0

    def _render_one(self, table: dict[str, dict[str, float]], title: str) -> str:
        headers = ["model"] + list(INTEGER_SUITE)
        rows = [
            [model] + [percent(row[b]) for b in INTEGER_SUITE]
            for model, row in table.items()
        ]
        return format_table(headers, rows, title=title)

    def render(self) -> str:
        return "\n\n".join(
            [
                self._render_one(
                    self.instruction,
                    "Table 3: integer I-prefetch hit rate (%)",
                ),
                self._render_one(
                    self.data, "Table 4: integer D-prefetch hit rate (%)"
                ),
            ]
        )


def run(
    latency: int = 17,
    factor: float = 1.0,
    models: tuple[MachineConfig, ...] = TABLE1_MODELS,
) -> PrefetchTables:
    result = PrefetchTables()
    configs = [
        model.with_(issue_width=2, mem_latency=latency) for model in models
    ]
    sweep = sweep_suite_stats(configs, suite="int", factor=factor)
    for model, stats in zip(models, sweep):
        result.instruction[model.name] = {
            name: s.iprefetch_hit_rate for name, s in stats.items()
        }
        result.data[model.name] = {
            name: s.dprefetch_hit_rate for name, s in stats.items()
        }
    return result
