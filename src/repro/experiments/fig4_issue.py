"""Figure 4: dual- vs single-issue performance for the three models.

For each secondary latency (17 and 35 cycles), six systems: the small,
baseline and large models in single- and dual-issue variants.  Each point
is the (RBE cost, min/avg/max CPI over the integer suite) pair of the
paper's capped-bar plot.  The headline claims checked in EXPERIMENTS.md:

* at 17 cycles, dual issue helps the baseline and large models; the
  single-issue baseline beats the dual-issue small model at similar cost,
* the dual-issue large model is best overall, at roughly +20 % cost over
  its single-issue variant,
* at 35 cycles, the curves converge (dual issue ~10 % better than single).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import TABLE1_MODELS, MachineConfig
from repro.cost.rbe import ipu_cost
from repro.experiments.common import (
    CpiSummary,
    format_capped_bars,
    sweep_suite_stats,
)


@dataclass
class Fig4Result:
    #: latency -> list of six CpiSummary points (3 single, then 3 dual)
    by_latency: dict[int, list[CpiSummary]] = field(default_factory=dict)

    def summary(self, latency: int, label: str) -> CpiSummary:
        for point in self.by_latency[latency]:
            if point.label == label:
                return point
        raise KeyError(label)

    def dual_issue_gain(self, latency: int, model: str) -> float:
        """Average-CPI improvement of dual over single for a model."""
        single = self.summary(latency, f"{model}/single")
        dual = self.summary(latency, f"{model}/dual")
        return 1.0 - dual.cpi_avg / single.cpi_avg

    def render(self) -> str:
        sections = []
        for latency, summaries in sorted(self.by_latency.items()):
            sections.append(
                format_capped_bars(
                    summaries,
                    title=f"Figure 4: {latency}-cycle secondary latency",
                )
            )
        return "\n\n".join(sections)


def run(
    latencies: tuple[int, ...] = (17, 35),
    factor: float = 1.0,
    models: tuple[MachineConfig, ...] = TABLE1_MODELS,
) -> Fig4Result:
    result = Fig4Result()
    for latency in latencies:
        labelled = [
            (
                f"{model.name}/{issue_name}",
                model.with_(issue_width=issue_width, mem_latency=latency),
            )
            for issue_width, issue_name in ((1, "single"), (2, "dual"))
            for model in models
        ]
        sweep = sweep_suite_stats(
            [config for _, config in labelled], suite="int", factor=factor
        )
        result.by_latency[latency] = [
            CpiSummary.from_stats(label, ipu_cost(config).total, stats)
            for (label, config), stats in zip(labelled, sweep)
        ]
    return result
