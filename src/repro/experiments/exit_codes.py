"""Unified ``aurora-sim`` process exit codes.

One table, used by every entry point (``aurora-sim`` subcommands and
``python -m repro.experiments.run_all``), so scripts and CI can branch
on *why* a run ended without parsing output:

====  =======================================================
code  meaning
====  =======================================================
0     success (all selected work completed)
1     internal error (unexpected exception; a bug, not usage)
2     usage error (bad arguments or invalid ``REPRO_*`` env)
3     performance regression detected (``aurora-sim perf``)
4     partial results: one or more experiments failed, timed
      out, or were lost to a worker death — the rest completed
      and were checkpointed
5     interrupted (SIGINT/SIGTERM): graceful shutdown, the
      checkpoint manifest was flushed; resume to continue
6     SLO violation (``aurora-sim loadgen --slo``): the load
      run completed, but at least one declared objective
      burned its error budget in every evaluation window
====  =======================================================

Codes 4 and 5 are deliberately distinct: "something broke" (4) wants a
bug report, "the operator stopped it" (5) wants a resume.  Argparse
itself exits 2 on bad flags, which this table deliberately matches for
the eager environment validation path.  One code lives outside the
table: a downstream consumer closing stdout (``run_all | head``) exits
``128 + SIGPIPE`` (141), the status a signal-killed process reports —
it is the pipeline's business, not a sweep outcome.
"""

from __future__ import annotations

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2
EXIT_PERF_REGRESSION = 3
EXIT_PARTIAL = 4
EXIT_INTERRUPTED = 5
EXIT_SLO_VIOLATION = 6


def sweep_exit_code(report) -> int:
    """Exit code for a finished sweep's :class:`RunReport`.

    Interruption wins over partial failure: an operator who stopped a
    sweep mid-flight expects "interrupted", even though the stop also
    left experiments unfinished.
    """
    if report.interrupted:
        return EXIT_INTERRUPTED
    if not report.ok:
        return EXIT_PARTIAL
    return EXIT_OK
