"""Figure 6: breakdown of IPU stall penalties.

Per model (dual issue, 17-cycle latency), the CPI penalty from each of
the four stall conditions: instruction-cache stalls, load stalls,
reorder-buffer-full stalls, and LSU-busy stalls.  Paper findings checked
in EXPERIMENTS.md:

* in the small model, LSU stalls dominate (a single MSHR serialises the
  LSU),
* in the base and large models most stalls are I-cache and load stalls,
* ROB size matters little because load stalls happen before the ROB
  fills,
* in the large model the residual load stalls come from the pipelined
  data cache's three-cycle latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import TABLE1_MODELS, MachineConfig
from repro.core.stats import StallKind
from repro.experiments.common import (
    format_table,
    suite_average_cpi,
    sweep_suite_stats,
)


@dataclass
class Fig6Result:
    #: model name -> {stall kind -> average CPI penalty over the suite}
    penalties: dict[str, dict[StallKind, float]] = field(default_factory=dict)
    total_cpi: dict[str, float] = field(default_factory=dict)

    def dominant(self, model: str) -> StallKind:
        by_kind = self.penalties[model]
        return max(by_kind, key=by_kind.get)

    def render(self) -> str:
        kinds = StallKind.paper_categories()
        headers = ["model"] + [k.value for k in kinds] + ["total CPI"]
        rows = []
        for model, by_kind in self.penalties.items():
            rows.append(
                [model]
                + [f"{by_kind[k]:.3f}" for k in kinds]
                + [f"{self.total_cpi[model]:.3f}"]
            )
        return format_table(
            headers,
            rows,
            title="Figure 6: stall-penalty breakdown (CPI, suite average)",
        )


def run(
    latency: int = 17,
    factor: float = 1.0,
    models: tuple[MachineConfig, ...] = TABLE1_MODELS,
) -> Fig6Result:
    result = Fig6Result()
    configs = [
        model.with_(issue_width=2, mem_latency=latency) for model in models
    ]
    sweep = sweep_suite_stats(configs, suite="int", factor=factor)
    for model, stats in zip(models, sweep):
        # Empty (zero-instruction) runs have no defined per-instruction
        # penalty; skip them rather than fold zeros into the averages.
        live = [s for s in stats.values() if s.instructions]
        count = len(live)
        by_kind = {
            kind: sum(s.stall_cpi(kind) for s in live) / count
            for kind in StallKind.paper_categories()
        }
        result.penalties[model.name] = by_kind
        result.total_cpi[model.name] = suite_average_cpi(stats)
    return result
