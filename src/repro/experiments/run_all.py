"""Run every paper experiment and print (and optionally save) the reports.

Usage::

    python -m repro.experiments.run_all [--factor 0.5] [--out results/]

``--factor`` shrinks every workload to that fraction of its default size
for faster turnarounds; 1.0 reproduces the shipped EXPERIMENTS.md runs.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments import (
    fig1_clock_trend,
    fig4_issue,
    fig5_prefetch,
    fig6_stalls,
    fig7_mshr,
    fig8_design_space,
    fig9_fpu,
    hit_rates,
    prefetch_tables,
    table2_cost,
    table6_fpu_issue,
    writecache_table,
)

#: experiment id -> callable(factor) -> result with .render()
EXPERIMENTS = {
    "fig1": lambda factor: fig1_clock_trend.run(),
    "table2": lambda factor: table2_cost.run(),
    "fig4": lambda factor: fig4_issue.run(factor=factor),
    "table3_4": lambda factor: prefetch_tables.run(factor=factor),
    "fig5": lambda factor: fig5_prefetch.run(factor=factor),
    "fig6": lambda factor: fig6_stalls.run(factor=factor),
    "fig7": lambda factor: fig7_mshr.run(factor=factor),
    "table5": lambda factor: writecache_table.run(factor=factor),
    "fig8": lambda factor: fig8_design_space.run(factor=factor),
    "hit_rates": lambda factor: hit_rates.run(factor=factor),
    "table6": lambda factor: table6_fpu_issue.run(factor=factor),
    "fig9": lambda factor: fig9_fpu.run(factor=factor),
}


def run_all(
    factor: float = 1.0,
    out_dir: str | None = None,
    only: list[str] | None = None,
    stream=None,
) -> dict[str, object]:
    """Run the selected experiments; returns {id: result}."""
    stream = stream or sys.stdout
    results: dict[str, object] = {}
    out_path = pathlib.Path(out_dir) if out_dir else None
    if out_path:
        out_path.mkdir(parents=True, exist_ok=True)
    for exp_id, runner in EXPERIMENTS.items():
        if only and exp_id not in only:
            continue
        started = time.time()
        result = runner(factor)
        elapsed = time.time() - started
        results[exp_id] = result
        text = result.render()
        print(f"==== {exp_id} ({elapsed:.1f}s) ====", file=stream)
        print(text, file=stream)
        print(file=stream)
        if out_path:
            (out_path / f"{exp_id}.txt").write_text(text + "\n")
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--factor", type=float, default=1.0)
    parser.add_argument("--out", default=None, help="directory for .txt reports")
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        choices=sorted(EXPERIMENTS),
        help="run only these experiment ids",
    )
    args = parser.parse_args(argv)
    run_all(factor=args.factor, out_dir=args.out, only=args.only)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
