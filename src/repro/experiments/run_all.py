"""Run every paper experiment fault-tolerantly, with checkpoint/resume.

Usage::

    python -m repro.experiments.run_all [--factor 0.5] [--out results/]
                                        [--only fig4 ...] [--timeout 600]
                                        [--retries 2] [--no-resume]
                                        [--manifest path.json]

``--factor`` shrinks every workload to that fraction of its default size
for faster turnarounds; 1.0 reproduces the shipped EXPERIMENTS.md runs.

Execution goes through :class:`repro.robustness.runner.ResilientRunner`:
each experiment is isolated (a crash or timeout in one no longer aborts
the sweep), transient failures retry with bounded backoff, and completed
results checkpoint to a manifest keyed by (experiment id, factor, code
hash) — re-running the same sweep skips finished work and re-runs only
what failed.  The process exit code is non-zero iff any experiment
failed, and a partial-results report always prints.
"""

from __future__ import annotations

import argparse
import sys

from repro.robustness.runner import ResilientRunner, RunReport
from repro.robustness.validation import validate_factor

from repro.experiments import (
    fig1_clock_trend,
    fig4_issue,
    fig5_prefetch,
    fig6_stalls,
    fig7_mshr,
    fig8_design_space,
    fig9_fpu,
    hit_rates,
    prefetch_tables,
    table2_cost,
    table6_fpu_issue,
    writecache_table,
)

#: experiment id -> callable(factor) -> result with .render()
EXPERIMENTS = {
    "fig1": lambda factor: fig1_clock_trend.run(),
    "table2": lambda factor: table2_cost.run(),
    "fig4": lambda factor: fig4_issue.run(factor=factor),
    "table3_4": lambda factor: prefetch_tables.run(factor=factor),
    "fig5": lambda factor: fig5_prefetch.run(factor=factor),
    "fig6": lambda factor: fig6_stalls.run(factor=factor),
    "fig7": lambda factor: fig7_mshr.run(factor=factor),
    "table5": lambda factor: writecache_table.run(factor=factor),
    "fig8": lambda factor: fig8_design_space.run(factor=factor),
    "hit_rates": lambda factor: hit_rates.run(factor=factor),
    "table6": lambda factor: table6_fpu_issue.run(factor=factor),
    "fig9": lambda factor: fig9_fpu.run(factor=factor),
}


def run_resilient(
    factor: float = 1.0,
    out_dir: str | None = None,
    only: list[str] | None = None,
    stream=None,
    *,
    resume: bool = True,
    manifest: str | None = None,
    timeout: float | None = None,
    retries: int = 2,
    backoff: float = 0.25,
    fault_plan=None,
) -> tuple[dict[str, object], RunReport]:
    """Run the selected experiments; returns ``(results, report)``.

    ``results`` maps experiment id to the driver's result object (or a
    :class:`~repro.robustness.runner.CheckpointedResult` restored from
    the manifest); ``report`` lists every outcome with causes.  When
    neither ``manifest`` nor ``out_dir`` is given there is nowhere to
    checkpoint, so every experiment runs fresh.
    """
    validate_factor(factor, where="--factor")
    runner = ResilientRunner(
        manifest_path=manifest,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        fault_plan=fault_plan,
    )
    return runner.run(
        EXPERIMENTS,
        factor=factor,
        only=only,
        resume=resume,
        stream=stream if stream is not None else sys.stdout,
        out_dir=out_dir,
    )


def run_all(
    factor: float = 1.0,
    out_dir: str | None = None,
    only: list[str] | None = None,
    stream=None,
    **kwargs,
) -> dict[str, object]:
    """Back-compatible wrapper around :func:`run_resilient`.

    Returns only the ``{id: result}`` mapping the original bare loop
    returned; keyword arguments pass through to :func:`run_resilient`.
    """
    results, _report = run_resilient(
        factor=factor, out_dir=out_dir, only=only, stream=stream, **kwargs
    )
    return results


def positive_float(text: str) -> float:
    """Argparse type for ``--factor``: strictly positive, finite."""
    try:
        return validate_factor(float(text), where="--factor")
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--factor", type=positive_float, default=1.0)
    parser.add_argument("--out", default=None, help="directory for .txt reports")
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        choices=sorted(EXPERIMENTS),
        help="run only these experiment ids",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-experiment wall-clock budget in seconds",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retry attempts for transient failures",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore the checkpoint manifest and re-run everything",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        help="checkpoint manifest path (default: <out>/manifest.json)",
    )
    args = parser.parse_args(argv)
    _results, report = run_resilient(
        factor=args.factor,
        out_dir=args.out,
        only=args.only,
        resume=not args.no_resume,
        manifest=args.manifest,
        timeout=args.timeout,
        retries=args.retries,
    )
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
