"""Run every paper experiment fault-tolerantly, with checkpoint/resume.

Usage::

    python -m repro.experiments.run_all [--factor 0.5] [--out results/]
                                        [--only fig4 ...] [--timeout 600]
                                        [--retries 2] [--no-resume]
                                        [--manifest path.json]
                                        [--jobs 4] [--no-trace-cache]
                                        [--kernel scalar|batched]
                                        [--chaos SPEC] [--chaos-seed N]

``--factor`` shrinks every workload to that fraction of its default size
for faster turnarounds; 1.0 reproduces the shipped EXPERIMENTS.md runs.
``--jobs N`` runs up to N experiments concurrently in worker processes
(results and reports are identical to a serial run — see
docs/PERFORMANCE.md); ``--no-trace-cache`` disables the persistent
on-disk trace cache for this run.

Execution goes through :class:`repro.robustness.runner.ResilientRunner`:
each experiment is isolated (a crash or timeout in one no longer aborts
the sweep), transient failures retry with bounded backoff, and completed
results checkpoint to a manifest keyed by (experiment id, factor, code
hash) — re-running the same sweep skips finished work and re-runs only
what failed.  A partial-results report always prints, and the process
exit code follows the unified table in
:mod:`repro.experiments.exit_codes` (0 ok, 2 usage, 4 partial results,
5 interrupted).  ``--chaos`` injects deterministic failures for
resilience testing (see :mod:`repro.robustness.chaos` and
docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import argparse
import importlib
import os
import pathlib
import signal
import sys
from dataclasses import dataclass

from repro.core.kernel import ENV_KERNEL, KERNEL_NAMES, get_kernel
from repro.experiments.exit_codes import (
    EXIT_INTERRUPTED,
    EXIT_USAGE,
    sweep_exit_code,
)
from repro.robustness.runner import MANIFEST_NAME, ResilientRunner, RunReport
from repro.robustness.validation import (
    EnvValidationError,
    validate_environment,
    validate_factor,
)
from repro.workloads import trace_cache


@dataclass(frozen=True)
class ExperimentDriver:
    """Picklable experiment callable.

    ``--jobs`` ships these across a process pool, which lambdas cannot
    survive; a frozen dataclass pickles by value and imports its driver
    module lazily inside the worker (also what the ``spawn`` start
    method needs).
    """

    module: str  # module name under repro.experiments
    scaled: bool = True  # whether run() accepts a workload-scale factor

    def __call__(self, factor: float):
        driver = importlib.import_module(f"repro.experiments.{self.module}")
        if self.scaled:
            return driver.run(factor=factor)
        return driver.run()


#: experiment id -> callable(factor) -> result with .render()
EXPERIMENTS = {
    "fig1": ExperimentDriver("fig1_clock_trend", scaled=False),
    "table2": ExperimentDriver("table2_cost", scaled=False),
    "fig4": ExperimentDriver("fig4_issue"),
    "table3_4": ExperimentDriver("prefetch_tables"),
    "fig5": ExperimentDriver("fig5_prefetch"),
    "fig6": ExperimentDriver("fig6_stalls"),
    "fig7": ExperimentDriver("fig7_mshr"),
    "table5": ExperimentDriver("writecache_table"),
    "fig8": ExperimentDriver("fig8_design_space"),
    "hit_rates": ExperimentDriver("hit_rates"),
    "table6": ExperimentDriver("table6_fpu_issue"),
    "fig9": ExperimentDriver("fig9_fpu"),
}


def run_resilient(
    factor: float = 1.0,
    out_dir: str | None = None,
    only: list[str] | None = None,
    stream=None,
    *,
    resume: bool = True,
    manifest: str | None = None,
    timeout: float | None = None,
    retries: int = 2,
    backoff: float = 0.25,
    fault_plan=None,
    jobs: int = 1,
    use_trace_cache: bool = True,
    trace_out: str | None = None,
    chaos: str | None = None,
    chaos_seed: int = 0,
    kernel: str | None = None,
) -> tuple[dict[str, object], RunReport]:
    """Run the selected experiments; returns ``(results, report)``.

    ``results`` maps experiment id to the driver's result object (or a
    :class:`~repro.robustness.runner.CheckpointedResult` restored from
    the manifest); ``report`` lists every outcome with causes.  When
    neither ``manifest`` nor ``out_dir`` is given there is nowhere to
    checkpoint, so every experiment runs fresh.  ``jobs > 1`` runs
    experiments on a process pool; ``use_trace_cache=False`` disables
    the persistent trace cache for this process (it never force-enables
    a cache switched off via the environment).  ``trace_out`` switches
    on host-side span tracing for the sweep and exports the merged span
    tree as Chrome trace-event JSON to that path (view with
    ``aurora-sim spans`` or Perfetto); without it no tracer exists and
    the sweep runs exactly as before.

    ``chaos`` takes a :class:`repro.robustness.chaos.ChaosPlan` spec
    (``kind[:target[:count[:seconds]]],...``) seeded by ``chaos_seed``:
    disk faults are applied to the trace cache and manifest before the
    sweep, filesystem faults are armed at their sites (in the parent
    and every pool worker), and pool faults compile into the fault
    plan.  Mutually exclusive with an explicit ``fault_plan``.
    """
    validate_factor(factor, where="--factor")
    if kernel is not None:
        # Published via the environment so spawn-start pool workers (which
        # re-import everything) pick the same kernel as the parent.
        os.environ[ENV_KERNEL] = get_kernel(kernel).name
    if not use_trace_cache:
        trace_cache.set_enabled(False)
    effective_stream = stream if stream is not None else sys.stdout
    chaos_plan = None
    if chaos is not None:
        from repro.robustness import chaos as chaos_mod

        if fault_plan is not None:
            raise ValueError(
                "chaos and fault_plan are mutually exclusive: a chaos "
                "plan compiles its own pool faults"
            )
        chaos_plan = chaos_mod.ChaosPlan.parse(chaos, seed=chaos_seed)
        selected = list(only) if only else list(EXPERIMENTS)
        fault_plan = chaos_plan.fault_plan(selected)
        manifest_path = manifest
        if manifest_path is None and out_dir is not None:
            manifest_path = pathlib.Path(out_dir) / MANIFEST_NAME
        chaos_plan.apply_disk(
            trace_cache.default_cache().root,
            manifest_path,
            stream=effective_stream,
        )
    tracer = None
    if trace_out is not None:
        from repro.telemetry.tracing import SpanTracer

        tracer = SpanTracer()
    runner = ResilientRunner(
        manifest_path=manifest,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        fault_plan=fault_plan,
        jobs=jobs,
        tracer=tracer,
        chaos_plan=chaos_plan,
    )
    if chaos_plan is None:
        return runner.run(
            EXPERIMENTS,
            factor=factor,
            only=only,
            resume=resume,
            stream=effective_stream,
            out_dir=out_dir,
            trace_out=trace_out,
        )
    from repro.robustness import chaos as chaos_mod

    with chaos_mod.active(chaos_plan):
        return runner.run(
            EXPERIMENTS,
            factor=factor,
            only=only,
            resume=resume,
            stream=effective_stream,
            out_dir=out_dir,
            trace_out=trace_out,
        )


def run_all(
    factor: float = 1.0,
    out_dir: str | None = None,
    only: list[str] | None = None,
    stream=None,
    **kwargs,
) -> dict[str, object]:
    """Back-compatible wrapper around :func:`run_resilient`.

    Returns only the ``{id: result}`` mapping the original bare loop
    returned; keyword arguments pass through to :func:`run_resilient`.
    """
    results, _report = run_resilient(
        factor=factor, out_dir=out_dir, only=only, stream=stream, **kwargs
    )
    return results


def positive_float(text: str) -> float:
    """Argparse type for ``--factor``: strictly positive, finite."""
    try:
        return validate_factor(float(text), where="--factor")
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def nonneg_int(text: str) -> int:
    """Argparse type for ``--retries``: integer >= 0."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def positive_int(text: str) -> int:
    """Argparse type for ``--jobs``: integer >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--factor", type=positive_float, default=1.0)
    parser.add_argument("--out", default=None, help="directory for .txt reports")
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        choices=sorted(EXPERIMENTS),
        help="run only these experiment ids",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-experiment wall-clock budget in seconds",
    )
    parser.add_argument(
        "--retries",
        type=nonneg_int,
        default=2,
        help="retry attempts for transient failures",
    )
    parser.add_argument(
        "--jobs",
        type=positive_int,
        default=1,
        help="worker processes for parallel experiment execution",
    )
    parser.add_argument(
        "--no-trace-cache",
        action="store_true",
        help="disable the persistent on-disk trace cache",
    )
    parser.add_argument(
        "--kernel",
        default=None,
        choices=KERNEL_NAMES,
        help="simulation kernel: 'scalar' (one trace walk per config) or "
             "'batched' (one walk for all configs of a sweep); default "
             "follows REPRO_SIM_KERNEL",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore the checkpoint manifest and re-run everything",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        help="checkpoint manifest path (default: <out>/manifest.json)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record host-side spans and export Chrome trace-event "
             "JSON here (view with 'aurora-sim spans' or Perfetto)",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="chaos plan: comma-separated kind[:target[:count[:seconds]]] "
             "tokens (see docs/ROBUSTNESS.md)",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for the chaos plan's deterministic injections",
    )
    args = parser.parse_args(argv)
    try:
        validate_environment()
    except EnvValidationError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    from repro.robustness.chaos import ChaosError
    from repro.telemetry import logging as structlog

    try:
        structlog.configure_from_env()
    except structlog.LogConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    try:
        _results, report = run_resilient(
            factor=args.factor,
            out_dir=args.out,
            only=args.only,
            resume=not args.no_resume,
            manifest=args.manifest,
            timeout=args.timeout,
            retries=args.retries,
            jobs=args.jobs,
            use_trace_cache=not args.no_trace_cache,
            trace_out=args.trace,
            chaos=args.chaos,
            chaos_seed=args.chaos_seed,
            kernel=args.kernel,
        )
    except ChaosError as error:
        print(f"error: --chaos: {error}", file=sys.stderr)
        return EXIT_USAGE
    except KeyboardInterrupt:
        # Second signal (hard abort): no report exists to salvage.
        print("aborted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed stdout: not a bug
        # in the sweep.  Point the interpreter's shutdown flush at
        # devnull so it cannot traceback, and report the conventional
        # 128+SIGPIPE status a signal-killed process would have.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 128 + signal.SIGPIPE
    finally:
        structlog.shutdown()
    return sweep_exit_code(report)


if __name__ == "__main__":
    raise SystemExit(main())
