"""High-level public API.

Most users need three things: a machine configuration (Table 1 models or
custom), a workload (SPEC92 analogue or their own program), and a
simulation run tying them together::

    from repro import BASELINE, simulate_workload

    result = simulate_workload("espresso", BASELINE.dual_issue())
    print(result.cpi, result.stats.icache_hit_rate)

Everything here re-exports or thinly wraps the subpackages; power users
can reach into :mod:`repro.core`, :mod:`repro.workloads`,
:mod:`repro.cost` and :mod:`repro.experiments` directly.
"""

from __future__ import annotations

from repro.core.config import (  # noqa: F401
    BASELINE,
    LARGE,
    RECOMMENDED,
    SMALL,
    TABLE1_MODELS,
    FPIssuePolicy,
    FPUConfig,
    MachineConfig,
    baseline_model,
    large_model,
    recommended_model,
    small_model,
)
from repro.core.kernel import (  # noqa: F401
    ENV_KERNEL,
    KERNEL_NAMES,
    BatchedKernel,
    KernelError,
    ScalarKernel,
    get_kernel,
    kernel_mode,
    simulate_many,
)
from repro.core.processor import (  # noqa: F401
    AuroraProcessor,
    SimulationResult,
    simulate_trace,
)
from repro.core.stats import InvariantError, SimStats, StallKind  # noqa: F401
from repro.cost.rbe import (  # noqa: F401
    CostBreakdown,
    fpu_cost,
    ipu_cost,
    machine_cost,
)
from repro.func.machine import MachineResult, run_program  # noqa: F401
from repro.robustness.guards import (  # noqa: F401
    RobustnessPolicy,
    SimulationError,
    config_fingerprint,
)
from repro.robustness.validation import TraceValidationError  # noqa: F401
from repro.telemetry import (  # noqa: F401
    EventBus,
    EventKind,
    MetricsRegistry,
    NDJSONSink,
    RingBufferSink,
    TelemetryError,
    assert_stalls_match,
    cross_check_stalls,
    interval_cpi,
    load_ndjson,
    mshr_occupancy,
    occupancy_histogram,
    publish_stats,
    stall_breakdown,
    stall_timeline,
)
from repro.func.trace import TraceRecord  # noqa: F401
from repro.isa.assembler import Assembler, parse_asm  # noqa: F401
from repro.isa.disassembler import disassemble  # noqa: F401
from repro.isa.scheduler import schedule_load_use  # noqa: F401
from repro.isa.program import Program  # noqa: F401
from repro.workloads.registry import (  # noqa: F401
    FP_SUITE,
    INTEGER_SUITE,
    build_program,
    get_trace,
)


def simulate_workload(
    name: str,
    config: MachineConfig = BASELINE,
    scale: int | None = None,
    telemetry: EventBus | None = None,
) -> SimulationResult:
    """Trace the named SPEC92-analogue workload and time it on ``config``.

    ``scale`` overrides the workload's default size (traces are memoised
    per ``(name, scale)``, so sweeping configurations over one workload
    re-runs only the timing model).  The configuration and scale are
    validated eagerly: impossible machine points and non-positive scales
    fail here with a precise error rather than producing garbage numbers.
    Pass a :class:`~repro.telemetry.events.EventBus` as ``telemetry`` to
    capture the run's event stream; the default None keeps every probe
    at zero cost.
    """
    from repro.robustness.validation import validate_scale

    validate_scale(scale)
    config.validate()
    trace = get_trace(name, scale)
    return simulate_trace(trace, config, telemetry=telemetry)


def simulate_program(
    program: Program,
    config: MachineConfig = BASELINE,
    max_instructions: int = 5_000_000,
) -> SimulationResult:
    """Functionally execute ``program``, then time its trace on ``config``.

    The one-stop path for custom programs built with
    :class:`~repro.isa.assembler.Assembler` or :func:`parse_asm`.
    """
    result = run_program(program, max_instructions=max_instructions)
    return simulate_trace(result.trace, config)


def suite_results(
    config: MachineConfig,
    suite: str = "int",
    scale: int | None = None,
    kernel: str | None = None,
) -> dict[str, SimulationResult]:
    """Run a whole suite ("int" or "fp") on one configuration.

    Raises :class:`ValueError` for any other suite name — a typo used to
    silently run the FP suite.  ``kernel`` overrides the
    ``REPRO_SIM_KERNEL`` selection (``"scalar"`` | ``"batched"``).
    """
    sweep = sweep_results([config], suite=suite, scale=scale, kernel=kernel)
    return sweep[0]


def sweep_results(
    configs: list[MachineConfig],
    suite: str = "int",
    scale: int | None = None,
    kernel: str | None = None,
) -> list[dict[str, SimulationResult]]:
    """Run a whole suite on many configurations, one trace pass each.

    The grouped twin of :func:`suite_results`: every workload's trace is
    walked once through :func:`repro.core.kernel.simulate_many` (so the
    batched kernel advances all configs together) and the return value is
    a per-config list of ``{workload: SimulationResult}`` mappings,
    index-aligned with ``configs``.
    """
    from repro.robustness.validation import validate_scale

    if suite == "int":
        names = INTEGER_SUITE
    elif suite == "fp":
        names = FP_SUITE
    else:
        raise ValueError(f"unknown suite {suite!r}; expected 'int' or 'fp'")
    validate_scale(scale)
    for config in configs:
        config.validate()
    sweep: list[dict[str, SimulationResult]] = [{} for _ in configs]
    for name in names:
        trace = get_trace(name, scale)
        for per_config, result in zip(
            sweep, simulate_many(trace, configs, kernel=kernel)
        ):
            per_config[name] = result
    return sweep
