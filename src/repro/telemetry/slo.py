"""Declarative service-level objectives with multi-window burn rates.

An SLO turns a metric stream into a judgment: *is the service holding
its promise right now?*  Three kinds, each defined by one number:

* ``p99:<seconds>``          — 99% of requests complete within the
  threshold.  Violation fraction = requests slower than the threshold;
  the implied error budget is the residual 1%.
* ``error-rate:<fraction>``  — failed requests stay under the budget
  fraction (e.g. ``error-rate:0.01`` = 1% budget).
* ``availability:<target>``  — success fraction stays above the target
  (``availability:0.999`` is exactly ``error-rate:0.001``).

**Burn rate** is the classic normalization: *observed violation
fraction / budgeted fraction*.  Burn 1.0 = spending the budget exactly
as fast as allowed; 10 = ten times too fast.  Evaluation is
**multi-window** (Google SRE workbook shape): each SLO is computed
over a short and a long trailing window of a
:class:`~repro.telemetry.timeseries.TimeSeriesRing`, and **violates
only when every window burns past the threshold** — the short window
proves it is happening *now*, the long window proves it is not a blip.
A window with no observations contributes no evidence (burn 0).

``aurora-sim loadgen --slo`` evaluates these against its own request
stream and exits ``EXIT_SLO_VIOLATION`` (6) on failure, giving CI a
serving-quality gate with the same shape as ``perf --check``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.timeseries import (
    TimeSeriesRing,
    delta,
    fraction_over,
)

#: Default (short, long) trailing evaluation windows, seconds.  Short
#: for "is it burning now", long for "is it sustained"; both clip to
#: the ring's actual span, so brief CI runs still evaluate.
DEFAULT_WINDOWS = (15.0, 60.0)

#: The latency objective: p99 means 1% of requests may exceed the
#: threshold before the budget burns at rate 1.0.
P99_BUDGET = 0.01

_KINDS = ("p99", "error-rate", "availability")


class SLOError(ValueError):
    """An SLO spec is malformed; names the token and the grammar."""


@dataclass(frozen=True)
class SLODef:
    """One declarative objective (see module docstring for kinds)."""

    kind: str
    threshold: float

    @property
    def name(self) -> str:
        return f"{self.kind}:{self.threshold:g}"

    @property
    def budget(self) -> float:
        """Budgeted violation fraction (the burn-rate denominator)."""
        if self.kind == "p99":
            return P99_BUDGET
        if self.kind == "error-rate":
            return self.threshold
        return 1.0 - self.threshold  # availability


def parse_slo(spec: str) -> SLODef:
    """Parse one ``kind:value`` token into an :class:`SLODef`."""
    kind, sep, raw = spec.partition(":")
    kind = kind.strip().lower()
    if not sep or kind not in _KINDS:
        raise SLOError(
            f"SLO spec {spec!r}: expected kind:value with kind in "
            f"{'/'.join(_KINDS)}"
        )
    try:
        value = float(raw)
    except ValueError:
        raise SLOError(
            f"SLO spec {spec!r}: {raw!r} is not a number"
        ) from None
    if kind == "p99" and value <= 0:
        raise SLOError(f"SLO spec {spec!r}: latency threshold must be > 0")
    if kind == "error-rate" and not 0 < value < 1:
        raise SLOError(
            f"SLO spec {spec!r}: error budget must be in (0, 1)"
        )
    if kind == "availability" and not 0 < value < 1:
        raise SLOError(
            f"SLO spec {spec!r}: availability target must be in (0, 1)"
        )
    return SLODef(kind, value)


@dataclass
class SLOResult:
    """One SLO's evaluation: per-window burn rates and the verdict."""

    slo: SLODef
    violated: bool
    burn_rates: dict = field(default_factory=dict)
    observations: float = 0.0

    def render(self) -> str:
        burns = " ".join(
            f"burn[{seconds:g}s]={burn:.2f}"
            for seconds, burn in sorted(self.burn_rates.items())
        )
        verdict = "VIOLATED" if self.violated else "ok"
        return (
            f"slo {self.slo.name:<22} {verdict:<8} {burns} "
            f"(n={self.observations:g})"
        )


def _violation_fraction(
    slo: SLODef,
    ring: TimeSeriesRing,
    seconds: float,
    *,
    prefix: str,
) -> tuple[float, float]:
    """``(violation_fraction, observations)`` for one window."""
    if slo.kind == "p99":
        hist = f"{prefix}.latency_seconds"
        count = delta(ring, f"{hist}.count", seconds)
        if count <= 0:
            return 0.0, 0.0
        return fraction_over(ring, hist, slo.threshold, seconds), count
    requests = delta(ring, f"{prefix}.requests", seconds)
    if requests <= 0:
        return 0.0, 0.0
    errors = delta(ring, f"{prefix}.errors", seconds)
    return min(1.0, errors / requests), requests


def evaluate_slos(
    slos: list[SLODef],
    ring: TimeSeriesRing,
    *,
    prefix: str = "loadgen",
    windows: tuple[float, ...] = DEFAULT_WINDOWS,
    burn_threshold: float = 1.0,
) -> list[SLOResult]:
    """Evaluate every SLO over the ring's trailing windows.

    ``prefix`` names the instrument family (``<prefix>.requests``,
    ``<prefix>.errors``, ``<prefix>.latency_seconds``).  Windows longer
    than the ring's span clip to it (two distinct windows may then see
    identical data — harmless, the conjunction still holds).  An SLO is
    ``violated`` only when its burn rate exceeds ``burn_threshold`` in
    *every* window that has observations, and at least one does.
    """
    span = ring.span_seconds()
    effective = sorted({min(w, span) if span > 0 else w for w in windows})
    results = []
    for slo in slos:
        burns: dict[float, float] = {}
        total_observations = 0.0
        hot = []
        for seconds in effective:
            fraction, observations = _violation_fraction(
                slo, ring, seconds, prefix=prefix
            )
            burn = fraction / slo.budget if slo.budget > 0 else 0.0
            burns[seconds] = burn
            total_observations = max(total_observations, observations)
            if observations > 0:
                hot.append(burn > burn_threshold)
        violated = bool(hot) and all(hot)
        results.append(
            SLOResult(
                slo,
                violated,
                burn_rates=burns,
                observations=total_observations,
            )
        )
    return results


def render_results(results: list[SLOResult]) -> str:
    return "\n".join(result.render() for result in results)
