"""Bounded metric time series: the registry, sampled over wall time.

A :class:`MetricsRegistry` is a point-in-time snapshot; production
questions ("what is the request rate *now*?  did p99 spike in the last
minute?") need history.  :class:`TimeSeriesRing` is the smallest thing
that answers them:

* :func:`sample_registry` flattens a registry into one flat
  ``{name: value}`` map — counters and gauges as-is, histograms as
  ``<name>.count`` / ``<name>.sum`` plus per-bound cumulative
  ``<name>.bucket.<le>`` values (so *windowed* bucket deltas can
  re-derive quantiles over any interval, not just since process start).
* The ring keeps the last ``capacity`` samples in memory and can
  mirror each appended sample to a JSONL file: one ``write()`` of one
  line on an append-mode handle, flushed — a crash can tear at most
  the final line, and :meth:`TimeSeriesRing.load` tolerates exactly
  that (torn/corrupt lines are counted in ``malformed``, never raised).
* :func:`delta` / :func:`rate` / :func:`quantile_over_window` are the
  window readers the SLO layer and the ``top`` dashboard build on.

Sampling is strictly opt-in (the serve loop only starts a sampler task
when ``--sample-interval`` is positive), preserving the repo-wide
zero-overhead-off contract.
"""

from __future__ import annotations

import json
import math
import pathlib
import threading
import time
from collections import deque

from repro.telemetry.metrics import MetricsRegistry

#: Default ring capacity: at one sample per second, ~forty minutes.
DEFAULT_CAPACITY = 2048


def sample_registry(
    registry: MetricsRegistry, *, now: float | None = None
) -> dict:
    """One sample: ``{"t": epoch_seconds, "values": {name: number}}``."""
    snapshot = registry.as_dict()
    values: dict[str, float] = {}
    values.update(snapshot["counters"])
    for name, value in snapshot["gauges"].items():
        if value is not None and math.isfinite(value):
            values[name] = value
    for name, hist in snapshot["histograms"].items():
        values[f"{name}.count"] = hist["count"]
        values[f"{name}.sum"] = hist["sum"]
        for bound, count in hist["buckets"].items():
            values[f"{name}.bucket.{bound}"] = count
    return {"t": time.time() if now is None else now, "values": values}


class TimeSeriesRing:
    """The last ``capacity`` registry samples, optionally persisted.

    Thread-safe: the serve sampler appends from the event loop while
    ``/timeseries`` scrapes and SLO evaluation read concurrently.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        path: str | pathlib.Path | None = None,
    ) -> None:
        if capacity < 2:
            raise ValueError(
                f"ring capacity must be >= 2 (deltas need two samples), "
                f"got {capacity}"
            )
        self.capacity = capacity
        self.path = pathlib.Path(path) if path is not None else None
        self.malformed = 0
        self._samples: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._handle = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")

    # ---------------------------------------------------------- writing

    def append(self, sample: dict) -> None:
        """Record one sample; mirror it to the JSONL file if persisted."""
        with self._lock:
            self._samples.append(sample)
            if self._handle is not None:
                try:
                    self._handle.write(
                        json.dumps(sample, separators=(",", ":")) + "\n"
                    )
                    self._handle.flush()
                except OSError:
                    # A full disk degrades persistence, never sampling.
                    pass

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None

    def __enter__(self) -> "TimeSeriesRing":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ---------------------------------------------------------- reading

    def samples(self) -> list[dict]:
        with self._lock:
            return list(self._samples)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def latest(self) -> dict | None:
        with self._lock:
            return self._samples[-1] if self._samples else None

    def window(self, seconds: float) -> list[dict]:
        """Samples within ``seconds`` of the newest one (oldest first)."""
        with self._lock:
            if not self._samples:
                return []
            horizon = self._samples[-1]["t"] - seconds
            return [s for s in self._samples if s["t"] >= horizon]

    def span_seconds(self) -> float:
        """Wall-time distance between the oldest and newest samples."""
        with self._lock:
            if len(self._samples) < 2:
                return 0.0
            return self._samples[-1]["t"] - self._samples[0]["t"]

    # ------------------------------------------------------------ reload

    @classmethod
    def load(
        cls,
        path: str | pathlib.Path,
        *,
        capacity: int = DEFAULT_CAPACITY,
        persist: bool = False,
    ) -> "TimeSeriesRing":
        """Rebuild a ring from a JSONL file, tolerating a torn tail.

        Malformed lines (a crash mid-``write``, external truncation)
        are skipped and counted in ``malformed`` — a reload never
        raises over history damage.  ``persist=True`` keeps appending
        to the same file.
        """
        path = pathlib.Path(path)
        ring = cls(capacity, path=path if persist else None)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return ring
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                sample = json.loads(line)
            except json.JSONDecodeError:
                ring.malformed += 1
                continue
            if (
                not isinstance(sample, dict)
                or not isinstance(sample.get("t"), (int, float))
                or not isinstance(sample.get("values"), dict)
            ):
                ring.malformed += 1
                continue
            ring._samples.append(sample)
        return ring


# --------------------------------------------------------- window readers


def delta(ring: TimeSeriesRing, name: str, seconds: float) -> float:
    """Increase of a cumulative value over the trailing window."""
    window = ring.window(seconds)
    if len(window) < 2:
        return 0.0
    first = window[0]["values"].get(name, 0.0)
    last = window[-1]["values"].get(name, 0.0)
    return max(0.0, last - first)


def rate(ring: TimeSeriesRing, name: str, seconds: float) -> float:
    """Per-second increase of a cumulative value over the window."""
    window = ring.window(seconds)
    if len(window) < 2:
        return 0.0
    elapsed = window[-1]["t"] - window[0]["t"]
    if elapsed <= 0:
        return 0.0
    first = window[0]["values"].get(name, 0.0)
    last = window[-1]["values"].get(name, 0.0)
    return max(0.0, last - first) / elapsed


def bucket_deltas(
    ring: TimeSeriesRing, hist_name: str, seconds: float
) -> tuple[list[tuple[float, float]], float]:
    """``([(bound, cumulative_delta)...], count_delta)`` over a window.

    Bounds come back sorted; deltas are cumulative (like the live
    histogram), clamped non-negative.
    """
    window = ring.window(seconds)
    if len(window) < 2:
        return [], 0.0
    first, last = window[0]["values"], window[-1]["values"]
    prefix = f"{hist_name}.bucket."
    bounds = []
    for key in last:
        if key.startswith(prefix):
            try:
                bounds.append(float(key[len(prefix):]))
            except ValueError:
                continue
    series = [
        (
            bound,
            max(
                0.0,
                last.get(f"{prefix}{bound}", 0.0)
                - first.get(f"{prefix}{bound}", 0.0),
            ),
        )
        for bound in sorted(bounds)
    ]
    count = max(
        0.0,
        last.get(f"{hist_name}.count", 0.0)
        - first.get(f"{hist_name}.count", 0.0),
    )
    return series, count


def quantile_over_window(
    ring: TimeSeriesRing, hist_name: str, fraction: float, seconds: float
) -> float:
    """Nearest-rank quantile from windowed bucket deltas (0 if empty).

    The same derivation as :meth:`Histogram.quantile`, applied to the
    *window's* observations instead of everything since process start —
    what an SLO over "the last N seconds" actually wants.
    """
    series, count = bucket_deltas(ring, hist_name, seconds)
    if not series or count <= 0:
        return 0.0
    rank = max(1.0, math.ceil(fraction * count))
    for bound, cumulative in series:
        if cumulative >= rank:
            return bound
    return series[-1][0]


def fraction_over(
    ring: TimeSeriesRing, hist_name: str, threshold: float, seconds: float
) -> float:
    """Fraction of windowed observations strictly above ``threshold``.

    Resolution is bucket granularity: observations in the first bucket
    whose bound is ``>= threshold`` count as *within* threshold (the
    conservative reading for latency SLOs).
    """
    series, count = bucket_deltas(ring, hist_name, seconds)
    if not series or count <= 0:
        return 0.0
    within = 0.0
    for bound, cumulative in series:
        if bound >= threshold:
            within = cumulative
            break
    else:
        within = count
    return max(0.0, count - within) / count
