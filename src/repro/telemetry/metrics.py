"""Metrics registry: counters, gauges and histograms with JSON export.

The event bus answers "what happened, cycle by cycle"; the metrics
registry answers "how much, per run" — the shape a production stack
scrapes.  :class:`MetricsRegistry` is a named get-or-create pool of
three instrument types:

* :class:`Counter` — monotonically increasing totals,
* :class:`Gauge` — last-written values,
* :class:`Histogram` — count/sum/min/max plus cumulative
  less-than-or-equal bucket counts.

Both ends of the repo publish into it: :func:`publish_stats` flattens a
:class:`~repro.core.stats.SimStats` into ``sim.*`` metrics, and the
:class:`~repro.robustness.runner.ResilientRunner` publishes per-
experiment outcomes (``runner.*``) into the checkpoint manifest and a
``<out>/metrics/<exp_id>.json`` tree.
"""

from __future__ import annotations

import json
import math
import pathlib
import re
import threading

from repro.core.stats import SimStats, StallKind

#: Default histogram bucket upper bounds (seconds-ish / count-ish scale).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
)

#: Request-latency bucket bounds (seconds): the Prometheus classic
#: ladder.  Serve and loadgen both register their latency histograms
#: over these, so their quantiles agree by construction.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Legal registry metric names: dotted namespaces over the Prometheus
#: charset, so ``repro.telemetry.prom`` can always render them by
#: mapping dots to underscores.  Enforced at registration, not render —
#: a typo'd name fails where it is written, not at the first scrape.
VALID_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_.:]*\Z")


class Counter:
    """A monotonically increasing total.

    Thread-safe: the serve front end increments from executor callbacks
    and loadgen from client threads.  (Metrics sit outside the simulator
    hot loop, so the lock costs nothing that matters.)
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        with self._lock:
            self.value += amount


class Gauge:
    """A last-written value."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Count / sum / min / max plus cumulative ``le`` buckets."""

    def __init__(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(
                f"histogram {name!r} buckets must be a sorted non-empty "
                f"sequence, got {buckets!r}"
            )
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(
                f"histogram {self.name!r} cannot observe {value!r}"
            )
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, fraction: float) -> float:
        """Nearest-rank quantile from the cumulative ``le`` buckets.

        Returns the upper bound of the bucket holding the ranked
        observation, clamped to the observed ``max`` (so a quantile can
        never exceed anything actually seen, and the implicit ``+Inf``
        bucket resolves to the real maximum instead of infinity).
        Resolution is bucket granularity by design — this is *the*
        shared derivation for serve's and loadgen's p50/p99, so both
        ends agree by construction.  Empty histograms answer 0.0.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(
                f"quantile fraction must be in [0, 1], got {fraction!r}"
            )
        with self._lock:
            if not self.count:
                return 0.0
            rank = max(1, math.ceil(fraction * self.count))
            observed_max = self.max if self.max is not None else 0.0
            for bound, cumulative in zip(self.buckets, self.bucket_counts):
                if cumulative >= rank:
                    return min(bound, observed_max)
            return observed_max  # ranked past the last bound: +Inf bucket


class MetricsRegistry:
    """Named get-or-create pool of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            self._check_name(name, self._gauges, self._histograms)
            return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            self._check_name(name, self._counters, self._histograms)
            return self._gauges.setdefault(name, Gauge(name))

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None
    ) -> Histogram:
        with self._lock:
            self._check_name(name, self._counters, self._gauges)
            if name not in self._histograms:
                self._histograms[name] = Histogram(
                    name, buckets if buckets is not None else DEFAULT_BUCKETS
                )
            return self._histograms[name]

    @staticmethod
    def _check_name(name: str, *other_pools: dict) -> None:
        if not VALID_NAME.match(name):
            raise ValueError(
                f"metric name {name!r} is invalid: names must match "
                f"[a-zA-Z_][a-zA-Z0-9_.:]* (dots namespace; everything "
                f"else must survive the Prometheus exposition mapping)"
            )
        for pool in other_pools:
            if name in pool:
                raise ValueError(
                    f"metric {name!r} already registered as a different type"
                )

    def as_dict(self) -> dict:
        """JSON-ready snapshot of every registered metric."""
        with self._lock:
            return self._as_dict_locked()

    def _as_dict_locked(self) -> dict:
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": histogram.count,
                    "sum": histogram.total,
                    "min": histogram.min,
                    "max": histogram.max,
                    "mean": histogram.mean,
                    "buckets": {
                        str(bound): count
                        for bound, count in zip(
                            histogram.buckets, histogram.bucket_counts
                        )
                    },
                }
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def write_json(self, path: str | pathlib.Path) -> pathlib.Path:
        """Atomically export the snapshot to ``path``."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        tmp.replace(path)
        return path


def publish_stats(
    stats: SimStats,
    registry: MetricsRegistry,
    prefix: str = "sim",
    kernel: str | None = None,
) -> MetricsRegistry:
    """Flatten one run's :class:`SimStats` into ``<prefix>.*`` metrics.

    ``kernel`` optionally records which simulation kernel produced the
    run as a ``<prefix>.kernel`` gauge (0 = scalar, 1 = batched).
    """
    counters = (
        ("instructions", stats.instructions),
        ("cycles", stats.cycles),
        ("icache.accesses", stats.icache_accesses),
        ("icache.hits", stats.icache_hits),
        ("dcache.accesses", stats.dcache_accesses),
        ("dcache.hits", stats.dcache_hits),
        ("iprefetch.lookups", stats.iprefetch_lookups),
        ("iprefetch.hits", stats.iprefetch_hits),
        ("dprefetch.lookups", stats.dprefetch_lookups),
        ("dprefetch.hits", stats.dprefetch_hits),
        ("writecache.accesses", stats.writecache_accesses),
        ("writecache.hits", stats.writecache_hits),
        ("stores.instructions", stats.store_instructions),
        ("stores.transactions", stats.store_transactions),
        ("loads", stats.loads),
        ("stores", stats.stores),
        ("branches", stats.branches),
        ("branches.taken", stats.taken_branches),
        ("fp.instructions", stats.fp_instructions),
        ("dual_issued_pairs", stats.dual_issued_pairs),
        ("fpu.instructions", stats.fpu_instructions),
        ("fpu.busy_cycles", stats.fpu_busy_cycles),
    )
    for name, value in counters:
        registry.counter(f"{prefix}.{name}").inc(value)
    for kind in StallKind:
        registry.counter(f"{prefix}.stall.{kind.value}").inc(
            stats.stall_cycles[kind]
        )
    gauges = (
        ("cpi", stats.cpi),
        ("ipc", stats.ipc),
        ("icache.hit_rate", stats.icache_hit_rate),
        ("dcache.hit_rate", stats.dcache_hit_rate),
        ("writecache.hit_rate", stats.writecache_hit_rate),
        ("stores.traffic_ratio", stats.store_traffic_ratio),
        ("dual_issue_rate", stats.dual_issue_rate),
    )
    for name, value in gauges:
        registry.gauge(f"{prefix}.{name}").set(value)
    if kernel is not None:
        from repro.core.kernel import KERNEL_NAMES

        registry.gauge(f"{prefix}.kernel").set(
            float(KERNEL_NAMES.index(kernel))
        )
    return registry


def publish_bus_health(
    bus, registry: MetricsRegistry, prefix: str = "telemetry"
) -> MetricsRegistry:
    """Expose event-bus delivery health as ``<prefix>.*`` metrics.

    Event loss used to be visible only after the fact, when an exact
    cross-check refused a partial stream with ``PartialTraceError``;
    these gauges put it on the scrape path instead: ``sinks`` attached,
    events ``recorded`` by counting sinks, and ring-buffer ``dropped``
    (evictions past capacity).  Sinks without counters (e.g. a bare
    NDJSON stream) simply contribute nothing.
    """
    sinks = list(getattr(bus, "sinks", ()) or ())
    registry.gauge(f"{prefix}.sinks").set(float(len(sinks)))
    recorded = dropped = 0
    counted = False
    for sink in sinks:
        if hasattr(sink, "recorded"):
            counted = True
            recorded += sink.recorded
            dropped += getattr(sink, "dropped", 0)
    if counted:
        registry.gauge(f"{prefix}.events_recorded").set(float(recorded))
        registry.gauge(f"{prefix}.events_dropped").set(float(dropped))
    return registry
