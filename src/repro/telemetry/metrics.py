"""Metrics registry: counters, gauges and histograms with JSON export.

The event bus answers "what happened, cycle by cycle"; the metrics
registry answers "how much, per run" — the shape a production stack
scrapes.  :class:`MetricsRegistry` is a named get-or-create pool of
three instrument types:

* :class:`Counter` — monotonically increasing totals,
* :class:`Gauge` — last-written values,
* :class:`Histogram` — count/sum/min/max plus cumulative
  less-than-or-equal bucket counts.

Both ends of the repo publish into it: :func:`publish_stats` flattens a
:class:`~repro.core.stats.SimStats` into ``sim.*`` metrics, and the
:class:`~repro.robustness.runner.ResilientRunner` publishes per-
experiment outcomes (``runner.*``) into the checkpoint manifest and a
``<out>/metrics/<exp_id>.json`` tree.
"""

from __future__ import annotations

import json
import math
import pathlib

from repro.core.stats import SimStats, StallKind

#: Default histogram bucket upper bounds (seconds-ish / count-ish scale).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
)


class Counter:
    """A monotonically increasing total."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount


class Gauge:
    """A last-written value."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Count / sum / min / max plus cumulative ``le`` buckets."""

    def __init__(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(
                f"histogram {name!r} buckets must be a sorted non-empty "
                f"sequence, got {buckets!r}"
            )
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(
                f"histogram {self.name!r} cannot observe {value!r}"
            )
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named get-or-create pool of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        self._check_name(name, self._gauges, self._histograms)
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        self._check_name(name, self._counters, self._histograms)
        return self._gauges.setdefault(name, Gauge(name))

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None
    ) -> Histogram:
        self._check_name(name, self._counters, self._gauges)
        if name not in self._histograms:
            self._histograms[name] = Histogram(
                name, buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return self._histograms[name]

    @staticmethod
    def _check_name(name: str, *other_pools: dict) -> None:
        for pool in other_pools:
            if name in pool:
                raise ValueError(
                    f"metric {name!r} already registered as a different type"
                )

    def as_dict(self) -> dict:
        """JSON-ready snapshot of every registered metric."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": histogram.count,
                    "sum": histogram.total,
                    "min": histogram.min,
                    "max": histogram.max,
                    "mean": histogram.mean,
                    "buckets": {
                        str(bound): count
                        for bound, count in zip(
                            histogram.buckets, histogram.bucket_counts
                        )
                    },
                }
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def write_json(self, path: str | pathlib.Path) -> pathlib.Path:
        """Atomically export the snapshot to ``path``."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        tmp.replace(path)
        return path


def publish_stats(
    stats: SimStats,
    registry: MetricsRegistry,
    prefix: str = "sim",
    kernel: str | None = None,
) -> MetricsRegistry:
    """Flatten one run's :class:`SimStats` into ``<prefix>.*`` metrics.

    ``kernel`` optionally records which simulation kernel produced the
    run as a ``<prefix>.kernel`` gauge (0 = scalar, 1 = batched).
    """
    counters = (
        ("instructions", stats.instructions),
        ("cycles", stats.cycles),
        ("icache.accesses", stats.icache_accesses),
        ("icache.hits", stats.icache_hits),
        ("dcache.accesses", stats.dcache_accesses),
        ("dcache.hits", stats.dcache_hits),
        ("iprefetch.lookups", stats.iprefetch_lookups),
        ("iprefetch.hits", stats.iprefetch_hits),
        ("dprefetch.lookups", stats.dprefetch_lookups),
        ("dprefetch.hits", stats.dprefetch_hits),
        ("writecache.accesses", stats.writecache_accesses),
        ("writecache.hits", stats.writecache_hits),
        ("stores.instructions", stats.store_instructions),
        ("stores.transactions", stats.store_transactions),
        ("loads", stats.loads),
        ("stores", stats.stores),
        ("branches", stats.branches),
        ("branches.taken", stats.taken_branches),
        ("fp.instructions", stats.fp_instructions),
        ("dual_issued_pairs", stats.dual_issued_pairs),
        ("fpu.instructions", stats.fpu_instructions),
        ("fpu.busy_cycles", stats.fpu_busy_cycles),
    )
    for name, value in counters:
        registry.counter(f"{prefix}.{name}").inc(value)
    for kind in StallKind:
        registry.counter(f"{prefix}.stall.{kind.value}").inc(
            stats.stall_cycles[kind]
        )
    gauges = (
        ("cpi", stats.cpi),
        ("ipc", stats.ipc),
        ("icache.hit_rate", stats.icache_hit_rate),
        ("dcache.hit_rate", stats.dcache_hit_rate),
        ("writecache.hit_rate", stats.writecache_hit_rate),
        ("stores.traffic_ratio", stats.store_traffic_ratio),
        ("dual_issue_rate", stats.dual_issue_rate),
    )
    for name, value in gauges:
        registry.gauge(f"{prefix}.{name}").set(value)
    if kernel is not None:
        from repro.core.kernel import KERNEL_NAMES

        registry.gauge(f"{prefix}.kernel").set(
            float(KERNEL_NAMES.index(kernel))
        )
    return registry
