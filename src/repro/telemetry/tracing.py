"""Hierarchical wall-clock spans for the host-side execution layer.

The event bus (:mod:`repro.telemetry.events`) watches *simulated* cycles;
this module watches the *host* — where the wall-clock of a sweep actually
goes.  A :class:`SpanTracer` records a tree of timed spans::

    sweep
    └── experiment:fig4
        ├── attempt#1            (failed: TransientFault, retried)
        └── attempt#2
            ├── cache_lookup:compress
            ├── trace_build:compress
            ├── simulate:compress  × N configurations
            └── ...
    checkpoint                    (manifest writes, parent side)

and exports it as Chrome trace-event JSON (:meth:`SpanTracer.to_chrome`),
which Perfetto / ``chrome://tracing`` render as a zoomable timeline, or
as a text tree with self/total time (:func:`render_span_tree`, surfaced
by ``aurora-sim spans``).

Crossing the process pool.  Spans recorded inside a
``ProcessPoolExecutor`` worker cannot share the parent's clock or id
space, so workers run their own tracer (correlated by the sweep's
``trace_id``), return :meth:`~SpanTracer.finished_records` in the result
envelope, and the parent grafts them under the experiment's attempt span
(:meth:`~SpanTracer.graft`): ids are re-prefixed to stay unique across
worker reuse, worker-relative times are rebased onto the attempt's
window, and orphan roots are re-parented onto the attempt.  The merged
trace is one file; every span carries the sweep's correlation id.

Zero overhead when off.  Nothing in this module runs unless a tracer is
installed: probe sites ask :func:`current_tracer` (one module-global
read) and skip span construction entirely when it returns ``None`` —
the same contract the cycle-level probes obey.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Iterable, Iterator


class SpanError(ValueError):
    """A span record or span-trace file is malformed; names the reason."""


class Span:
    """One timed interval: name, category, parentage and annotations.

    ``start``/``end`` are seconds relative to the owning tracer's origin
    (monotonic); ``track`` selects the Perfetto row the span renders on
    (0 is the sweep row, experiments get their own rows so parallel
    experiments do not visually nest into each other).
    """

    __slots__ = (
        "name", "category", "span_id", "parent_id", "start", "end",
        "track", "args",
    )

    def __init__(
        self,
        name: str,
        category: str,
        span_id: str,
        parent_id: str | None,
        start: float,
        track: int = 0,
        **args,
    ) -> None:
        self.name = name
        self.category = category
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.track = track
        self.args = args

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def annotate(self, **args) -> None:
        """Attach key/value annotations (retry causes, statuses, ...)."""
        self.args.update(args)

    def to_record(self) -> dict:
        """Picklable dict form — what workers ship back to the parent."""
        return {
            "name": self.name,
            "cat": self.category,
            "id": self.span_id,
            "parent": self.parent_id,
            "start": self.start,
            "end": self.end if self.end is not None else self.start,
            "track": self.track,
            "args": dict(self.args),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, cat={self.category!r}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.start:.6f}..{self.end}, "
            f"args={self.args!r})"
        )


class SpanTracer:
    """Records a tree of spans against one monotonic origin.

    Thread-aware: each thread nests spans on its own stack, and a worker
    thread can join an existing lineage with :meth:`adopt` (the serial
    runner's timeout thread does this so ``simulate`` spans stay under
    their ``attempt``).
    """

    def __init__(
        self,
        trace_id: str | None = None,
        *,
        clock=time.perf_counter,
    ) -> None:
        #: Correlation id: shared by parent and worker tracers of a sweep.
        self.trace_id = trace_id or uuid.uuid4().hex[:12]
        self._clock = clock
        self.origin = clock()
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._count = 0
        self._local = threading.local()

    # ----------------------------------------------------------- plumbing

    def now(self) -> float:
        """Seconds since this tracer's origin."""
        return self._clock() - self.origin

    def _next_id(self) -> str:
        with self._lock:
            self._count += 1
            return f"{os.getpid()}-{self._count}"

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        """Innermost open span on the calling thread (or None)."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------ recording

    def begin(
        self,
        name: str,
        category: str = "span",
        *,
        parent: "Span | str | None" = None,
        track: int | None = None,
        start: float | None = None,
        **args,
    ) -> Span:
        """Open a span without touching the thread stack (manual mode).

        The parallel runner's event loop opens experiment/attempt spans
        this way because their lifetimes interleave rather than nest.
        """
        if isinstance(parent, Span):
            parent_id = parent.span_id
            if track is None:
                track = parent.track
        else:
            parent_id = parent
        return Span(
            name,
            category,
            self._next_id(),
            parent_id,
            self.now() if start is None else start,
            track if track is not None else 0,
            **args,
        )

    def finish(self, span: Span, end: float | None = None) -> Span:
        """Close a manually opened span and record it."""
        span.end = self.now() if end is None else end
        with self._lock:
            self._spans.append(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "span",
        *,
        track: int | None = None,
        **args,
    ) -> Iterator[Span]:
        """Record one span around a ``with`` body, nesting per thread."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        opened = self.begin(
            name, category, parent=parent, track=track, **args
        )
        stack.append(opened)
        try:
            yield opened
        finally:
            stack.pop()
            self.finish(opened)

    @contextmanager
    def adopt(self, anchor: Span) -> Iterator[None]:
        """Parent the calling thread's spans under ``anchor``.

        The anchor itself is not re-recorded; it only seeds the stack so
        spans opened on this thread nest correctly.
        """
        stack = self._stack()
        stack.append(anchor)
        try:
            yield
        finally:
            stack.pop()

    # ------------------------------------------------------- merge / export

    def finished_records(self) -> list[dict]:
        """Every recorded span as picklable dicts (worker -> parent)."""
        with self._lock:
            return [span.to_record() for span in self._spans]

    def graft(
        self,
        records: Iterable[dict],
        *,
        parent: Span,
        offset: float,
        prefix: str,
    ) -> int:
        """Adopt worker-side span records under ``parent``.

        ``offset`` rebases worker-relative times onto this tracer's
        timeline (the attempt span's start); ``prefix`` keeps ids unique
        across reused worker processes.  Returns the number grafted.
        """
        grafted = 0
        for record in records:
            span = Span(
                record["name"],
                record["cat"],
                f"{prefix}/{record['id']}",
                (
                    f"{prefix}/{record['parent']}"
                    if record.get("parent")
                    else parent.span_id
                ),
                offset + record["start"],
                parent.track,
                **record.get("args", {}),
            )
            span.end = offset + record["end"]
            with self._lock:
                self._spans.append(span)
            grafted += 1
        return grafted

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def to_chrome(self) -> dict:
        """Chrome trace-event JSON document (loads in Perfetto)."""
        return spans_to_chrome(self.spans(), trace_id=self.trace_id)

    def write_chrome(self, path: str | pathlib.Path) -> pathlib.Path:
        """Atomically export the Chrome trace-event JSON to ``path``."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(self.to_chrome(), indent=1) + "\n")
        tmp.replace(path)
        return path


# --------------------------------------------------------- module current


_current: SpanTracer | None = None


def current_tracer() -> SpanTracer | None:
    """The installed tracer, or None — probe sites check this and bail."""
    return _current


def set_tracer(tracer: SpanTracer | None) -> None:
    global _current
    _current = tracer


@contextmanager
def use_tracer(tracer: SpanTracer | None) -> Iterator[SpanTracer | None]:
    """Install ``tracer`` for the duration of a ``with`` body."""
    previous = _current
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextmanager
def span(name: str, category: str = "span", **args) -> Iterator[Span | None]:
    """Probe-site helper: a span when a tracer is installed, else a no-op.

    Used at the coarse-grained sites (trace build, cache lookup,
    simulation, checkpoint writes) — each fires at most a few hundred
    times per experiment, so the disabled cost is one global read.
    """
    tracer = _current
    if tracer is None:
        yield None
        return
    with tracer.span(name, category, **args) as opened:
        yield opened


# ------------------------------------------------------------ chrome I/O


def spans_to_chrome(spans: Iterable[Span], *, trace_id: str = "") -> dict:
    """Spans -> Chrome trace-event JSON ("X" complete events).

    Durations are exported in microseconds.  Each span's ``track``
    becomes a tid so parallel experiments land on separate Perfetto
    rows; hierarchy survives round-trips through ``args.span_id`` /
    ``args.parent_id``.
    """
    pid = os.getpid()
    events: list[dict] = []
    tracks: dict[int, str] = {}
    for span_obj in spans:
        args = {
            "span_id": span_obj.span_id,
            "trace_id": trace_id,
        }
        if span_obj.parent_id:
            args["parent_id"] = span_obj.parent_id
        args.update(span_obj.args)
        events.append(
            {
                "name": span_obj.name,
                "cat": span_obj.category,
                "ph": "X",
                "ts": round(span_obj.start * 1e6, 3),
                "dur": round(max(span_obj.duration, 0.0) * 1e6, 3),
                "pid": pid,
                "tid": span_obj.track,
                "args": args,
            }
        )
        if span_obj.track not in tracks:
            tracks[span_obj.track] = (
                "sweep" if span_obj.track == 0 else span_obj.name
            )
    for track, label in sorted(tracks.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": track,
                "args": {"name": label if track else "sweep"},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace_id, "producer": "aurora-sim"},
    }


def load_chrome_trace(path: str | pathlib.Path) -> list[Span]:
    """Rebuild spans from a Chrome trace-event JSON file.

    Only the "X" events this module wrote are restored (metadata events
    are skipped); raises :class:`SpanError` on documents that are not a
    span trace.
    """
    path = pathlib.Path(path)
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise SpanError(f"{path}: unreadable span trace ({error})") from None
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise SpanError(
            f"{path}: not a Chrome trace-event document "
            "(missing 'traceEvents')"
        )
    spans: list[Span] = []
    for index, event in enumerate(document["traceEvents"]):
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        args = dict(event.get("args") or {})
        span_id = args.pop("span_id", None)
        if not span_id:
            raise SpanError(
                f"{path}: traceEvents[{index}] has no args.span_id "
                "(not written by aurora-sim)"
            )
        parent_id = args.pop("parent_id", None)
        args.pop("trace_id", None)
        restored = Span(
            str(event.get("name", "?")),
            str(event.get("cat", "span")),
            span_id,
            parent_id,
            float(event.get("ts", 0.0)) / 1e6,
            int(event.get("tid", 0)),
            **args,
        )
        restored.end = restored.start + float(event.get("dur", 0.0)) / 1e6
        spans.append(restored)
    return spans


# ------------------------------------------------------------- tree view


def render_span_tree(
    spans: Iterable[Span], *, min_duration: float = 0.0
) -> str:
    """Text tree with total and self time per span (``aurora-sim spans``).

    ``total`` is the span's own duration; ``self`` subtracts direct
    children, which is where to look for unattributed time.  Spans
    shorter than ``min_duration`` seconds are folded into their parent's
    self time (their own children are folded too).
    """
    spans = list(spans)
    by_id = {span_obj.span_id: span_obj for span_obj in spans}
    children: dict[str | None, list[Span]] = {}
    for span_obj in spans:
        parent = (
            span_obj.parent_id if span_obj.parent_id in by_id else None
        )
        children.setdefault(parent, []).append(span_obj)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.start, s.span_id))

    lines: list[str] = []

    def visit(span_obj: Span, depth: int) -> None:
        kids = children.get(span_obj.span_id, [])
        self_time = span_obj.duration - sum(k.duration for k in kids)
        label = "  " * depth + span_obj.name
        notes = ", ".join(
            f"{key}={value}"
            for key, value in sorted(span_obj.args.items())
            if key in ("status", "error", "quarantine", "worker", "hit")
        )
        if notes:
            label += f"  [{notes}]"
        lines.append(
            f"{label:<56} total {span_obj.duration * 1e3:>10.2f}ms  "
            f"self {max(self_time, 0.0) * 1e3:>10.2f}ms"
        )
        for kid in kids:
            if kid.duration >= min_duration:
                visit(kid, depth + 1)

    for root in children.get(None, []):
        if root.duration >= min_duration:
            visit(root, 0)
    if not lines:
        return "(no spans)"
    return "\n".join(lines)
