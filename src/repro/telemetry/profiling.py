"""Host-side hot-loop profiling for the timing simulator.

``aurora-sim perf <workload>`` answers "how fast does the *simulator*
run" — the number every optimisation PR must move:

* **Throughput** — simulated cycles per wall-clock second and
  instructions per second for one workload at one factor, the
  denominators the ROADMAP's "as fast as the hardware allows" goal is
  measured in.
* **Phase attribution** — a lightweight sampling profiler
  (:class:`PhaseSampler`) polls the simulation thread's stack every few
  milliseconds via ``sys._current_frames`` and buckets samples by the
  ``repro`` module executing (``core.processor``, ``core.fpu``,
  ``core.writecache``, ...), giving a per-structure share of host time
  without instrumenting the hot loop at all.
* **cProfile (opt-in)** — ``--cprofile`` wraps the run in
  :mod:`cProfile` for an exact (but slow) top-N by cumulative time;
  sampling stays the default because deterministic profiling roughly
  doubles the wall time of the loop it measures.

The result is a :class:`PerfReport` with ``render()`` for humans and
:meth:`PerfReport.as_record` for the perf-history store
(:mod:`repro.telemetry.baseline`).
"""

from __future__ import annotations

import cProfile
import io
import os
import pathlib
import pstats
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycles)
    from repro.core.config import MachineConfig

#: Default sampling period (seconds) for phase attribution.
DEFAULT_INTERVAL = 0.005
#: Default row count for the opt-in cProfile report.
DEFAULT_TOP = 15


class PhaseSampler:
    """Sample one thread's Python stack periodically; bucket by module.

    Attribution walks the sampled stack innermost-out and charges the
    first frame inside the ``repro`` package (``<subpackage>.<module>``,
    e.g. ``core.mshr``); samples that never touch ``repro`` land in
    ``"other"``.  Pure observation: the sampled thread runs unmodified,
    so throughput numbers measured around a sampler stay honest to
    within the sampling overhead (one stack walk per period).
    """

    def __init__(
        self,
        target_ident: int | None = None,
        interval: float = DEFAULT_INTERVAL,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.target_ident = (
            target_ident
            if target_ident is not None
            else threading.get_ident()
        )
        self.interval = interval
        self.samples: dict[str, int] = {}
        self.total_samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        package_root = pathlib.Path(__file__).resolve().parent.parent
        self._package_prefix = str(package_root) + os.sep

    def _bucket(self, frame) -> str:
        while frame is not None:
            filename = frame.f_code.co_filename
            if filename.startswith(self._package_prefix):
                relative = pathlib.Path(
                    filename[len(self._package_prefix):]
                )
                parts = list(relative.with_suffix("").parts)
                return ".".join(parts) if parts else "other"
            frame = frame.f_back
        return "other"

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self.target_ident)
            if frame is None:
                continue
            bucket = self._bucket(frame)
            self.samples[bucket] = self.samples.get(bucket, 0) + 1
            self.total_samples += 1

    def start(self) -> "PhaseSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="phase-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> dict[str, int]:
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
        return dict(self.samples)

    def fractions(self) -> dict[str, float]:
        """Share of samples per bucket, largest first (empty if none)."""
        total = self.total_samples
        if not total:
            return {}
        return {
            bucket: count / total
            for bucket, count in sorted(
                self.samples.items(), key=lambda item: -item[1]
            )
        }


@dataclass
class PerfReport:
    """One profiled run of one workload on one configuration."""

    workload: str
    factor: float
    config_label: str
    instructions: int
    sim_cycles: int
    wall_seconds: float
    #: Wall time spent building/loading the trace (excluded from
    #: throughput: throughput measures the timing simulator only).
    trace_seconds: float
    cache_hits: int
    cache_misses: int
    #: Trace representation the simulator consumed: "prepared" (columnar)
    #: or "tuples" (plain record lists).  Part of the perf-history series
    #: key — throughput across the two paths is not comparable.
    trace_path: str = "prepared"
    #: Simulation kernel that ran: "scalar" or "batched".  Also part of
    #: the perf-history series key (see telemetry.baseline's schema note:
    #: records written before this field existed mean "scalar").
    kernel: str = "scalar"
    phase_fractions: dict[str, float] = field(default_factory=dict)
    phase_samples: int = 0
    cprofile_top: str | None = None

    @property
    def cycles_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.sim_cycles / self.wall_seconds

    @property
    def instructions_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.instructions / self.wall_seconds

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def as_record(self, *, git_sha: str, recorded_at: float) -> dict:
        """Schema-valid perf-history record (see telemetry.baseline)."""
        return {
            "git_sha": git_sha,
            "recorded_at": recorded_at,
            "workload": self.workload,
            "factor": self.factor,
            "config": self.config_label,
            "instructions": self.instructions,
            "sim_cycles": self.sim_cycles,
            "wall_seconds": self.wall_seconds,
            "cycles_per_second": self.cycles_per_second,
            "instructions_per_second": self.instructions_per_second,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "trace_path": self.trace_path,
            "kernel": self.kernel,
        }

    def render(self) -> str:
        lines = [
            f"perf: {self.workload} @ factor {self.factor:g} "
            f"on {self.config_label} "
            f"[{self.trace_path} trace path, {self.kernel} kernel]",
            f"  instructions        {self.instructions:>14,}",
            f"  simulated cycles    {self.sim_cycles:>14,}",
            f"  simulate wall       {self.wall_seconds:>14.3f} s"
            f"   (trace build/load {self.trace_seconds:.3f} s, "
            f"trace-cache {self.cache_hits}h/{self.cache_misses}m)",
            f"  throughput          {self.cycles_per_second:>14,.0f}"
            " sim-cycles/s",
            f"                      {self.instructions_per_second:>14,.0f}"
            " instructions/s",
        ]
        if self.phase_fractions:
            lines.append(
                f"  host-time attribution ({self.phase_samples} samples):"
            )
            for bucket, fraction in self.phase_fractions.items():
                lines.append(f"    {bucket:<24} {fraction * 100:6.1f}%")
        elif self.phase_samples == 0:
            lines.append(
                "  host-time attribution: no samples "
                "(run too short for the sampling period)"
            )
        if self.cprofile_top:
            lines.append("  cProfile (cumulative):")
            lines.extend(
                f"    {line}" for line in self.cprofile_top.splitlines()
            )
        return "\n".join(lines)


def profile_workload(
    name: str,
    config: "MachineConfig",
    *,
    factor: float = 1.0,
    interval: float = DEFAULT_INTERVAL,
    sample: bool = True,
    use_cprofile: bool = False,
    top: int = DEFAULT_TOP,
    trace_path: str = "prepared",
    kernel: str | None = None,
) -> PerfReport:
    """Profile one timing-simulation run of ``name`` at ``factor``.

    Trace acquisition (build or cache load) is timed separately and
    excluded from throughput; the phase sampler and the optional
    cProfile wrap only the simulation call.  ``trace_path`` selects the
    representation fed to the simulator: ``"prepared"`` (the columnar
    default) or ``"tuples"`` (the plain record-list path, for measuring
    the columnar speedup).  ``kernel`` selects the simulation kernel
    (``"scalar"`` | ``"batched"``; ``None`` follows ``REPRO_SIM_KERNEL``)
    — the history record tags the run so the two series never compare.
    """
    # Local imports: the telemetry package must stay importable from the
    # modules this profiles (processor, trace cache) without a cycle.
    from repro.core.kernel import get_kernel
    from repro.core.processor import simulate_trace
    from repro.experiments.common import scaled_trace
    from repro.telemetry import tracing
    from repro.workloads import registry, trace_cache

    if trace_path not in ("prepared", "tuples"):
        raise ValueError(
            f"trace_path must be 'prepared' or 'tuples', got {trace_path!r}"
        )
    kernel_obj = get_kernel(kernel)
    base_hits, base_misses = trace_cache.snapshot()
    trace_started = time.perf_counter()
    previous_mode = os.environ.get(registry.ENV_TRACE_PATH)
    os.environ[registry.ENV_TRACE_PATH] = trace_path
    try:
        with tracing.span("trace_acquire", "trace", workload=name):
            trace = scaled_trace(name, factor)
    finally:
        if previous_mode is None:
            os.environ.pop(registry.ENV_TRACE_PATH, None)
        else:
            os.environ[registry.ENV_TRACE_PATH] = previous_mode
    trace_seconds = time.perf_counter() - trace_started
    hits, misses = trace_cache.snapshot()

    if kernel_obj.name == "scalar":
        simulate = simulate_trace
    else:
        # Mirrors simulate_trace (validate + span + run) so the two
        # kernels' throughput series measure the same pipeline.
        def simulate(trace, config):
            from repro.core.kernel import simulate_many

            return simulate_many(trace, [config], kernel=kernel_obj)[0]

    sampler = (
        PhaseSampler(interval=interval).start() if sample else None
    )
    profiler = cProfile.Profile() if use_cprofile else None
    started = time.perf_counter()
    try:
        if profiler is not None:
            result = profiler.runcall(simulate, trace, config)
        else:
            result = simulate(trace, config)
    finally:
        wall = time.perf_counter() - started
        if sampler is not None:
            sampler.stop()

    cprofile_top = None
    if profiler is not None:
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(top)
        # Keep the header + table, drop pstats' trailing blank lines.
        cprofile_top = "\n".join(
            line.rstrip()
            for line in buffer.getvalue().splitlines()
            if line.strip()
        )

    return PerfReport(
        workload=name,
        factor=factor,
        config_label=config.label,
        instructions=result.stats.instructions,
        sim_cycles=result.stats.cycles,
        wall_seconds=wall,
        trace_seconds=trace_seconds,
        cache_hits=hits - base_hits,
        cache_misses=misses - base_misses,
        trace_path=trace_path,
        kernel=kernel_obj.name,
        phase_fractions=sampler.fractions() if sampler else {},
        phase_samples=sampler.total_samples if sampler else 0,
        cprofile_top=cprofile_top,
    )
