"""Cycle-level observability for the Aurora III timing model.

Four layers (see docs/OBSERVABILITY.md):

* :mod:`repro.telemetry.events` — the event bus: typed probe kinds, a
  ring-buffer sink and a streaming NDJSON sink; zero overhead when no
  sink is attached.
* :mod:`repro.telemetry.analysis` — stall-attribution timelines and the
  event-vs-counter cross-check, time-weighted occupancy histograms, and
  per-window CPI phase summaries.
* :mod:`repro.telemetry.metrics` — a counter/gauge/histogram registry
  with JSON export, fed by ``SimStats`` and the resilient runner.
* :mod:`repro.telemetry.validate` — schema validation for NDJSON traces
  (also runnable: ``python -m repro.telemetry.validate``).
"""

from repro.telemetry.analysis import (  # noqa: F401
    IntervalStat,
    OccupancyHistogram,
    StallMismatchError,
    assert_stalls_match,
    cross_check_stalls,
    fpu_queue_occupancy,
    interval_cpi,
    mshr_occupancy,
    occupancy_histogram,
    render_summary,
    stall_breakdown,
    stall_timeline,
    writecache_occupancy,
)
from repro.telemetry.events import (  # noqa: F401
    Event,
    EventBus,
    EventKind,
    NDJSONSink,
    RingBufferSink,
    TelemetryError,
    load_ndjson,
)
from repro.telemetry.metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    publish_stats,
)
