"""Observability for the Aurora III timing model — both clock domains.

Simulated time (see docs/OBSERVABILITY.md):

* :mod:`repro.telemetry.events` — the event bus: typed probe kinds, a
  ring-buffer sink and a streaming NDJSON sink (plain or gzip); zero
  overhead when no sink is attached.
* :mod:`repro.telemetry.analysis` — stall-attribution timelines and the
  event-vs-counter cross-check, time-weighted occupancy histograms, and
  per-window CPI phase summaries.
* :mod:`repro.telemetry.validate` — schema validation for NDJSON traces
  (also runnable: ``python -m repro.telemetry.validate``).

Host time:

* :mod:`repro.telemetry.tracing` — hierarchical sweep/experiment/attempt
  spans with Chrome trace-event export (Perfetto) and a text tree view;
  span records cross the process-pool boundary and merge into one trace.
* :mod:`repro.telemetry.profiling` — simulator throughput (cycles/s,
  instructions/s), sampling-based per-structure host-time attribution,
  and opt-in cProfile reports (``aurora-sim perf``).
* :mod:`repro.telemetry.baseline` — the ``BENCH_history.json`` perf
  observatory: append-per-run records, a seeded baseline, and threshold
  regression checks (``aurora-sim perf --check`` exits 3 on regression).
* :mod:`repro.telemetry.metrics` — a counter/gauge/histogram registry
  with JSON export, fed by ``SimStats`` and the resilient runner.
"""

from repro.telemetry.analysis import (  # noqa: F401
    IntervalStat,
    OccupancyHistogram,
    PartialTraceError,
    StallMismatchError,
    assert_stalls_match,
    cross_check_stalls,
    fpu_queue_occupancy,
    interval_cpi,
    mshr_occupancy,
    occupancy_export,
    occupancy_histogram,
    occupancy_summaries,
    render_summary,
    stall_breakdown,
    stall_timeline,
    writecache_occupancy,
)
from repro.telemetry.events import (  # noqa: F401
    Event,
    EventBus,
    EventKind,
    NDJSONSink,
    RingBufferSink,
    TelemetryError,
    load_ndjson,
)
from repro.telemetry.baseline import (  # noqa: F401
    BaselineError,
    PerfHistory,
    RegressionCheck,
    validate_record,
)
from repro.telemetry.logging import (  # noqa: F401
    LogConfigError,
    StructLogger,
    get_logger,
    read_log,
)
from repro.telemetry.metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    publish_bus_health,
    publish_stats,
)
from repro.telemetry.prom import (  # noqa: F401
    PromFormatError,
    parse_prom,
    render_prom,
)
from repro.telemetry.slo import (  # noqa: F401
    SLODef,
    SLOError,
    SLOResult,
    evaluate_slos,
    parse_slo,
    render_results,
)
from repro.telemetry.timeseries import (  # noqa: F401
    TimeSeriesRing,
    quantile_over_window,
    sample_registry,
)
from repro.telemetry.profiling import (  # noqa: F401
    PerfReport,
    PhaseSampler,
    profile_workload,
)
from repro.telemetry.tracing import (  # noqa: F401
    Span,
    SpanError,
    SpanTracer,
    load_chrome_trace,
    render_span_tree,
)
