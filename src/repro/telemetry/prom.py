"""Prometheus text exposition for a :class:`MetricsRegistry`.

The registry's ``as_dict()`` JSON is fine for humans and tests; a real
scrape pipeline wants the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_.
:func:`render_prom` produces it:

* counters render with the conventional ``_total`` suffix,
* gauges render as-is (unset gauges are skipped, not faked as 0),
* histograms render as cumulative ``_bucket{le="..."}`` series ending
  at ``le="+Inf"``, plus ``_sum`` and ``_count``,
* registry names use dots as namespace separators (``serve.memo.hits``);
  the exposition maps them to underscores (``serve_memo_hits_total``).
  The charset is enforced at *registration* time (see
  :data:`repro.telemetry.metrics.VALID_NAME`), so render can never
  produce an invalid line.

:func:`parse_prom` is the matching minimal parser — enough to validate
a scrape in CI and round-trip the values in tests, not a full client:
it checks line grammar, that every sample belongs to a ``# TYPE``-
declared family, that bucket counts are cumulative, and that the
``+Inf`` bucket equals ``_count``.
"""

from __future__ import annotations

import math
import re

from repro.telemetry.metrics import MetricsRegistry

#: Prometheus metric-name grammar (what rendered names must match).
PROM_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")

_SAMPLE_RE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*\Z"
)


class PromFormatError(ValueError):
    """An exposition document is malformed; names line and reason."""


def prom_name(name: str) -> str:
    """Map a registry name to its exposition name (dots → underscores)."""
    return name.replace(".", "_")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def render_prom(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    snapshot = registry.as_dict()
    lines: list[str] = []

    for name, value in snapshot["counters"].items():
        family = prom_name(name) + "_total"
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family} {_format_value(value)}")

    for name, value in snapshot["gauges"].items():
        if value is None:  # registered but never set: don't fake a 0
            continue
        family = prom_name(name)
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_format_value(value)}")

    for name, hist in snapshot["histograms"].items():
        family = prom_name(name)
        lines.append(f"# TYPE {family} histogram")
        for bound, count in hist["buckets"].items():
            le = _format_value(float(bound))
            lines.append(f'{family}_bucket{{le="{le}"}} {count}')
        lines.append(f'{family}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{family}_sum {_format_value(hist['sum'])}")
        lines.append(f"{family}_count {hist['count']}")

    return "\n".join(lines) + "\n"


def _parse_number(text: str, line_no: int) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise PromFormatError(
            f"line {line_no}: {text!r} is not a number"
        ) from None


def parse_prom(text: str) -> dict:
    """Parse and validate an exposition document.

    Returns ``{"types": {family: kind}, "samples": {name: value}}``
    where histogram bucket samples key as ``family_bucket{le="..."}``.
    Raises :class:`PromFormatError` on any grammar or consistency
    violation (undeclared family, non-cumulative buckets, ``+Inf``
    bucket disagreeing with ``_count``).
    """
    types: dict[str, str] = {}
    samples: dict[str, float] = {}
    buckets: dict[str, list[tuple[float, float]]] = {}

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise PromFormatError(
                    f"line {line_no}: malformed TYPE line: {raw!r}"
                )
            _, _, family, kind = parts
            if not PROM_NAME_RE.match(family):
                raise PromFormatError(
                    f"line {line_no}: invalid family name {family!r}"
                )
            if kind not in ("counter", "gauge", "histogram"):
                raise PromFormatError(
                    f"line {line_no}: unknown metric type {kind!r}"
                )
            types[family] = kind
            continue
        if line.startswith("#"):  # HELP / comments: tolerated
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise PromFormatError(
                f"line {line_no}: not a valid sample line: {raw!r}"
            )
        name = match.group("name")
        labels = match.group("labels")
        value = _parse_number(match.group("value"), line_no)

        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                family = base
                break
        if family not in types:
            raise PromFormatError(
                f"line {line_no}: sample {name!r} has no preceding "
                f"# TYPE declaration"
            )
        key = name if labels is None else f"{name}{{{labels}}}"
        if key in samples:
            raise PromFormatError(
                f"line {line_no}: duplicate sample {key!r}"
            )
        samples[key] = value
        if name.endswith("_bucket") and family != name:
            if labels is None or not labels.startswith('le="'):
                raise PromFormatError(
                    f"line {line_no}: histogram bucket without an le label"
                )
            le = _parse_number(labels[4:].rstrip('"'), line_no)
            buckets.setdefault(family, []).append((le, value))

    for family, series in buckets.items():
        counts = [count for _le, count in series]
        if counts != sorted(counts):
            raise PromFormatError(
                f"histogram {family!r}: bucket counts are not cumulative"
            )
        if not series or series[-1][0] != math.inf:
            raise PromFormatError(
                f"histogram {family!r}: missing the +Inf bucket"
            )
        total = samples.get(f"{family}_count")
        if total is not None and series[-1][1] != total:
            raise PromFormatError(
                f"histogram {family!r}: +Inf bucket {series[-1][1]} != "
                f"count {total}"
            )
    return {"types": types, "samples": samples}
