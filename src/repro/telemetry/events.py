"""The event bus: typed cycle-level probes with pluggable sinks.

The timing model is timestamp-based, so "a cycle-level trace" here means
a stream of *events*, each stamped with the cycle it describes, emitted
at every decision point the model takes: stall attribution, front-end
redirects, MSHR allocate/release, write-cache evictions, FPU queue
enqueue/issue/dequeue, prefetch hits and misses, and BIU transactions.
Replaying the stream in cycle order reconstructs the run as a timeline.

Zero overhead when off: instrumented structures hold a ``telemetry``
attribute that defaults to ``None``, and every probe site is guarded by
a single falsy check (``if tele is not None: tele.emit(...)`` in the
processor hot loop, ``if self.telemetry: ...`` elsewhere — an
:class:`EventBus` with no sinks attached is falsy too, so a dangling bus
costs one truth test and emits nothing).  The overhead gate in
``benchmarks/test_bench_telemetry_overhead.py`` enforces this.

Sinks receive :class:`Event` objects via ``record(event)``:

* :class:`RingBufferSink` — bounded (or unbounded) in-memory buffer; the
  analysis layer consumes its ``events``.
* :class:`NDJSONSink` — streams one JSON object per line to a file; the
  schema is ``{"cycle": int, "source": str, "kind": str, **fields}`` and
  :func:`load_ndjson` validates and parses it back.
"""

from __future__ import annotations

import gzip
import io
import json
import pathlib
from collections import deque
from enum import Enum
from typing import Iterable, Iterator


class TelemetryError(ValueError):
    """A telemetry stream or event is malformed; names line and reason."""


class EventKind(Enum):
    """Every probe point the instrumented simulator can report."""

    #: I-cache miss at fetch (fields: pc, index, arrival).
    FETCH_STALL = "fetch_stall"
    #: Taken-branch front-end redirect registered (fields: index, floor, pc).
    REDIRECT = "redirect"
    #: Issue-stall attribution — mirrors every ``SimStats.stall_cycles``
    #: increment exactly (fields: stall, cycles, index, pc).
    STALL = "stall"
    #: One instruction retired (fields: index, issue); cycle = retire time.
    RETIRE = "retire"
    #: MSHR entry reserved (fields: slot, requested, wait); cycle = grant.
    MSHR_ALLOC = "mshr_alloc"
    #: MSHR entry freed (fields: slot); cycle = effective release time.
    MSHR_RELEASE = "mshr_release"
    #: Store processed by the write cache (fields: line, hit, allocated).
    WC_STORE = "wc_store"
    #: Dirty write-cache line left the chip (fields: line, done).
    WC_EVICT = "wc_evict"
    #: FPU queue entry taken (fields: queue in {"iq", "lq", "sq"}).
    FPQ_ENQUEUE = "fpq_enqueue"
    #: FPU instruction issued into a functional unit (fields: unit).
    FPQ_ISSUE = "fpq_issue"
    #: FPU queue entry freed (fields: queue).
    FPQ_DEQUEUE = "fpq_dequeue"
    #: Primary miss hit a stream buffer (fields: stream, line, arrival).
    PREFETCH_HIT = "prefetch_hit"
    #: Primary miss missed the pool too (fields: stream, line).
    PREFETCH_MISS = "prefetch_miss"
    #: Bus transaction granted (fields: txn, requested, arrival).
    BIU_TXN = "biu_txn"


_KIND_BY_VALUE = {kind.value: kind for kind in EventKind}


class Event:
    """One telemetry event: a cycle stamp, a source, a kind, and fields."""

    __slots__ = ("cycle", "source", "kind", "fields")

    def __init__(
        self, cycle: int, source: str, kind: EventKind, **fields
    ) -> None:
        self.cycle = cycle
        self.source = source
        self.kind = kind
        self.fields = fields

    def to_dict(self) -> dict:
        payload = {
            "cycle": self.cycle,
            "source": self.source,
            "kind": self.kind.value,
        }
        payload.update(self.fields)
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(cycle={self.cycle}, source={self.source!r}, "
            f"kind={self.kind.value}, fields={self.fields!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.cycle == other.cycle
            and self.source == other.source
            and self.kind is other.kind
            and self.fields == other.fields
        )


class RingBufferSink:
    """Keep the most recent ``capacity`` events in memory.

    ``capacity=None`` keeps everything (what the analysis layer wants for
    exact reconstruction); a bounded ring records how many events it
    dropped so downstream cross-checks can refuse to run on a partial
    stream instead of reporting a bogus mismatch.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"ring capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._events: deque[Event] = deque(maxlen=capacity)
        self.recorded = 0

    def record(self, event: Event) -> None:
        self._events.append(event)
        self.recorded += 1

    @property
    def events(self) -> list[Event]:
        return list(self._events)

    @property
    def dropped(self) -> int:
        return self.recorded - len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def close(self) -> None:
        pass


class NDJSONSink:
    """Stream events to a file, one JSON object per line.

    A path ending in ``.gz`` writes gzip transparently (and
    :func:`load_ndjson` reads it back the same way).  The sink is a
    context manager — ``with NDJSONSink(path) as sink: ...`` closes and
    flushes on exit — and because every event is one complete line, a
    stream that is cut short (crash, abandoned worker) and then closed
    still validates: it just holds fewer events.
    """

    def __init__(self, target: str | pathlib.Path | io.TextIOBase) -> None:
        if isinstance(target, (str, pathlib.Path)):
            name = str(target)
            if name.endswith(".gz"):
                self._file = gzip.open(name, "wt", encoding="utf-8")
            else:
                self._file = open(name, "w", encoding="utf-8")
            self._owns = True
        else:
            self._file = target
            self._owns = False
        self.recorded = 0

    def record(self, event: Event) -> None:
        json.dump(event.to_dict(), self._file, separators=(",", ":"))
        self._file.write("\n")
        self.recorded += 1

    def flush(self) -> None:
        if not self._file.closed:
            self._file.flush()

    def close(self) -> None:
        if self._owns and not self._file.closed:
            self._file.close()
        elif not self._owns and not self._file.closed:
            self._file.flush()

    def __enter__(self) -> "NDJSONSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class EventBus:
    """Fans ``emit`` calls out to the attached sinks.

    A bus with no sinks is *falsy*, which is what lets probe sites guard
    with a single truth test and skip building the event entirely.
    """

    def __init__(self, *sinks) -> None:
        self._sinks: list = []
        for sink in sinks:
            self.attach(sink)

    def attach(self, sink) -> None:
        if not callable(getattr(sink, "record", None)):
            raise TypeError(
                f"sink {type(sink).__name__} has no record(event) method"
            )
        self._sinks.append(sink)

    def detach(self, sink) -> None:
        self._sinks.remove(sink)

    @property
    def sinks(self) -> tuple:
        """The attached sinks (read-only view; health reporting)."""
        return tuple(self._sinks)

    def __bool__(self) -> bool:
        return bool(self._sinks)

    def emit(self, cycle: int, source: str, kind: EventKind, **fields) -> None:
        event = Event(cycle, source, kind, **fields)
        for sink in self._sinks:
            sink.record(event)

    def close(self) -> None:
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


# ------------------------------------------------------------- NDJSON I/O


def event_from_dict(payload: object, *, where: str = "event") -> Event:
    """Validate and build one :class:`Event` from a decoded JSON object."""
    if not isinstance(payload, dict):
        raise TelemetryError(
            f"{where}: expected a JSON object, got {type(payload).__name__}"
        )
    cycle = payload.get("cycle")
    if not isinstance(cycle, int) or isinstance(cycle, bool) or cycle < 0:
        raise TelemetryError(
            f"{where}: 'cycle' must be a non-negative int, got {cycle!r}"
        )
    source = payload.get("source")
    if not isinstance(source, str) or not source:
        raise TelemetryError(
            f"{where}: 'source' must be a non-empty string, got {source!r}"
        )
    kind_value = payload.get("kind")
    kind = _KIND_BY_VALUE.get(kind_value)
    if kind is None:
        known = ", ".join(sorted(_KIND_BY_VALUE))
        raise TelemetryError(
            f"{where}: unknown event kind {kind_value!r}; known: {known}"
        )
    fields = {
        key: value
        for key, value in payload.items()
        if key not in ("cycle", "source", "kind")
    }
    return Event(cycle, source, kind, **fields)


def iter_ndjson(lines: Iterable[str], *, where: str = "stream") -> Iterator[Event]:
    """Parse and validate an NDJSON event stream, line by line."""
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise TelemetryError(
                f"{where} line {number}: invalid JSON ({error.msg})"
            ) from None
        yield event_from_dict(payload, where=f"{where} line {number}")


def load_ndjson(path: str | pathlib.Path) -> list[Event]:
    """Load a validated event list from an NDJSON trace file.

    ``.gz`` paths are decompressed transparently, matching what
    :class:`NDJSONSink` writes for them.
    """
    path = pathlib.Path(path)
    opener = gzip.open if str(path).endswith(".gz") else open
    with opener(path, "rt", encoding="utf-8") as handle:
        return list(iter_ndjson(handle, where=str(path)))
