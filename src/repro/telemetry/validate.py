"""Validate an NDJSON event-trace file against the telemetry schema.

Usage::

    python -m repro.telemetry.validate trace.ndjson [more.ndjson ...]
    python -m repro.telemetry.validate trace.ndjson.gz
    aurora-sim trace compress --events - | python -m repro.telemetry.validate -

``-`` reads the stream from stdin; paths ending in ``.gz`` are
decompressed transparently.  Exit status 0 when every input parses and
every event passes schema validation; 1 (with the offending line named)
otherwise.  CI's telemetry smoke job runs this over the trace
``aurora-sim trace`` wrote.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter

from repro.telemetry.events import TelemetryError, iter_ndjson, load_ndjson


def validate_file(path: str, stream=None) -> int:
    """Validate one file (or stdin for ``-``); prints a per-kind census.

    Returns the event count.
    """
    if stream is None:
        stream = sys.stdout
    if path == "-":
        events = list(iter_ndjson(sys.stdin, where="<stdin>"))
        label = "<stdin>"
    else:
        events = load_ndjson(path)
        label = path
    census = Counter(event.kind.value for event in events)
    print(f"{label}: {len(events):,} events OK", file=stream)
    for kind, count in sorted(census.items()):
        print(f"  {kind:<15} {count:>10,}", file=stream)
    return len(events)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "paths",
        nargs="+",
        help="NDJSON trace files (.gz is transparent; '-' reads stdin)",
    )
    parser.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="fail unless each file holds at least this many events",
    )
    args = parser.parse_args(argv)
    for path in args.paths:
        try:
            count = validate_file(path)
        except (OSError, TelemetryError) as error:
            print(f"{path}: INVALID — {error}", file=sys.stderr)
            return 1
        if count < args.min_events:
            print(
                f"{path}: only {count} events (expected >= "
                f"{args.min_events})",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
