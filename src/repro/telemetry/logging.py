"""Structured JSON-lines logging with span correlation.

The repo's operator-facing warnings have always been honest plain-text
lines on a stream — good for a human tailing a sweep, useless for a
log pipeline.  This module adds the production shape *next to* them:
one JSON object per line, each a **typed event** with fields::

    {"ts": 1718000000.123, "level": "WARNING", "component": "trace_cache",
     "event": "cache.checksum_failure", "trace_id": "9f2c41d0a3b7",
     "span_id": "4711-3", "path": "compress.s16.v2.npy", ...}

* ``get_logger(component)`` returns a :class:`StructLogger` whose
  ``debug/info/warning/error(event, **fields)`` methods emit one line.
* **Correlation for free**: when a :class:`~repro.telemetry.tracing.
  SpanTracer` is installed (``--trace``, serve request spans, pool
  workers), every record carries its ``trace_id`` and the innermost
  open span's ``span_id`` — a checksum failure inside a worker is
  attributable to the exact attempt that hit it.
* **Zero overhead when off** — the same contract as the event bus and
  the span tracer: until :func:`configure` installs a destination,
  every emit is a single module-global ``None`` check.  No handler, no
  formatting, no clock read.
* Destination selection: ``--log-file PATH`` / ``REPRO_LOG=PATH`` (or
  ``stderr`` / ``-`` for the standard error stream); level via
  ``--log-level`` / ``REPRO_LOG_LEVEL`` (validated eagerly by
  :func:`repro.robustness.validation.validate_environment`).
* **Pool propagation**: the runner's and batcher's worker initializer
  forwards :func:`current_config`, so worker processes append to the
  same log file (one line per ``write`` on an ``O_APPEND`` descriptor —
  atomic for sane line lengths on POSIX).

Built on stdlib :mod:`logging`: one ``repro`` logger, one handler, a
JSON formatter.  Nothing here imports numpy or the simulator.
"""

from __future__ import annotations

import io
import json
import logging as _stdlog
import sys
import threading

#: Environment variables (validated by ``validate_environment``).
ENV_LOG = "REPRO_LOG"
ENV_LOG_LEVEL = "REPRO_LOG_LEVEL"

#: Accepted ``--log-level`` / ``REPRO_LOG_LEVEL`` values.
LEVELS = ("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL")

#: Destination aliases for the standard error stream.
STDERR_ALIASES = ("stderr", "-")

_LOGGER_NAME = "repro"

#: Module-global config: ``None`` = disabled (the zero-overhead state).
_config: "LogConfig | None" = None
_lock = threading.Lock()


class LogConfigError(ValueError):
    """A log destination or level is unusable; names the reason."""


class _JSONFormatter(_stdlog.Formatter):
    """One JSON object per record; the message is pre-built fields."""

    def format(self, record: _stdlog.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname,
        }
        fields = getattr(record, "struct_fields", None)
        if fields:
            payload.update(fields)
        else:  # a foreign stdlib record strayed onto our handler
            payload["component"] = record.name
            payload["event"] = "log.message"
            payload["message"] = record.getMessage()
        return json.dumps(payload, default=str, separators=(", ", ": "))


class LogConfig:
    """An installed destination: stream or append-mode file + level."""

    def __init__(self, destination: str, level: str) -> None:
        level = level.upper()
        if level not in LEVELS:
            raise LogConfigError(
                f"log level {level!r} is not one of {'/'.join(LEVELS)}"
            )
        self.destination = destination
        self.level = level
        self._owns_stream = destination not in STDERR_ALIASES
        if self._owns_stream:
            try:
                # Append mode: pool workers and the parent interleave
                # whole lines instead of clobbering each other.
                stream = open(destination, "a", encoding="utf-8")
            except OSError as error:
                raise LogConfigError(
                    f"cannot open log file {destination!r}: {error}"
                ) from None
        else:
            stream = sys.stderr
        self.handler = _stdlog.StreamHandler(stream)
        self.handler.setFormatter(_JSONFormatter())
        self.logger = _stdlog.getLogger(_LOGGER_NAME)
        self.logger.addHandler(self.handler)
        self.logger.setLevel(level)
        self.logger.propagate = False

    def close(self) -> None:
        self.logger.removeHandler(self.handler)
        if self._owns_stream:
            self.handler.close()
        else:
            self.handler.flush()


def configure(destination: str | None, level: str = "INFO") -> None:
    """Install (or, with ``destination=None``, remove) the log sink.

    Replaces any previous configuration; the previous file handle is
    closed.  Raises :class:`LogConfigError` for a bad level or an
    unopenable path.
    """
    global _config
    with _lock:
        new = LogConfig(destination, level) if destination else None
        old, _config = _config, new
        if old is not None:
            old.close()


def configure_from_env(environ=None) -> None:
    """Apply ``REPRO_LOG`` / ``REPRO_LOG_LEVEL`` (unset = leave alone)."""
    import os

    env = os.environ if environ is None else environ
    destination = env.get(ENV_LOG, "")
    if destination:
        configure(destination, env.get(ENV_LOG_LEVEL, "") or "INFO")


def shutdown() -> None:
    """Remove the sink and close the file (back to zero-overhead-off)."""
    configure(None)


def enabled() -> bool:
    """True when a destination is installed."""
    return _config is not None


def current_config() -> tuple[str, str] | None:
    """``(destination, level)`` for pool propagation, or ``None``."""
    config = _config
    return (config.destination, config.level) if config else None


def _correlation() -> dict:
    """trace/span ids from the installed tracer (empty when none)."""
    from repro.telemetry import tracing

    tracer = tracing.current_tracer()
    if tracer is None:
        return {}
    ids: dict = {"trace_id": tracer.trace_id}
    span = tracer.current()
    if span is not None:
        ids["span_id"] = span.span_id
    return ids


class StructLogger:
    """Per-component emitter of typed JSON-lines events.

    Cheap to construct and hold at module level — it resolves the
    installed config at *call* time, so a logger created before
    :func:`configure` works, and one held after :func:`shutdown` costs
    one ``None`` check per call.
    """

    __slots__ = ("component",)

    def __init__(self, component: str) -> None:
        self.component = component

    def event(self, level: str, event: str, **fields) -> None:
        config = _config
        if config is None:  # the zero-overhead-off path
            return
        level_no = _stdlog.getLevelName(level)
        if not config.logger.isEnabledFor(level_no):
            return
        payload = {"component": self.component, "event": event}
        payload.update(_correlation())
        payload.update(fields)
        config.logger.log(level_no, event, extra={"struct_fields": payload})

    def debug(self, event: str, **fields) -> None:
        self.event("DEBUG", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.event("INFO", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.event("WARNING", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.event("ERROR", event, **fields)


def get_logger(component: str) -> StructLogger:
    """The :class:`StructLogger` for one subsystem (e.g. ``serve``)."""
    return StructLogger(component)


def read_log(path) -> list[dict]:
    """Parse a JSON-lines log file back into records (tests, tooling).

    Every non-blank line must parse — a structured log with junk in it
    is a bug, so this raises ``ValueError`` naming the line.
    """
    records = []
    with io.open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{number}: not a JSON log line: {error}"
                ) from None
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{number}: log record must be an object"
                )
            records.append(record)
    return records
