"""Perf-baseline observatory: ``BENCH_history.json`` and regression checks.

Every ``aurora-sim perf`` run appends one schema-validated record — git
SHA, workload/factor/config fingerprint, throughput, wall time, trace-
cache behaviour — to a history file, so simulator performance is a
tracked series across PRs instead of folklore.  One record can be
promoted to the *baseline* (``--seed-baseline``); ``--check`` then
compares the current run against it and fails with exit status 3 when
throughput regressed beyond a configurable threshold (default 20%).

Document format (``version`` 1)::

    {"version": 1,
     "baseline": {<record>} | null,
     "records": [{"git_sha": "...", "recorded_at": 1722950000.0,
                  "workload": "compress", "factor": 0.05,
                  "config": "baseline", "instructions": 40000,
                  "sim_cycles": 90000, "wall_seconds": 0.41,
                  "cycles_per_second": 219512.2,
                  "instructions_per_second": 97561.0,
                  "cache_hits": 1, "cache_misses": 0}, ...]}

Comparisons are only meaningful between like runs, so ``compare``
refuses to judge a record against a baseline with a different
``(workload, factor, config, trace_path, kernel, mode)`` key — a
changed sweep is a new series, not a regression.  Several fields are
optional for compatibility with records written before they existed:
``trace_path`` ("prepared" | "tuples", which trace representation the
simulator consumed; absent means "tuples", the only path that existed
then), ``kernel`` ("scalar" | "batched", which simulation kernel ran;
absent means "scalar"), and ``mode`` ("simulate" | "serve" |
"explore"; absent means "simulate").  Serve-mode records come from
``aurora-sim loadgen`` driving the live query service and additionally
carry ``requests_per_second`` / ``latency_p50_ms`` / ``latency_p99_ms``;
explore-mode records come from ``aurora-sim explore`` and additionally
carry ``configs_considered`` / ``configs_simulated`` /
``model_mean_rel_error``.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import time
from dataclasses import dataclass

HISTORY_VERSION = 1
#: Default history location (repo root by convention; CI uploads it).
DEFAULT_HISTORY = pathlib.Path("BENCH_history.json")
#: Throughput drop (fraction of baseline) that counts as a regression.
DEFAULT_THRESHOLD = 0.20

#: Record schema: field name -> accepted types.  Bools are ints in
#: Python, so int fields explicitly reject them below.
_SCHEMA: dict[str, tuple[type, ...]] = {
    "git_sha": (str,),
    "recorded_at": (int, float),
    "workload": (str,),
    "factor": (int, float),
    "config": (str,),
    "instructions": (int,),
    "sim_cycles": (int,),
    "wall_seconds": (int, float),
    "cycles_per_second": (int, float),
    "instructions_per_second": (int, float),
    "cache_hits": (int,),
    "cache_misses": (int,),
}

#: Optional fields (absent in pre-existing records): name -> (accepted
#: types, allowed values or None).
_OPTIONAL_SCHEMA: dict[str, tuple[tuple[type, ...], tuple | None]] = {
    "trace_path": ((str,), ("prepared", "tuples")),
    "kernel": ((str,), ("scalar", "batched")),
    "mode": ((str,), ("simulate", "serve", "explore")),
    "requests_per_second": ((int, float), None),
    "latency_p50_ms": ((int, float), None),
    "latency_p99_ms": ((int, float), None),
    "configs_considered": ((int,), None),
    "configs_simulated": ((int,), None),
    "model_mean_rel_error": ((int, float), None),
}

#: What an absent ``trace_path`` means: every record written before the
#: field existed came from the plain record-list path.
LEGACY_TRACE_PATH = "tuples"
#: What an absent ``kernel`` means: every record written before the
#: field existed came from the scalar timing loop.
LEGACY_KERNEL = "scalar"
#: What an absent ``mode`` means: every record written before the serve
#: front end existed measured the simulator directly.
LEGACY_MODE = "simulate"

#: Series-key fields whose absence has a defined legacy meaning.
_LEGACY_DEFAULTS = {
    "trace_path": LEGACY_TRACE_PATH,
    "kernel": LEGACY_KERNEL,
    "mode": LEGACY_MODE,
}


class BaselineError(ValueError):
    """A perf record or history document is malformed; names the field."""


def validate_record(payload: object, *, where: str = "record") -> dict:
    """Validate one perf-history record against the schema."""
    if not isinstance(payload, dict):
        raise BaselineError(
            f"{where}: expected a JSON object, got {type(payload).__name__}"
        )
    for name, types in _SCHEMA.items():
        if name not in payload:
            raise BaselineError(f"{where}: missing field {name!r}")
        value = payload[name]
        if not isinstance(value, types) or isinstance(value, bool):
            expected = "/".join(t.__name__ for t in types)
            raise BaselineError(
                f"{where}: field {name!r} must be {expected}, "
                f"got {value!r}"
            )
    numeric = (
        "recorded_at", "factor", "instructions", "sim_cycles",
        "wall_seconds", "cycles_per_second", "instructions_per_second",
        "cache_hits", "cache_misses",
    )
    for name in numeric:
        if payload[name] < 0:
            raise BaselineError(
                f"{where}: field {name!r} must be >= 0, "
                f"got {payload[name]!r}"
            )
    for name, (types, allowed) in _OPTIONAL_SCHEMA.items():
        if name not in payload:
            continue
        value = payload[name]
        if not isinstance(value, types) or isinstance(value, bool):
            expected = "/".join(t.__name__ for t in types)
            raise BaselineError(
                f"{where}: field {name!r} must be {expected}, got {value!r}"
            )
        if allowed is not None and value not in allowed:
            raise BaselineError(
                f"{where}: field {name!r} must be one of "
                f"{'/'.join(map(str, allowed))}, got {value!r}"
            )
        if allowed is None and value < 0:
            raise BaselineError(
                f"{where}: field {name!r} must be >= 0, got {value!r}"
            )
    return dict(payload)


def git_sha(cwd: str | pathlib.Path | None = None) -> str:
    """Current commit hash (short), or "unknown" outside a git checkout."""
    root = pathlib.Path(cwd) if cwd else pathlib.Path(__file__).parent
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip() or "unknown"


@dataclass(frozen=True)
class RegressionCheck:
    """Outcome of one current-vs-baseline throughput comparison."""

    baseline_throughput: float
    current_throughput: float
    threshold: float

    @property
    def ratio(self) -> float:
        """current / baseline (1.0 = unchanged; < 1 = slower)."""
        if self.baseline_throughput <= 0:
            return 1.0
        return self.current_throughput / self.baseline_throughput

    @property
    def delta_percent(self) -> float:
        return (self.ratio - 1.0) * 100.0

    @property
    def regressed(self) -> bool:
        return self.ratio < 1.0 - self.threshold

    def render(self) -> str:
        verdict = (
            f"REGRESSION (beyond {self.threshold * 100:.0f}% threshold)"
            if self.regressed
            else "ok"
        )
        return (
            f"baseline {self.baseline_throughput:,.0f} sim-cycles/s, "
            f"current {self.current_throughput:,.0f} sim-cycles/s "
            f"({self.delta_percent:+.1f}%): {verdict}"
        )


class PerfHistory:
    """One ``BENCH_history.json`` file: append records, keep a baseline."""

    def __init__(self, path: str | pathlib.Path = DEFAULT_HISTORY) -> None:
        self.path = pathlib.Path(path)

    # -------------------------------------------------------------- load

    def load(self) -> dict:
        """The validated document (an empty one if the file is absent)."""
        if not self.path.exists():
            return {"version": HISTORY_VERSION, "baseline": None, "records": []}
        try:
            document = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise BaselineError(
                f"{self.path}: unreadable history ({error})"
            ) from None
        if (
            not isinstance(document, dict)
            or document.get("version") != HISTORY_VERSION
        ):
            raise BaselineError(
                f"{self.path}: not a version-{HISTORY_VERSION} "
                "perf-history document"
            )
        records = document.get("records")
        if not isinstance(records, list):
            raise BaselineError(f"{self.path}: 'records' must be a list")
        validated = [
            validate_record(record, where=f"{self.path} records[{index}]")
            for index, record in enumerate(records)
        ]
        baseline = document.get("baseline")
        if baseline is not None:
            baseline = validate_record(
                baseline, where=f"{self.path} baseline"
            )
        return {
            "version": HISTORY_VERSION,
            "baseline": baseline,
            "records": validated,
        }

    def records(self) -> list[dict]:
        return self.load()["records"]

    def baseline(self) -> dict | None:
        return self.load()["baseline"]

    # ------------------------------------------------------------- write

    def _save(self, document: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(document, indent=2) + "\n")
        tmp.replace(self.path)  # atomic: a crash never corrupts history

    def append(self, record: dict) -> dict:
        """Validate and append one record; returns the stored copy."""
        record = validate_record(record)
        document = self.load()
        document["records"].append(record)
        self._save(document)
        return record

    def seed_baseline(self, record: dict) -> dict:
        """Promote ``record`` to the stored baseline."""
        record = validate_record(record, where="baseline")
        document = self.load()
        document["baseline"] = record
        self._save(document)
        return record

    # ------------------------------------------------------------- check

    def compare(
        self, record: dict, *, threshold: float = DEFAULT_THRESHOLD
    ) -> RegressionCheck:
        """Compare ``record`` against the stored baseline.

        Raises :class:`BaselineError` when no baseline is stored or when
        the baseline belongs to a different (workload, factor, config,
        trace_path, kernel, mode) series — in particular, a prepared-
        path run is never judged against a tuple-path baseline, nor a
        batched-kernel run against a scalar one, nor a serve-mode load
        run against a simulate-mode profile (or vice versa): those
        series have different throughput by design.
        """
        if not 0 < threshold < 1:
            raise BaselineError(
                f"threshold must be in (0, 1), got {threshold!r}"
            )
        record = validate_record(record)
        baseline = self.baseline()
        if baseline is None:
            raise BaselineError(
                f"{self.path}: no baseline stored — seed one with "
                "'aurora-sim perf --seed-baseline' first"
            )
        mismatched = []
        for key in (
            "workload", "factor", "config", "trace_path", "kernel", "mode",
        ):
            legacy = _LEGACY_DEFAULTS.get(key)
            mine = record.get(key, legacy)
            theirs = baseline.get(key, legacy)
            if mine != theirs:
                mismatched.append((key, theirs, mine))
        if mismatched:
            # Name *every* offending axis — with six series keys, naming
            # only the first made "which axis mismatched" a guessing game.
            detail = "; ".join(
                f"baseline is for {key}={theirs!r} but this run has "
                f"{key}={mine!r}"
                for key, theirs, mine in mismatched
            )
            raise BaselineError(
                f"{self.path}: refusing a cross-series comparison "
                f"({detail}); re-seed the baseline for the new series"
            )
        return RegressionCheck(
            baseline_throughput=float(baseline["cycles_per_second"]),
            current_throughput=float(record["cycles_per_second"]),
            threshold=threshold,
        )


def record_now(report, *, sha: str | None = None) -> dict:
    """Build a history record from a :class:`PerfReport` stamped now."""
    return report.as_record(
        git_sha=sha if sha is not None else git_sha(),
        recorded_at=time.time(),
    )
