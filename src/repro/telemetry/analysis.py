"""Derive timelines, breakdowns and occupancy distributions from events.

Three analyses the paper's resource-allocation questions keep asking:

* **Stall attribution** — :func:`stall_breakdown` reconstructs the
  Figure 6 stall accounting purely from :data:`~repro.telemetry.events.EventKind.STALL`
  events, and :func:`cross_check_stalls` compares the reconstruction
  against the ``SimStats`` counters.  The two are maintained by separate
  code paths, so a disagreement means the stall accounting broke.
* **Occupancy distributions** — :func:`occupancy_histogram` sweeps
  paired enter/exit events into a time-weighted occupancy histogram with
  percentiles, for MSHRs (:func:`mshr_occupancy`), the FPU queues
  (:func:`fpu_queue_occupancy`) and the write cache
  (:func:`writecache_occupancy`).  Per the queuing-model literature,
  these *distributions* — not just means — are what sizing decisions
  need.
* **Phase behaviour** — :func:`interval_cpi` summarises CPI per N-cycle
  window from RETIRE events, exposing the phases of a kernel that a
  single end-of-run CPI hides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.stats import SimStats, StallKind
from repro.telemetry.events import Event, EventKind

_STALL_BY_VALUE = {kind.value: kind for kind in StallKind}


class StallMismatchError(AssertionError):
    """Event-reconstructed stalls disagree with the SimStats counters."""


class PartialTraceError(ValueError):
    """The event stream is incomplete — a bounded sink dropped events.

    The stall cross-check demands *exact* agreement between events and
    counters, so running it on a partial stream would report a bogus
    mismatch (or, worse, a bogus match).  Refusing is the only honest
    answer.
    """


def _require_complete(events, dropped: int | None, analysis: str) -> None:
    """Refuse an analysis when the event source admits to dropping events.

    ``dropped`` overrides the count explicitly; otherwise the source
    itself is asked (``RingBufferSink.dropped``; plain lists report 0).
    """
    if dropped is None:
        dropped = getattr(events, "dropped", 0)
    if dropped:
        raise PartialTraceError(
            f"{analysis} needs the complete event stream, but the sink "
            f"dropped {dropped} event(s) (bounded ring buffer?); rerun "
            "with an unbounded sink (RingBufferSink(capacity=None))"
        )


# ----------------------------------------------------------- stall analysis


def stall_breakdown(events: Iterable[Event]) -> dict[StallKind, int]:
    """Total stall cycles per kind, reconstructed from STALL events."""
    totals = {kind: 0 for kind in StallKind}
    for event in events:
        if event.kind is EventKind.STALL:
            kind = _STALL_BY_VALUE[event.fields["stall"]]
            totals[kind] += event.fields["cycles"]
    return totals


def cross_check_stalls(
    events: Iterable[Event],
    stats: SimStats,
    *,
    dropped: int | None = None,
) -> list[str]:
    """Compare event-reconstructed stalls to the counters; list mismatches.

    Returns an empty list when the two accountings agree exactly (the
    acceptance bar: they are written by independent code paths, so exact
    agreement is a real audit of the Figure 6 accounting).

    Raises :class:`PartialTraceError` when the stream is known to be
    incomplete — ``dropped`` passed explicitly, or the ``events`` source
    exposing a non-zero ``dropped`` attribute (a bounded
    :class:`~repro.telemetry.events.RingBufferSink`).
    """
    _require_complete(events, dropped, "stall cross-check")
    reconstructed = stall_breakdown(events)
    mismatches = []
    for kind in StallKind:
        from_events = reconstructed[kind]
        from_counter = stats.stall_cycles[kind]
        if from_events != from_counter:
            mismatches.append(
                f"stall[{kind.value}]: events say {from_events}, "
                f"SimStats counter says {from_counter}"
            )
    return mismatches


def assert_stalls_match(
    events: Iterable[Event],
    stats: SimStats,
    *,
    dropped: int | None = None,
) -> None:
    """Raise :class:`StallMismatchError` unless the accountings agree.

    Refuses with :class:`PartialTraceError` on a stream that dropped
    events (see :func:`cross_check_stalls`).
    """
    mismatches = cross_check_stalls(events, stats, dropped=dropped)
    if mismatches:
        raise StallMismatchError(
            "event/counter stall accounting diverged: "
            + "; ".join(mismatches)
        )


def stall_timeline(
    events: Iterable[Event], window: int = 1000
) -> list[tuple[int, dict[StallKind, int]]]:
    """Stall cycles per kind per ``window``-cycle interval, in time order.

    Each STALL event's cycles are attributed to the window containing the
    cycle the stall began (the event's stamp).  Windows with no stalls are
    omitted.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    buckets: dict[int, dict[StallKind, int]] = {}
    for event in events:
        if event.kind is not EventKind.STALL:
            continue
        start = (event.cycle // window) * window
        bucket = buckets.setdefault(start, {kind: 0 for kind in StallKind})
        bucket[_STALL_BY_VALUE[event.fields["stall"]]] += event.fields["cycles"]
    return sorted(buckets.items())


# -------------------------------------------------------------- occupancy


@dataclass
class OccupancyHistogram:
    """Time-weighted occupancy distribution of one structure.

    ``cycles_at[n]`` is how many cycles the structure spent holding
    exactly ``n`` entries, between the first and last events observed.
    """

    cycles_at: dict[int, int] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return sum(self.cycles_at.values())

    @property
    def max_occupancy(self) -> int:
        return max(self.cycles_at, default=0)

    @property
    def time_weighted_mean(self) -> float:
        total = self.total_cycles
        if not total:
            return 0.0
        return sum(n * c for n, c in self.cycles_at.items()) / total

    def percentile(self, p: float) -> int:
        """Smallest occupancy level covering ``p`` percent of the cycles."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        total = self.total_cycles
        if not total:
            return 0
        threshold = total * p / 100.0
        seen = 0
        for level in sorted(self.cycles_at):
            seen += self.cycles_at[level]
            if seen >= threshold:
                return level
        return self.max_occupancy  # pragma: no cover - p=100 exits above

    def summary(self, label: str) -> str:
        return (
            f"{label}: mean {self.time_weighted_mean:.2f}, "
            f"p50 {self.percentile(50)}, p90 {self.percentile(90)}, "
            f"p99 {self.percentile(99)}, max {self.max_occupancy} "
            f"(over {self.total_cycles:,} cycles)"
        )

    def to_dict(self) -> dict:
        """JSON-ready summary (the per-structure half of the export
        schema documented at :func:`occupancy_export`)."""
        return {
            "mean": self.time_weighted_mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max_occupancy,
            "total_cycles": self.total_cycles,
            "cycles_at": {str(n): c for n, c in sorted(self.cycles_at.items())},
        }


def occupancy_histogram(
    events: Iterable[Event],
    enter: EventKind,
    exit: EventKind,
    *,
    queue: str | None = None,
) -> OccupancyHistogram:
    """Sweep paired enter/exit events into a time-weighted histogram.

    ``enter`` events add one resident entry at their cycle, ``exit``
    events remove one; ``queue`` filters both on a ``queue`` field (the
    FPU emits one event stream for its three queues).  Exits sort before
    enters at the same cycle, so back-to-back reuse of a slot does not
    overcount.
    """
    deltas: list[tuple[int, int]] = []
    for event in events:
        if queue is not None and event.fields.get("queue") != queue:
            continue
        if event.kind is enter:
            deltas.append((event.cycle, 1))
        elif event.kind is exit:
            deltas.append((event.cycle, -1))
    histogram = OccupancyHistogram()
    if not deltas:
        return histogram
    deltas.sort()  # (-1) sorts before (+1) at equal cycles
    occupancy = 0
    previous = deltas[0][0]
    cycles_at = histogram.cycles_at
    for cycle, delta in deltas:
        if cycle > previous:
            cycles_at[occupancy] = cycles_at.get(occupancy, 0) + (
                cycle - previous
            )
            previous = cycle
        occupancy += delta
    return histogram


def mshr_occupancy(events: Iterable[Event]) -> OccupancyHistogram:
    """MSHR-file occupancy over time (Figure 7's structure)."""
    return occupancy_histogram(
        events, EventKind.MSHR_ALLOC, EventKind.MSHR_RELEASE
    )


def fpu_queue_occupancy(
    events: Iterable[Event], queue: str
) -> OccupancyHistogram:
    """Occupancy of one FPU queue: "iq", "lq" or "sq" (Figure 9)."""
    if queue not in ("iq", "lq", "sq"):
        raise ValueError(f"queue must be 'iq', 'lq' or 'sq', got {queue!r}")
    return occupancy_histogram(
        events, EventKind.FPQ_ENQUEUE, EventKind.FPQ_DEQUEUE, queue=queue
    )


def writecache_occupancy(events: Iterable[Event]) -> OccupancyHistogram:
    """Valid-line count of the write cache over time (Table 5's structure).

    A store that allocates is an enter; an eviction (including the
    end-of-run flush) is an exit.  Eviction is stamped when the line may
    leave the chip, which can trail the allocation that displaced it, so
    transient counts one above capacity are an artifact of the overlap,
    not corruption.
    """
    enters = [
        e
        for e in events
        if e.kind is EventKind.WC_STORE and e.fields.get("allocated")
    ]
    exits = [e for e in events if e.kind is EventKind.WC_EVICT]
    return occupancy_histogram(
        enters + exits, EventKind.WC_STORE, EventKind.WC_EVICT
    )


#: Version stamp of the :func:`occupancy_export` JSON schema.  Bump it
#: when the structure set or per-structure fields change shape.
OCCUPANCY_EXPORT_VERSION = 1


def occupancy_summaries(
    events: Sequence[Event],
) -> "dict[str, OccupancyHistogram]":
    """Every instrumented structure's occupancy histogram, by stable name.

    The keys — ``mshr``, ``fpq_iq``, ``fpq_lq``, ``fpq_sq``,
    ``writecache`` — are the export schema's structure names; structures
    that emitted no events map to an empty histogram (``total_cycles``
    0) rather than being omitted, so consumers can rely on the key set.
    """
    return {
        "mshr": mshr_occupancy(events),
        "fpq_iq": fpu_queue_occupancy(events, "iq"),
        "fpq_lq": fpu_queue_occupancy(events, "lq"),
        "fpq_sq": fpu_queue_occupancy(events, "sq"),
        "writecache": writecache_occupancy(events),
    }


def occupancy_export(events: Sequence[Event]) -> dict:
    """Occupancy summaries as a stable JSON document.

    Schema (``version`` 1)::

        {"version": 1,
         "structures": {
            "mshr":       {"mean": 1.27, "p50": 1, "p90": 2, "p99": 3,
                           "max": 4, "total_cycles": 90210,
                           "cycles_at": {"0": 4000, "1": 61000, ...}},
            "fpq_iq":     {...}, "fpq_lq": {...}, "fpq_sq": {...},
            "writecache": {...}}}

    ``aurora-sim report --occupancy-out`` writes this file so the
    explorer's calibration inputs (docs/EXPLORATION.md) are inspectable
    offline; occupancy levels are raw entry counts — divide by the
    structure's capacity for utilization.
    """
    return {
        "version": OCCUPANCY_EXPORT_VERSION,
        "structures": {
            name: histogram.to_dict()
            for name, histogram in occupancy_summaries(events).items()
        },
    }


# ------------------------------------------------------------ interval CPI


@dataclass(frozen=True)
class IntervalStat:
    """One N-cycle window of the run."""

    start: int
    window: int
    instructions: int

    @property
    def cpi(self) -> float:
        if not self.instructions:
            return math.inf
        return self.window / self.instructions


def interval_cpi(
    events: Iterable[Event], window: int = 1000
) -> list[IntervalStat]:
    """CPI per ``window``-cycle interval, from RETIRE events.

    Covers every window from cycle 0 through the last retirement, so
    phase plateaus and memory-bound troughs are visible; windows with no
    retirements report ``inf`` CPI.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    counts: dict[int, int] = {}
    last = -1
    for event in events:
        if event.kind is not EventKind.RETIRE:
            continue
        start = (event.cycle // window) * window
        counts[start] = counts.get(start, 0) + 1
        if event.cycle > last:
            last = event.cycle
    if last < 0:
        return []
    return [
        IntervalStat(start, window, counts.get(start, 0))
        for start in range(0, last + 1, window)
    ]


# --------------------------------------------------------------- rendering


def render_summary(
    events: Sequence[Event],
    stats: SimStats | None = None,
    *,
    window: int = 1000,
    intervals: int = 8,
) -> str:
    """Human-readable timeline summary for ``aurora-sim trace``/``report``.

    Stall breakdown (cross-checked against ``stats`` when given),
    occupancy summaries for every structure that emitted events, and the
    first ``intervals`` CPI windows.
    """
    lines = [f"telemetry: {len(events):,} events"]
    breakdown = stall_breakdown(events)
    total = sum(breakdown.values())
    lines.append(f"stall cycles from events: {total:,}")
    for kind in StallKind:
        if breakdown[kind]:
            lines.append(f"  stall[{kind.value:<9}] {breakdown[kind]:>12,}")
    if stats is not None:
        mismatches = cross_check_stalls(events, stats)
        if mismatches:
            lines.append("stall cross-check: MISMATCH")
            lines.extend(f"  {m}" for m in mismatches)
        else:
            lines.append("stall cross-check: OK (events == SimStats counters)")
    occupancies = [("MSHR occupancy", mshr_occupancy(events))]
    for queue, label in (
        ("iq", "FPU instruction queue"),
        ("lq", "FPU load queue"),
        ("sq", "FPU store queue"),
    ):
        occupancies.append((label, fpu_queue_occupancy(events, queue)))
    occupancies.append(("write-cache lines", writecache_occupancy(events)))
    for label, histogram in occupancies:
        if histogram.total_cycles:
            lines.append(histogram.summary(label))
    phases = interval_cpi(events, window)
    if phases:
        lines.append(f"CPI per {window}-cycle window (first {intervals}):")
        for stat in phases[:intervals]:
            cpi = "inf" if not stat.instructions else f"{stat.cpi:.3f}"
            lines.append(
                f"  [{stat.start:>10,} +{window}) "
                f"{stat.instructions:>8,} instr  CPI {cpi}"
            )
    return "\n".join(lines)
