"""Simulation kernels: one trace pass, N machine configurations.

The paper's sweeps time the *same* dynamic trace on dozens of
:class:`~repro.core.config.MachineConfig` points (Figure 8 alone has
~30).  :mod:`repro.core.processor` walks the trace once per config; this
module puts that hot loop behind a narrow kernel boundary and adds a
config-batched implementation that advances a whole vector of machines
per trace record:

* :class:`ScalarKernel` — the oracle.  Wraps
  :meth:`AuroraProcessor.run <repro.core.processor.AuroraProcessor.run>`
  unchanged, one full trace walk per configuration.
* :class:`BatchedKernel` — one trace walk for all configurations.  The
  lockstep per-record "spine" (fetch floor, scoreboard, reorder-buffer
  and retire-window floors, issue-time maximum, stall attribution,
  pairing) is held as ``(n_configs,)`` / ``(66, n_configs)`` numpy
  arrays; the I-cache tag state and the MSHR files are vectorized across
  the config axis; the remaining per-config divergent events (D-side
  memory timing, FP dispatch) escape to exactly the scalar model's code
  against real per-config structure objects (write cache, stream-buffer
  pool, BIU, FPU, D-cache port), so
  :class:`~repro.core.stats.SimStats` are byte-identical per config by
  construction — the same discipline ``REPRO_TRACE_PATH`` holds for
  trace representations.

Kernel selection: ``REPRO_SIM_KERNEL`` (``scalar`` | ``batched``,
validated eagerly by :func:`repro.robustness.validation
.validate_environment`) or the ``--kernel`` flag on ``aurora-sim
experiments`` / ``run_all`` / ``perf``.  :func:`simulate_many` is the
grouped entry point the sweep layer calls: it validates the trace once
(not once per config), records a ``simulate_batch`` span, and dispatches
to the selected kernel.

The batched kernel does **not** emit per-structure telemetry events (the
event streams would interleave across configs); passing an active
:class:`~repro.telemetry.events.EventBus` raises a :class:`KernelError`
naming the ``telemetry`` field instead of silently dropping events.
State layout and when batching wins are documented in
docs/PERFORMANCE.md.
"""

from __future__ import annotations

import os
from typing import Mapping, Sequence

import numpy as np

from repro.core.biu import BusInterfaceUnit
from repro.core.caches import DirectMappedCache, PipelinedCachePort
from repro.core.config import MachineConfig
from repro.core.fpu import DecoupledFPU
from repro.core.prefetch import SplitStreamBufferPool, StreamBufferPool
from repro.core.processor import (
    FPU_TRANSFER,
    INFLIGHT_BOUND,
    WC_FORWARD_LATENCY,
    AuroraProcessor,
    SimulationResult,
    _FP_ARITH_KINDS,
    _K_ALU,
    _K_BRANCH,
    _K_FP_LOAD,
    _K_FP_MOVE,
    _K_FP_STORE,
    _K_HALT,
    _K_JUMP,
    _K_LOAD,
    _K_NOP,
    _K_STORE,
    _record_rows,
)
from repro.core.stats import SimStats, StallKind
from repro.core.writecache import WriteCache
from repro.func.prepared import PreparedTrace

#: Environment switch naming the kernel the sweep layer should use.
ENV_KERNEL = "REPRO_SIM_KERNEL"
#: Valid kernel names, in (default, alternative) order.
KERNEL_NAMES = ("scalar", "batched")

#: Stall kinds in enum order: row index into the batched stall matrix.
_STALL_KINDS = tuple(StallKind)
_C_ICACHE = 0
_C_LOAD = 1
_C_ROB_FULL = 2
_C_LSU = 3
_C_PAIRING = 4
_C_FPU = 5

#: Padding for unused vector-MSHR slots: effectively +infinity, far above
#: any reachable cycle count yet safely below int64 overflow under max().
_MSHR_PAD = 1 << 60

#: Process-wide batched-kernel accounting (mirrors prepare_snapshot()):
#: the experiment runner ships the deltas home through the pool envelope
#: and publishes them as ``runner.batched_configs``.
_BATCH_CALLS = 0
_BATCH_CONFIGS = 0


def batch_snapshot() -> tuple[int, int]:
    """(batched kernel calls, configs simulated through them) so far."""
    return (_BATCH_CALLS, _BATCH_CONFIGS)


class KernelError(ValueError):
    """A kernel selection or kernel argument is unusable; names the field."""


def kernel_mode(environ: Mapping[str, str] | None = None) -> str:
    """The kernel named by ``REPRO_SIM_KERNEL`` (default ``scalar``).

    Raises :class:`KernelError` naming the variable for any other value,
    the same eager-validation contract as ``REPRO_TRACE_PATH``.
    """
    env = os.environ if environ is None else environ
    value = env.get(ENV_KERNEL, "")
    if not value:
        return KERNEL_NAMES[0]
    lowered = value.lower()
    if lowered not in KERNEL_NAMES:
        raise KernelError(
            f"{ENV_KERNEL}={value!r}: expected "
            + " or ".join(repr(name) for name in KERNEL_NAMES)
        )
    return lowered


class ScalarKernel:
    """The oracle kernel: one :class:`AuroraProcessor` run per config."""

    name = "scalar"

    def simulate(
        self, trace, config: MachineConfig, *, policy=None, telemetry=None
    ) -> SimulationResult:
        return AuroraProcessor(config, policy, telemetry=telemetry).run(trace)

    def simulate_many(
        self,
        trace,
        configs: Sequence[MachineConfig],
        *,
        policy=None,
        telemetry=None,
    ) -> list[SimulationResult]:
        return [
            AuroraProcessor(config, policy, telemetry=telemetry).run(trace)
            for config in configs
        ]


class BatchedKernel:
    """Advance a whole vector of configs per trace record (module docs)."""

    name = "batched"

    def simulate(
        self, trace, config: MachineConfig, *, policy=None, telemetry=None
    ) -> SimulationResult:
        return self.simulate_many(
            trace, [config], policy=policy, telemetry=telemetry
        )[0]

    def simulate_many(
        self,
        trace,
        configs: Sequence[MachineConfig],
        *,
        policy=None,
        telemetry=None,
    ) -> list[SimulationResult]:
        global _BATCH_CALLS, _BATCH_CONFIGS
        # A sink-less EventBus is falsy and means "telemetry off" (the
        # scalar loop normalises it to None the same way).
        if telemetry:
            raise KernelError(
                "telemetry: the batched kernel does not emit per-structure "
                "events (streams would interleave across configs); run with "
                "kernel='scalar' (REPRO_SIM_KERNEL=scalar / --kernel scalar) "
                "to capture telemetry"
            )
        configs = list(configs)
        for config in configs:
            config.validate()
        _BATCH_CALLS += 1
        _BATCH_CONFIGS += len(configs)
        if not configs:
            return []
        # Partition by line size: the spine shares per-record cache-line
        # indices, which assume one line_bytes across the batch.  Every
        # paper model uses 32-byte lines, so this is almost always one
        # partition.
        groups: dict[int, list[int]] = {}
        for position, config in enumerate(configs):
            groups.setdefault(config.line_bytes, []).append(position)
        results: list[SimulationResult | None] = [None] * len(configs)
        for positions in groups.values():
            batch_results = _simulate_batch(
                trace, [configs[i] for i in positions], policy
            )
            for position, result in zip(positions, batch_results):
                results[position] = result
        return results  # type: ignore[return-value]


_SCALAR_KERNEL = ScalarKernel()
_BATCHED_KERNEL = BatchedKernel()
_KERNELS = {"scalar": _SCALAR_KERNEL, "batched": _BATCHED_KERNEL}


def get_kernel(name: str | None = None):
    """Resolve a kernel by name (``None`` → ``REPRO_SIM_KERNEL``)."""
    if name is None:
        name = kernel_mode()
    kernel = _KERNELS.get(str(name).lower())
    if kernel is None:
        raise KernelError(
            f"kernel: unknown kernel {name!r}; expected "
            + " or ".join(repr(known) for known in KERNEL_NAMES)
        )
    return kernel


def simulate_many(
    trace,
    configs: Sequence[MachineConfig],
    *,
    kernel: "str | ScalarKernel | BatchedKernel | None" = None,
    policy=None,
    telemetry=None,
) -> list[SimulationResult]:
    """Time one trace on many configs; results align with ``configs``.

    The grouped twin of :func:`repro.core.processor.simulate_trace`:
    validates the trace **once** (not once per configuration — the
    prepared-trace memo makes re-validation free, and plain record lists
    skip n-1 redundant sampled passes), records a ``simulate_batch``
    span, and dispatches to ``kernel`` (a kernel object, a name, or
    ``None`` for the ``REPRO_SIM_KERNEL`` selection).  Every kernel
    yields byte-identical per-config :class:`~repro.core.stats.SimStats`
    — the scalar kernel is the oracle the batched one is tested against.
    """
    from repro.robustness.validation import validate_trace
    from repro.telemetry import tracing

    if isinstance(kernel, (str, type(None))):
        kernel = get_kernel(kernel)
    validate_trace(trace)
    configs = list(configs)
    tracer = tracing.current_tracer()
    if tracer is None:
        return kernel.simulate_many(
            trace, configs, policy=policy, telemetry=telemetry
        )
    with tracer.span(
        "simulate_batch",
        "simulate",
        records=len(trace),
        configs=len(configs),
        kernel=kernel.name,
    ):
        return kernel.simulate_many(
            trace, configs, policy=policy, telemetry=telemetry
        )


# --------------------------------------------------------------------------
# The batched timing loop.
# --------------------------------------------------------------------------


def _guard_error(
    reason: str,
    message: str,
    *,
    cycle: int,
    index: int,
    config: MachineConfig,
    stall: np.ndarray,
    position: int,
):
    from repro.robustness.guards import SimulationError

    snapshot = {
        kind: int(stall[row, position])
        for row, kind in enumerate(_STALL_KINDS)
    }
    return SimulationError(
        reason,
        message,
        cycle=cycle,
        instruction_index=index,
        config=config,
        stall_snapshot=snapshot,
    )


def _simulate_batch(trace, configs, policy) -> list[SimulationResult]:
    """Batched timing loop for configs sharing one ``line_bytes``.

    Correctness discipline: every per-record quantity here is either the
    vectorization of the scalar loop's arithmetic (same expressions over
    ``(n,)`` arrays) or the scalar loop's own code run per config against
    that config's real structure objects.  Comments call out the few
    places where the equivalence is non-obvious.
    """
    from repro.robustness.guards import GuardViolation, RobustnessPolicy

    if policy is None:
        policy = RobustnessPolicy()

    n = len(configs)
    line_shift = configs[0].line_bytes.bit_length() - 1

    # ------------------------------------------- per-config structures
    # Real scalar-model objects for the divergent escape paths.
    bius = [
        BusInterfaceUnit(latency=c.mem_latency, occupancy=c.bus_occupancy)
        for c in configs
    ]
    dcaches = [
        DirectMappedCache(c.dcache_bytes, c.line_bytes) for c in configs
    ]
    dports = [
        PipelinedCachePort(access_latency=c.dcache_latency) for c in configs
    ]
    pools = [
        (SplitStreamBufferPool if c.split_prefetch_pool else StreamBufferPool)(
            c.prefetch_buffers, c.prefetch_line_depth, biu,
            enabled=c.prefetch_enabled,
        )
        for c, biu in zip(configs, bius)
    ]
    wcs = [
        WriteCache(
            c.writecache_lines, c.line_bytes, biu,
            page_bytes=c.page_bytes, write_validation=c.write_validation,
        )
        for c, biu in zip(configs, bius)
    ]
    fpus = [DecoupledFPU(c.fpu) for c in configs]
    inflights: list[dict[int, int]] = [{} for _ in configs]
    dlats = [c.dcache_latency for c in configs]
    precise = [c.fpu_precise_exceptions for c in configs]

    # ---------------------------------------------------- vector constants
    issue_width = np.array([c.issue_width for c in configs], dtype=np.int64)
    retire_width = np.array([c.retire_width for c in configs], dtype=np.int64)
    rob_capacity = np.array([c.rob_entries for c in configs], dtype=np.int64)
    dlat_vec = np.array(dlats, dtype=np.int64)
    dlat1_vec = dlat_vec + 1
    dual_mask = issue_width == 2
    folding = np.array([c.branch_folding for c in configs], dtype=bool)
    nonfolding = ~folding
    any_nonfolding = bool(nonfolding.any())
    col = np.arange(n, dtype=np.int64)

    # Vectorized MSHR files: busy-until timestamps as one (n, E) matrix,
    # unused slots padded to +inf so argmin never selects them.  The
    # scalar MSHRFile's allocations/stall_cycles counters never reach
    # SimStats, so only the timing state is kept.
    mshr_entries = [c.mshr_entries for c in configs]
    mshr_width = max(mshr_entries)
    mshr_free = np.zeros((n, mshr_width), dtype=np.int64)
    for i, entries in enumerate(mshr_entries):
        mshr_free[i, entries:] = _MSHR_PAD
    mshr_min = mshr_free.min(axis=1)

    # Shared retire ring: slot (j & mask) holds record j's retire time.
    # Reading at (index - rob_capacity) gives the reorder-buffer head
    # floor, at (index - retire_width) the retire-window floor; unwritten
    # slots are 0, matching the scalar model's zero-seeded deques.  The
    # ring is strictly larger than every capacity, so a slot is never
    # overwritten before its last read.  Index tables are precomputed per
    # (record index mod ring size) as flat offsets for np.take.
    ring_size = 1 << int(
        max(int(rob_capacity.max()), int(retire_width.max()))
    ).bit_length()
    ring_mask = ring_size - 1
    ring = np.zeros((ring_size, n), dtype=np.int64)
    ring_flat = ring.reshape(-1)
    mem_ring = np.zeros((ring_size, n), dtype=bool)
    mem_flat = mem_ring.reshape(-1)
    slots = np.arange(ring_size, dtype=np.int64)[:, None]
    rob_idx = ((slots - rob_capacity[None, :]) & ring_mask) * n + col
    win_idx = ((slots - retire_width[None, :]) & ring_mask) * n + col
    # One gather per record: reorder-buffer head and retire-window floors
    # read side by side through a fused (ring_size, 2n) index table.
    both_idx = np.concatenate([rob_idx, win_idx], axis=1)

    # Vectorized I-cache: per-config direct-mapped tag/ready arrays laid
    # out back to back in two flat arrays (tags hold full line numbers,
    # -1 = invalid — exactly DirectMappedCache's layout).
    icache_lines = [c.icache_lines for c in configs]
    ioffsets = np.cumsum([0] + icache_lines[:-1], dtype=np.int64)
    imask = np.array(icache_lines, dtype=np.int64) - 1
    itags = np.full(sum(icache_lines), -1, dtype=np.int64)
    iready = np.zeros(sum(icache_lines), dtype=np.int64)
    imisses = [0] * n

    # ------------------------------------------------------- vector state
    reg_ready = np.zeros((66, n), dtype=np.int64)
    reg_from_load = np.zeros((66, n), dtype=bool)
    last_retire = np.zeros(n, dtype=np.int64)
    last_issue = np.full(n, -1, dtype=np.int64)
    slots_used = issue_width.copy()  # force the first instruction to cycle 0
    stall = np.zeros((len(_STALL_KINDS), n), dtype=np.int64)
    dual_pairs = np.zeros(n, dtype=np.int64)

    # Maintained hazard floors.  The LSU floor only moves when a memory
    # escape touches the MSHRs/port, the FPU floors only when an FP
    # escape touches the FPU — so they are rebuilt once per escape
    # instead of re-derived per record (values match the scalar loop's
    # fresh reads by induction).
    next_slot = np.zeros(n, dtype=np.int64)
    t_lsu = np.maximum(mshr_min, next_slot) - 1
    t_fpu_disp = (
        np.fromiter((f.dispatch_floor() for f in fpus), np.int64, n)
        - FPU_TRANSFER
    )
    t_fpu_cond = np.fromiter((f.cond_ready for f in fpus), np.int64, n) + 1

    # Reusable per-record buffers (the spine allocates nothing per ALU
    # record); issue/retire rotate through spares so "last_*" stays live.
    floor = np.empty(n, dtype=np.int64)
    ge_buf = np.empty(n, dtype=bool)
    amount = np.empty(n, dtype=np.int64)
    operand_buf = np.empty(n, dtype=np.int64)
    both_buf = np.empty(2 * n, dtype=np.int64)
    trob = both_buf[:n]
    twin = both_buf[n:]
    complete_buf = np.empty(n, dtype=np.int64)
    tmp = np.empty(n, dtype=np.int64)
    gap = np.empty(n, dtype=np.int64)
    worst_gap_vec = np.zeros(n, dtype=np.int64)
    same = np.empty(n, dtype=bool)
    cause = np.empty(n, dtype=np.int64)
    spare_issue = np.empty(n, dtype=np.int64)
    spare_retire = np.empty(n, dtype=np.int64)
    false_row = np.zeros(n, dtype=bool)
    ones_row = np.ones(n, dtype=np.int64)

    prev_pc = -8
    prev_was_mem = False
    redirects: dict[int, np.ndarray] = {}

    # Shared instruction-class counters: trace-determined, identical for
    # every config in the batch.
    loads = stores = branches = taken_branches = fp_instructions = 0

    # Watchdog state (vectorized): per-record forward-progress/overflow
    # checks plus the periodic structure-occupancy sweep, at the same
    # cadence and bounds as repro.robustness.guards.Watchdog.
    guards_on = policy.enabled
    max_stall_cycles = policy.max_stall_cycles
    cycle_limit = policy.cycle_limit
    countdown = policy.check_period
    cnz = np.count_nonzero  # far cheaper than ndarray.any() on small rows
    mem_dirty = bytearray(ring_size)  # ring slots holding a True mem flag

    # Vectorized PipelinedCachePort.start_access: ``next_slot`` already
    # mirrors every port's ``_next_slot``; ``port_maxend`` mirrors the
    # newest fill-window end (refreshed after each occupy_for_fill).
    # When every config's start lands at or past its newest window end,
    # no window walk can move it (see _skip_fill_windows) — the whole
    # record reduces to three array ops plus a sync of the real ports.
    req_buf = np.empty(n, dtype=np.int64)
    starts_buf = np.empty(n, dtype=np.int64)
    port_maxend = np.fromiter((p._max_end for p in dports), np.int64, n)

    def port_start_access():
        np.add(issue, 1, out=req_buf)
        np.maximum(req_buf, next_slot, out=starts_buf)
        np.less(starts_buf, port_maxend, out=ge_buf)
        if cnz(ge_buf):
            # Some config may land inside a pending fill window: defer
            # to the real ports (they keep themselves in sync).
            starts_buf[:] = [
                dport.start_access(issue_i + 1)
                for dport, issue_i in zip(dports, issue_list)
            ]
        else:
            for dport, start in zip(dports, starts_buf.tolist()):
                dport._next_slot = start + 1
        np.add(starts_buf, 1, out=next_slot)
        return starts_buf

    def check_guards(index: int) -> None:
        # Deferred watchdog verdicts: the per-record loop only folds the
        # retire gap into ``worst_gap_vec``; the expensive reductions and
        # error construction run once per check period (and once after
        # the loop), so a wedge is still always caught — at period
        # granularity rather than on the offending record.
        worst_gap = int(worst_gap_vec.max())
        if worst_gap > max_stall_cycles:
            position = int(np.argmax(worst_gap_vec))
            raise _guard_error(
                "forward-progress",
                f"no instruction retired for {worst_gap} cycles "
                f"(bound {max_stall_cycles}); pipeline wedged",
                cycle=int(last_retire[position]),
                index=index,
                config=configs[position],
                stall=stall,
                position=position,
            )
        hi = int(last_retire.max())
        if hi > cycle_limit:
            position = int(np.argmax(last_retire))
            raise _guard_error(
                "cycle-overflow",
                f"cycle count {hi} exceeds limit {cycle_limit}",
                cycle=int(last_retire[position]),
                index=index,
                config=configs[position],
                stall=stall,
                position=position,
            )

    imemo_line = -1
    imemo_fetch: np.ndarray | None = None

    if isinstance(trace, PreparedTrace):
        rows = trace.rows(line_shift)
    else:
        rows = _record_rows(trace, line_shift)

    for index, (
        pc, kind, dst, s1, s2, addr, is_mem, is_fp_dispatch,
        iline, dline,
    ) in enumerate(rows):

        # ---------------------------------------------------- fetch side
        # Consecutive records on one I-line are memoised: a hit leaves the
        # cache untouched, and fills only ever happen while computing the
        # *current* line, so the memo is valid until the line changes.
        if iline == imemo_line:
            t_fetch = imemo_fetch
        else:
            iindex = ioffsets + (iline & imask)
            t_fetch = iready.take(iindex)
            hit = itags.take(iindex) == iline
            if cnz(hit) != n:
                request_vec = np.maximum(last_issue, 0)
                for i in np.flatnonzero(~hit):
                    request_time = int(request_vec[i])
                    pool = pools[i]
                    arrival = pool.lookup(iline, request_time, "I")
                    if arrival is None:
                        pool.allocate(iline, request_time, stream="I")
                        arrival = bius[i].request(request_time, "ifetch")
                    elif arrival < request_time:
                        arrival = request_time
                    fetch_at = arrival + 1
                    slot = iindex[i]
                    itags[slot] = iline
                    iready[slot] = fetch_at
                    t_fetch[i] = fetch_at
                    imisses[i] += 1
            imemo_line = iline
            imemo_fetch = t_fetch
        if redirects:
            redirect_floor = redirects.pop(index, None)
            if redirect_floor is not None:
                # New array: the memoised t_fetch must stay unmerged.
                t_fetch = np.maximum(t_fetch, redirect_floor)

        # ------------------------------------------------ in-order floor
        np.greater_equal(slots_used, issue_width, out=ge_buf)
        np.add(last_issue, ge_buf, out=floor)

        # ------------------------------------------- issue = max(floors)
        issue = spare_issue
        np.maximum(floor, t_fetch, out=issue)
        s1_ready = s2_ready = t_operand = None
        if s1 >= 0:
            s1_ready = reg_ready[s1]
            if s2 >= 0:
                s2_ready = reg_ready[s2]
                np.maximum(s1_ready, s2_ready, out=operand_buf)
                t_operand = operand_buf
            else:
                t_operand = s1_ready
        elif s2 >= 0:
            s2_ready = reg_ready[s2]
            t_operand = s2_ready
        if t_operand is not None:
            np.maximum(issue, t_operand, out=issue)
        imod = index & ring_mask
        rob_row = rob_idx[imod]
        # The ring is only written at end of record, so the retire-window
        # floor can be gathered here alongside the reorder-buffer head.
        ring_flat.take(both_idx[imod], out=both_buf)
        np.maximum(issue, trob, out=issue)
        if is_mem:
            np.maximum(issue, t_lsu, out=issue)
        if is_fp_dispatch:
            np.maximum(issue, t_fpu_disp, out=issue)
        elif kind == _K_BRANCH and s1 < 0 and s2 < 0:
            # bc1t/bc1f: wait for the FP condition flag from the FPU.
            np.maximum(issue, t_fpu_cond, out=issue)

        # --------------------------------------------- stall attribution
        np.subtract(issue, floor, out=amount)
        if cnz(amount):
            # Reverse-priority masked writes reproduce the scalar elif
            # chain: fetch > operand > reorder-buffer > LSU > FPU.
            cause.fill(_C_FPU)
            if is_mem:
                cause[issue == t_lsu] = _C_LSU
            rob_bound = issue == trob
            if cnz(rob_bound):
                head_is_mem = mem_flat.take(rob_row)
                cause[rob_bound & head_is_mem] = _C_LSU
                cause[rob_bound & ~head_is_mem] = _C_ROB_FULL
            if t_operand is not None:
                operand_bound = issue == t_operand
                if cnz(operand_bound):
                    if s1_ready is None:
                        operand_from_load = reg_from_load[s2]
                    elif s2_ready is None:
                        operand_from_load = reg_from_load[s1]
                    else:
                        operand_from_load = np.where(
                            s2_ready > s1_ready,
                            reg_from_load[s2],
                            reg_from_load[s1],
                        )
                    cause[operand_bound & operand_from_load] = _C_LOAD
                    cause[operand_bound & ~operand_from_load] = _C_PAIRING
            cause[issue == t_fetch] = _C_ICACHE
            delayed = amount > 0
            stall[cause[delayed], col[delayed]] += amount[delayed]

        # ------------------------------------------------------ pairing
        np.equal(issue, last_issue, out=same)
        if cnz(same):
            if (
                pc == prev_pc + 4
                and (prev_pc & 7) == 0
                and not (is_mem and prev_was_mem)
            ):
                pairable = same & dual_mask & (slots_used == 1)
            else:
                pairable = false_row
            bump = same & ~pairable
            if cnz(bump):
                issue += bump
                stall[_C_PAIRING] += bump
            dual_pairs += pairable
            slots_used = np.where(pairable, slots_used + 1, 1)
        else:
            slots_used = ones_row
        spare_issue = last_issue
        last_issue = issue
        prev_pc = pc
        prev_was_mem = is_mem

        # ------------------------------------------------------ execute
        if kind == _K_ALU or kind == _K_NOP or kind == _K_HALT:
            np.add(issue, 1, out=complete_buf)
            complete = complete_buf
            if dst >= 0:
                reg_ready[dst] = complete
                reg_from_load[dst] = False

        elif kind == _K_BRANCH or kind == _K_JUMP:
            branches += 1
            np.add(issue, 1, out=complete_buf)
            complete = complete_buf
            if dst >= 0:  # jal/jalr write the link register
                reg_ready[dst] = complete
                reg_from_load[dst] = False
            if addr != 0:
                taken_branches += 1
                register_jump = kind == _K_JUMP and s1 >= 0
                if register_jump or any_nonfolding:
                    if register_jump:
                        floors = issue + 3
                    else:
                        floors = np.where(nonfolding, issue + 3, 0)
                    target = index + 2
                    pending = redirects.get(target)
                    if pending is None:
                        redirects[target] = floors
                    else:
                        redirects[target] = np.maximum(pending, floors)

        elif is_mem or is_fp_dispatch:
            # Divergent per-config events: run the scalar model's exact
            # code against each config's own structures.  Memory kinds
            # stage their MSHR traffic through the vectorized file:
            # cache-port accesses first (per config), then one vector
            # allocate, then the per-config D-side walk, then one vector
            # release — per-machine operation order is preserved because
            # the interleaved structures are independent.
            issue_list = issue.tolist()
            if kind == _K_LOAD or kind == _K_FP_LOAD:
                loads += 1
                starts = port_start_access()
                # Vector MSHR allocate: free_at[argmin] is the row min.
                slot = mshr_free.argmin(axis=1)
                grant = np.maximum(starts, mshr_min)
                access_list = grant.tolist()
                ready_list = []
                for i in range(n):
                    access = access_list[i]
                    dcache = dcaches[i]
                    if wcs[i].load_lookup(addr, access):
                        data_ready = access + WC_FORWARD_LATENCY
                    elif dcache.lookup(addr):
                        ready_at = dcache.ready_time(addr)
                        data_ready = max(access, ready_at) + dlats[i]
                    else:
                        inflight = inflights[i]
                        arrival = inflight.get(dline)
                        if arrival is None:
                            pool = pools[i]
                            parr = pool.lookup(dline, access, "D")
                            if parr is None:
                                pool.allocate(dline, access, stream="D")
                                arrival = bius[i].request(access, "dread")
                            else:
                                arrival = parr if parr > access else access
                            fill_done = dports[i].occupy_for_fill(arrival)
                            port_maxend[i] = dports[i]._max_end
                            dcache.fill(addr, fill_done)
                            inflight[dline] = arrival
                            if len(inflight) > INFLIGHT_BOUND:
                                inflights[i] = {
                                    fill_line: fill_at
                                    for fill_line, fill_at in inflight.items()
                                    if fill_at > access
                                }
                        data_ready = arrival + 1
                    ready_list.append(data_ready)
                if kind == _K_LOAD:
                    complete = np.array(ready_list, dtype=np.int64)
                    mshr_free[col, slot] = np.maximum(grant, complete)
                    if dst >= 0:
                        reg_ready[dst] = complete
                        reg_from_load[dst] = True
                else:
                    fp_instructions += 1
                    release_list = []
                    for i in range(n):
                        fpu = fpus[i]
                        eff = max(ready_list[i], fpu.load_data_floor())
                        fpu.load(
                            dst - 32, eff + 1, issue_list[i] + FPU_TRANSFER
                        )
                        release_list.append(eff + 1)
                    release = np.array(release_list, dtype=np.int64)
                    mshr_free[col, slot] = np.maximum(grant, release)
                    complete = grant + 1
                mshr_min = mshr_free.min(axis=1)
                t_lsu = np.maximum(mshr_min, next_slot) - 1

            elif kind == _K_STORE or kind == _K_FP_STORE:
                stores += 1
                starts = port_start_access()
                slot = mshr_free.argmin(axis=1)
                grant = np.maximum(starts, mshr_min)
                # set_release only ever raises; grant + latency >= grant.
                mshr_free[col, slot] = grant + dlat_vec
                access_list = grant.tolist()
                complete_list = []
                for i in range(n):
                    access = access_list[i]
                    dcache = dcaches[i]
                    if not dcache.lookup(addr):
                        dcache.fill(addr, access + dlats[i])
                    pools[i].drop_line(dline)
                    if kind == _K_FP_STORE:
                        data_out = fpus[i].store(
                            s2 - 32, issue_list[i] + FPU_TRANSFER
                        )
                        complete_list.append(
                            wcs[i].store(addr, access, fp_data_at=data_out)
                        )
                    else:
                        complete_list.append(wcs[i].store(addr, access))
                if kind == _K_FP_STORE:
                    fp_instructions += 1
                complete = np.array(complete_list, dtype=np.int64)
                mshr_min = mshr_free.min(axis=1)
                t_lsu = np.maximum(mshr_min, next_slot) - 1

            elif kind in _FP_ARITH_KINDS:
                fp_instructions += 1
                fd = dst - 32 if dst >= 32 else -1
                fs = s1 - 32 if s1 >= 32 else -1
                ft = s2 - 32 if s2 >= 32 else -1
                complete_list = []
                for i in range(n):
                    issue_i = issue_list[i]
                    fp_done = fpus[i].arith(
                        kind, fd, fs, ft, issue_i + FPU_TRANSFER
                    )
                    complete_list.append(
                        fp_done if precise[i] else issue_i + 1
                    )
                complete = np.array(complete_list, dtype=np.int64)

            else:  # _K_FP_MOVE (no MSHR: port access only)
                fp_instructions += 1
                starts_arr = port_start_access()
                if dst >= 32:  # mtc1
                    starts = starts_arr.tolist()
                    for i in range(n):
                        fpus[i].mtc1(
                            dst - 32, starts[i] + 1,
                            issue_list[i] + FPU_TRANSFER,
                        )
                    complete = starts_arr + 1
                else:  # mfc1
                    value_list = [
                        max(fpu.reg_read_floor(s1 - 32), issue_i) + 2
                        for fpu, issue_i in zip(fpus, issue_list)
                    ]
                    complete = np.array(value_list, dtype=np.int64)
                    if dst >= 0:
                        reg_ready[dst] = complete
                        reg_from_load[dst] = True
                t_lsu = np.maximum(mshr_min, next_slot) - 1

            if is_fp_dispatch:
                t_fpu_disp = (
                    np.fromiter(
                        (f.dispatch_floor() for f in fpus), np.int64, n
                    )
                    - FPU_TRANSFER
                )
                t_fpu_cond = (
                    np.fromiter((f.cond_ready for f in fpus), np.int64, n)
                    + 1
                )

        else:  # pragma: no cover - exhaustive over Kind
            np.add(issue, 1, out=complete_buf)
            complete = complete_buf

        # ------------------------------------------------------- retire
        retire = spare_retire
        np.maximum(complete, last_retire, out=retire)
        twin += 1  # gathered with the reorder-buffer head above
        np.maximum(retire, twin, out=retire)
        if guards_on:
            np.subtract(retire, last_retire, out=gap)
            np.maximum(worst_gap_vec, gap, out=worst_gap_vec)
        spare_retire = last_retire
        last_retire = retire
        ring[imod] = retire
        if is_mem:
            # Only a *missing* memory instruction at the reorder-buffer
            # head counts as an LSU wait (see the scalar loop).
            np.add(issue, dlat1_vec, out=tmp)
            np.greater(complete, tmp, out=mem_ring[imod])
            mem_dirty[imod] = 1
        elif mem_dirty[imod]:
            mem_ring[imod] = False
            mem_dirty[imod] = 0

        if guards_on:
            countdown -= 1
            if countdown <= 0:
                countdown = policy.check_period
                check_guards(index)
                for i in range(n):
                    # Vector-MSHR invariants (scalar assert_capacity's
                    # checks over this layout), then the real structures,
                    # in the scalar watchdog's watch order.
                    entries = mshr_entries[i]
                    row = mshr_free[i, :entries]
                    if int(row.min()) < 0:
                        bad = int(row.argmin())
                        raise _guard_error(
                            "occupancy",
                            f"MSHR entry {bad} has corrupt busy-until "
                            f"timestamp {int(row[bad])!r}",
                            cycle=int(retire[i]),
                            index=index,
                            config=configs[i],
                            stall=stall,
                            position=i,
                        )
                    for structure in (wcs[i], fpus[i]):
                        try:
                            structure.assert_capacity()
                        except GuardViolation as violation:
                            raise _guard_error(
                                "occupancy",
                                str(violation),
                                cycle=int(retire[i]),
                                index=index,
                                config=configs[i],
                                stall=stall,
                                position=i,
                            ) from violation

    # Final deferred watchdog verdict: a wedge or overflow in the tail
    # (after the last periodic check) must still raise, not drain.
    if guards_on and len(trace):
        check_guards(len(trace) - 1)

    # ------------------------------------------------------------ drain
    record_count = len(trace)
    results = []
    for i in range(n):
        end = int(last_retire[i])
        mshr_all_free = int(mshr_free[i, : mshr_entries[i]].max())
        end = max(end, fpus[i].last_event, mshr_all_free)
        end = max(end, wcs[i].flush(end))

        stats = SimStats()
        stats.instructions = record_count
        stats.cycles = end
        for row, kind_enum in enumerate(_STALL_KINDS):
            stats.stall_cycles[kind_enum] = int(stall[row, i])
        stats.icache_accesses = record_count
        stats.icache_hits = record_count - imisses[i]
        stats.dcache_accesses = dcaches[i].accesses
        stats.dcache_hits = dcaches[i].hits
        pool_stats = pools[i].stats
        stats.iprefetch_lookups = pool_stats.i_lookups
        stats.iprefetch_hits = pool_stats.i_hits
        stats.dprefetch_lookups = pool_stats.d_lookups
        stats.dprefetch_hits = pool_stats.d_hits
        wc_stats = wcs[i].stats
        stats.writecache_accesses = wc_stats.accesses
        stats.writecache_hits = wc_stats.hits
        stats.store_instructions = wc_stats.store_instructions
        stats.store_transactions = wc_stats.store_transactions
        stats.loads = loads
        stats.stores = stores
        stats.branches = branches
        stats.taken_branches = taken_branches
        stats.fp_instructions = fp_instructions
        stats.dual_issued_pairs = int(dual_pairs[i])
        stats.fpu_instructions = fpus[i].instructions
        stats.fpu_busy_cycles = fpus[i].issue_stall_cycles
        results.append(SimulationResult(config=configs[i], stats=stats))
    return results
