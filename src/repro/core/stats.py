"""Simulation statistics: CPI, stall breakdown, structure hit rates.

The paper's Figure 6 decomposes stall cycles into four IPU stall
conditions: instruction-cache stalls, load stalls (result of a load
referenced before the LSU returned it), reorder-buffer-full stalls, and
LSU stalls (LSU full / busy filling the cache).  :class:`StallKind` adds
two bookkeeping categories the integer breakdown of the paper does not
plot: PAIRING (cycles lost to dual-issue pairing restrictions — part of
base CPI in the paper's accounting) and FPU (decoupling-queue
backpressure and waits on FPU results, which only occur in FP codes).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from enum import Enum


class InvariantError(AssertionError):
    """A :class:`SimStats` sanity relation does not hold.

    Subclasses :class:`AssertionError` for backward compatibility with
    callers that caught the old bare ``assert`` failures, but is raised
    explicitly so ``python -O`` cannot strip the checks.
    """


class StallKind(Enum):
    ICACHE = "icache"
    LOAD = "load"
    ROB_FULL = "rob_full"
    LSU = "lsu"
    PAIRING = "pairing"
    FPU = "fpu"

    @classmethod
    def paper_categories(cls) -> tuple["StallKind", ...]:
        """The four categories of Figure 6, in the paper's order."""
        return (cls.ICACHE, cls.LOAD, cls.ROB_FULL, cls.LSU)


@dataclass
class SimStats:
    """Everything one timing-simulation run measures."""

    instructions: int = 0
    cycles: int = 0
    stall_cycles: dict[StallKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in StallKind}
    )
    # primary caches (per-reference counting, Gee et al. methodology)
    icache_accesses: int = 0
    icache_hits: int = 0
    dcache_accesses: int = 0
    dcache_hits: int = 0
    # prefetch (Tables 3/4): hits among primary misses
    iprefetch_lookups: int = 0
    iprefetch_hits: int = 0
    dprefetch_lookups: int = 0
    dprefetch_hits: int = 0
    # write cache (Table 5)
    writecache_accesses: int = 0
    writecache_hits: int = 0
    store_instructions: int = 0
    store_transactions: int = 0
    # instruction classes
    loads: int = 0
    stores: int = 0
    branches: int = 0
    taken_branches: int = 0
    fp_instructions: int = 0
    dual_issued_pairs: int = 0
    # FPU-side
    fpu_instructions: int = 0
    fpu_busy_cycles: int = 0

    # ------------------------------------------------------------ derived

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def icache_hit_rate(self) -> float:
        return self.icache_hits / self.icache_accesses if self.icache_accesses else 0.0

    @property
    def dcache_hit_rate(self) -> float:
        return self.dcache_hits / self.dcache_accesses if self.dcache_accesses else 0.0

    @property
    def iprefetch_hit_rate(self) -> float:
        if not self.iprefetch_lookups:
            return 0.0
        return self.iprefetch_hits / self.iprefetch_lookups

    @property
    def dprefetch_hit_rate(self) -> float:
        if not self.dprefetch_lookups:
            return 0.0
        return self.dprefetch_hits / self.dprefetch_lookups

    @property
    def writecache_hit_rate(self) -> float:
        if not self.writecache_accesses:
            return 0.0
        return self.writecache_hits / self.writecache_accesses

    @property
    def store_traffic_ratio(self) -> float:
        """Store BIU transactions / store instructions (Section 5.5)."""
        if not self.store_instructions:
            return 0.0
        return self.store_transactions / self.store_instructions

    @property
    def dual_issue_rate(self) -> float:
        """Fraction of instructions issued as the second half of a pair."""
        if not self.instructions:
            return 0.0
        return 2 * self.dual_issued_pairs / self.instructions

    # -------------------------------------------------------- round-trip

    def to_dict(self) -> dict:
        """JSON-ready mapping with a *stable* field order.

        Fields appear in dataclass-definition order and stall cycles in
        :class:`StallKind` enum order, so two equal stats objects always
        serialize to byte-identical JSON — the serve memo store leans on
        that to compare a memoized response against a fresh simulation.
        """
        data: dict = {}
        for spec in fields(self):
            if spec.name == "stall_cycles":
                data["stall_cycles"] = {
                    kind.value: int(self.stall_cycles.get(kind, 0))
                    for kind in StallKind
                }
            else:
                data[spec.name] = getattr(self, spec.name)
        return data

    @classmethod
    def from_dict(cls, data: object) -> "SimStats":
        """Rebuild a :class:`SimStats` from :meth:`to_dict` output.

        Raises :class:`ValueError` naming the problem for anything that
        is not a faithful round-trip image (missing fields, unknown
        fields or stall kinds, non-integer counts) — the memo store
        treats that as a corrupt entry and recomputes.
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"SimStats payload must be an object, "
                f"got {type(data).__name__}"
            )
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown SimStats fields: {', '.join(unknown)}")
        kwargs: dict = {}
        for spec in fields(cls):
            if spec.name not in data:
                raise ValueError(f"missing SimStats field {spec.name!r}")
            value = data[spec.name]
            if spec.name == "stall_cycles":
                if not isinstance(value, dict):
                    raise ValueError(
                        f"stall_cycles must be an object, "
                        f"got {type(value).__name__}"
                    )
                stalls = {kind: 0 for kind in StallKind}
                for raw_kind, cycles in value.items():
                    try:
                        kind = StallKind(raw_kind)
                    except ValueError:
                        raise ValueError(
                            f"unknown stall kind {raw_kind!r}"
                        ) from None
                    if not isinstance(cycles, int) or isinstance(cycles, bool):
                        raise ValueError(
                            f"stall_cycles[{raw_kind!r}] must be an int, "
                            f"got {cycles!r}"
                        )
                    stalls[kind] = cycles
                kwargs["stall_cycles"] = stalls
            else:
                if not isinstance(value, int) or isinstance(value, bool):
                    raise ValueError(
                        f"SimStats field {spec.name!r} must be an int, "
                        f"got {value!r}"
                    )
                kwargs[spec.name] = value
        return cls(**kwargs)

    def stall_cpi(self, kind: StallKind) -> float:
        """Stall cycles per instruction for one category (Figure 6 bars)."""
        if not self.instructions:
            return 0.0
        return self.stall_cycles[kind] / self.instructions

    @property
    def total_stall_cycles(self) -> int:
        return sum(self.stall_cycles.values())

    def check_invariants(self) -> None:
        """Sanity relations every run must satisfy.

        Raises :class:`InvariantError` (not a bare ``assert``, which
        ``python -O`` strips to a no-op) so the checks hold in optimised
        runs too.
        """
        relations = (
            (self.cycles >= 0, f"negative cycles: {self.cycles}"),
            (
                self.instructions >= 0,
                f"negative instructions: {self.instructions}",
            ),
            (
                self.icache_hits <= self.icache_accesses,
                f"icache hits {self.icache_hits} > "
                f"accesses {self.icache_accesses}",
            ),
            (
                self.dcache_hits <= self.dcache_accesses,
                f"dcache hits {self.dcache_hits} > "
                f"accesses {self.dcache_accesses}",
            ),
            (
                self.writecache_hits <= self.writecache_accesses,
                f"writecache hits {self.writecache_hits} > "
                f"accesses {self.writecache_accesses}",
            ),
            (
                self.iprefetch_hits <= self.iprefetch_lookups,
                f"iprefetch hits {self.iprefetch_hits} > "
                f"lookups {self.iprefetch_lookups}",
            ),
            (
                self.dprefetch_hits <= self.dprefetch_lookups,
                f"dprefetch hits {self.dprefetch_hits} > "
                f"lookups {self.dprefetch_lookups}",
            ),
            (
                all(value >= 0 for value in self.stall_cycles.values()),
                f"negative stall cycles: {self.stall_cycles}",
            ),
            (
                self.total_stall_cycles <= max(self.cycles, 0) * 2,
                f"stall cycles {self.total_stall_cycles} exceed "
                f"2x total cycles {self.cycles}",
            ),
        )
        for holds, what in relations:
            if not holds:
                raise InvariantError(f"SimStats invariant violated: {what}")

    def summary(self) -> str:
        """Human-readable one-run report."""
        lines = [
            f"instructions      {self.instructions:>12,}",
            f"cycles            {self.cycles:>12,}",
            f"CPI               {self.cpi:>12.4f}",
            f"I-cache hit rate  {self.icache_hit_rate:>12.2%}",
            f"D-cache hit rate  {self.dcache_hit_rate:>12.2%}",
            f"I-prefetch hits   {self.iprefetch_hit_rate:>12.2%}",
            f"D-prefetch hits   {self.dprefetch_hit_rate:>12.2%}",
            f"write-cache hits  {self.writecache_hit_rate:>12.2%}",
            f"store traffic     {self.store_traffic_ratio:>12.2%}",
        ]
        for kind in StallKind:
            lines.append(
                f"stall[{kind.value:<9}] {self.stall_cpi(kind):>12.4f} CPI"
            )
        return "\n".join(lines)


def average_cpi(stats_list: list[SimStats]) -> float:
    """Arithmetic mean CPI across benchmark runs (the paper's averages)."""
    if not stats_list:
        return 0.0
    return sum(s.cpi for s in stats_list) / len(stats_list)


def cpi_range(stats_list: list[SimStats]) -> tuple[float, float, float]:
    """(min, average, max) CPI — the paper's capped-bar presentation."""
    if not stats_list:
        return (0.0, 0.0, 0.0)
    cpis = [s.cpi for s in stats_list]
    return (min(cpis), sum(cpis) / len(cpis), max(cpis))
