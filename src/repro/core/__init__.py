"""Aurora III timing models: configuration, components, processor, FPU."""

from repro.core.biu import BIUStats, BusInterfaceUnit
from repro.core.caches import DirectMappedCache, PipelinedCachePort
from repro.core.config import (
    BASELINE,
    LARGE,
    RECOMMENDED,
    SMALL,
    TABLE1_MODELS,
    ConfigError,
    FPIssuePolicy,
    FPUConfig,
    MachineConfig,
    baseline_model,
    large_model,
    recommended_model,
    small_model,
)
from repro.core.fpu import DecoupledFPU, FPUnit
from repro.core.mshr import MSHRFile
from repro.core.prefetch import PrefetchStats, SplitStreamBufferPool, StreamBufferPool
from repro.core.processor import (
    AuroraProcessor,
    SimulationResult,
    simulate_trace,
)
from repro.core.stats import (
    InvariantError,
    SimStats,
    StallKind,
    average_cpi,
    cpi_range,
)
from repro.core.writecache import WriteCache, WriteCacheStats

__all__ = [
    "BIUStats",
    "InvariantError",
    "BusInterfaceUnit",
    "DirectMappedCache",
    "PipelinedCachePort",
    "BASELINE",
    "LARGE",
    "RECOMMENDED",
    "SMALL",
    "TABLE1_MODELS",
    "ConfigError",
    "FPIssuePolicy",
    "FPUConfig",
    "MachineConfig",
    "baseline_model",
    "large_model",
    "recommended_model",
    "small_model",
    "DecoupledFPU",
    "FPUnit",
    "MSHRFile",
    "PrefetchStats",
    "SplitStreamBufferPool",
    "StreamBufferPool",
    "AuroraProcessor",
    "SimulationResult",
    "simulate_trace",
    "SimStats",
    "StallKind",
    "average_cpi",
    "cpi_range",
    "WriteCache",
    "WriteCacheStats",
]
