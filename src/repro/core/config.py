"""Machine configurations: Table 1's three models plus free parameters.

The paper evaluates three machine models (Table 1)::

    Model     I$    D$     WriteCache  ROB  PrefetchBufs  MSHRs
    Small     1 KB  16 KB  2 lines     2    2             1
    Baseline  2 KB  32 KB  4 lines     6    4             2
    Large     4 KB  64 KB  8 lines     8    8             4

each in single- and dual-issue variants and with secondary-memory average
latencies of 17 and 35 cycles.  :class:`MachineConfig` captures those knobs
plus the ones the sensitivity studies sweep (prefetch on/off, MSHR count,
write-cache size, branch folding) and the FPU design space of Section 5.7+
(:class:`FPUConfig`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum


class FPIssuePolicy(Enum):
    """The three FPU issue policies of paper Section 5.8."""

    IN_ORDER_COMPLETION = "in_order"  # no overlap between FP instructions
    SINGLE_ISSUE = "single"  # in-order issue, out-of-order completion
    DUAL_ISSUE = "dual"  # two per cycle, out-of-order completion


@dataclass(frozen=True)
class FPUConfig:
    """Decoupled-FPU resources (paper Sections 3 and 5.7-5.11).

    Defaults are the paper's final recommendation (Section 5.11): dual
    issue, 5-entry instruction queue, 2-entry load data queue, 6-entry
    reorder buffer, 3-cycle add, 5-cycle multiply, 19-cycle divide, 2
    result busses.  The multiply and divide units are iterative (not
    pipelined) in the implemented design; the add and convert units are
    pipelined.  ``*_pipelined=False`` makes a unit block until its current
    operation completes (the Section 5.10 ablation).
    """

    issue_policy: FPIssuePolicy = FPIssuePolicy.DUAL_ISSUE
    instruction_queue: int = 5
    load_queue: int = 2
    store_queue: int = 3
    rob_entries: int = 6
    add_latency: int = 3
    add_pipelined: bool = True
    mul_latency: int = 5
    mul_pipelined: bool = False
    div_latency: int = 19
    cvt_latency: int = 2
    cvt_pipelined: bool = True
    result_buses: int = 2

    #: Sanity ceilings: queue/ROB sizes past this are configuration
    #: garbage, not design points (the paper sweeps 1-9 entries).
    MAX_QUEUE = 4096
    MAX_LATENCY = 10_000
    MAX_BUSES = 8

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "FPUConfig":
        """Check every field; raises :class:`ConfigError` naming each
        offending field.  Returns ``self`` so calls chain."""
        problems = self._violations()
        if problems:
            raise ConfigError("invalid FPUConfig: " + "; ".join(problems))
        return self

    def _violations(self) -> list[str]:
        problems: list[str] = []
        if not isinstance(self.issue_policy, FPIssuePolicy):
            problems.append(
                f"issue_policy must be an FPIssuePolicy, "
                f"got {type(self.issue_policy).__name__}"
            )
        for name in ("instruction_queue", "load_queue", "store_queue",
                     "rob_entries"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                problems.append(f"{name} must be >= 1 (got {value!r})")
            elif value > self.MAX_QUEUE:
                problems.append(
                    f"{name} of {value} exceeds the sanity ceiling "
                    f"{self.MAX_QUEUE}"
                )
        for name in ("add_latency", "mul_latency", "div_latency",
                     "cvt_latency"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                problems.append(f"{name} must be >= 1 (got {value!r})")
            elif value > self.MAX_LATENCY:
                problems.append(
                    f"{name} of {value} exceeds the sanity ceiling "
                    f"{self.MAX_LATENCY}"
                )
        if not isinstance(self.result_buses, int) or self.result_buses < 1:
            problems.append(
                f"result_buses must be >= 1 (got {self.result_buses!r})"
            )
        elif self.result_buses > self.MAX_BUSES:
            problems.append(
                f"result_buses of {self.result_buses} exceeds the sanity "
                f"ceiling {self.MAX_BUSES}"
            )
        return problems

    def with_(self, **changes) -> "FPUConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class MachineConfig:
    """One Aurora III machine configuration.

    Sizes are bytes; latencies are cycles.  ``mem_latency`` is the *average*
    secondary-memory latency exactly as the paper abstracts it (17 for the
    medium clock rate, 35 for the fast one).  ``prefetch_line_depth`` is the
    number of line slots per stream buffer (the paper's buffers ramp from
    one line up to a full buffer; the depth makes the baseline pool ~20 % of
    the I-cache, matching Section 5.2's cost remark).
    """

    name: str = "baseline"
    issue_width: int = 2
    icache_bytes: int = 2 * 1024
    dcache_bytes: int = 32 * 1024
    line_bytes: int = 32
    writecache_lines: int = 4
    rob_entries: int = 6
    prefetch_buffers: int = 4
    prefetch_line_depth: int = 2
    mshr_entries: int = 2
    mem_latency: int = 17
    dcache_latency: int = 3
    bus_occupancy: int = 4  # cycles one line transfer holds a BIU bus
    retire_width: int = 2
    prefetch_enabled: bool = True
    branch_folding: bool = True
    write_validation: bool = True
    page_bytes: int = 4096
    split_prefetch_pool: bool = False  # ablation: dedicated I/D buffer halves
    #: Precise FP exceptions (paper Section 3.1's conservative mode): an
    #: FP instruction may not retire from the IPU's reorder buffer until
    #: the FPU has completed it and no exception is possible.
    fpu_precise_exceptions: bool = False
    fpu: FPUConfig = field(default_factory=FPUConfig)

    #: Sanity ceilings separating ambitious design points from garbage.
    MAX_CACHE_BYTES = 1 << 30
    MAX_STRUCTURE = 4096
    MAX_LATENCY = 1_000_000
    #: A full write-cache drain may take at most this many memory round
    #: trips; a write cache the BIU cannot drain within that bound stalls
    #: the machine indefinitely on every flush and is not a buildable point.
    MAX_DRAIN_ROUND_TRIPS = 16

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "MachineConfig":
        """Check every field and cross-field constraint.

        Collects *all* violations and raises one :class:`ConfigError`
        whose message names each offending field, instead of today's
        garbage-in/garbage-out.  Returns ``self`` so calls chain::

            result = simulate_trace(trace, config.validate())
        """
        problems = self._violations()
        if problems:
            raise ConfigError("invalid MachineConfig: " + "; ".join(problems))
        return self

    def _violations(self) -> list[str]:
        problems: list[str] = []
        if self.issue_width not in (1, 2):
            problems.append(
                f"issue_width must be 1 or 2 (got {self.issue_width!r})"
            )
        if not _is_power_of_two(self.line_bytes) or self.line_bytes < 4:
            problems.append(
                f"line_bytes must be a power of two >= 4 "
                f"(got {self.line_bytes!r})"
            )
            return problems  # cache/page rules below divide by line_bytes
        for name in ("icache_bytes", "dcache_bytes"):
            value = getattr(self, name)
            if (
                not _is_power_of_two(value)
                or value < self.line_bytes
            ):
                problems.append(
                    f"{name} must be a power of two and a multiple of "
                    f"line_bytes={self.line_bytes} (got {value!r})"
                )
            elif value > self.MAX_CACHE_BYTES:
                problems.append(
                    f"{name} of {value} exceeds the sanity ceiling "
                    f"{self.MAX_CACHE_BYTES}"
                )
        if not _is_power_of_two(self.page_bytes) or self.page_bytes < self.line_bytes:
            problems.append(
                f"page_bytes must be a power of two >= line_bytes="
                f"{self.line_bytes} (got {self.page_bytes!r})"
            )
        for name in ("writecache_lines", "rob_entries", "mshr_entries",
                     "prefetch_buffers", "prefetch_line_depth",
                     "retire_width"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                problems.append(f"{name} must be >= 1 (got {value!r})")
            elif value > self.MAX_STRUCTURE:
                problems.append(
                    f"{name} of {value} exceeds the sanity ceiling "
                    f"{self.MAX_STRUCTURE}"
                )
        for name in ("mem_latency", "dcache_latency", "bus_occupancy"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                problems.append(f"{name} must be >= 1 (got {value!r})")
            elif value > self.MAX_LATENCY:
                problems.append(
                    f"{name} of {value} exceeds the sanity ceiling "
                    f"{self.MAX_LATENCY}"
                )
        if not problems:
            # Cross-field rules only once the individual fields are sane.
            drain = self.writecache_lines * self.bus_occupancy
            budget = self.MAX_DRAIN_ROUND_TRIPS * self.mem_latency
            if drain > budget:
                problems.append(
                    f"writecache_lines: a full drain needs "
                    f"{self.writecache_lines} lines x {self.bus_occupancy} "
                    f"bus cycles = {drain} cycles, more than the BIU can "
                    f"drain in {self.MAX_DRAIN_ROUND_TRIPS} memory round "
                    f"trips ({budget} cycles)"
                )
            if self.split_prefetch_pool and self.prefetch_buffers < 2:
                problems.append(
                    "prefetch_buffers: split_prefetch_pool needs at least "
                    f"2 buffers (got {self.prefetch_buffers})"
                )
        if not isinstance(self.fpu, FPUConfig):
            problems.append(
                f"fpu must be an FPUConfig (got {type(self.fpu).__name__})"
            )
        else:
            problems.extend(
                f"fpu.{problem}" for problem in self.fpu._violations()
            )
        return problems

    # ------------------------------------------------------------- variants

    def with_(self, **changes) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def single_issue(self) -> "MachineConfig":
        return self.with_(issue_width=1)

    def dual_issue(self) -> "MachineConfig":
        return self.with_(issue_width=2)

    def with_latency(self, cycles: int) -> "MachineConfig":
        return self.with_(mem_latency=cycles)

    def without_prefetch(self) -> "MachineConfig":
        return self.with_(prefetch_enabled=False)

    def with_mshrs(self, count: int) -> "MachineConfig":
        return self.with_(mshr_entries=count)

    @property
    def label(self) -> str:
        issue = "dual" if self.issue_width == 2 else "single"
        return f"{self.name}/{issue}/L{self.mem_latency}"

    @property
    def icache_lines(self) -> int:
        return self.icache_bytes // self.line_bytes

    @property
    def dcache_lines(self) -> int:
        return self.dcache_bytes // self.line_bytes


class ConfigError(ValueError):
    """Raised for invalid machine configurations."""


def _is_power_of_two(value) -> bool:
    return isinstance(value, int) and value > 0 and value & (value - 1) == 0


def small_model(**overrides) -> MachineConfig:
    """Table 1 'Small': 1 KB I$, 16 KB D$, 2-line WC, 2 ROB, 2 PF, 1 MSHR."""
    base = MachineConfig(
        name="small",
        icache_bytes=1 * 1024,
        dcache_bytes=16 * 1024,
        writecache_lines=2,
        rob_entries=2,
        prefetch_buffers=2,
        mshr_entries=1,
    )
    return base.with_(**overrides) if overrides else base


def baseline_model(**overrides) -> MachineConfig:
    """Table 1 'Baseline': 2 KB I$, 32 KB D$, 4-line WC, 6 ROB, 4 PF, 2 MSHR."""
    base = MachineConfig(name="baseline")
    return base.with_(**overrides) if overrides else base


def large_model(**overrides) -> MachineConfig:
    """Table 1 'Large': 4 KB I$, 64 KB D$, 8-line WC, 8 ROB, 8 PF, 4 MSHR."""
    base = MachineConfig(
        name="large",
        icache_bytes=4 * 1024,
        dcache_bytes=64 * 1024,
        writecache_lines=8,
        rob_entries=8,
        prefetch_buffers=8,
        mshr_entries=4,
    )
    return base.with_(**overrides) if overrides else base


def recommended_model(**overrides) -> MachineConfig:
    """Section 5.6 'point E': large I$ with baseline-sized everything else.

    4 KB I-cache, 4-entry write cache, 6-entry reorder buffer, 4 MSHRs.
    """
    base = MachineConfig(
        name="recommended",
        icache_bytes=4 * 1024,
        dcache_bytes=64 * 1024,
        writecache_lines=4,
        rob_entries=6,
        prefetch_buffers=4,
        mshr_entries=4,
    )
    return base.with_(**overrides) if overrides else base


SMALL = small_model()
BASELINE = baseline_model()
LARGE = large_model()
RECOMMENDED = recommended_model()

#: The three Table 1 models in paper order.
TABLE1_MODELS: tuple[MachineConfig, ...] = (SMALL, BASELINE, LARGE)
