"""Machine configurations: Table 1's three models plus free parameters.

The paper evaluates three machine models (Table 1)::

    Model     I$    D$     WriteCache  ROB  PrefetchBufs  MSHRs
    Small     1 KB  16 KB  2 lines     2    2             1
    Baseline  2 KB  32 KB  4 lines     6    4             2
    Large     4 KB  64 KB  8 lines     8    8             4

each in single- and dual-issue variants and with secondary-memory average
latencies of 17 and 35 cycles.  :class:`MachineConfig` captures those knobs
plus the ones the sensitivity studies sweep (prefetch on/off, MSHR count,
write-cache size, branch folding) and the FPU design space of Section 5.7+
(:class:`FPUConfig`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum


class FPIssuePolicy(Enum):
    """The three FPU issue policies of paper Section 5.8."""

    IN_ORDER_COMPLETION = "in_order"  # no overlap between FP instructions
    SINGLE_ISSUE = "single"  # in-order issue, out-of-order completion
    DUAL_ISSUE = "dual"  # two per cycle, out-of-order completion


@dataclass(frozen=True)
class FPUConfig:
    """Decoupled-FPU resources (paper Sections 3 and 5.7-5.11).

    Defaults are the paper's final recommendation (Section 5.11): dual
    issue, 5-entry instruction queue, 2-entry load data queue, 6-entry
    reorder buffer, 3-cycle add, 5-cycle multiply, 19-cycle divide, 2
    result busses.  The multiply and divide units are iterative (not
    pipelined) in the implemented design; the add and convert units are
    pipelined.  ``*_pipelined=False`` makes a unit block until its current
    operation completes (the Section 5.10 ablation).
    """

    issue_policy: FPIssuePolicy = FPIssuePolicy.DUAL_ISSUE
    instruction_queue: int = 5
    load_queue: int = 2
    store_queue: int = 3
    rob_entries: int = 6
    add_latency: int = 3
    add_pipelined: bool = True
    mul_latency: int = 5
    mul_pipelined: bool = False
    div_latency: int = 19
    cvt_latency: int = 2
    cvt_pipelined: bool = True
    result_buses: int = 2

    def __post_init__(self) -> None:
        _require(self.instruction_queue >= 1, "instruction_queue must be >= 1")
        _require(self.load_queue >= 1, "load_queue must be >= 1")
        _require(self.store_queue >= 1, "store_queue must be >= 1")
        _require(self.rob_entries >= 1, "rob_entries must be >= 1")
        for name in ("add_latency", "mul_latency", "div_latency", "cvt_latency"):
            _require(getattr(self, name) >= 1, f"{name} must be >= 1")
        _require(self.result_buses >= 1, "result_buses must be >= 1")

    def with_(self, **changes) -> "FPUConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class MachineConfig:
    """One Aurora III machine configuration.

    Sizes are bytes; latencies are cycles.  ``mem_latency`` is the *average*
    secondary-memory latency exactly as the paper abstracts it (17 for the
    medium clock rate, 35 for the fast one).  ``prefetch_line_depth`` is the
    number of line slots per stream buffer (the paper's buffers ramp from
    one line up to a full buffer; the depth makes the baseline pool ~20 % of
    the I-cache, matching Section 5.2's cost remark).
    """

    name: str = "baseline"
    issue_width: int = 2
    icache_bytes: int = 2 * 1024
    dcache_bytes: int = 32 * 1024
    line_bytes: int = 32
    writecache_lines: int = 4
    rob_entries: int = 6
    prefetch_buffers: int = 4
    prefetch_line_depth: int = 2
    mshr_entries: int = 2
    mem_latency: int = 17
    dcache_latency: int = 3
    bus_occupancy: int = 4  # cycles one line transfer holds a BIU bus
    retire_width: int = 2
    prefetch_enabled: bool = True
    branch_folding: bool = True
    write_validation: bool = True
    page_bytes: int = 4096
    split_prefetch_pool: bool = False  # ablation: dedicated I/D buffer halves
    #: Precise FP exceptions (paper Section 3.1's conservative mode): an
    #: FP instruction may not retire from the IPU's reorder buffer until
    #: the FPU has completed it and no exception is possible.
    fpu_precise_exceptions: bool = False
    fpu: FPUConfig = field(default_factory=FPUConfig)

    def __post_init__(self) -> None:
        _require(self.issue_width in (1, 2), "issue_width must be 1 or 2")
        _require(
            self.line_bytes > 0 and self.line_bytes & (self.line_bytes - 1) == 0,
            "line_bytes must be a power of two",
        )
        for name in ("icache_bytes", "dcache_bytes"):
            value = getattr(self, name)
            _require(
                value >= self.line_bytes and value % self.line_bytes == 0,
                f"{name} must be a multiple of line_bytes",
            )
        _require(self.writecache_lines >= 1, "writecache_lines must be >= 1")
        _require(self.rob_entries >= 1, "rob_entries must be >= 1")
        _require(self.mshr_entries >= 1, "mshr_entries must be >= 1")
        _require(self.prefetch_buffers >= 1, "prefetch_buffers must be >= 1")
        _require(self.prefetch_line_depth >= 1, "prefetch_line_depth must be >= 1")
        _require(self.mem_latency >= 1, "mem_latency must be >= 1")
        _require(self.dcache_latency >= 1, "dcache_latency must be >= 1")
        if self.split_prefetch_pool:
            _require(
                self.prefetch_buffers >= 2,
                "split_prefetch_pool needs at least 2 buffers",
            )

    # ------------------------------------------------------------- variants

    def with_(self, **changes) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def single_issue(self) -> "MachineConfig":
        return self.with_(issue_width=1)

    def dual_issue(self) -> "MachineConfig":
        return self.with_(issue_width=2)

    def with_latency(self, cycles: int) -> "MachineConfig":
        return self.with_(mem_latency=cycles)

    def without_prefetch(self) -> "MachineConfig":
        return self.with_(prefetch_enabled=False)

    def with_mshrs(self, count: int) -> "MachineConfig":
        return self.with_(mshr_entries=count)

    @property
    def label(self) -> str:
        issue = "dual" if self.issue_width == 2 else "single"
        return f"{self.name}/{issue}/L{self.mem_latency}"

    @property
    def icache_lines(self) -> int:
        return self.icache_bytes // self.line_bytes

    @property
    def dcache_lines(self) -> int:
        return self.dcache_bytes // self.line_bytes


class ConfigError(ValueError):
    """Raised for invalid machine configurations."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def small_model(**overrides) -> MachineConfig:
    """Table 1 'Small': 1 KB I$, 16 KB D$, 2-line WC, 2 ROB, 2 PF, 1 MSHR."""
    base = MachineConfig(
        name="small",
        icache_bytes=1 * 1024,
        dcache_bytes=16 * 1024,
        writecache_lines=2,
        rob_entries=2,
        prefetch_buffers=2,
        mshr_entries=1,
    )
    return base.with_(**overrides) if overrides else base


def baseline_model(**overrides) -> MachineConfig:
    """Table 1 'Baseline': 2 KB I$, 32 KB D$, 4-line WC, 6 ROB, 4 PF, 2 MSHR."""
    base = MachineConfig(name="baseline")
    return base.with_(**overrides) if overrides else base


def large_model(**overrides) -> MachineConfig:
    """Table 1 'Large': 4 KB I$, 64 KB D$, 8-line WC, 8 ROB, 8 PF, 4 MSHR."""
    base = MachineConfig(
        name="large",
        icache_bytes=4 * 1024,
        dcache_bytes=64 * 1024,
        writecache_lines=8,
        rob_entries=8,
        prefetch_buffers=8,
        mshr_entries=4,
    )
    return base.with_(**overrides) if overrides else base


def recommended_model(**overrides) -> MachineConfig:
    """Section 5.6 'point E': large I$ with baseline-sized everything else.

    4 KB I-cache, 4-entry write cache, 6-entry reorder buffer, 4 MSHRs.
    """
    base = MachineConfig(
        name="recommended",
        icache_bytes=4 * 1024,
        dcache_bytes=64 * 1024,
        writecache_lines=4,
        rob_entries=6,
        prefetch_buffers=4,
        mshr_entries=4,
    )
    return base.with_(**overrides) if overrides else base


SMALL = small_model()
BASELINE = baseline_model()
LARGE = large_model()
RECOMMENDED = recommended_model()

#: The three Table 1 models in paper order.
TABLE1_MODELS: tuple[MachineConfig, ...] = (SMALL, BASELINE, LARGE)
