"""The Aurora III trace-driven timing model (the paper's core system).

The model walks a dynamic trace in program order and computes, for every
instruction, the cycle it issues and the cycle it completes, using
busy-until timestamps for every structure: the pre-decoded I-cache with
branch folding, the dual-issue constraints (aligned pairs, DI bit, one
memory op per cycle), the scoreboard (register-availability times with
forwarding), the reorder buffer (in-order retirement), the LSU with its
pipelined 3-cycle external D-cache and MSHR-governed non-blocking misses,
the coalescing write cache with write validation, the stream-buffer
prefetch pool, the split-transaction BIU, and the decoupled FPU behind
its instruction/load/store queues.

For an in-order machine this timestamp formulation is cycle-accurate with
respect to the structural and data hazards it models: every constraint is
a monotone "earliest time" and the issue time is their maximum, so no
event can be observed out of order.  It is roughly an order of magnitude
faster in Python than ticking each unit every cycle, which is what makes
sweeping the paper's full design space feasible.

Stall attribution follows Figure 6's four categories: when an
instruction's issue is delayed past the cycle in-order flow alone would
have allowed, the delay is charged to the binding constraint (I-cache,
Load, ROB-full, LSU), with pairing restrictions and FPU-decoupling waits
tracked separately.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.biu import BusInterfaceUnit
from repro.core.caches import DirectMappedCache, PipelinedCachePort
from repro.core.config import MachineConfig
from repro.core.fpu import DecoupledFPU
from repro.core.mshr import MSHRFile
from repro.core.prefetch import SplitStreamBufferPool, StreamBufferPool
from repro.core.stats import SimStats, StallKind
from repro.core.writecache import WriteCache
from repro.func.prepared import PreparedTrace
from repro.func.trace import TraceRecord
from repro.isa.instructions import Kind
from repro.telemetry.events import EventBus, EventKind

_K_ALU = int(Kind.ALU)
_K_LOAD = int(Kind.LOAD)
_K_STORE = int(Kind.STORE)
_K_BRANCH = int(Kind.BRANCH)
_K_JUMP = int(Kind.JUMP)
_K_NOP = int(Kind.NOP)
_K_FP_ADD = int(Kind.FP_ADD)
_K_FP_MUL = int(Kind.FP_MUL)
_K_FP_DIV = int(Kind.FP_DIV)
_K_FP_CVT = int(Kind.FP_CVT)
_K_FP_LOAD = int(Kind.FP_LOAD)
_K_FP_STORE = int(Kind.FP_STORE)
_K_FP_MOVE = int(Kind.FP_MOVE)
_K_HALT = int(Kind.HALT)

_MEM_KINDS = frozenset((_K_LOAD, _K_STORE, _K_FP_LOAD, _K_FP_STORE, _K_FP_MOVE))
_FP_ARITH_KINDS = frozenset((_K_FP_ADD, _K_FP_MUL, _K_FP_DIV, _K_FP_CVT))
_FP_DISPATCH_KINDS = _FP_ARITH_KINDS | frozenset(
    (_K_FP_LOAD, _K_FP_STORE, _K_FP_MOVE)
)

#: IPU -> FPU transfer latency in cycles (inter-chip queue insertion).
FPU_TRANSFER = 2
#: Extra cycle for a write-cache forward vs. a cache hit (on-chip buffer).
WC_FORWARD_LATENCY = 2
#: Entry-count bound on the in-flight D-line fill map; crossing it prunes
#: entries whose fill has already arrived (never genuinely pending ones).
INFLIGHT_BOUND = 4096


def _record_rows(trace, line_shift: int):
    """Per-record hot-loop rows derived on the fly from 6-tuple records.

    The tuple-trace twin of :meth:`PreparedTrace.rows`: yields the same
    ``(pc, kind, dst, src1, src2, addr, is_mem, is_fp_dispatch, iline,
    dline)`` rows, so the timing loop below is one body for both
    representations — byte-identical stats by construction.
    """
    mem_kinds = _MEM_KINDS
    fp_dispatch_kinds = _FP_DISPATCH_KINDS
    for pc, kind, dst, s1, s2, addr in trace:
        yield (
            pc, kind, dst, s1, s2, addr,
            kind in mem_kinds,
            kind in fp_dispatch_kinds,
            pc >> line_shift,
            addr >> line_shift,
        )


@dataclass
class SimulationResult:
    """Stats plus the configuration that produced them."""

    config: MachineConfig
    stats: SimStats

    @property
    def cpi(self) -> float:
        """Cycles per instruction; NaN for an empty run.

        0/0 has no meaningful CPI — returning 0.0 (as the raw counter
        ratio used to) silently poisons averages, so an empty trace
        yields ``float("nan")``, which propagates loudly instead.
        """
        if not self.stats.instructions:
            return float("nan")
        return self.stats.cpi


class AuroraProcessor:
    """One configured Aurora III machine, ready to time traces.

    ``policy`` tunes the runtime invariant guards
    (:class:`repro.robustness.guards.RobustnessPolicy`); the default keeps
    the forward-progress watchdog, occupancy checks and cycle-overflow
    guard enabled with bounds no legitimate run reaches.

    ``telemetry`` optionally attaches an
    :class:`~repro.telemetry.events.EventBus`: every structure then emits
    cycle-stamped events at its stall/allocate/drain decision points (see
    docs/OBSERVABILITY.md).  ``None`` — or a bus with no sinks — keeps
    the default path: each probe site costs one falsy check and nothing
    is recorded.
    """

    def __init__(
        self,
        config: MachineConfig,
        policy: "RobustnessPolicy | None" = None,
        telemetry: "EventBus | None" = None,
    ) -> None:
        from repro.robustness.guards import RobustnessPolicy

        config.validate()
        self.config = config
        self.policy = policy if policy is not None else RobustnessPolicy()
        self.telemetry = telemetry

    def run(
        self, trace: "list[TraceRecord] | PreparedTrace"
    ) -> SimulationResult:
        """Time one trace; returns stats for the whole run.

        ``trace`` may be a plain record list or a
        :class:`~repro.func.prepared.PreparedTrace`; the prepared form
        walks precomputed columns (kind classes, cache-line indices)
        instead of re-deriving them per record, and yields byte-identical
        :class:`~repro.core.stats.SimStats`.

        Raises :class:`repro.robustness.guards.SimulationError` if a
        runtime invariant guard trips (wedged pipeline, structure
        over-occupancy, cycle-count overflow).
        """
        from repro.robustness.guards import Watchdog

        cfg = self.config
        stats = SimStats()
        biu = BusInterfaceUnit(latency=cfg.mem_latency, occupancy=cfg.bus_occupancy)
        icache = DirectMappedCache(cfg.icache_bytes, cfg.line_bytes)
        dcache = DirectMappedCache(cfg.dcache_bytes, cfg.line_bytes)
        dport = PipelinedCachePort(access_latency=cfg.dcache_latency)
        mshr = MSHRFile(cfg.mshr_entries)
        pool_cls = SplitStreamBufferPool if cfg.split_prefetch_pool else StreamBufferPool
        pool = pool_cls(
            cfg.prefetch_buffers,
            cfg.prefetch_line_depth,
            biu,
            enabled=cfg.prefetch_enabled,
        )
        writecache = WriteCache(
            cfg.writecache_lines,
            cfg.line_bytes,
            biu,
            page_bytes=cfg.page_bytes,
            write_validation=cfg.write_validation,
        )
        fpu = DecoupledFPU(cfg.fpu)

        # Telemetry: normalise a sink-less bus to None so every probe
        # site below is a single ``is not None`` test, and attach the
        # live bus to each structure's own probe points.
        tele = self.telemetry if self.telemetry else None
        if tele is not None:
            biu.telemetry = tele
            mshr.telemetry = tele
            pool.telemetry = tele
            writecache.telemetry = tele
            fpu.telemetry = tele

        watchdog: Watchdog | None = None
        if self.policy.enabled:
            watchdog = Watchdog(
                cfg, self.policy, stall_source=stats.stall_cycles
            )
            watchdog.watch(mshr)
            watchdog.watch(writecache)
            watchdog.watch(fpu)

        line_shift = cfg.line_bytes.bit_length() - 1
        dcache_latency = cfg.dcache_latency
        issue_width = cfg.issue_width
        retire_width = cfg.retire_width
        rob_capacity = cfg.rob_entries
        folding = cfg.branch_folding

        # Scoreboard: availability time of each unified register, plus
        # whether the last writer was a load-class producer (for stall
        # attribution per Figure 6).
        reg_ready = [0] * 66
        reg_from_load = [False] * 66

        rob: deque[int] = deque()  # retire times of the last R instructions
        rob_is_mem: deque[bool] = deque()  # head entry waiting on the LSU?
        retire_window: deque[int] = deque([0] * retire_width, maxlen=retire_width)
        last_retire = 0

        last_issue = -1
        slots_used = issue_width  # force the first instruction to cycle 0
        prev_pc = -8
        prev_was_mem = False

        inflight: dict[int, int] = {}  # D-line -> fill arrival time
        # Pending front-end redirects: trace index at which the bubble
        # lands -> earliest fetch cycle for that instruction.  Two taken
        # branches can be in flight at once (a jump in a jump's delay
        # slot), so this must hold more than one entry.
        redirects: dict[int, int] = {}

        stall = stats.stall_cycles  # local alias

        # One loop body for both trace representations: prepared traces
        # supply precomputed per-record rows, tuple traces derive the
        # same rows on the fly (see _record_rows).
        if isinstance(trace, PreparedTrace):
            rows = trace.rows(line_shift)
        else:
            rows = _record_rows(trace, line_shift)

        for index, (
            pc, kind, dst, s1, s2, addr, is_mem, is_fp_dispatch,
            iline, dline,
        ) in enumerate(rows):

            # ---------------------------------------------------- fetch side
            request_time = last_issue if last_issue > 0 else 0
            if icache.lookup(pc):
                t_fetch = icache.ready_time(pc)
            else:
                line = iline
                arrival = pool.lookup(line, request_time, "I")
                if arrival is None:
                    pool.allocate(line, request_time, stream="I")
                    arrival = biu.request(request_time, "ifetch")
                elif arrival < request_time:
                    arrival = request_time
                t_fetch = arrival + 1
                icache.fill(pc, t_fetch)
                if tele is not None:
                    tele.emit(
                        request_time,
                        "fetch",
                        EventKind.FETCH_STALL,
                        pc=pc,
                        index=index,
                        arrival=t_fetch,
                    )
            if redirects:
                redirect_floor = redirects.pop(index, 0)
                if redirect_floor > t_fetch:
                    t_fetch = redirect_floor

            # ------------------------------------------------ in-order floor
            if slots_used < issue_width:
                floor = last_issue
            else:
                floor = last_issue + 1

            # ------------------------------------------------ hazard floors
            t_operand = 0
            operand_from_load = False
            if s1 >= 0:
                t_operand = reg_ready[s1]
                operand_from_load = reg_from_load[s1]
            if s2 >= 0 and reg_ready[s2] > t_operand:
                t_operand = reg_ready[s2]
                operand_from_load = reg_from_load[s2]

            t_rob = rob[0] if len(rob) >= rob_capacity else 0

            t_lsu = 0
            if is_mem:
                t_lsu = mshr.earliest_grant(0) - 1
                port_floor = dport.next_slot - 1
                if port_floor > t_lsu:
                    t_lsu = port_floor

            t_fpu = 0
            if is_fp_dispatch:
                t_fpu = fpu.dispatch_floor() - FPU_TRANSFER
            elif kind == _K_BRANCH and s1 < 0 and s2 < 0:
                # bc1t/bc1f: wait for the FP condition flag from the FPU.
                t_fpu = fpu.cond_ready + 1

            issue = floor
            if t_fetch > issue:
                issue = t_fetch
            if t_operand > issue:
                issue = t_operand
            if t_rob > issue:
                issue = t_rob
            if t_lsu > issue:
                issue = t_lsu
            if t_fpu > issue:
                issue = t_fpu

            # --------------------------------------------- stall attribution
            if issue > floor:
                if issue == t_fetch:
                    cause = StallKind.ICACHE
                elif issue == t_operand:
                    if operand_from_load:
                        cause = StallKind.LOAD
                    else:
                        cause = StallKind.PAIRING
                elif issue == t_rob:
                    # The paper charges a full reorder buffer to the LSU
                    # when the entry blocking retirement is a memory
                    # instruction still waiting on its data ("most cycles
                    # are spent waiting for data from the LSU").
                    if rob_is_mem and rob_is_mem[0]:
                        cause = StallKind.LSU
                    else:
                        cause = StallKind.ROB_FULL
                elif issue == t_lsu:
                    cause = StallKind.LSU
                else:
                    cause = StallKind.FPU
                stall[cause] += issue - floor
                if tele is not None:
                    tele.emit(
                        floor,
                        "issue",
                        EventKind.STALL,
                        stall=cause.value,
                        cycles=issue - floor,
                        index=index,
                        pc=pc,
                    )

            # ------------------------------------------------------ pairing
            if issue == last_issue:
                pairable = (
                    issue_width == 2
                    and slots_used == 1
                    and pc == prev_pc + 4
                    and (prev_pc & 7) == 0
                    and not (is_mem and prev_was_mem)
                )
                if pairable:
                    stats.dual_issued_pairs += 1
                else:
                    issue += 1
                    stall[StallKind.PAIRING] += 1
                    if tele is not None:
                        tele.emit(
                            issue - 1,
                            "issue",
                            EventKind.STALL,
                            stall=StallKind.PAIRING.value,
                            cycles=1,
                            index=index,
                            pc=pc,
                        )

            if issue == last_issue:
                slots_used += 1
            else:
                last_issue = issue
                slots_used = 1
            prev_pc = pc
            prev_was_mem = is_mem

            # ------------------------------------------------------ execute
            if kind == _K_ALU or kind == _K_NOP or kind == _K_HALT:
                complete = issue + 1
                if dst >= 0:
                    reg_ready[dst] = complete
                    reg_from_load[dst] = False

            elif kind == _K_LOAD or kind == _K_FP_LOAD:
                stats.loads += 1
                access = dport.start_access(issue + 1)
                grant, slot = mshr.allocate(access)
                access = grant
                # The write cache is on chip and probed first; a forward
                # from it never goes out to the external data cache.
                if writecache.load_lookup(addr, access):
                    data_ready = access + WC_FORWARD_LATENCY
                elif dcache.lookup(addr):
                    ready_at = dcache.ready_time(addr)
                    data_ready = max(access, ready_at) + dcache_latency
                else:
                    line = dline
                    arrival = inflight.get(line)
                    if arrival is None:
                        parr = pool.lookup(line, access, "D")
                        if parr is None:
                            pool.allocate(line, access, stream="D")
                            arrival = biu.request(access, "dread")
                        else:
                            arrival = parr if parr > access else access
                        fill_done = dport.occupy_for_fill(arrival)
                        dcache.fill(addr, fill_done)
                        inflight[line] = arrival
                        if len(inflight) > INFLIGHT_BOUND:
                            # Evict only fills that have already arrived;
                            # wholesale clearing would forget genuinely
                            # pending lines and double-request them.
                            inflight = {
                                fill_line: fill_at
                                for fill_line, fill_at in inflight.items()
                                if fill_at > access
                            }
                    data_ready = arrival + 1
                if kind == _K_LOAD:
                    mshr.set_release(slot, data_ready)
                    complete = data_ready
                    if dst >= 0:
                        reg_ready[dst] = data_ready
                        reg_from_load[dst] = True
                else:
                    # FP load: honour load-queue backpressure, hand to FPU.
                    eff = max(data_ready, fpu.load_data_floor())
                    fpu.load(dst - 32, eff + 1, issue + FPU_TRANSFER)
                    mshr.set_release(slot, eff + 1)
                    complete = access + 1
                    stats.fp_instructions += 1

            elif kind == _K_STORE or kind == _K_FP_STORE:
                stats.stores += 1
                access = dport.start_access(issue + 1)
                grant, slot = mshr.allocate(access)
                access = grant
                mshr.set_release(slot, access + dcache_latency)
                if not dcache.lookup(addr):
                    # Write-validate allocation: the coalescing write cache
                    # assembles whole lines, so a store miss installs the
                    # line without a memory fetch when the line drains.
                    dcache.fill(addr, access + dcache_latency)
                pool.drop_line(dline)
                if kind == _K_FP_STORE:
                    data_out = fpu.store(s2 - 32, issue + FPU_TRANSFER)
                    complete = writecache.store(addr, access, fp_data_at=data_out)
                    stats.fp_instructions += 1
                else:
                    complete = writecache.store(addr, access)

            elif kind == _K_BRANCH or kind == _K_JUMP:
                stats.branches += 1
                complete = issue + 1
                if dst >= 0:  # jal/jalr write the link register
                    reg_ready[dst] = complete
                    reg_from_load[dst] = False
                taken = addr != 0
                if taken:
                    stats.taken_branches += 1
                    register_jump = kind == _K_JUMP and s1 >= 0
                    if register_jump or not folding:
                        # One fetch bubble: the target index is not in the
                        # NEXT field, so the front end redirects only after
                        # the branch/jump executes.  (In-order flow would
                        # have issued the post-delay-slot instruction at
                        # issue+2; the bubble pushes it to issue+3.)  A
                        # redirect already pending for that index (e.g. a
                        # second taken jump in the first one's shadow)
                        # keeps the later floor rather than being dropped.
                        target = index + 2
                        if issue + 3 > redirects.get(target, 0):
                            redirects[target] = issue + 3
                            if tele is not None:
                                tele.emit(
                                    issue,
                                    "branch",
                                    EventKind.REDIRECT,
                                    pc=pc,
                                    index=target,
                                    floor=issue + 3,
                                )

            elif kind in _FP_ARITH_KINDS:
                stats.fp_instructions += 1
                fd = dst - 32 if dst >= 32 else -1
                fs = s1 - 32 if s1 >= 32 else -1
                ft = s2 - 32 if s2 >= 32 else -1
                fp_done = fpu.arith(kind, fd, fs, ft, issue + FPU_TRANSFER)
                if cfg.fpu_precise_exceptions:
                    # Conservative mode: hold the IPU reorder-buffer entry
                    # until the FPU result (and its exception status) is
                    # known — the decoupling queues stop paying off.
                    complete = fp_done
                else:
                    complete = issue + 1  # transferred; imprecise exceptions

            elif kind == _K_FP_MOVE:
                stats.fp_instructions += 1
                access = dport.start_access(issue + 1)
                if dst >= 32:  # mtc1
                    fpu.mtc1(dst - 32, access + 1, issue + FPU_TRANSFER)
                    complete = access + 1
                else:  # mfc1
                    value_at = max(fpu.reg_read_floor(s1 - 32), issue) + 2
                    complete = value_at
                    if dst >= 0:
                        reg_ready[dst] = value_at
                        reg_from_load[dst] = True

            else:  # pragma: no cover - exhaustive over Kind
                complete = issue + 1

            # ------------------------------------------------------- retire
            retire = complete
            if last_retire > retire:
                retire = last_retire
            window_floor = retire_window[0] + 1
            if window_floor > retire:
                retire = window_floor
            last_retire = retire
            retire_window.append(retire)
            rob.append(retire)
            # Only a *missing* memory instruction at the ROB head counts as
            # an LSU wait; one completing at cache-hit speed that still
            # backs up retirement is a genuine reorder-buffer-size stall.
            rob_is_mem.append(is_mem and complete > issue + 1 + dcache_latency)
            if len(rob) > rob_capacity:
                rob.popleft()
                rob_is_mem.popleft()

            if tele is not None:
                tele.emit(
                    retire,
                    "rob",
                    EventKind.RETIRE,
                    index=index,
                    issue=issue,
                )

            if watchdog is not None:
                watchdog.observe(index, retire)

        # ------------------------------------------------------------ drain
        end = last_retire
        end = max(end, fpu.last_event, mshr.all_free_at)
        end = max(end, writecache.flush(end))

        stats.instructions = len(trace)
        stats.cycles = end
        stats.icache_accesses = icache.accesses
        stats.icache_hits = icache.hits
        stats.dcache_accesses = dcache.accesses
        stats.dcache_hits = dcache.hits
        pool_stats = pool.stats
        stats.iprefetch_lookups = pool_stats.i_lookups
        stats.iprefetch_hits = pool_stats.i_hits
        stats.dprefetch_lookups = pool_stats.d_lookups
        stats.dprefetch_hits = pool_stats.d_hits
        wc_stats = writecache.stats
        stats.writecache_accesses = wc_stats.accesses
        stats.writecache_hits = wc_stats.hits
        stats.store_instructions = wc_stats.store_instructions
        stats.store_transactions = wc_stats.store_transactions
        stats.fpu_instructions = fpu.instructions
        stats.fpu_busy_cycles = fpu.issue_stall_cycles
        return SimulationResult(config=self.config, stats=stats)


def simulate_trace(
    trace: "list[TraceRecord] | PreparedTrace",
    config: MachineConfig,
    policy: "RobustnessPolicy | None" = None,
    telemetry: "EventBus | None" = None,
) -> SimulationResult:
    """Convenience wrapper: time ``trace`` on a machine built from ``config``.

    ``trace`` may be a record list or a columnar
    :class:`~repro.func.prepared.PreparedTrace` (what
    :func:`repro.workloads.registry.get_trace` returns); results are
    byte-identical either way.

    Eagerly validates the configuration and (a deterministic sample of)
    the trace before spending any simulation time, so impossible machine
    points and corrupt traces fail fast with a precise error instead of
    producing garbage numbers.  ``telemetry`` (an
    :class:`repro.telemetry.events.EventBus`) enables event probes for
    the run; None or a sink-less bus keeps every probe compiled down to
    a single falsy check.
    """
    from repro.robustness.validation import validate_trace
    from repro.telemetry import tracing

    validate_trace(trace)
    tracer = tracing.current_tracer()
    if tracer is None:
        return AuroraProcessor(config, policy, telemetry=telemetry).run(trace)
    # ``records`` counts trace records, not retired instructions: multi-op
    # records and batching make the two diverge (SimStats.instructions is
    # the retired count).
    with tracer.span(
        "simulate", "simulate", records=len(trace), config=config.label
    ):
        return AuroraProcessor(config, policy, telemetry=telemetry).run(trace)
