"""Bus Interface Unit and secondary-memory model.

The paper abstracts the memory system below the primary caches as an
*average* secondary latency (17 or 35 cycles) behind a split-transaction
bus (Section 2, "Bus Interface Unit").  We model exactly that abstraction:

* each line transaction occupies the transmit path for ``occupancy``
  cycles (a 32-byte line over the 32-bit double-data-rate IPU-MMU bus is
  four bus cycles),
* a transaction issued at time *t* is granted at ``max(t, bus_free)`` and
  its data arrives ``latency`` cycles after the grant,
* transmit and receive are independent (split transactions), so we only
  serialise on the transmit side; responses are assumed to use the
  receive queue without conflict, matching the collision-based protocol
  description.

The BIU also counts traffic by class, which Table 5's store-traffic
reduction figures and the prefetch studies report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.events import EventKind


@dataclass
class BIUStats:
    """Transaction counts by class."""

    ifetch: int = 0
    dread: int = 0
    write: int = 0
    prefetch: int = 0
    mmu: int = 0

    @property
    def total(self) -> int:
        return self.ifetch + self.dread + self.write + self.prefetch + self.mmu


@dataclass
class BusInterfaceUnit:
    """Timestamp model of the split-transaction processor-memory interface."""

    latency: int
    occupancy: int = 4
    stats: BIUStats = field(default_factory=BIUStats)
    _transmit_free: int = 0
    #: Optional :class:`repro.telemetry.events.EventBus`; falsy = off.
    telemetry: object | None = field(default=None, repr=False, compare=False)

    def request(self, time: int, kind: str) -> int:
        """Issue one line transaction; return the data-arrival time.

        ``kind`` is one of ``ifetch``, ``dread``, ``write``, ``prefetch``,
        ``mmu``.  Writes and MMU queries still get an arrival time — it is
        the completion (acknowledge) time the write cache or validation
        logic waits on.
        """
        if time < 0:
            raise ValueError(f"negative request time {time}")
        grant = time if time >= self._transmit_free else self._transmit_free
        self._transmit_free = grant + self.occupancy
        count = getattr(self.stats, kind, None)
        if count is None:
            raise ValueError(f"unknown transaction kind {kind!r}")
        setattr(self.stats, kind, count + 1)
        if self.telemetry:
            self.telemetry.emit(
                grant,
                "biu",
                EventKind.BIU_TXN,
                txn=kind,
                requested=time,
                arrival=grant + self.latency,
            )
        return grant + self.latency

    @property
    def transmit_free(self) -> int:
        """Time at which the transmit path next becomes idle."""
        return self._transmit_free

    def busy_fraction(self, total_cycles: int) -> float:
        """Fraction of cycles the transmit path was occupied."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.stats.total * self.occupancy / total_cycles)
