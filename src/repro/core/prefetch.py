"""Jouppi-style stream buffers (the Prefetch Unit, paper Section 2.2).

On each primary-cache miss the pool is checked; a hit supplies the line
from the buffer (possibly still in flight), a miss allocates the
least-recently-used buffer for a new stream.  Per the paper's ramping
policy: "On each instruction or data cache miss, a stream buffer is
allocated and initialized to fetch the next sequential line.  This buffer
initially fetches only a single line.  If a subsequent request hits in a
prefetch buffer, additional sequential lines are fetched until the buffer
is filled."

The pool is shared between the instruction and data streams — the paper
attributes the small model's poor prefetch behaviour to I/D thrashing in
its two-buffer pool, which a shared pool reproduces.  A split-pool variant
(`SplitStreamBufferPool`) exists as an ablation.

All times are cycle timestamps; prefetch line fetches are issued through
the BIU and consume its transmit bandwidth like any other transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.biu import BusInterfaceUnit
from repro.telemetry.events import EventKind


@dataclass
class _Stream:
    """One stream buffer: pending/arrived sequential lines and LRU age."""

    next_line: int = -1  # next line number to prefetch when ramping
    slots: dict[int, int] = field(default_factory=dict)  # line -> arrival time
    last_used: int = -1
    valid: bool = False


@dataclass
class PrefetchStats:
    """Hit accounting split by stream, for paper Tables 3 and 4."""

    i_lookups: int = 0
    i_hits: int = 0
    d_lookups: int = 0
    d_hits: int = 0
    lines_fetched: int = 0

    def hit_rate(self, stream: str) -> float:
        if stream == "I":
            return self.i_hits / self.i_lookups if self.i_lookups else 0.0
        if stream == "D":
            return self.d_hits / self.d_lookups if self.d_lookups else 0.0
        raise ValueError(f"unknown stream {stream!r}")


class StreamBufferPool:
    """A shared pool of sequential stream buffers."""

    def __init__(
        self,
        buffers: int,
        depth: int,
        biu: BusInterfaceUnit,
        enabled: bool = True,
    ) -> None:
        if buffers < 1:
            raise ValueError("need at least one stream buffer")
        if depth < 1:
            raise ValueError("stream buffer depth must be >= 1")
        self.depth = depth
        self.enabled = enabled
        self._biu = biu
        self._streams = [_Stream() for _ in range(buffers)]
        self._clock = 0  # logical use counter for LRU
        self.stats = PrefetchStats()
        #: Optional :class:`repro.telemetry.events.EventBus`; falsy = off.
        self.telemetry = None

    # ------------------------------------------------------------------ API

    def lookup(self, line: int, time: int, stream: str) -> int | None:
        """Check the pool for ``line`` on a primary miss at ``time``.

        Returns the line's arrival time on a hit (may be in the future if
        the prefetch is still in flight), or None on a miss.  A hit
        consumes the line and ramps the stream: further sequential lines
        are requested until ``depth`` slots are pending/filled.
        """
        if not self.enabled:
            return None
        self._count_lookup(stream)
        for buffer in self._streams:
            if buffer.valid and line in buffer.slots:
                arrival = buffer.slots.pop(line)
                buffer.last_used = self._bump()
                self._ramp(buffer, time)
                self._count_hit(stream)
                if self.telemetry:
                    self.telemetry.emit(
                        time,
                        "prefetch",
                        EventKind.PREFETCH_HIT,
                        stream=stream,
                        line=line,
                        arrival=arrival,
                    )
                return arrival
        if self.telemetry:
            self.telemetry.emit(
                time,
                "prefetch",
                EventKind.PREFETCH_MISS,
                stream=stream,
                line=line,
            )
        return None

    def allocate(self, line: int, time: int, stream: str = "D") -> None:
        """Primary miss that also missed the pool: start a new stream.

        The demand line itself is fetched by the cache's normal miss path;
        the new stream prefetches only the next sequential line (ramping
        happens on later hits).  ``stream`` is accepted for interface
        parity with :class:`SplitStreamBufferPool` (a shared pool ignores
        it).
        """
        if not self.enabled:
            return
        buffer = min(self._streams, key=lambda s: s.last_used)
        buffer.valid = True
        buffer.slots.clear()
        buffer.next_line = line + 1
        buffer.last_used = self._bump()
        self._fetch_next(buffer, time)

    def drop_line(self, line: int) -> None:
        """Invalidate a line (e.g. written by a store) wherever it sits."""
        for buffer in self._streams:
            buffer.slots.pop(line, None)

    # ------------------------------------------------------------- internals

    def _ramp(self, buffer: _Stream, time: int) -> None:
        while len(buffer.slots) < self.depth:
            self._fetch_next(buffer, time)

    def _fetch_next(self, buffer: _Stream, time: int) -> None:
        arrival = self._biu.request(time, "prefetch")
        buffer.slots[buffer.next_line] = arrival
        buffer.next_line += 1
        self.stats.lines_fetched += 1

    def _bump(self) -> int:
        self._clock += 1
        return self._clock

    def _count_lookup(self, stream: str) -> None:
        if stream == "I":
            self.stats.i_lookups += 1
        else:
            self.stats.d_lookups += 1

    def _count_hit(self, stream: str) -> None:
        if stream == "I":
            self.stats.i_hits += 1
        else:
            self.stats.d_hits += 1


class SplitStreamBufferPool:
    """Ablation variant: dedicated halves for the I and D streams.

    Presents the same ``lookup``/``allocate``/``drop_line`` interface as
    :class:`StreamBufferPool` but routes each stream to its own sub-pool,
    eliminating I/D thrashing at the cost of flexibility.
    """

    def __init__(
        self,
        buffers: int,
        depth: int,
        biu: BusInterfaceUnit,
        enabled: bool = True,
    ) -> None:
        if buffers < 2:
            raise ValueError("split pool needs at least 2 buffers")
        i_buffers = max(1, buffers // 2)
        d_buffers = max(1, buffers - i_buffers)
        self._pools = {
            "I": StreamBufferPool(i_buffers, depth, biu, enabled),
            "D": StreamBufferPool(d_buffers, depth, biu, enabled),
        }
        self.enabled = enabled
        self.depth = depth

    @property
    def telemetry(self):
        """Shared event bus of the sub-pools (assignment fans out)."""
        return self._pools["I"].telemetry

    @telemetry.setter
    def telemetry(self, bus) -> None:
        for pool in self._pools.values():
            pool.telemetry = bus

    @property
    def stats(self) -> PrefetchStats:
        merged = PrefetchStats()
        merged.i_lookups = self._pools["I"].stats.i_lookups
        merged.i_hits = self._pools["I"].stats.i_hits
        merged.d_lookups = self._pools["D"].stats.d_lookups
        merged.d_hits = self._pools["D"].stats.d_hits
        merged.lines_fetched = (
            self._pools["I"].stats.lines_fetched
            + self._pools["D"].stats.lines_fetched
        )
        return merged

    def lookup(self, line: int, time: int, stream: str) -> int | None:
        return self._pools[stream].lookup(line, time, stream)

    def allocate(self, line: int, time: int, stream: str = "D") -> None:
        self._pools[stream].allocate(line, time)

    def drop_line(self, line: int) -> None:
        for pool in self._pools.values():
            pool.drop_line(line)
