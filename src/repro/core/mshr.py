"""Miss Status Holding Registers (Kroft-style non-blocking cache support).

The paper (Section 2.3): "A number of Miss Status Holding Registers
(MSHRs) maintain the state of pending cache misses.  An MSHR is reserved
for each memory instruction active in the LSU pipeline, and if no MSHRs
are available, the processor stalls until one is free.  A machine with
only one MSHR cannot overlap memory operations, and must process each
load or store sequentially."

So *every* memory instruction — hit or miss — holds an MSHR while it is
active in the LSU: hits for the pipelined-cache access latency, misses
until their fill returns.  With one MSHR the LSU serialises completely,
which is exactly what produces the paper's "points labeled A" cliff in
Figure 8 and the dramatic small-model gain in Figure 7.

Secondary misses to a line already in flight merge: they wait on the same
fill but still occupy their own MSHR slot while active (each memory
instruction reserves one).
"""

from __future__ import annotations

from repro.telemetry.events import EventKind


class MSHRFile:
    """Fixed pool of MSHR entries tracked as busy-until timestamps."""

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("MSHR file needs at least one entry")
        self._free_at: list[int] = [0] * entries
        self.entries = entries
        self.allocations = 0
        self.stall_cycles = 0
        #: Optional :class:`repro.telemetry.events.EventBus`; falsy = off.
        self.telemetry = None

    def earliest_grant(self, time: int) -> int:
        """Earliest cycle >= time at which some entry is free."""
        best = min(self._free_at)
        return time if time >= best else best

    def allocate(self, time: int) -> tuple[int, int]:
        """Reserve the earliest-free entry at or after ``time``.

        Returns ``(grant, index)``.  The entry is provisionally held until
        ``grant``; the caller must follow with :meth:`set_release` once the
        instruction's LSU-residency end time is known.
        """
        index = min(range(len(self._free_at)), key=self._free_at.__getitem__)
        grant = max(time, self._free_at[index])
        if grant > time:
            self.stall_cycles += grant - time
        self._free_at[index] = grant
        self.allocations += 1
        if self.telemetry:
            self.telemetry.emit(
                grant,
                "mshr",
                EventKind.MSHR_ALLOC,
                slot=index,
                requested=time,
                wait=grant - time,
            )
        return grant, index

    def set_release(self, index: int, release: int) -> None:
        """Record when the entry at ``index`` frees."""
        if release > self._free_at[index]:
            self._free_at[index] = release
        if self.telemetry:
            self.telemetry.emit(
                self._free_at[index], "mshr", EventKind.MSHR_RELEASE, slot=index
            )

    @property
    def all_free_at(self) -> int:
        """Time when every entry is free (drain time)."""
        return max(self._free_at)

    def assert_capacity(self) -> None:
        """Runtime invariant guard (polled by the watchdog).

        The file must still hold exactly its configured number of entries
        and every busy-until timestamp must be a non-negative int — a
        violation means state corruption, not machine behaviour.
        """
        from repro.robustness.guards import GuardViolation

        if len(self._free_at) != self.entries:
            raise GuardViolation(
                f"MSHR file holds {len(self._free_at)} entries; "
                f"configured capacity is {self.entries}"
            )
        for index, free_at in enumerate(self._free_at):
            if not isinstance(free_at, int) or free_at < 0:
                raise GuardViolation(
                    f"MSHR entry {index} has corrupt busy-until "
                    f"timestamp {free_at!r}"
                )
