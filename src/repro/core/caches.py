"""Primary cache tag models.

Both primary caches are direct-mapped (the external data cache explicitly
so — Section 2.3; the small on-chip instruction cache likewise, which is
what makes Jouppi stream buffers "an ideal solution", Section 2.2).  These
are *tag* models: they track which line lives in each set and when it is
usable, not data contents — the functional simulator owns the data.

:class:`PipelinedCachePort` models the external data cache's access port:
pipelined (a new access can start every cycle) with a fixed access latency,
and occupied for several cycles when a miss's line is streamed in over the
64-bit fill bus.
"""

from __future__ import annotations

from dataclasses import dataclass


class DirectMappedCache:
    """Direct-mapped tag store over byte addresses.

    ``lookup`` and ``fill`` work on full byte addresses; the cache derives
    line/index/tag internally.  ``ready_at`` records, per set, when the
    resident line's data is actually on chip (a set being filled is not
    usable until the fill completes).
    """

    def __init__(self, size_bytes: int, line_bytes: int) -> None:
        if size_bytes % line_bytes != 0:
            raise ValueError("cache size must be a multiple of the line size")
        self.line_bytes = line_bytes
        self.num_lines = size_bytes // line_bytes
        self._line_shift = line_bytes.bit_length() - 1
        self._index_mask = self.num_lines - 1
        if self.num_lines & (self.num_lines - 1) != 0:
            raise ValueError("number of lines must be a power of two")
        self._tags: list[int] = [-1] * self.num_lines
        self._ready: list[int] = [0] * self.num_lines
        self.accesses = 0
        self.hits = 0

    def line_of(self, address: int) -> int:
        """Line number (address / line size) of a byte address."""
        return address >> self._line_shift

    def _split(self, address: int) -> tuple[int, int]:
        line = address >> self._line_shift
        return line & self._index_mask, line

    def lookup(self, address: int) -> bool:
        """Tag check, counting one reference. True on hit."""
        line = address >> self._line_shift
        self.accesses += 1
        if self._tags[line & self._index_mask] == line:
            self.hits += 1
            return True
        return False

    def probe(self, address: int) -> bool:
        """Tag check without counting a reference (for merging logic)."""
        index, line = self._split(address)
        return self._tags[index] == line

    def ready_time(self, address: int) -> int:
        """When the currently resident line in this set becomes usable."""
        return self._ready[(address >> self._line_shift) & self._index_mask]

    def fill(self, address: int, ready_at: int) -> int | None:
        """Install the line containing ``address``; data usable at ``ready_at``.

        Returns the evicted line number, or None if the set was empty.
        """
        index, line = self._split(address)
        evicted = self._tags[index]
        self._tags[index] = line
        self._ready[index] = ready_at
        return evicted if evicted != -1 else None

    def invalidate(self, address: int) -> None:
        index, line = self._split(address)
        if self._tags[index] == line:
            self._tags[index] = -1

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0


@dataclass
class PipelinedCachePort:
    """Port/occupancy model for the pipelined external data cache.

    A new access can start each cycle, except while a miss's fill streams
    the line in over the fill busses (``fill_cycles``), during which the
    array is busy — the paper's "LSU ... is using the data busses to fill
    the cache" stall source.  Fills are scheduled for when their data
    *arrives* (the future), so they must not block accesses that start
    earlier; we keep a short list of pending fill windows and only push
    accesses that land inside one.
    """

    access_latency: int = 3
    fill_cycles: int = 2

    def __post_init__(self) -> None:
        self._next_slot = 0  # pipelined: one new access per cycle
        self._fill_windows: list[tuple[int, int]] = []  # (start, end)
        self._max_end = 0  # no window ends after this cycle

    def start_access(self, time: int) -> int:
        """Earliest cycle >= time the port can initiate an access."""
        start = time if time >= self._next_slot else self._next_slot
        start = self._skip_fill_windows(start)
        self._next_slot = start + 1
        return start

    def occupy_for_fill(self, time: int) -> int:
        """Reserve the port for a line fill beginning at ``time``.

        Returns the cycle the fill completes.  Accesses already issued
        before ``time`` are unaffected (they were in flight); accesses
        landing inside the window are pushed past it.
        """
        start = self._skip_fill_windows(time)
        end = start + self.fill_cycles
        self._fill_windows.append((start, end))
        if end > self._max_end:
            self._max_end = end
        if len(self._fill_windows) > 32:
            horizon = min(start, self._next_slot)
            self._fill_windows = [
                w for w in self._fill_windows if w[1] > horizon - 64
            ]
        return end

    def _skip_fill_windows(self, time: int) -> int:
        # Every pending window ends at or before _max_end, so a time at
        # or past it cannot land inside any window.
        if time >= self._max_end:
            return time
        moved = True
        while moved:
            moved = False
            for start, end in self._fill_windows:
                if start <= time < end:
                    time = end
                    moved = True
        return time

    @property
    def next_slot(self) -> int:
        """Next pipelined issue slot (ignores future fill windows)."""
        return self._next_slot
