"""The decoupled floating-point unit (paper Section 3 and Sections 5.7-5.11).

The IPU transfers FP instructions into an *instruction queue* and keeps
running; the FPU consumes the queue at its own rate.  The IPU stalls only
when the queue is full or when it needs an FPU result (an ``mfc1`` value or
a compare condition for ``bc1t``/``bc1f``).  A *load queue* holds incoming
memory data until the FPU writes it to the register file; a *store queue*
holds outgoing results until the LSU drains them.

The FPU itself has a 32-entry register file (doubles in even/odd pairs),
a reorder buffer, a scoreboard, and four functional units — add,
multiply, divide (square root shares the divider), and convert — with
configurable latencies and pipelining, plus a configurable number of
result busses to the reorder buffer.

Three issue policies (Section 5.8):

* ``IN_ORDER_COMPLETION`` — no overlap at all: an instruction may not
  issue until its predecessor has completed,
* ``SINGLE_ISSUE`` — in-order issue, one per cycle, out-of-order
  completion across functional units,
* ``DUAL_ISSUE`` — up to two per cycle to any two *different* functional
  units, still in-order.

Like the integer core, the model is timestamp-based: each structure
tracks busy-until times and the engine processes the FP sub-sequence of
the trace in program order.
"""

from __future__ import annotations

from collections import deque
from enum import Enum

from repro.core.config import FPIssuePolicy, FPUConfig
from repro.isa.instructions import Kind
from repro.telemetry.events import EventKind


class FPUnit(Enum):
    ADD = "add"
    MUL = "mul"
    DIV = "div"
    CVT = "cvt"


_KIND_TO_UNIT = {
    int(Kind.FP_ADD): FPUnit.ADD,
    int(Kind.FP_MUL): FPUnit.MUL,
    int(Kind.FP_DIV): FPUnit.DIV,
    int(Kind.FP_CVT): FPUnit.CVT,
}


class DecoupledFPU:
    """Timestamp engine for the decoupled FPU."""

    def __init__(self, config: FPUConfig) -> None:
        self.cfg = config
        self.reg_ready = [0] * 32  # FP register availability (forwarded)
        self.cond_ready = 0  # FP condition flag availability
        self._unit_free = {unit: 0 for unit in FPUnit}
        self._unit_latency = {
            FPUnit.ADD: config.add_latency,
            FPUnit.MUL: config.mul_latency,
            FPUnit.DIV: config.div_latency,
            FPUnit.CVT: config.cvt_latency,
        }
        self._unit_pipelined = {
            FPUnit.ADD: config.add_pipelined,
            FPUnit.MUL: config.mul_pipelined,
            FPUnit.DIV: False,  # iterative SRT divider, never pipelined
            FPUnit.CVT: config.cvt_pipelined,
        }
        # In-order issue bookkeeping.
        self._last_issue = -1
        self._issued_this_cycle = 0
        self._units_this_cycle: set[FPUnit] = set()
        self._prev_completion = 0  # for the in-order-completion policy
        # Queue/ROB occupancy as deques of release times.
        self._iq_releases: deque[int] = deque()  # instruction leaves queue
        self._lq_releases: deque[int] = deque()
        self._sq_releases: deque[int] = deque()
        self._rob_retires: deque[int] = deque()
        self._last_retire = 0
        # Register-file write bandwidth: the result busses are shared by
        # functional-unit completions and load-queue data drains.  The
        # dual-issue design pays for two busses; the single-issue and
        # fully-serialised machines have one (paper Section 5.8 lists the
        # extra busses among dual issue's hardware costs).
        self._bus_slots: dict[int, int] = {}
        if config.issue_policy is FPIssuePolicy.DUAL_ISSUE:
            self._write_ports = min(2, config.result_buses)
        else:
            self._write_ports = min(1, config.result_buses)
        self.instructions = 0
        self.issue_stall_cycles = 0
        self.last_event = 0
        #: Optional :class:`repro.telemetry.events.EventBus`; falsy = off.
        self.telemetry = None

    # ------------------------------------------------------------- IPU side

    def dispatch_floor(self) -> int:
        """Earliest time the IPU may transfer the next FP instruction.

        The instruction queue has ``cfg.instruction_queue`` entries; entry
        *n* frees when instruction *n* issues into a functional unit.
        """
        if len(self._iq_releases) >= self.cfg.instruction_queue:
            return self._iq_releases[0]
        return 0

    def load_data_floor(self) -> int:
        """Earliest time the LSU may deliver the next FP load's data
        (load-queue backpressure)."""
        if len(self._lq_releases) >= self.cfg.load_queue:
            return self._lq_releases[0]
        return 0

    # ------------------------------------------------------------ dispatch

    def arith(self, kind: int, fd: int, fs: int, ft: int, arrive: int) -> int:
        """Process an arithmetic/convert/compare op arriving at ``arrive``.

        ``fd`` is -1 for compares (they set the condition flag instead).
        ``fs``/``ft`` are FPU-local register numbers (-1 when absent).
        Returns the completion time.
        """
        unit = _KIND_TO_UNIT[kind]
        if self.telemetry:
            self.telemetry.emit(arrive, "fpu", EventKind.FPQ_ENQUEUE, queue="iq")
        operand_ready = 0
        if fs >= 0:
            operand_ready = self.reg_ready[fs]
        if ft >= 0 and self.reg_ready[ft] > operand_ready:
            operand_ready = self.reg_ready[ft]
        issue = self._issue(arrive, operand_ready, unit)
        latency = self._unit_latency[unit]
        completion = issue + latency
        if fd >= 0:
            completion = self._claim_result_bus(completion)
            self.reg_ready[fd] = completion
        else:
            completion = self._claim_result_bus(completion)
            self.cond_ready = completion
        self._unit_free[unit] = (
            issue + 1 if self._unit_pipelined[unit] else completion
        )
        self._finish(issue, completion, unit)
        return completion

    def load(self, fd: int, data_arrival: int, arrive: int) -> int:
        """Process an FP load: data lands in the load queue and is written
        to the register file out-of-band.

        The load queue exists precisely so that incoming memory data does
        not contend with arithmetic issue (paper Section 3.1): data waits
        in the queue for the dedicated register-file write port, one write
        per cycle, regardless of what the issue logic is doing.  Back-
        pressure arises only when data arrives faster than it drains or
        the queue is full (the caller consults :meth:`load_data_floor`).

        Returns the register-file write time.
        """
        if self.cfg.issue_policy is FPIssuePolicy.IN_ORDER_COMPLETION:
            # The fully serialised policy has no decoupled write port:
            # the load's RF write is an instruction like any other.
            if self.telemetry:
                self.telemetry.emit(
                    arrive, "fpu", EventKind.FPQ_ENQUEUE, queue="iq"
                )
            issue = self._issue(arrive, data_arrival, unit=None)
            write_time = issue + 1
            self.reg_ready[fd] = write_time
            self._lq_releases.append(write_time)
            if len(self._lq_releases) > self.cfg.load_queue:
                self._lq_releases.popleft()
            if self.telemetry:
                self.telemetry.emit(
                    data_arrival, "fpu", EventKind.FPQ_ENQUEUE, queue="lq"
                )
                self.telemetry.emit(
                    write_time, "fpu", EventKind.FPQ_DEQUEUE, queue="lq"
                )
            self._finish(issue, write_time, unit=None)
            return write_time
        write_time = self._claim_result_bus(data_arrival)
        self.reg_ready[fd] = write_time
        self._lq_releases.append(write_time)
        if len(self._lq_releases) > self.cfg.load_queue:
            self._lq_releases.popleft()
        if self.telemetry:
            self.telemetry.emit(
                data_arrival, "fpu", EventKind.FPQ_ENQUEUE, queue="lq"
            )
            self.telemetry.emit(
                write_time, "fpu", EventKind.FPQ_DEQUEUE, queue="lq"
            )
        if write_time > self.last_event:
            self.last_event = write_time
        self.instructions += 1
        return write_time

    def store(self, ft: int, arrive: int) -> int:
        """Process an FP store (or move-to-IPU): returns the time the data
        is available to the LSU (after the store queue).

        The whole point of the store queue (paper Section 3.1) is that a
        store *issues* without waiting for its data: it takes a store-queue
        entry and the data follows when the producing operation completes.
        Issue therefore stalls only when the store queue itself is full,
        never on the store's operand.
        """
        sq_floor = 0
        if len(self._sq_releases) >= self.cfg.store_queue:
            sq_floor = self._sq_releases[0]
        if self.telemetry:
            self.telemetry.emit(arrive, "fpu", EventKind.FPQ_ENQUEUE, queue="iq")
        issue = self._issue(arrive, sq_floor, unit=None)
        operand_ready = self.reg_ready[ft] if ft >= 0 else 0
        # Data leaves over the data-cache input busses once produced.
        data_out = max(issue, operand_ready) + 1
        self._sq_releases.append(data_out)
        if len(self._sq_releases) > self.cfg.store_queue:
            self._sq_releases.popleft()
        if self.telemetry:
            self.telemetry.emit(issue, "fpu", EventKind.FPQ_ENQUEUE, queue="sq")
            self.telemetry.emit(
                data_out, "fpu", EventKind.FPQ_DEQUEUE, queue="sq"
            )
        self._finish(issue, data_out, unit=None)
        return data_out

    def mtc1(self, fd: int, data_arrival: int, arrive: int) -> int:
        """Move from IPU: behaves like a load whose data comes from the IPU."""
        return self.load(fd, data_arrival, arrive)

    def reg_read_floor(self, fs: int) -> int:
        """When the IPU could read FP register ``fs`` (for mfc1)."""
        return self.reg_ready[fs]

    def assert_capacity(self) -> None:
        """Runtime invariant guard (polled by the watchdog).

        Queue and reorder-buffer occupancy may never exceed the
        configured capacity — the deques are trimmed on every append, so
        an over-full structure means the model's bookkeeping broke.
        """
        from repro.robustness.guards import GuardViolation

        cfg = self.cfg
        for name, queue, capacity in (
            ("instruction queue", self._iq_releases, cfg.instruction_queue),
            ("load queue", self._lq_releases, cfg.load_queue),
            ("store queue", self._sq_releases, cfg.store_queue),
            ("reorder buffer", self._rob_retires, cfg.rob_entries),
        ):
            if len(queue) > capacity:
                raise GuardViolation(
                    f"FPU {name} holds {len(queue)} entries; configured "
                    f"capacity is {capacity}"
                )

    # ------------------------------------------------------------ internals

    def _issue(self, arrive: int, operand_ready: int, unit: FPUnit | None) -> int:
        cfg = self.cfg
        floor = arrive if arrive > operand_ready else operand_ready
        if cfg.issue_policy is FPIssuePolicy.IN_ORDER_COMPLETION:
            if self._prev_completion > floor:
                floor = self._prev_completion
        # Reorder-buffer entry must be free (frees at in-order retire).
        if len(self._rob_retires) >= cfg.rob_entries:
            rob_floor = self._rob_retires[0]
            if rob_floor > floor:
                floor = rob_floor
        # Functional unit availability (iterative units block).
        if unit is not None and self._unit_free[unit] > floor:
            floor = self._unit_free[unit]
        # In-order issue + per-cycle width.
        issue = self._apply_width_rules(floor, unit)
        if issue > arrive:
            self.issue_stall_cycles += issue - arrive
        return issue

    def _apply_width_rules(self, floor: int, unit: FPUnit | None) -> int:
        policy = self.cfg.issue_policy
        if policy is FPIssuePolicy.IN_ORDER_COMPLETION:
            # Serialised anyway; still at most one per cycle.
            if floor <= self._last_issue:
                floor = self._last_issue + 1
            return floor
        if floor < self._last_issue:
            floor = self._last_issue
        if policy is FPIssuePolicy.SINGLE_ISSUE:
            if floor == self._last_issue:
                floor += 1
            return floor
        # DUAL_ISSUE: two per cycle, to two different functional units.
        if floor == self._last_issue:
            same_unit = unit is not None and unit in self._units_this_cycle
            if self._issued_this_cycle >= 2 or same_unit:
                floor += 1
        return floor

    def _finish(self, issue: int, completion: int, unit: FPUnit | None) -> None:
        if self.telemetry:
            self.telemetry.emit(
                issue,
                "fpu",
                EventKind.FPQ_ISSUE,
                unit=unit.value if unit is not None else None,
            )
            self.telemetry.emit(issue, "fpu", EventKind.FPQ_DEQUEUE, queue="iq")
        if issue == self._last_issue:
            self._issued_this_cycle += 1
        else:
            self._last_issue = issue
            self._issued_this_cycle = 1
            self._units_this_cycle.clear()
        if unit is not None:
            self._units_this_cycle.add(unit)
        # Instruction queue entry frees at issue.
        self._iq_releases.append(issue)
        if len(self._iq_releases) > self.cfg.instruction_queue:
            self._iq_releases.popleft()
        # In-order retirement through the FPU reorder buffer.
        retire = completion if completion > self._last_retire else self._last_retire
        self._last_retire = retire
        self._rob_retires.append(retire)
        if len(self._rob_retires) > self.cfg.rob_entries:
            self._rob_retires.popleft()
        if self.cfg.issue_policy is FPIssuePolicy.IN_ORDER_COMPLETION:
            self._prev_completion = completion
        if retire > self.last_event:
            self.last_event = retire
        self.instructions += 1

    def _claim_result_bus(self, completion: int) -> int:
        """Delay an RF write until a result-bus slot is free.

        Both functional-unit completions and load-data drains go through
        these busses (``_write_ports`` of them per cycle).
        """
        buses = self._write_ports
        slots = self._bus_slots
        cycle = completion
        while slots.get(cycle, 0) >= buses:
            cycle += 1
        slots[cycle] = slots.get(cycle, 0) + 1
        if len(slots) > 4096:
            # Prune slots far in the past to bound memory.
            horizon = cycle - 64
            for key in [k for k in slots if k < horizon]:
                del slots[key]
        return cycle
