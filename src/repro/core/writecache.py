"""The coalescing Write Cache (paper Section 2.3, "Write Cache").

Four (2/4/8 by model) fully-associative lines of eight words each.  Stores
that hit an allocated line coalesce — no new off-chip transaction; a miss
allocates a line, evicting the least-recently-used dirty line as one BIU
write transaction for the whole line.  Loads are looked up too (forwarding
from pending stores); Table 5's hit rate "includes both load and store
data accesses".

Write validation (the micro-TLB behaviour): the MMU is off chip, so a
store cannot retire until its address is known not to fault.  If the
store's *page* field matches any valid resident line's page, no fault is
possible and the store completes immediately; otherwise an MMU round trip
validates the page, and the line cannot be evicted (nor the store retired)
until the response arrives.

Floating-point stores: their data is not ready when the address arrives
(Section 2.3, "Floating Point Support") — the line holding an FP store
cannot be evicted before the FP data lands, which `note_data_pending`
models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.biu import BusInterfaceUnit
from repro.telemetry.events import EventKind


@dataclass(slots=True)
class _WCLine:
    line: int = -1  # line number (byte address >> line shift)
    page: int = -1
    word_mask: int = 0  # bitmask of words written
    dirty: bool = False
    validated_at: int = 0  # store data may leave chip only after this
    data_ready_at: int = 0  # FP store data arrival (0 = ready)
    last_used: int = -1

    @property
    def valid(self) -> bool:
        return self.line >= 0


@dataclass
class WriteCacheStats:
    """Hit/traffic accounting for Table 5."""

    accesses: int = 0  # load + store lookups
    hits: int = 0
    store_instructions: int = 0
    store_transactions: int = 0  # line evictions sent over the BIU
    validation_misses: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def traffic_ratio(self) -> float:
        """Store BIU transactions per store instruction (lower is better)."""
        if self.store_instructions == 0:
            return 0.0
        return self.store_transactions / self.store_instructions


class WriteCache:
    """Timestamp model of the coalescing write buffer."""

    def __init__(
        self,
        lines: int,
        line_bytes: int,
        biu: BusInterfaceUnit,
        page_bytes: int = 4096,
        write_validation: bool = True,
    ) -> None:
        if lines < 1:
            raise ValueError("write cache needs at least one line")
        self.line_bytes = line_bytes
        self._line_shift = line_bytes.bit_length() - 1
        self._page_shift = page_bytes.bit_length() - 1
        self._biu = biu
        self.write_validation = write_validation
        self.capacity = lines
        self._lines = [_WCLine() for _ in range(lines)]
        self._clock = 0
        self.stats = WriteCacheStats()
        #: Optional :class:`repro.telemetry.events.EventBus`; falsy = off.
        self.telemetry = None

    # ------------------------------------------------------------------ API

    def store(self, address: int, time: int, fp_data_at: int = 0) -> int:
        """Process a store to ``address`` at ``time``.

        Returns the store's *completion* time — when it is known the store
        cannot fault and it can retire from the reorder buffer.  For FP
        stores, ``fp_data_at`` is when the data will arrive from the FPU;
        the line is held un-evictable until then.
        """
        self.stats.accesses += 1
        self.stats.store_instructions += 1
        line_number = address >> self._line_shift
        word = (address >> 2) & ((self.line_bytes >> 2) - 1)
        entry = self._find(line_number)
        if entry is not None:
            self.stats.hits += 1
            entry.word_mask |= 1 << word
            entry.dirty = True
            entry.last_used = self._bump()
            if fp_data_at > entry.data_ready_at:
                entry.data_ready_at = fp_data_at
            if self.telemetry:
                self.telemetry.emit(
                    time,
                    "writecache",
                    EventKind.WC_STORE,
                    line=line_number,
                    hit=True,
                    allocated=False,
                )
            return max(time + 1, entry.validated_at)

        victim = min(self._lines, key=lambda ln: ln.last_used)
        evict_done = self._evict(victim, time)
        page = address >> self._page_shift
        validated_at = time + 1
        if self.write_validation and not self._page_resident(page):
            # MMU round trip before the store may retire.
            validated_at = self._biu.request(time, "mmu")
            self.stats.validation_misses += 1
        victim.line = line_number
        victim.page = page
        victim.word_mask = 1 << word
        victim.dirty = True
        victim.validated_at = validated_at
        victim.data_ready_at = fp_data_at
        victim.last_used = self._bump()
        if self.telemetry:
            self.telemetry.emit(
                time,
                "writecache",
                EventKind.WC_STORE,
                line=line_number,
                hit=False,
                allocated=True,
            )
        return max(time + 1, evict_done, validated_at)

    def load_lookup(self, address: int, time: int) -> bool:
        """Check whether a load can be serviced from the write cache.

        Counts toward the Table 5 hit rate.  A hit requires the word to
        actually have been written (forwarding whole-line misses that only
        share the line would return stale data).
        """
        self.stats.accesses += 1
        line_number = address >> self._line_shift
        word = (address >> 2) & ((self.line_bytes >> 2) - 1)
        entry = self._find(line_number)
        if entry is not None and entry.word_mask & (1 << word):
            self.stats.hits += 1
            entry.last_used = self._bump()
            return True
        return False

    def contains_line(self, line_number: int) -> bool:
        return self._find(line_number) is not None

    def flush(self, time: int) -> int:
        """Evict every dirty line (end-of-run drain). Returns drain time."""
        done = time
        for entry in self._lines:
            done = max(done, self._evict(entry, time))
            entry.line = -1
            entry.word_mask = 0
            entry.dirty = False
        return done

    def assert_capacity(self) -> None:
        """Runtime invariant guard (polled by the watchdog).

        The fully-associative array must hold exactly ``capacity`` lines,
        no line number may appear twice, and every word mask must fit the
        line's word count — violations mean state corruption.
        """
        from repro.robustness.guards import GuardViolation

        if len(self._lines) != self.capacity:
            raise GuardViolation(
                f"write cache holds {len(self._lines)} lines; "
                f"configured capacity is {self.capacity}"
            )
        full_mask = (1 << (self.line_bytes >> 2)) - 1
        seen: set[int] = set()
        for index, entry in enumerate(self._lines):
            if not entry.valid:
                continue
            if entry.line in seen:
                raise GuardViolation(
                    f"write cache line number {entry.line} is resident "
                    "twice (associative lookup corrupted)"
                )
            seen.add(entry.line)
            if entry.word_mask & ~full_mask:
                raise GuardViolation(
                    f"write cache entry {index} word mask "
                    f"{entry.word_mask:#x} exceeds the line's "
                    f"{self.line_bytes >> 2} words"
                )
            if entry.validated_at < 0 or entry.data_ready_at < 0:
                raise GuardViolation(
                    f"write cache entry {index} has corrupt timestamps "
                    f"(validated_at={entry.validated_at}, "
                    f"data_ready_at={entry.data_ready_at})"
                )

    # ------------------------------------------------------------- internals

    def _find(self, line_number: int) -> _WCLine | None:
        # Invalid entries hold line == -1 and line numbers are derived
        # from non-negative addresses, so equality alone is a hit test.
        for entry in self._lines:
            if entry.line == line_number:
                return entry
        return None

    def _page_resident(self, page: int) -> bool:
        # An evicted entry keeps its stale page field, so validity must
        # be checked here (unlike _find).
        return any(
            entry.line >= 0 and entry.page == page for entry in self._lines
        )

    def _evict(self, entry: _WCLine, time: int) -> int:
        """Write the victim line back over the BIU. Returns completion."""
        if not entry.valid or not entry.dirty:
            return time
        # Cannot evict before validation completes or FP data arrives.
        ready = max(time, entry.validated_at, entry.data_ready_at)
        done = self._biu.request(ready, "write")
        self.stats.store_transactions += 1
        if self.telemetry:
            self.telemetry.emit(
                ready,
                "writecache",
                EventKind.WC_EVICT,
                line=entry.line,
                done=done,
            )
        return done

    def _bump(self) -> int:
        self._clock += 1
        return self._clock
