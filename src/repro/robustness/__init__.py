"""Robustness subsystem: validation, runtime guards, resilient execution.

The paper's results rest on long trace-driven sweeps; a reproduction that
silently accepts an impossible machine point, wedges without diagnosis, or
throws away eleven finished experiments because the twelfth crashed is not
trustworthy.  This package hardens the simulation layer in three tiers:

* :mod:`repro.robustness.validation` — eager rejection of impossible
  :class:`~repro.core.config.MachineConfig` points and malformed traces,
  with messages that name the offending field,
* :mod:`repro.robustness.guards` — runtime invariant guards inside the
  timing model (forward-progress watchdog, occupancy checks, cycle-count
  overflow) raising a structured :class:`SimulationError`,
* :mod:`repro.robustness.runner` — a fault-tolerant experiment runner
  with per-experiment isolation, timeouts, bounded-backoff retries and a
  checkpoint manifest so partial sweeps resume instead of restarting.

:mod:`repro.robustness.faults` provides deterministic fault injection used
by the tests to exercise all of the above, and
:mod:`repro.robustness.chaos` extends it into a chaos harness attacking
every I/O and process boundary (cache corruption, filesystem faults,
worker kills, torn manifests) behind ``aurora-sim experiments --chaos``.

See ``docs/ROBUSTNESS.md`` for the full contract and the
failure-mode matrix.
"""

from repro.robustness.guards import (  # noqa: F401
    GuardViolation,
    RobustnessPolicy,
    SimulationError,
    Watchdog,
    config_fingerprint,
)
from repro.robustness.runner import (  # noqa: F401
    CheckpointedResult,
    ExperimentOutcome,
    ExperimentTimeout,
    ResilientRunner,
    RunReport,
)
from repro.robustness.faults import (  # noqa: F401
    FaultPlan,
    FaultSpec,
    TransientFault,
    corrupt_trace,
)
from repro.robustness.chaos import (  # noqa: F401
    ChaosError,
    ChaosFault,
    ChaosPlan,
)
from repro.robustness.validation import (  # noqa: F401
    EnvValidationError,
    TraceValidationError,
    validate_environment,
    validate_factor,
    validate_scale,
    validate_trace,
)
