"""Chaos-engineering harness: deterministic failure injection at every
I/O and process boundary of the sweep stack.

:mod:`repro.robustness.faults` injects failures at the *experiment*
boundary (a callable crashes, wedges, or returns garbage).  This module
attacks everything underneath it — the surfaces a multi-hour production
sweep actually dies on:

* **Trace-cache corruption** — bit-flips inside ``.v2.npy`` payloads,
  truncation mid-record, stale v1 archives planted next to v2 entries.
  Detected by the CRC32 sidecar check in
  :mod:`repro.workloads.trace_cache`; the entry is quarantined and
  rebuilt, and the sweep's results are byte-identical to a fault-free
  run.
* **Filesystem faults** — ``ENOSPC`` / ``EACCES`` / ``EIO`` raised at
  named fault *sites* (``cache.store``, ``cache.load``,
  ``manifest.save``) through :func:`fs_check`, a hook the trace cache
  and the checkpoint-manifest writer call before touching disk.  Each
  degrades (in-memory-only cache, un-checkpointed progress) instead of
  failing the sweep.
* **Pool faults** — worker ``SIGKILL`` at a chosen experiment
  (``kill``), worker hang past the wall-clock budget (``hang``), and
  slow stragglers (``straggler``), compiled into a
  :class:`~repro.robustness.faults.FaultPlan` so they replay
  deterministically in workers exactly like ``_InjectedFault``.
* **Torn checkpoint manifests** — the manifest JSON truncated
  mid-entry, as a crash between ``write`` and ``rename`` would leave it
  without the write-then-rename discipline.  Recovery salvages the
  last valid checkpoint from the ``.bak`` the runner keeps.

Everything is driven by a seeded :class:`ChaosPlan` — same plan, same
seed, same injections, in the parent and in every pool worker (workers
get the plan through the pool initializer).  With no plan installed
every hook is a single global-is-None check.

CLI::

    aurora-sim experiments --factor 0.05 --jobs 2 \
        --chaos "kill:fig4,bitflip:*,enospc:cache.store" --chaos-seed 7

Spec grammar: comma-separated ``kind[:target[:count[:seconds]]]``
tokens; see :data:`CHAOS_KINDS` for the kinds and their targets.
"""

from __future__ import annotations

import contextlib
import errno
import os
import pathlib
from dataclasses import dataclass, field

from repro.robustness.faults import FaultPlan

#: kind -> (category, description).  Categories: "disk" faults are
#: applied to on-disk state before the sweep starts; "fs" faults raise
#: OSErrors at a named fault site during the sweep; "pool" faults
#: compile into a FaultPlan and fire at the experiment boundary.
CHAOS_KINDS = {
    "bitflip": ("disk", "flip one payload bit in matching .v2.npy cache "
                        "entries (target: workload name or '*')"),
    "truncate": ("disk", "truncate matching .v2.npy cache entries "
                         "mid-record (target: workload name or '*')"),
    "stale-v1": ("disk", "plant a stale v1 .npz archive next to matching "
                         "v2 entries (target: workload name or '*')"),
    "torn-manifest": ("disk", "truncate the checkpoint manifest JSON "
                              "mid-entry (no target)"),
    "enospc": ("fs", "raise ENOSPC at a fault site (target: "
                     "cache.store | cache.load | manifest.save)"),
    "eacces": ("fs", "raise EACCES at a fault site"),
    "eio": ("fs", "raise EIO at a fault site"),
    "kill": ("pool", "SIGKILL the worker running the target experiment "
                     "on its first `count` executions"),
    "hang": ("pool", "wedge the target experiment for `seconds` "
                     "(tripped by the runner's --timeout)"),
    "straggler": ("pool", "delay the target experiment by `seconds` "
                          "before it runs"),
}

#: Fault sites accepted by "fs"-category kinds.
FS_SITES = ("cache.store", "cache.load", "manifest.save")

_ERRNOS = {
    "enospc": errno.ENOSPC,
    "eacces": errno.EACCES,
    "eio": errno.EIO,
}

#: numpy's .npy header occupies at least this many bytes; disk
#: corruption aims past it so the *payload* (not the parseable header)
#: is damaged — the silent-corruption case only a checksum catches.
_NPY_HEADER_BYTES = 128


class ChaosError(ValueError):
    """A chaos spec is malformed (unknown kind, bad target, bad count)."""


def _lcg(state: int) -> int:
    """One step of the same 64-bit LCG ``corrupt_trace`` uses."""
    return (state * 6364136223846793005 + 1442695040888963407) & (2**64 - 1)


@dataclass(frozen=True)
class ChaosFault:
    """One injected failure (see :data:`CHAOS_KINDS`)."""

    kind: str
    target: str = "*"
    count: int = 1
    seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ChaosError(
                f"unknown chaos kind {self.kind!r}; expected one of "
                f"{', '.join(sorted(CHAOS_KINDS))}"
            )
        if CHAOS_KINDS[self.kind][0] == "fs" and self.target not in FS_SITES:
            raise ChaosError(
                f"chaos kind {self.kind!r} needs a fault site target, "
                f"one of {', '.join(FS_SITES)}; got {self.target!r}"
            )
        if self.count < 1:
            raise ChaosError(f"count must be >= 1, got {self.count}")
        if self.seconds <= 0:
            raise ChaosError(f"seconds must be > 0, got {self.seconds}")

    @property
    def category(self) -> str:
        return CHAOS_KINDS[self.kind][0]


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, picklable set of chaos faults (see module docs).

    Frozen so it ships unchanged to pool workers; all mutable injection
    state (remaining fs-fault budgets) lives in the per-process
    :func:`activate` installation, never on the plan.
    """

    seed: int = 0
    faults: tuple[ChaosFault, ...] = field(default_factory=tuple)

    @classmethod
    def parse(cls, spec: str, *, seed: int = 0) -> "ChaosPlan":
        """Parse a CLI spec: ``kind[:target[:count[:seconds]]],...``."""
        faults = []
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            parts = token.split(":")
            kind = parts[0]
            kwargs: dict = {}
            if len(parts) > 1 and parts[1]:
                kwargs["target"] = parts[1]
            try:
                if len(parts) > 2 and parts[2]:
                    kwargs["count"] = int(parts[2])
                if len(parts) > 3 and parts[3]:
                    kwargs["seconds"] = float(parts[3])
            except ValueError as error:
                raise ChaosError(
                    f"chaos token {token!r}: {error}"
                ) from None
            if len(parts) > 4:
                raise ChaosError(
                    f"chaos token {token!r}: expected "
                    "kind[:target[:count[:seconds]]]"
                )
            faults.append(ChaosFault(kind=kind, **kwargs))
        if not faults:
            raise ChaosError(f"chaos spec {spec!r} names no faults")
        return cls(seed=seed, faults=tuple(faults))

    def describe(self) -> str:
        return ", ".join(
            f"{f.kind}:{f.target}" for f in self.faults
        ) + f" (seed {self.seed})"

    # ------------------------------------------------------- compilation

    def fault_plan(self, experiment_ids) -> FaultPlan | None:
        """Compile pool-category faults into a :class:`FaultPlan`.

        ``kill``/``straggler`` map to the fault kinds of the same name;
        ``hang`` maps to the existing ``timeout`` kind (a hang *is* a
        sleep past the budget).  A ``*`` target expands to every
        selected experiment.  Returns ``None`` when the plan has no
        pool faults.
        """
        plan = FaultPlan()
        mapped = {"kill": "kill", "straggler": "straggler", "hang": "timeout"}
        for chaos_fault in self.faults:
            kind = mapped.get(chaos_fault.kind)
            if kind is None:
                continue
            targets = (
                list(experiment_ids)
                if chaos_fault.target == "*"
                else [chaos_fault.target]
            )
            for exp_id in targets:
                plan.add(
                    exp_id,
                    kind,
                    count=chaos_fault.count,
                    seconds=chaos_fault.seconds,
                )
        return plan if plan.faults else None

    def fs_budgets(self) -> dict[str, dict]:
        """Per-site mutable budgets for :func:`fs_check` (one process)."""
        budgets: dict[str, dict] = {}
        for chaos_fault in self.faults:
            if chaos_fault.category != "fs":
                continue
            budgets[chaos_fault.target] = {
                "errno": _ERRNOS[chaos_fault.kind],
                "kind": chaos_fault.kind,
                "remaining": chaos_fault.count,
            }
        return budgets

    # --------------------------------------------------- disk corruption

    def apply_disk(
        self,
        cache_root: str | pathlib.Path | None,
        manifest_path: str | pathlib.Path | None,
        *,
        stream=None,
    ) -> list[str]:
        """Apply disk-category faults to on-disk state, pre-run.

        Corrupts whatever currently exists (a cold cache or absent
        manifest yields no injections for that fault); returns a
        description line per applied injection and echoes them to
        ``stream``.
        """
        applied: list[str] = []
        root = pathlib.Path(cache_root) if cache_root else None
        state = _lcg(self.seed ^ 0x9E3779B97F4A7C15)
        for chaos_fault in self.faults:
            if chaos_fault.category != "disk":
                continue
            if chaos_fault.kind == "torn-manifest":
                if manifest_path and tear_manifest(manifest_path):
                    applied.append(f"tore manifest {manifest_path}")
                continue
            if root is None or not root.is_dir():
                continue
            pattern = (
                "*.v2.npy"
                if chaos_fault.target == "*"
                else f"{chaos_fault.target}-s*.v2.npy"
            )
            for entry in sorted(root.glob(pattern)):
                state = _lcg(state)
                if chaos_fault.kind == "bitflip":
                    if bitflip_file(entry, state):
                        applied.append(f"bit-flipped {entry.name}")
                elif chaos_fault.kind == "truncate":
                    if truncate_file(entry, state):
                        applied.append(f"truncated {entry.name}")
                elif chaos_fault.kind == "stale-v1":
                    v1 = plant_stale_v1(entry)
                    if v1 is not None:
                        applied.append(f"planted stale v1 {v1.name}")
        if applied:
            from repro.telemetry.logging import get_logger

            log = get_logger("chaos")
            for line in applied:
                log.warning("chaos.injected", action=line)
        if stream is not None:
            for line in applied:
                print(f"chaos: {line}", file=stream)
        return applied


# ----------------------------------------------------- corruption helpers


def bitflip_file(path: str | pathlib.Path, seed: int) -> bool:
    """Flip one deterministic payload bit of ``path`` (skips the .npy
    header so numpy still parses the file — the silent-corruption case).
    """
    path = pathlib.Path(path)
    try:
        blob = bytearray(path.read_bytes())
    except OSError:
        return False
    if not blob:
        return False
    start = _NPY_HEADER_BYTES if len(blob) > _NPY_HEADER_BYTES else 0
    state = _lcg(seed)
    index = start + (state >> 33) % (len(blob) - start)
    blob[index] ^= 1 << ((state >> 13) % 8)
    try:
        path.write_bytes(bytes(blob))
    except OSError:
        return False
    return True


def truncate_file(path: str | pathlib.Path, seed: int) -> bool:
    """Cut ``path`` short at a deterministic mid-record offset."""
    path = pathlib.Path(path)
    try:
        size = path.stat().st_size
    except OSError:
        return False
    if size <= _NPY_HEADER_BYTES:
        return False
    state = _lcg(seed)
    keep = _NPY_HEADER_BYTES + (state >> 33) % (size - _NPY_HEADER_BYTES)
    try:
        with open(path, "r+b") as handle:
            handle.truncate(keep)
    except OSError:
        return False
    return True


def plant_stale_v1(v2_path: str | pathlib.Path) -> pathlib.Path | None:
    """Write a stale (valid but outdated) v1 archive next to a v2 entry.

    The v1 trace is a tiny well-formed NOP trace that is *wrong* for the
    workload — if the cache ever preferred it over the v2 entry, the
    sweep's numbers would silently change.  Tests assert v2 still wins.
    """
    from repro.func.trace import save_trace

    v2_path = pathlib.Path(v2_path)
    name = v2_path.name
    if not name.endswith(".v2.npy"):
        return None
    v1_path = v2_path.with_name(name[: -len(".v2.npy")] + ".npz")
    stale = [(4096 + 4 * i, 0, -1, -1, -1, 0) for i in range(16)]
    try:
        save_trace(str(v1_path), stale)
    except OSError:
        return None
    return v1_path


def tear_manifest(path: str | pathlib.Path) -> bool:
    """Truncate a JSON manifest mid-entry (simulated torn write)."""
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError:
        return False
    if len(text) < 8:
        return False
    try:
        path.write_text(text[: 2 * len(text) // 3])
    except OSError:
        return False
    return True


# ----------------------------------------------------- runtime injection

_active_plan: ChaosPlan | None = None
_fs_budgets: dict[str, dict] = {}


def activate(plan: ChaosPlan | None) -> None:
    """Install ``plan`` process-wide (pool workers call this via the
    initializer; ``None`` uninstalls)."""
    global _active_plan, _fs_budgets
    _active_plan = plan
    _fs_budgets = plan.fs_budgets() if plan is not None else {}


def deactivate() -> None:
    activate(None)


def active_plan() -> ChaosPlan | None:
    return _active_plan


@contextlib.contextmanager
def active(plan: ChaosPlan):
    """Scoped :func:`activate` for tests."""
    activate(plan)
    try:
        yield plan
    finally:
        deactivate()


def fs_check(site: str) -> None:
    """Raise the scheduled OSError for ``site``, if any remains.

    Called by the trace cache and the manifest writer immediately before
    they touch the filesystem.  With no plan installed this is one
    global-is-None check; budgets are per process (the parent and each
    worker replay the same first-``count``-calls schedule).
    """
    if _active_plan is None:
        return
    budget = _fs_budgets.get(site)
    if not budget or budget["remaining"] <= 0:
        return
    budget["remaining"] -= 1
    code = budget["errno"]
    raise OSError(
        code,
        f"injected {budget['kind']} at fault site {site!r}: "
        f"{os.strerror(code)}",
    )
