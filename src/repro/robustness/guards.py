"""Runtime invariant guards for the timing model.

The timestamp formulation of :mod:`repro.core.processor` cannot literally
loop forever — it walks the trace in program order — but it has an exactly
analogous failure mode: a corrupted structure (or a buggy model change)
hands back an absurd busy-until time and every later instruction inherits
it, so the run "completes" with a cycle count that is pure garbage.  The
guards here turn that silent poisoning into a structured, diagnosable
error:

* **Forward-progress watchdog** — if the retire time jumps by more than
  ``max_stall_cycles`` between consecutive instructions, no real machine
  behaviour explains the gap (the worst legitimate stall is bounded by
  memory latency plus queueing on the BIU, orders of magnitude smaller)
  and the run is aborted.
* **Cycle-count overflow** — timestamps past ``cycle_limit`` mean the
  model has diverged; Python's big ints would happily keep going.
* **Occupancy guards** — every ``check_period`` instructions the MSHR
  file, write cache and FPU queues assert that their occupancy never
  exceeded configured capacity (each structure exposes
  ``assert_capacity()``; violations raise :class:`GuardViolation`).

All failures surface as :class:`SimulationError` carrying the offending
cycle, the instruction index, a config fingerprint, and a snapshot of the
stall counters at the point of death — enough to reproduce and triage
without rerunning under a debugger.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.config import MachineConfig


def config_fingerprint(config: MachineConfig) -> str:
    """Stable short hash identifying a machine configuration.

    Derived from the dataclass repr (which covers every field, including
    the nested :class:`~repro.core.config.FPUConfig`), so two configs
    fingerprint equal iff they are field-for-field equal.
    """
    return hashlib.sha256(repr(config).encode()).hexdigest()[:16]


class GuardViolation(RuntimeError):
    """A hardware structure broke one of its internal invariants."""


class SimulationError(RuntimeError):
    """A timing run was aborted by a runtime invariant guard.

    Carries everything needed to triage without re-running: the reason
    category, the cycle and instruction index at which the guard fired,
    the config label and fingerprint, and the stall-counter snapshot.
    """

    def __init__(
        self,
        reason: str,
        message: str,
        *,
        cycle: int,
        instruction_index: int,
        config: MachineConfig,
        stall_snapshot: dict | None = None,
    ) -> None:
        self.reason = reason
        self.cycle = cycle
        self.instruction_index = instruction_index
        self.config_label = config.label
        self.fingerprint = config_fingerprint(config)
        self.stall_snapshot = dict(stall_snapshot or {})
        stalls = ", ".join(
            f"{getattr(kind, 'value', kind)}={count}"
            for kind, count in self.stall_snapshot.items()
            if count
        )
        super().__init__(
            f"[{reason}] {message} "
            f"(cycle {cycle}, instruction {instruction_index}, "
            f"machine {self.config_label}, fingerprint {self.fingerprint}"
            + (f", stalls: {stalls}" if stalls else "")
            + ")"
        )


@dataclass(frozen=True)
class RobustnessPolicy:
    """Tunable bounds for the runtime guards.

    The defaults are generous enough that no legitimate run trips them
    (the worst observed retire-to-retire gap across the full paper sweep
    is a few thousand cycles, against a one-million default), so guards
    stay on in production; tests shrink the bounds to provoke trips.
    """

    enabled: bool = True
    #: Largest allowed retire-time jump between consecutive instructions.
    max_stall_cycles: int = 1_000_000
    #: Abort when any timestamp exceeds this (cycle-count overflow).
    cycle_limit: int = 1 << 62
    #: Run the structure occupancy checks every this many instructions.
    check_period: int = 4096

    def __post_init__(self) -> None:
        if self.max_stall_cycles < 1:
            raise ValueError("max_stall_cycles must be >= 1")
        if self.cycle_limit < 1:
            raise ValueError("cycle_limit must be >= 1")
        if self.check_period < 1:
            raise ValueError("check_period must be >= 1")


#: Policy with every guard disabled (for micro-benchmarks of the core loop).
DISABLED_POLICY = RobustnessPolicy(enabled=False)


@dataclass
class Watchdog:
    """Forward-progress and overflow watchdog for one timing run.

    The processor feeds it every instruction's retire time via
    :meth:`observe`; occupancy-checked structures are registered and
    polled every ``policy.check_period`` instructions.
    """

    config: MachineConfig
    policy: RobustnessPolicy = field(default_factory=RobustnessPolicy)
    stall_source: object | None = None  # exposes a dict snapshot via dict()

    def __post_init__(self) -> None:
        self._last_retire = 0
        self._structures: list[object] = []
        self._countdown = self.policy.check_period

    def watch(self, structure: object) -> None:
        """Register a structure exposing ``assert_capacity()``."""
        self._structures.append(structure)

    def observe(self, index: int, retire: int) -> None:
        """Feed one instruction's retire time; raises on violations."""
        policy = self.policy
        gap = retire - self._last_retire
        if gap > policy.max_stall_cycles:
            raise self._error(
                "forward-progress",
                f"no instruction retired for {gap} cycles "
                f"(bound {policy.max_stall_cycles}); pipeline wedged",
                cycle=retire,
                index=index,
            )
        if retire > policy.cycle_limit:
            raise self._error(
                "cycle-overflow",
                f"cycle count {retire} exceeds limit {policy.cycle_limit}",
                cycle=retire,
                index=index,
            )
        if retire > self._last_retire:
            self._last_retire = retire
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = policy.check_period
            self.check_structures(index, retire)

    def check_structures(self, index: int, cycle: int) -> None:
        """Run every registered structure's occupancy assertion."""
        for structure in self._structures:
            try:
                structure.assert_capacity()
            except GuardViolation as violation:
                raise self._error(
                    "occupancy", str(violation), cycle=cycle, index=index
                ) from violation

    # ------------------------------------------------------------ internals

    def _error(
        self, reason: str, message: str, *, cycle: int, index: int
    ) -> SimulationError:
        snapshot: dict = {}
        source = self.stall_source
        if source is not None:
            try:
                snapshot = dict(source)
            except TypeError:
                snapshot = {}
        return SimulationError(
            reason,
            message,
            cycle=cycle,
            instruction_index=index,
            config=self.config,
            stall_snapshot=snapshot,
        )
