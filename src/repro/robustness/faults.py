"""Deterministic fault injection for exercising the robustness layers.

Nothing here fires in a normal run: faults are injected only when a
:class:`FaultPlan` is explicitly passed to
:class:`~repro.robustness.runner.ResilientRunner` (or when
:func:`corrupt_trace` is called on a trace).  Everything is deterministic
— fault kinds and counts come from the plan, trace corruption from a
seeded LCG — so the failure paths are testable byte-for-byte.

Supported fault kinds (``FaultSpec.kind``):

* ``"crash"`` — raise :class:`RuntimeError` on every attempt (a permanent
  failure: exercises containment and the failure report),
* ``"transient"`` — raise :class:`TransientFault` on the first
  ``FaultSpec.count`` attempts, then let the experiment run (exercises
  bounded-backoff retry),
* ``"timeout"`` — sleep ``FaultSpec.seconds`` before running (exercises
  the per-experiment wall-clock timeout; a worker *hang* is this fault
  under a pool with ``--timeout`` set),
* ``"corrupt-result"`` — run the experiment, then return an object whose
  ``render()`` raises (exercises containment of post-processing errors),
* ``"kill"`` — in a pool worker, ``SIGKILL`` the worker process on the
  first ``FaultSpec.count`` executions (exercises pool-break
  containment, quarantine attribution and recovery); in serial mode the
  sweep itself cannot be killed, so the fault is contained as a crash,
* ``"straggler"`` — sleep ``FaultSpec.seconds`` before running on the
  first ``count`` executions, then succeed (exercises slow-worker
  tolerance: the sweep completes with identical results, just later).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class TransientFault(RuntimeError):
    """A failure expected to succeed on retry (injected or environmental)."""


class _CorruptResult:
    """Result stand-in whose rendering blows up (post-processing fault)."""

    def render(self) -> str:
        raise RuntimeError("injected corrupt result: render() failed")


@dataclass(frozen=True)
class FaultSpec:
    """One experiment's injected fault."""

    kind: str  # see _KINDS
    count: int = 1  # transient/kill/straggler: how many executions fault
    seconds: float = 3600.0  # timeout: wedge length; straggler: delay

    _KINDS = (
        "crash", "transient", "timeout", "corrupt-result", "kill",
        "straggler",
    )

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(self._KINDS)}"
            )
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.seconds <= 0:
            raise ValueError("seconds must be > 0")


@dataclass
class FaultPlan:
    """Maps experiment ids to the fault injected into their execution.

    The runner calls :meth:`wrap` around each experiment callable; for
    unlisted experiments the callable passes through untouched.
    """

    faults: dict[str, FaultSpec] = field(default_factory=dict)
    #: attempts seen so far, per experiment (for transient counting)
    attempts: dict[str, int] = field(default_factory=dict)
    #: sleep hook, replaceable in tests so "timeout" faults are instant
    sleep: object = time.sleep

    def add(self, exp_id: str, kind: str, **kwargs) -> "FaultPlan":
        self.faults[exp_id] = FaultSpec(kind=kind, **kwargs)
        return self

    def wrap(self, exp_id: str, fn):
        """Wrap ``fn`` with this plan's fault for ``exp_id`` (if any)."""
        spec = self.faults.get(exp_id)
        if spec is None:
            return fn

        def faulty(*args, **kwargs):
            attempt = self.attempts.get(exp_id, 0) + 1
            self.attempts[exp_id] = attempt
            if spec.kind == "crash":
                raise RuntimeError(
                    f"injected crash in experiment {exp_id!r} "
                    f"(attempt {attempt})"
                )
            if spec.kind == "transient" and attempt <= spec.count:
                raise TransientFault(
                    f"injected transient fault in experiment {exp_id!r} "
                    f"(attempt {attempt}/{spec.count})"
                )
            if spec.kind == "kill" and attempt <= spec.count:
                # Serial mode runs in the sweep process itself; killing
                # it would kill the sweep, so the fault degrades to a
                # contained permanent failure (the pool path delivers a
                # real SIGKILL — see runner._InjectedFault).
                raise RuntimeError(
                    f"injected worker kill in experiment {exp_id!r} "
                    f"(attempt {attempt}; serial mode: contained as crash)"
                )
            if spec.kind == "timeout":
                self.sleep(spec.seconds)
            if spec.kind == "straggler" and attempt <= spec.count:
                self.sleep(spec.seconds)
            result = fn(*args, **kwargs)
            if spec.kind == "corrupt-result":
                return _CorruptResult()
            return result

        return faulty


def corrupt_trace(trace: list, seed: int = 0, fraction: float = 0.001) -> list:
    """Return a copy of ``trace`` with deterministically corrupted records.

    Uses a seeded LCG (no ``random`` module state touched) to pick victim
    records and smash one field per victim — an out-of-range register id,
    an unknown kind, or a negative address — always including record 0 so
    the sampled validator of :func:`repro.robustness.validation.validate_trace`
    is guaranteed to see at least one bad record.
    """
    corrupted = list(trace)
    if not corrupted:
        return corrupted
    count = max(1, int(len(corrupted) * fraction))
    state = (seed * 6364136223846793005 + 1442695040888963407) & (2**64 - 1)
    victims = {0}
    while len(victims) < min(count, len(corrupted)):
        state = (state * 6364136223846793005 + 1442695040888963407) & (2**64 - 1)
        victims.add((state >> 33) % len(corrupted))
    smashers = (
        lambda r: (r[0], r[1], 999, r[3], r[4], r[5]),  # bad dst register
        lambda r: (r[0], 127, r[2], r[3], r[4], r[5]),  # unknown kind
        lambda r: (r[0], r[1], r[2], r[3], r[4], -8),  # negative address
        lambda r: (-4, r[1], r[2], r[3], r[4], r[5]),  # negative pc
    )
    for which, index in enumerate(sorted(victims)):
        record = tuple(corrupted[index])
        corrupted[index] = smashers[which % len(smashers)](record)
    return corrupted
