"""Fault-tolerant experiment execution with checkpoint/resume.

``run_all`` used to be a bare loop: the first crash threw away every
finished experiment and a hung one blocked the sweep forever.
:class:`ResilientRunner` replaces that with:

* **Isolation** — each experiment runs in its own worker thread; any
  exception (including in ``render()``) is contained and recorded, and a
  per-experiment wall-clock timeout abandons hung runs instead of
  blocking the sweep.
* **Retry** — failures classified as transient (by default
  :class:`~repro.robustness.faults.TransientFault` and :class:`OSError`)
  are retried with bounded exponential backoff; permanent failures are
  not retried, they are reported.
* **Checkpointing** — every completed experiment's rendered report is
  written to a JSON manifest keyed by ``(experiment id, factor, code
  hash)``.  A re-run with the same key skips finished work and re-runs
  only what failed; a code change or different factor invalidates the
  key, so stale results are never reused.
* **Partial-results report** — the runner always finishes and emits a
  :class:`RunReport` listing succeeded / failed / checkpoint-skipped
  experiments with their causes.

Manifest format (``version`` 1)::

    {"version": 1,
     "entries": {"fig4": {"key": "fig4|factor=0.1|code=<hash>",
                          "status": "ok",
                          "elapsed": 12.3,
                          "completed_at": 1722950000.0,
                          "text": "<rendered report>"}}}

Deterministic fault injection (:class:`~repro.robustness.faults.FaultPlan`)
hooks in between the runner and the experiment callables, which is how the
tests exercise every path above without flaky sleeps.
"""

from __future__ import annotations

import functools
import hashlib
import json
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.robustness.faults import FaultPlan, TransientFault

MANIFEST_VERSION = 1
#: Default manifest location (relative to ``out_dir`` when one is given).
MANIFEST_NAME = "manifest.json"


class ExperimentTimeout(RuntimeError):
    """An experiment exceeded its wall-clock budget and was abandoned."""


@dataclass(frozen=True)
class CheckpointedResult:
    """Stand-in result restored from the manifest (text only)."""

    exp_id: str
    text: str

    def render(self) -> str:
        return self.text


@dataclass
class ExperimentOutcome:
    """What happened to one experiment in one sweep."""

    exp_id: str
    status: str  # "ok" | "failed" | "timeout" | "checkpointed"
    attempts: int = 0
    elapsed: float = 0.0
    error: str | None = None

    @property
    def succeeded(self) -> bool:
        return self.status in ("ok", "checkpointed")


@dataclass
class RunReport:
    """Partial-results summary the runner always emits."""

    outcomes: list[ExperimentOutcome] = field(default_factory=list)

    @property
    def succeeded(self) -> list[ExperimentOutcome]:
        return [o for o in self.outcomes if o.status == "ok"]

    @property
    def checkpointed(self) -> list[ExperimentOutcome]:
        return [o for o in self.outcomes if o.status == "checkpointed"]

    @property
    def failed(self) -> list[ExperimentOutcome]:
        return [o for o in self.outcomes if not o.succeeded]

    @property
    def ok(self) -> bool:
        return not self.failed

    def render(self) -> str:
        lines = [
            "experiment sweep report: "
            f"{len(self.succeeded)} ran, "
            f"{len(self.checkpointed)} from checkpoint, "
            f"{len(self.failed)} failed"
        ]
        for outcome in self.outcomes:
            line = f"  {outcome.exp_id:<10} {outcome.status:<13}"
            if outcome.status == "ok":
                line += f"{outcome.elapsed:7.1f}s  ({outcome.attempts} attempt"
                line += "s)" if outcome.attempts != 1 else ")"
            elif outcome.error:
                line += f" {outcome.error}"
            lines.append(line)
        return "\n".join(lines)


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every ``repro`` source file — the manifest's code key.

    Any edit to the simulator or the experiment drivers changes the
    fingerprint, which invalidates checkpointed results (they were
    produced by different code).
    """
    package_root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def _default_is_transient(error: BaseException) -> bool:
    return isinstance(error, (TransientFault, OSError))


class ResilientRunner:
    """Run a mapping of experiments fault-tolerantly (see module docs)."""

    def __init__(
        self,
        manifest_path: str | pathlib.Path | None = None,
        *,
        timeout: float | None = None,
        retries: int = 2,
        backoff: float = 0.25,
        max_backoff: float = 2.0,
        fault_plan: FaultPlan | None = None,
        is_transient: Callable[[BaseException], bool] = _default_is_transient,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be > 0 (or None)")
        if backoff < 0 or max_backoff < 0:
            raise ValueError("backoff values must be >= 0")
        self.manifest_path = (
            pathlib.Path(manifest_path) if manifest_path else None
        )
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.fault_plan = fault_plan
        self.is_transient = is_transient
        self._sleep = sleep
        self._clock = clock

    # ----------------------------------------------------------------- run

    def run(
        self,
        experiments: Mapping[str, Callable[[float], object]],
        *,
        factor: float = 1.0,
        only: list[str] | None = None,
        resume: bool = True,
        stream=None,
        out_dir: str | pathlib.Path | None = None,
        code_hash: str | None = None,
    ) -> tuple[dict[str, object], RunReport]:
        """Run the selected experiments; returns ``(results, report)``.

        ``results`` maps experiment id to the driver's result object, or a
        :class:`CheckpointedResult` when the manifest supplied it.
        """
        if only:
            unknown = sorted(set(only) - set(experiments))
            if unknown:
                raise ValueError(
                    f"unknown experiment ids: {', '.join(unknown)}; "
                    f"known: {', '.join(sorted(experiments))}"
                )
        code_hash = code_hash or code_fingerprint()
        out_path = pathlib.Path(out_dir) if out_dir else None
        if out_path:
            out_path.mkdir(parents=True, exist_ok=True)
        manifest_path = self.manifest_path
        if manifest_path is None and out_path is not None:
            manifest_path = out_path / MANIFEST_NAME
        entries = self._load_manifest(manifest_path) if resume else {}

        results: dict[str, object] = {}
        report = RunReport()
        for exp_id, runner_fn in experiments.items():
            if only and exp_id not in only:
                continue
            key = self._key(exp_id, factor, code_hash)
            entry = entries.get(exp_id)
            if entry and entry.get("key") == key and entry.get("status") == "ok":
                results[exp_id] = CheckpointedResult(exp_id, entry.get("text", ""))
                report.outcomes.append(
                    ExperimentOutcome(exp_id, "checkpointed")
                )
                self._emit(stream, exp_id, "checkpointed", entry.get("text", ""))
                continue
            outcome, text, result = self._run_one(exp_id, runner_fn, factor)
            report.outcomes.append(outcome)
            if outcome.status == "ok":
                results[exp_id] = result
                entries[exp_id] = {
                    "key": key,
                    "status": "ok",
                    "elapsed": outcome.elapsed,
                    "completed_at": time.time(),
                    "text": text,
                }
                if out_path:
                    (out_path / f"{exp_id}.txt").write_text(text + "\n")
                self._save_manifest(manifest_path, entries)
                self._emit(
                    stream,
                    exp_id,
                    f"ok ({outcome.elapsed:.1f}s)",
                    text,
                )
            else:
                # Drop any stale checkpoint for a now-failing experiment.
                if entry is not None and entry.get("key") != key:
                    entries.pop(exp_id, None)
                    self._save_manifest(manifest_path, entries)
                self._emit(
                    stream,
                    exp_id,
                    f"{outcome.status}: {outcome.error}",
                    None,
                )
        if stream is not None:
            print(report.render(), file=stream)
        return results, report

    # ------------------------------------------------------------ internals

    def _run_one(self, exp_id, runner_fn, factor):
        """Execute one experiment with containment, timeout and retry."""
        fn = runner_fn
        if self.fault_plan is not None:
            fn = self.fault_plan.wrap(exp_id, fn)
        attempts = 0
        started = self._clock()
        while True:
            attempts += 1
            try:
                result = self._call_with_timeout(exp_id, fn, factor)
                text = result.render()
                elapsed = self._clock() - started
                return (
                    ExperimentOutcome(exp_id, "ok", attempts, elapsed),
                    text,
                    result,
                )
            except ExperimentTimeout as error:
                elapsed = self._clock() - started
                return (
                    ExperimentOutcome(
                        exp_id, "timeout", attempts, elapsed, str(error)
                    ),
                    None,
                    None,
                )
            except BaseException as error:  # noqa: BLE001 - containment
                if self.is_transient(error) and attempts <= self.retries:
                    delay = min(
                        self.backoff * (2 ** (attempts - 1)), self.max_backoff
                    )
                    if delay > 0:
                        self._sleep(delay)
                    continue
                elapsed = self._clock() - started
                cause = f"{type(error).__name__}: {error}"
                return (
                    ExperimentOutcome(
                        exp_id, "failed", attempts, elapsed, cause
                    ),
                    None,
                    None,
                )

    def _call_with_timeout(self, exp_id, fn, factor):
        if self.timeout is None:
            return fn(factor)
        box: dict[str, object] = {}

        def target() -> None:
            try:
                box["value"] = fn(factor)
            except BaseException as error:  # noqa: BLE001 - re-raised below
                box["error"] = error

        worker = threading.Thread(
            target=target, name=f"experiment-{exp_id}", daemon=True
        )
        worker.start()
        worker.join(self.timeout)
        if worker.is_alive():
            # The thread cannot be killed; it is abandoned as a daemon.
            raise ExperimentTimeout(
                f"experiment {exp_id!r} exceeded {self.timeout:g}s "
                "wall-clock budget and was abandoned"
            )
        if "error" in box:
            raise box["error"]
        return box["value"]

    @staticmethod
    def _key(exp_id: str, factor: float, code_hash: str) -> str:
        return f"{exp_id}|factor={factor!r}|code={code_hash}"

    @staticmethod
    def _load_manifest(path: pathlib.Path | None) -> dict:
        if path is None or not path.exists():
            return {}
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}  # corrupt manifest: start fresh rather than die
        if data.get("version") != MANIFEST_VERSION:
            return {}
        entries = data.get("entries")
        return entries if isinstance(entries, dict) else {}

    @staticmethod
    def _save_manifest(path: pathlib.Path | None, entries: dict) -> None:
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"version": MANIFEST_VERSION, "entries": entries}, indent=2
        )
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(payload)
        tmp.replace(path)  # atomic: a crash never corrupts the manifest

    @staticmethod
    def _emit(stream, exp_id: str, status: str, text: str | None) -> None:
        if stream is None:
            return
        print(f"==== {exp_id} ({status}) ====", file=stream)
        if text:
            print(text, file=stream)
        print(file=stream)
