"""Fault-tolerant experiment execution with checkpoint/resume.

``run_all`` used to be a bare loop: the first crash threw away every
finished experiment and a hung one blocked the sweep forever.
:class:`ResilientRunner` replaces that with:

* **Isolation** — each experiment runs in a worker; any exception
  (including in ``render()``) is contained and recorded, and a
  per-experiment wall-clock timeout stops hung runs instead of blocking
  the sweep.
* **Parallelism** — with ``jobs > 1`` experiments run in worker
  *processes* (a ``concurrent.futures.ProcessPoolExecutor``): true
  multi-core execution outside the GIL, hard timeout enforcement (the
  worker process is killed, not abandoned), and containment of
  segfault-class worker deaths.  ``jobs=1`` (the default) keeps the
  serial in-process path, where a timeout can only *abandon* the worker
  thread (it keeps burning CPU — threads cannot be killed).
* **Retry** — failures classified as transient (by default
  :class:`~repro.robustness.faults.TransientFault` and :class:`OSError`)
  are retried with bounded exponential backoff; permanent failures are
  not retried, they are reported.
* **Checkpointing** — every completed experiment's rendered report is
  written to a JSON manifest keyed by ``(experiment id, factor, code
  hash)``.  A re-run with the same key skips finished work and re-runs
  only what failed; a code change or different factor invalidates the
  key, so stale results are never reused.
* **Partial-results report** — the runner always finishes and emits a
  :class:`RunReport` listing succeeded / failed / checkpoint-skipped
  experiments with their causes, per-experiment wall time, the worker
  that ran each one, and persistent trace-cache hit/miss counts (see
  :mod:`repro.workloads.trace_cache`).

Manifest format (``version`` 1; the three observability keys were added
later — absent in old manifests, ignored by old readers)::

    {"version": 1,
     "entries": {"fig4": {"key": "fig4|factor=0.1|code=<hash>",
                          "status": "ok",
                          "elapsed": 12.3,
                          "completed_at": 1722950000.0,
                          "worker": "pid-4242",
                          "trace_cache_hits": 15,
                          "trace_cache_misses": 0,
                          "text": "<rendered report>"}},
     "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}}

The top-level ``metrics`` key (a
:meth:`~repro.telemetry.metrics.MetricsRegistry.as_dict` snapshot of the
sweep's ``runner.*`` metrics) is likewise optional and ignored by old
readers; the same registry is exported to ``<out>/metrics/runner.json``
and each experiment gets ``<out>/metrics/<exp_id>.json``.  When span
tracing is on and a Chrome trace export was requested, a top-level
``trace`` key records where that file lands.

Deterministic fault injection (:class:`~repro.robustness.faults.FaultPlan`)
hooks in between the runner and the experiment callables, which is how the
tests exercise every path above without flaky sleeps.  In process mode
the same fault specs are replayed by a picklable shim
(:class:`_InjectedFault`) with the attempt counter tracked in the parent.

Worker-death attribution.  When a worker process dies (segfault, OOM
kill, ``SIGKILL``), ``ProcessPoolExecutor`` breaks the *whole* pool and
fails every in-flight future, so the culprit cannot be identified
directly.  The runner rebuilds the pool, resubmits experiments that were
still queued, and re-runs the ones that were actually executing through
a single-worker quarantine pool, one at a time: if the quarantine pool
breaks too, the experiment running in it is the culprit and is marked
failed; innocent bystanders complete normally.
"""

from __future__ import annotations

import concurrent.futures
import functools
import hashlib
import json
import multiprocessing
import os
import pathlib
import pickle
import signal
import threading
import time
from collections import deque
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.kernel import batch_snapshot, kernel_mode
from repro.func.prepared import prepare_snapshot
from repro.robustness.faults import FaultPlan, TransientFault, _CorruptResult
from repro.robustness.signals import GracefulSignals
from repro.telemetry import tracing
from repro.telemetry import logging as structlog
from repro.telemetry.logging import get_logger
from repro.telemetry.metrics import MetricsRegistry, publish_stats
from repro.telemetry.tracing import SpanTracer
from repro.workloads import trace_cache

_log = get_logger("runner")

MANIFEST_VERSION = 1
#: Default manifest location (relative to ``out_dir`` when one is given).
MANIFEST_NAME = "manifest.json"


def _chaos_check(site: str) -> None:
    """Chaos fault-site hook (lazy import: chaos pulls in this module's
    package, so a top-level import would be order-sensitive)."""
    from repro.robustness import chaos

    chaos.fs_check(site)


class ExperimentTimeout(RuntimeError):
    """An experiment exceeded its wall-clock budget and was abandoned."""


@dataclass(frozen=True)
class CheckpointedResult:
    """Stand-in result restored from the manifest (text only)."""

    exp_id: str
    text: str

    def render(self) -> str:
        return self.text


@dataclass
class ExperimentOutcome:
    """What happened to one experiment in one sweep."""

    exp_id: str
    status: str  # "ok" | "failed" | "timeout" | "checkpointed" | "interrupted"
    attempts: int = 0
    elapsed: float = 0.0
    error: str | None = None
    #: Who executed the final attempt: "main" (serial path) or "pid-<n>".
    worker: str = "main"
    #: Persistent trace-cache hits/misses attributed to this experiment.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Columnar trace preparations (and their wall seconds) attributed to
    #: this experiment — near zero on warm sweeps, where every config
    #: reuses the workload's already-prepared columns.
    prepares: int = 0
    prepare_seconds: float = 0.0
    #: Trace-cache degradations attributed to this experiment: stores
    #: that fell back to in-memory-only and entries failing checksum.
    cache_degraded: int = 0
    cache_checksum_failures: int = 0
    #: Batched-kernel usage attributed to this experiment: grouped
    #: simulate_many calls and the configs they advanced (zero under the
    #: scalar kernel).
    batched_calls: int = 0
    batched_configs: int = 0

    @property
    def succeeded(self) -> bool:
        return self.status in ("ok", "checkpointed")


@dataclass
class RunReport:
    """Partial-results summary the runner always emits."""

    outcomes: list[ExperimentOutcome] = field(default_factory=list)
    #: Sweep-level observability metrics (``runner.*``); also embedded in
    #: the manifest and exported to ``<out>/metrics/runner.json``.
    metrics: MetricsRegistry | None = None
    #: Signal name ("SIGINT"/"SIGTERM") when the sweep was interrupted
    #: and shut down gracefully, else None.
    interrupted: str | None = None

    @property
    def succeeded(self) -> list[ExperimentOutcome]:
        return [o for o in self.outcomes if o.status == "ok"]

    @property
    def checkpointed(self) -> list[ExperimentOutcome]:
        return [o for o in self.outcomes if o.status == "checkpointed"]

    @property
    def failed(self) -> list[ExperimentOutcome]:
        return [o for o in self.outcomes if not o.succeeded]

    @property
    def ok(self) -> bool:
        return not self.failed

    def render(self) -> str:
        lines = [
            "experiment sweep report: "
            f"{len(self.succeeded)} ran, "
            f"{len(self.checkpointed)} from checkpoint, "
            f"{len(self.failed)} failed"
        ]
        if self.interrupted:
            lines.append(
                f"  interrupted by {self.interrupted}: partial results; "
                "checkpoint flushed, resume to finish the rest"
            )
        for outcome in self.outcomes:
            line = f"  {outcome.exp_id:<10} {outcome.status:<13}"
            if outcome.status == "ok":
                line += f"{outcome.elapsed:7.1f}s  ({outcome.attempts} attempt"
                line += "s" if outcome.attempts != 1 else ""
                line += f", {outcome.worker}"
                line += (
                    f", trace-cache {outcome.cache_hits}h/"
                    f"{outcome.cache_misses}m)"
                )
            elif outcome.error:
                line += f" {outcome.error}"
            lines.append(line)
        return "\n".join(lines)


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every ``repro`` source file — the manifest's code key.

    Any edit to the simulator or the experiment drivers changes the
    fingerprint, which invalidates checkpointed results (they were
    produced by different code).
    """
    package_root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def _default_is_transient(error: BaseException) -> bool:
    return isinstance(error, (TransientFault, OSError))


# --------------------------------------------------------- process workers
#
# Everything a ProcessPoolExecutor ships to a worker must pickle, so the
# worker entry points live at module level and fault injection uses the
# picklable _InjectedFault shim instead of FaultPlan.wrap's closure.


def _start_method(requested: str | None) -> str:
    """Multiprocessing start method: explicit choice, else fork, else spawn.

    Fork is preferred where available — it inherits the imported
    simulator modules for free instead of re-importing them per worker.
    """
    if requested is not None:
        return requested
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def _pool_initializer(
    cache_root: str,
    cache_enabled: bool,
    cache_max_entries: int,
    cache_verify: bool = True,
    chaos_plan=None,
    log_destination: str | None = None,
    log_level: str = "INFO",
) -> None:
    """Point the worker's process-wide trace cache at the parent's.

    When the sweep runs under a chaos plan the same (picklable, frozen)
    plan is activated in every worker, so injected filesystem faults
    replay identically no matter which process hits the fault site.
    Structured logging propagates the same way: the parent forwards its
    installed (destination, level) and workers append whole JSON lines
    to the same file.
    """
    trace_cache.configure(
        cache_root,
        enabled=cache_enabled,
        max_entries=cache_max_entries,
        verify=cache_verify,
    )
    if chaos_plan is not None:
        from repro.robustness import chaos

        chaos.activate(chaos_plan)
    if log_destination is not None:
        from repro.telemetry import logging as structlog

        structlog.configure(log_destination, log_level)


def _pool_worker(fn, factor: float, trace_id: str | None = None) -> dict:
    """Run one experiment attempt in a worker process.

    Returns a picklable envelope instead of raising: exceptions are
    shipped to the parent for retry classification, and results that do
    not pickle degrade to their rendered text.

    ``trace_id`` (the sweep's span-correlation id) switches on span
    tracing inside the worker: a fresh worker-local tracer records the
    attempt's trace_build / cache_lookup / simulate spans, and the
    envelope ships them back (relative to the attempt start) for the
    parent to graft under the experiment's attempt span.
    """
    worker_tracer: SpanTracer | None = None
    if trace_id is not None:
        worker_tracer = SpanTracer(trace_id)
        tracing.set_tracer(worker_tracer)
    base_hits, base_misses = trace_cache.snapshot()
    base_degraded, base_checksum = trace_cache.health_snapshot()
    base_prepares, base_prepare_seconds = prepare_snapshot()
    base_batch_calls, base_batch_configs = batch_snapshot()
    started = time.monotonic()

    def _envelope(payload: dict) -> dict:
        hits, misses = trace_cache.snapshot()
        degraded, checksum = trace_cache.health_snapshot()
        prepares, prepare_seconds = prepare_snapshot()
        batch_calls, batch_configs = batch_snapshot()
        payload.update(
            wall=time.monotonic() - started,
            pid=os.getpid(),
            cache_hits=hits - base_hits,
            cache_misses=misses - base_misses,
            cache_degraded=degraded - base_degraded,
            cache_checksum_failures=checksum - base_checksum,
            prepares=prepares - base_prepares,
            prepare_seconds=prepare_seconds - base_prepare_seconds,
            batched_calls=batch_calls - base_batch_calls,
            batched_configs=batch_configs - base_batch_configs,
        )
        if worker_tracer is not None:
            payload["spans"] = worker_tracer.finished_records()
            # Workers are reused across experiments: never leak a stale
            # tracer into the next attempt's probe sites.
            tracing.set_tracer(None)
        else:
            payload["spans"] = []
        return payload

    try:
        result = fn(factor)
        text = result.render()
    except BaseException as error:  # noqa: BLE001 - shipped to the parent
        try:
            pickle.dumps(error)
        except Exception:  # noqa: BLE001 - unpicklable exception
            error = RuntimeError(f"{type(error).__name__}: {error}")
        return _envelope({"ok": False, "error": error})
    try:
        pickle.dumps(result)
    except Exception:  # noqa: BLE001 - unpicklable result
        result = None  # the parent substitutes a text-only stand-in
    return _envelope({"ok": True, "text": text, "result": result})


class _InjectedFault:
    """Picklable mirror of :meth:`FaultPlan.wrap` for process workers.

    The closure returned by ``wrap`` cannot cross a process boundary and
    worker-side attempt counters would reset with every retry, so the
    parent passes the attempt number in explicitly.  ``execution`` is a
    separate counter that also ticks on re-runs the retry ledger does
    *not* bill (quarantine re-runs, post-pool-break resubmits): a
    ``kill`` fault keyed on ``attempt`` would re-fire inside the
    quarantine pool and convict an experiment that merely needed a
    clean re-run.
    """

    def __init__(
        self, fn, exp_id: str, spec, attempt: int, execution: int | None = None
    ) -> None:
        self.fn = fn
        self.exp_id = exp_id
        self.spec = spec
        self.attempt = attempt
        self.execution = execution if execution is not None else attempt

    def __call__(self, factor: float):
        spec = self.spec
        if spec.kind == "crash":
            raise RuntimeError(
                f"injected crash in experiment {self.exp_id!r} "
                f"(attempt {self.attempt})"
            )
        if spec.kind == "transient" and self.attempt <= spec.count:
            raise TransientFault(
                f"injected transient fault in experiment {self.exp_id!r} "
                f"(attempt {self.attempt}/{spec.count})"
            )
        if spec.kind == "kill" and self.execution <= spec.count:
            # A real worker death: the parent sees a BrokenProcessPool
            # and must attribute it (the pool path of the chaos harness).
            os.kill(os.getpid(), signal.SIGKILL)
        if spec.kind == "timeout":
            time.sleep(spec.seconds)
        if spec.kind == "straggler" and self.execution <= spec.count:
            time.sleep(spec.seconds)
        result = self.fn(factor)
        if spec.kind == "corrupt-result":
            return _CorruptResult()
        return result


class ResilientRunner:
    """Run a mapping of experiments fault-tolerantly (see module docs)."""

    def __init__(
        self,
        manifest_path: str | pathlib.Path | None = None,
        *,
        timeout: float | None = None,
        retries: int = 2,
        backoff: float = 0.25,
        max_backoff: float = 2.0,
        fault_plan: FaultPlan | None = None,
        is_transient: Callable[[BaseException], bool] = _default_is_transient,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        jobs: int = 1,
        mp_context: str | None = None,
        tracer: SpanTracer | None = None,
        chaos_plan=None,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be > 0 (or None)")
        if backoff < 0 or max_backoff < 0:
            raise ValueError("backoff values must be >= 0")
        if not isinstance(jobs, int) or jobs < 1:
            raise ValueError(f"jobs must be an int >= 1, got {jobs!r}")
        self.manifest_path = (
            pathlib.Path(manifest_path) if manifest_path else None
        )
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.fault_plan = fault_plan
        self.is_transient = is_transient
        self.jobs = jobs
        self.mp_context = mp_context
        #: Optional host-side span tracer (see repro.telemetry.tracing);
        #: ``None`` keeps every span site a single falsy check.
        self.tracer = tracer
        #: Optional chaos plan (see repro.robustness.chaos), shipped to
        #: pool workers through the initializer so filesystem-fault
        #: budgets replay per process.  The caller activates it in the
        #: parent; the runner only forwards it.
        self.chaos_plan = chaos_plan
        self._sleep = sleep
        self._clock = clock

    # ----------------------------------------------------------------- run

    def run(
        self,
        experiments: Mapping[str, Callable[[float], object]],
        *,
        factor: float = 1.0,
        only: list[str] | None = None,
        resume: bool = True,
        stream=None,
        out_dir: str | pathlib.Path | None = None,
        code_hash: str | None = None,
        trace_out: str | pathlib.Path | None = None,
    ) -> tuple[dict[str, object], RunReport]:
        """Run the selected experiments; returns ``(results, report)``.

        ``results`` maps experiment id to the driver's result object, or a
        :class:`CheckpointedResult` when the manifest supplied it.

        With a ``tracer`` installed on the runner, the whole sweep is
        recorded as a span tree (sweep -> experiment -> attempt -> probe
        spans, including worker-side spans in parallel mode);
        ``trace_out`` additionally exports it as Chrome trace-event JSON
        once the sweep finishes, and the manifest records the path under
        a top-level ``trace`` key.
        """
        tracer = self.tracer
        trace_path = pathlib.Path(trace_out) if trace_out else None
        if tracer is None:
            return self._run_impl(
                experiments,
                factor=factor,
                only=only,
                resume=resume,
                stream=stream,
                out_dir=out_dir,
                code_hash=code_hash,
            )
        with tracing.use_tracer(tracer):
            sweep_span = tracer.begin(
                "sweep",
                "sweep",
                factor=factor,
                jobs=self.jobs,
                trace_id=tracer.trace_id,
            )
            try:
                with tracer.adopt(sweep_span):
                    return self._run_impl(
                        experiments,
                        factor=factor,
                        only=only,
                        resume=resume,
                        stream=stream,
                        out_dir=out_dir,
                        code_hash=code_hash,
                        sweep_span=sweep_span,
                        trace_path=trace_path,
                    )
            finally:
                tracer.finish(sweep_span)
                if trace_path is not None:
                    tracer.write_chrome(trace_path)

    def _run_impl(
        self,
        experiments: Mapping[str, Callable[[float], object]],
        *,
        factor: float = 1.0,
        only: list[str] | None = None,
        resume: bool = True,
        stream=None,
        out_dir: str | pathlib.Path | None = None,
        code_hash: str | None = None,
        sweep_span=None,
        trace_path: pathlib.Path | None = None,
    ) -> tuple[dict[str, object], RunReport]:
        if only:
            unknown = sorted(set(only) - set(experiments))
            if unknown:
                raise ValueError(
                    f"unknown experiment ids: {', '.join(unknown)}; "
                    f"known: {', '.join(sorted(experiments))}"
                )
        code_hash = code_hash or code_fingerprint()
        out_path = pathlib.Path(out_dir) if out_dir else None
        if out_path:
            out_path.mkdir(parents=True, exist_ok=True)
        manifest_path = self.manifest_path
        if manifest_path is None and out_path is not None:
            manifest_path = out_path / MANIFEST_NAME
        if resume:
            entries, manifest_salvaged = self._load_manifest(
                manifest_path, stream=stream
            )
        else:
            entries, manifest_salvaged = {}, False

        selected = [
            (exp_id, fn)
            for exp_id, fn in experiments.items()
            if not only or exp_id in only
        ]
        keys = {
            exp_id: self._key(exp_id, factor, code_hash)
            for exp_id, _fn in selected
        }
        #: Perfetto row per experiment (row 0 is the sweep's own row), so
        #: parallel experiments render side by side instead of nesting.
        tracks = {
            exp_id: index + 1
            for index, (exp_id, _fn) in enumerate(selected)
        }
        run_started = self._clock()
        results: dict[str, object] = {}
        outcomes: dict[str, ExperimentOutcome] = {}
        #: Simulated work finished by this sweep (for throughput gauges);
        #: only experiments whose results expose ``.stats`` contribute.
        sim_totals = {"cycles": 0, "instructions": 0}
        #: Columnar trace preparation time across the sweep (gauge input).
        prepare_totals = {"seconds": 0.0}
        registry = MetricsRegistry()
        registry.gauge("runner.factor").set(factor)
        registry.gauge("runner.jobs").set(self.jobs)
        if manifest_salvaged:
            registry.counter("runner.manifest_salvaged").inc()

        # Checkpoints about to be recomputed because the *code* changed
        # (same experiment, same factor) deserve an explicit warning —
        # silently redoing hours of work looks like a resume bug.
        for exp_id, _fn in selected:
            entry = entries.get(exp_id)
            if not entry or entry.get("status") != "ok":
                continue
            old_key = entry.get("key", "")
            if old_key == keys[exp_id]:
                continue
            old_stem, _, old_code = old_key.rpartition("|code=")
            new_stem, _, new_code = keys[exp_id].rpartition("|code=")
            if old_stem == new_stem and old_code and old_code != new_code:
                registry.counter("runner.checkpoints_invalidated").inc()
                _log.warning(
                    "runner.checkpoint_invalidated",
                    experiment=exp_id,
                    old_code=old_code,
                    new_code=new_code,
                )
                if stream is not None:
                    print(
                        f"warning: {exp_id}: checkpoint invalidated "
                        f"(code changed): old={old_code} new={new_code}",
                        file=stream,
                    )

        def publish_outcome(outcome: ExperimentOutcome) -> None:
            registry.counter(f"runner.experiments_{outcome.status}").inc()
            registry.counter("runner.attempts").inc(outcome.attempts)
            registry.counter("runner.trace_cache_hits").inc(outcome.cache_hits)
            registry.counter("runner.trace_cache_misses").inc(
                outcome.cache_misses
            )
            if outcome.prepares:
                registry.counter("runner.traces_prepared").inc(
                    outcome.prepares
                )
                prepare_totals["seconds"] += outcome.prepare_seconds
                registry.gauge("runner.trace_prepare_seconds").set(
                    prepare_totals["seconds"]
                )
            if outcome.cache_degraded:
                registry.counter("runner.cache_degraded").inc(
                    outcome.cache_degraded
                )
            if outcome.cache_checksum_failures:
                registry.counter("runner.cache_checksum_failures").inc(
                    outcome.cache_checksum_failures
                )
            if outcome.batched_calls:
                registry.counter("runner.batched_calls").inc(
                    outcome.batched_calls
                )
                registry.counter("runner.batched_configs").inc(
                    outcome.batched_configs
                )
            if outcome.status == "ok":
                registry.histogram("runner.elapsed_seconds").observe(
                    outcome.elapsed
                )

        todo: list[tuple[str, Callable[[float], object]]] = []
        for exp_id, runner_fn in selected:
            entry = entries.get(exp_id)
            if (
                entry
                and entry.get("key") == keys[exp_id]
                and entry.get("status") == "ok"
            ):
                results[exp_id] = CheckpointedResult(exp_id, entry.get("text", ""))
                outcomes[exp_id] = ExperimentOutcome(exp_id, "checkpointed")
                publish_outcome(outcomes[exp_id])
                self._emit(stream, exp_id, "checkpointed", entry.get("text", ""))
            else:
                todo.append((exp_id, runner_fn))

        def export_experiment_metrics(exp_id, outcome, result) -> None:
            """Write ``<out>/metrics/<exp_id>.json`` for one experiment."""
            if out_path is None:
                return
            per_exp = MetricsRegistry()
            per_exp.counter("runner.attempts").inc(outcome.attempts)
            per_exp.counter("runner.trace_cache_hits").inc(outcome.cache_hits)
            per_exp.counter("runner.trace_cache_misses").inc(
                outcome.cache_misses
            )
            per_exp.counter("runner.traces_prepared").inc(outcome.prepares)
            per_exp.gauge("runner.trace_prepare_seconds").set(
                outcome.prepare_seconds
            )
            per_exp.counter("runner.batched_calls").inc(outcome.batched_calls)
            per_exp.counter("runner.batched_configs").inc(
                outcome.batched_configs
            )
            per_exp.gauge("runner.elapsed_seconds").set(outcome.elapsed)
            per_exp.gauge("runner.ok").set(1.0 if outcome.succeeded else 0.0)
            stats = getattr(result, "stats", None)
            if stats is not None and hasattr(stats, "stall_cycles"):
                publish_stats(stats, per_exp, kernel=kernel_mode())
            per_exp.write_json(out_path / "metrics" / f"{exp_id}.json")

        def finish(exp_id, outcome, text, result):
            """Record one finished experiment (shared by both backends)."""
            outcomes[exp_id] = outcome
            publish_outcome(outcome)
            export_experiment_metrics(exp_id, outcome, result)
            stats = getattr(result, "stats", None)
            if stats is not None and hasattr(stats, "cycles"):
                if not stats.instructions:
                    # Empty run: no CPI is defined, so it must not feed
                    # the throughput gauges silently — count it instead.
                    registry.counter("runner.empty_runs").inc()
                sim_totals["cycles"] += stats.cycles
                sim_totals["instructions"] += stats.instructions
            if outcome.status == "ok":
                if result is None:
                    # Parallel result that did not survive pickling.
                    result = CheckpointedResult(exp_id, text)
                results[exp_id] = result
                entries[exp_id] = {
                    "key": keys[exp_id],
                    "status": "ok",
                    "elapsed": outcome.elapsed,
                    "completed_at": time.time(),
                    "worker": outcome.worker,
                    "trace_cache_hits": outcome.cache_hits,
                    "trace_cache_misses": outcome.cache_misses,
                    "text": text,
                }
                if out_path:
                    (out_path / f"{exp_id}.txt").write_text(text + "\n")
                if not self._save_manifest(
                    manifest_path, entries, registry, trace=trace_path
                ):
                    registry.counter("runner.manifest_degraded").inc()
                self._emit(
                    stream,
                    exp_id,
                    f"ok ({outcome.elapsed:.1f}s)",
                    text,
                )
            else:
                # Drop any stale checkpoint for a now-failing experiment.
                stale = entries.get(exp_id)
                if stale is not None and stale.get("key") != keys[exp_id]:
                    entries.pop(exp_id, None)
                    if not self._save_manifest(
                        manifest_path, entries, registry, trace=trace_path
                    ):
                        registry.counter("runner.manifest_degraded").inc()
                self._emit(
                    stream,
                    exp_id,
                    f"{outcome.status}: {outcome.error}",
                    None,
                )

        tracer = self.tracer

        def _warn_interrupt(name: str) -> None:
            _log.warning("runner.interrupted", signal=name)
            if stream is not None:
                print(
                    f"warning: received {name}; stopping after in-flight "
                    "work and flushing the checkpoint manifest "
                    "(repeat to abort hard)",
                    file=stream,
                )

        interrupt = GracefulSignals(notify=_warn_interrupt)
        should_stop = interrupt.should_stop
        interrupt.install()
        try:
            if todo:
                if self.jobs == 1:
                    for exp_id, runner_fn in todo:
                        if should_stop():
                            break
                        if tracer is None:
                            outcome, text, result = self._run_one(
                                exp_id, runner_fn, factor
                            )
                            finish(exp_id, outcome, text, result)
                            continue
                        with tracer.span(
                            f"experiment:{exp_id}",
                            "experiment",
                            track=tracks[exp_id],
                        ) as exp_span:
                            outcome, text, result = self._run_one(
                                exp_id, runner_fn, factor
                            )
                            exp_span.annotate(
                                status=outcome.status,
                                attempts=outcome.attempts,
                                worker=outcome.worker,
                            )
                            if outcome.error:
                                exp_span.annotate(error=outcome.error)
                            finish(exp_id, outcome, text, result)
                else:
                    self._run_pool(
                        todo,
                        factor,
                        finish,
                        sweep_span=sweep_span,
                        tracks=tracks,
                        should_stop=should_stop,
                    )
        finally:
            interrupt.restore()

        # Graceful shutdown: every selected experiment still gets an
        # outcome, so the report is complete (explicitly partial).
        if interrupt.signal is not None:
            for exp_id, _fn in selected:
                if exp_id not in outcomes:
                    outcomes[exp_id] = ExperimentOutcome(
                        exp_id,
                        "interrupted",
                        error=(
                            f"sweep interrupted by {interrupt.signal} "
                            "before this experiment finished"
                        ),
                    )
                    publish_outcome(outcomes[exp_id])

        # Sweep-level throughput gauges: how fast the host chewed through
        # the simulated work (the perf-baseline observatory's inputs).
        wall = self._clock() - run_started
        registry.gauge("runner.wall_seconds").set(wall)
        executed = [o for o in outcomes.values() if o.status == "ok"]
        if wall > 0:
            registry.gauge("runner.experiments_per_second").set(
                len(executed) / wall
            )
            if sim_totals["cycles"]:
                registry.gauge("runner.sim_cycles_per_second").set(
                    sim_totals["cycles"] / wall
                )
                registry.gauge("runner.sim_instructions_per_second").set(
                    sim_totals["instructions"] / wall
                )
        cache_hits = registry.counter("runner.trace_cache_hits").value
        cache_misses = registry.counter("runner.trace_cache_misses").value
        if cache_hits + cache_misses:
            registry.gauge("runner.trace_cache_hit_rate").set(
                cache_hits / (cache_hits + cache_misses)
            )

        # Final manifest write picks up metrics for checkpoint-only runs
        # (and is the flush a graceful shutdown promises).
        if not self._save_manifest(
            manifest_path, entries, registry, trace=trace_path
        ):
            registry.counter("runner.manifest_degraded").inc()
        if out_path is not None:
            registry.write_json(out_path / "metrics" / "runner.json")

        # Canonical report order: the experiments mapping, regardless of
        # parallel completion order — serial and parallel reports match.
        report = RunReport(
            outcomes=[outcomes[e] for e, _fn in selected],
            metrics=registry,
            interrupted=interrupt.signal,
        )
        if stream is not None:
            print(report.render(), file=stream)
        return results, report

    # ------------------------------------------------------------ internals

    def _run_one(self, exp_id, runner_fn, factor):
        """Execute one experiment with containment, timeout and retry."""
        fn = runner_fn
        if self.fault_plan is not None:
            fn = self.fault_plan.wrap(exp_id, fn)
        attempts = 0
        started = self._clock()
        base_hits, base_misses = trace_cache.snapshot()
        base_degraded, base_checksum = trace_cache.health_snapshot()
        base_prepares, base_prepare_seconds = prepare_snapshot()
        base_batch_calls, base_batch_configs = batch_snapshot()

        def cache_delta() -> dict:
            hits, misses = trace_cache.snapshot()
            degraded, checksum = trace_cache.health_snapshot()
            return {
                "cache_hits": hits - base_hits,
                "cache_misses": misses - base_misses,
                "cache_degraded": degraded - base_degraded,
                "cache_checksum_failures": checksum - base_checksum,
            }

        def prepare_delta() -> dict:
            prepares, seconds = prepare_snapshot()
            return {
                "prepares": prepares - base_prepares,
                "prepare_seconds": seconds - base_prepare_seconds,
            }

        def batch_delta() -> dict:
            batch_calls, batch_configs = batch_snapshot()
            return {
                "batched_calls": batch_calls - base_batch_calls,
                "batched_configs": batch_configs - base_batch_configs,
            }

        while True:
            attempts += 1
            try:
                result = self._timed_attempt(exp_id, fn, factor, attempts)
                text = result.render()
                elapsed = self._clock() - started
                return (
                    ExperimentOutcome(
                        exp_id,
                        "ok",
                        attempts,
                        elapsed,
                        **cache_delta(),
                        **prepare_delta(),
                        **batch_delta(),
                    ),
                    text,
                    result,
                )
            except ExperimentTimeout as error:
                elapsed = self._clock() - started
                return (
                    ExperimentOutcome(
                        exp_id,
                        "timeout",
                        attempts,
                        elapsed,
                        str(error),
                        **cache_delta(),
                        **prepare_delta(),
                        **batch_delta(),
                    ),
                    None,
                    None,
                )
            except BaseException as error:  # noqa: BLE001 - containment
                if self.is_transient(error) and attempts <= self.retries:
                    delay = min(
                        self.backoff * (2 ** (attempts - 1)), self.max_backoff
                    )
                    if delay > 0:
                        self._sleep(delay)
                    continue
                elapsed = self._clock() - started
                cause = f"{type(error).__name__}: {error}"
                return (
                    ExperimentOutcome(
                        exp_id,
                        "failed",
                        attempts,
                        elapsed,
                        cause,
                        **cache_delta(),
                        **prepare_delta(),
                        **batch_delta(),
                    ),
                    None,
                    None,
                )

    def _timed_attempt(self, exp_id, fn, factor, attempt):
        """One serial attempt, wrapped in an ``attempt`` span when tracing.

        Retried attempts each get their own span (siblings under the
        experiment), annotated with the outcome that ended them.
        """
        tracer = self.tracer
        if tracer is None:
            return self._call_with_timeout(exp_id, fn, factor)
        with tracer.span(f"attempt#{attempt}", "attempt") as span:
            try:
                value = self._call_with_timeout(exp_id, fn, factor)
            except ExperimentTimeout as error:
                span.annotate(status="timeout", error=str(error))
                raise
            except BaseException as error:  # noqa: BLE001 - annotate only
                span.annotate(
                    status="failed",
                    error=f"{type(error).__name__}: {error}",
                )
                raise
            span.annotate(status="ok")
            return value

    def _call_with_timeout(self, exp_id, fn, factor):
        if self.timeout is None:
            return fn(factor)
        box: dict[str, object] = {}
        tracer = self.tracer
        anchor = tracer.current() if tracer is not None else None

        def target() -> None:
            try:
                if anchor is not None:
                    # The worker thread starts with an empty span stack;
                    # adopt the attempt span so trace_build / simulate
                    # spans inside keep their lineage.
                    with tracer.adopt(anchor):
                        box["value"] = fn(factor)
                else:
                    box["value"] = fn(factor)
            except BaseException as error:  # noqa: BLE001 - re-raised below
                box["error"] = error

        worker = threading.Thread(
            target=target, name=f"experiment-{exp_id}", daemon=True
        )
        worker.start()
        worker.join(self.timeout)
        if worker.is_alive():
            # The thread cannot be killed; it is abandoned as a daemon.
            raise ExperimentTimeout(
                f"experiment {exp_id!r} exceeded {self.timeout:g}s "
                "wall-clock budget and was abandoned"
            )
        if "error" in box:
            raise box["error"]
        return box["value"]

    # ---------------------------------------------------------- process pool

    def _run_pool(
        self,
        todo,
        factor,
        finish,
        *,
        sweep_span=None,
        tracks=None,
        should_stop=None,
    ):
        """Run ``todo`` on a process pool (see module docs for semantics).

        The single-threaded event loop below owns all bookkeeping;
        workers only ever see ``_pool_worker`` and return envelopes, so
        there is no shared mutable state to lock.

        Span bookkeeping is manual (``begin``/``finish``) because
        experiment lifetimes interleave in this loop: an experiment span
        opens at first submission and closes when ``finish`` runs, and
        each returned envelope becomes an ``attempt`` span whose window
        is reconstructed from the worker's wall time, with the worker's
        own spans grafted underneath.
        """
        fns = dict(todo)
        tracer = self.tracer
        trace_id = tracer.trace_id if tracer is not None else None
        exp_spans: dict[str, object] = {}

        if tracer is not None:
            record_finished = finish

            def finish(exp_id, outcome, text, result):
                span = exp_spans.pop(exp_id, None)
                if span is not None:
                    span.annotate(
                        status=outcome.status,
                        attempts=outcome.attempts,
                        worker=outcome.worker,
                    )
                    if outcome.error:
                        span.annotate(error=outcome.error)
                    tracer.finish(span)
                record_finished(exp_id, outcome, text, result)

        def record_attempt(exp_id, pool_name, envelope, status, error=None):
            """Graft one worker envelope as an attempt span (or no-op)."""
            if tracer is None:
                return
            parent = exp_spans.get(exp_id)
            if parent is None:
                return
            attempt = tracer.begin(
                f"attempt#{attempts[exp_id]}",
                "attempt",
                parent=parent,
                start=tracer.now() - envelope["wall"],
                worker=f"pid-{envelope['pid']}",
                status=status,
            )
            if pool_name == "solo":
                attempt.annotate(quarantine=True)
            if error is not None:
                attempt.annotate(error=error)
            tracer.graft(
                envelope.get("spans", []),
                parent=attempt,
                offset=attempt.start,
                prefix=attempt.span_id,
            )
            tracer.finish(attempt)
        attempts = {exp_id: 0 for exp_id in fns}
        #: Every submission, including re-runs the retry ledger does not
        #: bill (quarantine, post-break resubmits) — the schedule basis
        #: for kill/straggler chaos faults (see _InjectedFault).
        executions = {exp_id: 0 for exp_id in fns}
        started_at: dict[str, float] = {}
        #: first time each experiment was *observed* executing — the
        #: timeout basis, and the "suspect" test after a pool break.
        first_running: dict[str, float] = {}
        waiting: list[tuple[float, str]] = []  # backoff retries (resume_at)
        quarantine: deque = deque()
        solo_busy = False

        cache = trace_cache.default_cache()
        ctx = multiprocessing.get_context(_start_method(self.mp_context))
        log_config = structlog.current_config()
        initargs = (
            str(cache.root),
            cache.enabled,
            cache.max_entries,
            cache.verify,
            self.chaos_plan,
            log_config[0] if log_config else None,
            log_config[1] if log_config else "INFO",
        )

        def new_pool(workers: int) -> concurrent.futures.ProcessPoolExecutor:
            return concurrent.futures.ProcessPoolExecutor(
                max_workers=workers,
                mp_context=ctx,
                initializer=_pool_initializer,
                initargs=initargs,
            )

        pools: dict[str, concurrent.futures.ProcessPoolExecutor] = {
            "main": new_pool(min(self.jobs, len(todo)))
        }
        future_home: dict[concurrent.futures.Future, tuple[str, str]] = {}

        def submit(exp_id: str, pool_name: str, count_attempt: bool = True):
            fn = fns[exp_id]
            if count_attempt:
                attempts[exp_id] += 1
            executions[exp_id] += 1
            started_at.setdefault(exp_id, self._clock())
            if self.fault_plan is not None:
                spec = self.fault_plan.faults.get(exp_id)
                if spec is not None:
                    # Keep the plan's observable counters in sync even
                    # though the fault itself fires in the worker.
                    self.fault_plan.attempts[exp_id] = attempts[exp_id]
                    fn = _InjectedFault(
                        fn, exp_id, spec, attempts[exp_id], executions[exp_id]
                    )
            if tracer is not None and exp_id not in exp_spans:
                exp_spans[exp_id] = tracer.begin(
                    f"experiment:{exp_id}",
                    "experiment",
                    parent=sweep_span,
                    track=(tracks or {}).get(exp_id, 0),
                )
            future = pools[pool_name].submit(_pool_worker, fn, factor, trace_id)
            future_home[future] = (pool_name, exp_id)

        def pop_pool_futures(pool_name: str) -> list[str]:
            doomed = [
                f for f, (p, _e) in future_home.items() if p == pool_name
            ]
            return [future_home.pop(f)[1] for f in doomed]

        try:
            for exp_id, _fn in todo:
                submit(exp_id, "main")
            while future_home or waiting or quarantine:
                if should_stop is not None and should_stop():
                    # Graceful shutdown: stop scheduling, kill in-flight
                    # workers (finally), report the rest as interrupted.
                    break
                now = self._clock()
                due = [w for w in waiting if w[0] <= now]
                if due:
                    waiting = [w for w in waiting if w[0] > now]
                    for _at, exp_id in due:
                        submit(exp_id, "main")
                if quarantine and not solo_busy:
                    if "solo" not in pools:
                        pools["solo"] = new_pool(1)
                    submit(quarantine.popleft(), "solo", count_attempt=False)
                    solo_busy = True
                if not future_home:
                    # Only a pending backoff retry remains; sleep it out.
                    if waiting:
                        self._sleep(
                            max(0.0, min(at for at, _e in waiting) - now)
                        )
                    continue
                # Poll (rather than block) whenever a deadline could pass.
                poll = 0.05 if (self.timeout is not None or waiting) else None
                done, _pending = concurrent.futures.wait(
                    set(future_home),
                    timeout=poll,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                now = self._clock()
                for future, (_pool, exp_id) in future_home.items():
                    if future not in done and future.running():
                        first_running.setdefault(exp_id, now)
                broken: dict[str, None] = {}
                for future in done:
                    pool_name, exp_id = future_home.pop(future)
                    if pool_name == "solo":
                        solo_busy = False
                    try:
                        envelope = future.result()
                    except BrokenProcessPool:
                        broken[pool_name] = None
                        # Re-attach: the pool sweep below collects every
                        # future of the broken pool in one place.
                        future_home[future] = (pool_name, exp_id)
                        continue
                    except concurrent.futures.CancelledError:
                        continue
                    except BaseException as error:  # noqa: BLE001
                        # e.g. the callable failed to pickle at submit time
                        first_running.pop(exp_id, None)
                        finish(
                            exp_id,
                            ExperimentOutcome(
                                exp_id,
                                "failed",
                                attempts[exp_id],
                                now - started_at.pop(exp_id, now),
                                f"{type(error).__name__}: {error}",
                            ),
                            None,
                            None,
                        )
                        continue
                    elapsed = now - started_at.get(exp_id, now)
                    worker = f"pid-{envelope['pid']}"
                    if envelope["ok"]:
                        record_attempt(exp_id, pool_name, envelope, "ok")
                        first_running.pop(exp_id, None)
                        started_at.pop(exp_id, None)
                        finish(
                            exp_id,
                            ExperimentOutcome(
                                exp_id,
                                "ok",
                                attempts[exp_id],
                                elapsed,
                                worker=worker,
                                cache_hits=envelope["cache_hits"],
                                cache_misses=envelope["cache_misses"],
                                cache_degraded=envelope.get(
                                    "cache_degraded", 0
                                ),
                                cache_checksum_failures=envelope.get(
                                    "cache_checksum_failures", 0
                                ),
                                prepares=envelope.get("prepares", 0),
                                prepare_seconds=envelope.get(
                                    "prepare_seconds", 0.0
                                ),
                                batched_calls=envelope.get(
                                    "batched_calls", 0
                                ),
                                batched_configs=envelope.get(
                                    "batched_configs", 0
                                ),
                            ),
                            envelope["text"],
                            envelope["result"],
                        )
                        continue
                    error = envelope["error"]
                    record_attempt(
                        exp_id,
                        pool_name,
                        envelope,
                        "failed",
                        error=f"{type(error).__name__}: {error}",
                    )
                    if (
                        self.is_transient(error)
                        and attempts[exp_id] <= self.retries
                    ):
                        first_running.pop(exp_id, None)
                        delay = min(
                            self.backoff * (2 ** (attempts[exp_id] - 1)),
                            self.max_backoff,
                        )
                        waiting.append((now + delay, exp_id))
                        continue
                    first_running.pop(exp_id, None)
                    started_at.pop(exp_id, None)
                    finish(
                        exp_id,
                        ExperimentOutcome(
                            exp_id,
                            "failed",
                            attempts[exp_id],
                            elapsed,
                            f"{type(error).__name__}: {error}",
                            worker=worker,
                            cache_hits=envelope["cache_hits"],
                            cache_misses=envelope["cache_misses"],
                            cache_degraded=envelope.get("cache_degraded", 0),
                            cache_checksum_failures=envelope.get(
                                "cache_checksum_failures", 0
                            ),
                            prepares=envelope.get("prepares", 0),
                            prepare_seconds=envelope.get(
                                "prepare_seconds", 0.0
                            ),
                            batched_calls=envelope.get("batched_calls", 0),
                            batched_configs=envelope.get(
                                "batched_configs", 0
                            ),
                        ),
                        None,
                        None,
                    )
                for pool_name in broken:
                    affected = pop_pool_futures(pool_name)
                    self._teardown(pools.pop(pool_name, None))
                    if pool_name == "solo":
                        # One worker, one experiment: the culprit is known.
                        solo_busy = False
                        for exp_id in affected:
                            first_running.pop(exp_id, None)
                            finish(
                                exp_id,
                                ExperimentOutcome(
                                    exp_id,
                                    "failed",
                                    attempts[exp_id],
                                    now - started_at.pop(exp_id, now),
                                    "worker process died (crash or kill) "
                                    "while running this experiment",
                                ),
                                None,
                                None,
                            )
                        continue
                    # Experiments observed executing when the pool broke
                    # are suspects — re-run them one at a time in the
                    # quarantine pool so a repeat death convicts exactly
                    # one.  Queued bystanders just resubmit.
                    suspects = [e for e in affected if e in first_running]
                    innocents = [e for e in affected if e not in first_running]
                    if not suspects:
                        suspects, innocents = affected, []
                    for exp_id in suspects:
                        first_running.pop(exp_id, None)
                        quarantine.append(exp_id)
                    pools["main"] = new_pool(min(self.jobs, len(todo)))
                    for exp_id in innocents:
                        submit(exp_id, "main", count_attempt=False)
                if self.timeout is not None:
                    now = self._clock()
                    expired: dict[str, list[str]] = {}
                    for _future, (pool_name, exp_id) in future_home.items():
                        ran_at = first_running.get(exp_id)
                        if ran_at is not None and now - ran_at >= self.timeout:
                            expired.setdefault(pool_name, []).append(exp_id)
                    for pool_name, victims in expired.items():
                        # Hard enforcement: kill the whole pool (worker
                        # identity is opaque), fail the victims, resubmit
                        # innocent co-tenants.
                        affected = pop_pool_futures(pool_name)
                        self._teardown(pools.pop(pool_name, None))
                        if pool_name == "solo":
                            solo_busy = False
                        else:
                            pools["main"] = new_pool(
                                min(self.jobs, len(todo))
                            )
                        for exp_id in affected:
                            first_running.pop(exp_id, None)
                            if exp_id in victims:
                                if tracer is not None and exp_id in exp_spans:
                                    # No envelope survives a killed pool;
                                    # reconstruct the attempt window from
                                    # the budget it blew.
                                    timed_out = tracer.begin(
                                        f"attempt#{attempts[exp_id]}",
                                        "attempt",
                                        parent=exp_spans[exp_id],
                                        start=tracer.now() - self.timeout,
                                        status="timeout",
                                    )
                                    if pool_name == "solo":
                                        timed_out.annotate(quarantine=True)
                                    tracer.finish(timed_out)
                                finish(
                                    exp_id,
                                    ExperimentOutcome(
                                        exp_id,
                                        "timeout",
                                        attempts[exp_id],
                                        now - started_at.pop(exp_id, now),
                                        f"experiment {exp_id!r} exceeded "
                                        f"{self.timeout:g}s wall-clock "
                                        "budget; worker process killed",
                                    ),
                                    None,
                                    None,
                                )
                            elif pool_name == "solo":
                                quarantine.append(exp_id)
                            else:
                                submit(exp_id, "main", count_attempt=False)
        finally:
            for executor in pools.values():
                self._teardown(executor)

    @staticmethod
    def _teardown(executor) -> None:
        """Kill an executor's worker processes and discard it.

        ``_processes`` is private but has been the worker registry of
        ``ProcessPoolExecutor`` since 3.2; killing through it is the only
        way to stop a wedged worker (``shutdown`` only ever waits).
        """
        if executor is None:
            return
        processes = list((getattr(executor, "_processes", None) or {}).values())
        for process in processes:
            try:
                process.kill()
            except Exception:  # noqa: BLE001 - already dead
                pass
        executor.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.join(timeout=1.0)
            except Exception:  # noqa: BLE001 - reaped elsewhere
                pass

    @staticmethod
    def _key(exp_id: str, factor: float, code_hash: str) -> str:
        return f"{exp_id}|factor={factor!r}|code={code_hash}"

    @staticmethod
    def _parse_manifest(path: pathlib.Path) -> dict | None:
        """Entries of a well-formed manifest; None when it is corrupt.

        A version mismatch is *not* corruption — it means a legitimate
        fresh start, signalled by an empty dict.
        """
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if data.get("version") != MANIFEST_VERSION:
            return {}
        entries = data.get("entries")
        return entries if isinstance(entries, dict) else None

    @classmethod
    def _load_manifest(
        cls, path: pathlib.Path | None, stream=None
    ) -> tuple[dict, bool]:
        """``(entries, salvaged)`` — torn manifests recover from ``.bak``.

        ``_save_manifest`` keeps the previous manifest as ``.bak``, so a
        manifest torn by external corruption (or missing because a crash
        landed between the two renames) salvages the last good
        checkpoint set instead of silently restarting the whole sweep.
        """
        if path is None:
            return {}, False
        bak = path.with_suffix(path.suffix + ".bak")
        torn = False
        if path.exists():
            entries = cls._parse_manifest(path)
            if entries is not None:
                return entries, False
            torn = True
        if not bak.exists():
            if torn:
                _log.warning(
                    "manifest.corrupt", path=str(path), backup=False
                )
                if stream is not None:
                    print(
                        f"warning: checkpoint manifest {path} is corrupt "
                        "and no backup exists; starting fresh",
                        file=stream,
                    )
            return {}, False
        entries = cls._parse_manifest(bak)
        if not entries:
            if torn:
                _log.warning(
                    "manifest.corrupt", path=str(path), backup=True
                )
                if stream is not None:
                    print(
                        f"warning: checkpoint manifest {path} is corrupt "
                        f"and its backup is unusable; starting fresh",
                        file=stream,
                    )
            return {}, False
        _log.warning(
            "manifest.salvaged",
            path=str(path),
            torn=torn,
            entries=len(entries),
            backup=bak.name,
        )
        if stream is not None:
            cause = "is corrupt (torn write?)" if torn else "is missing"
            print(
                f"warning: checkpoint manifest {path} {cause}; salvaged "
                f"{len(entries)} checkpoint(s) from {bak.name}",
                file=stream,
            )
        return entries, True

    @staticmethod
    def _save_manifest(
        path: pathlib.Path | None,
        entries: dict,
        metrics: MetricsRegistry | None = None,
        trace: pathlib.Path | None = None,
    ) -> bool:
        """Write the manifest atomically; False when the write degraded.

        Write-then-rename means a crash never tears ``path`` itself; the
        previous manifest additionally survives as ``.bak`` so external
        corruption of ``path`` (or a crash between the two renames) is
        recoverable by ``_load_manifest``.  An I/O failure (full disk,
        injected fault) loses checkpoint durability, never the sweep —
        the caller records ``runner.manifest_degraded`` and carries on.
        """
        if path is None:
            return True
        with tracing.span("checkpoint", "checkpoint", entries=len(entries)):
            try:
                _chaos_check("manifest.save")
                path.parent.mkdir(parents=True, exist_ok=True)
                document: dict = {
                    "version": MANIFEST_VERSION,
                    "entries": entries,
                }
                if metrics is not None:
                    # Extra top-level key: old readers only read "entries".
                    document["metrics"] = metrics.as_dict()
                if trace is not None:
                    # Where this sweep's Chrome span trace will land.
                    document["trace"] = str(trace)
                payload = json.dumps(document, indent=2)
                tmp = path.with_suffix(path.suffix + ".tmp")
                tmp.write_text(payload)
                if path.exists():
                    os.replace(path, path.with_suffix(path.suffix + ".bak"))
                tmp.replace(path)
            except OSError as error:
                _log.warning(
                    "manifest.degraded", path=str(path), why=str(error)
                )
                return False
        return True

    @staticmethod
    def _emit(stream, exp_id: str, status: str, text: str | None) -> None:
        if stream is None:
            return
        print(f"==== {exp_id} ({status}) ====", file=stream)
        if text:
            print(text, file=stream)
        print(file=stream)
