"""Graceful SIGINT/SIGTERM handling shared by every long-running mode.

The PR 6 contract, now in one place instead of inlined per caller: the
first SIGINT or SIGTERM requests a *graceful* stop (finish in-flight
work, flush persistent state, exit with code 5 per
:mod:`repro.experiments.exit_codes`); a second signal means the operator
is done waiting and aborts hard by raising :class:`KeyboardInterrupt`
from the handler.  Both the sweep runner
(:class:`repro.robustness.runner.ResilientRunner`) and the long-lived
query service (``aurora-sim serve``) install the same
:class:`GracefulSignals` object, so the two modes cannot drift apart in
how they answer an operator's Ctrl-C.

Handlers are only installed on the main thread (signal delivery is a
main-thread affair in CPython); elsewhere :meth:`GracefulSignals.install`
is a no-op and ``should_stop`` simply never trips, which is exactly what
a runner nested inside another program's worker thread wants.
"""

from __future__ import annotations

import signal
import threading
from typing import Callable

#: The signals that request a graceful stop.
GRACEFUL_SIGNALS = (signal.SIGINT, signal.SIGTERM)


class GracefulSignals:
    """First SIGINT/SIGTERM sets a flag, second aborts hard.

    ``notify`` (optional) is called with the signal name from the
    handler on the *first* signal — callers use it to print a warning
    (the runner) or to wake an event loop (the server).  It runs in
    signal-handler context: keep it tiny and reentrant-safe.

    Use as a context manager, or call :meth:`install` / :meth:`restore`
    explicitly.  Installation is idempotent per instance and safe off
    the main thread (it silently does nothing there).
    """

    def __init__(self, notify: Callable[[str], None] | None = None) -> None:
        self._notify = notify
        self._previous: list[tuple[int, object]] = []
        #: Name of the first graceful signal received ("SIGINT" /
        #: "SIGTERM"), or None while the process has not been asked to
        #: stop.  Matches RunReport.interrupted's vocabulary.
        self.signal: str | None = None

    # ------------------------------------------------------------ handler

    def _on_signal(self, signum, _frame) -> None:
        name = signal.Signals(signum).name
        if self.signal is not None:
            # Second signal: the user means it — abort hard.
            raise KeyboardInterrupt(name)
        self.signal = name
        if self._notify is not None:
            self._notify(name)

    def should_stop(self) -> bool:
        """True once the first graceful signal has arrived."""
        return self.signal is not None

    # ------------------------------------------------------ install/restore

    def install(self) -> "GracefulSignals":
        """Install the handlers (main thread only; no-op elsewhere)."""
        if self._previous:
            return self
        if threading.current_thread() is not threading.main_thread():
            return self
        for signum in GRACEFUL_SIGNALS:
            try:
                self._previous.append(
                    (signum, signal.signal(signum, self._on_signal))
                )
            except (ValueError, OSError):
                pass
        return self

    def restore(self) -> None:
        """Put back whatever handlers were installed before us."""
        for signum, handler in self._previous:
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError, TypeError):
                pass
        self._previous.clear()

    def __enter__(self) -> "GracefulSignals":
        return self.install()

    def __exit__(self, *_exc) -> None:
        self.restore()
