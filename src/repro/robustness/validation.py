"""Eager input validation: traces, scaling factors, workload scales.

Machine-configuration validation itself lives on
:meth:`repro.core.config.MachineConfig.validate` (so construction and
explicit checks share one rule set); this module covers the *other*
garbage-in paths the experiment layer feeds the simulator:

* **Traces** — :func:`validate_trace` structurally checks trace records
  (6-int tuples, a known timing kind, register ids inside the unified
  space, non-negative pc/addr).  Full-trace record-by-record validation
  would double the cost of a timing run on multi-million-instruction
  traces, so plain record lists get a deterministic sample: the first
  ``head`` records exhaustively plus every ``stride``-th record beyond —
  enough to catch format drift and systematic corruption while staying
  O(n/stride).  Columnar :class:`~repro.func.prepared.PreparedTrace`
  inputs get the *stronger* check for less: every record is validated in
  a handful of vectorized numpy passes, once per trace object (the
  result is memoized on the instance, so a sweep re-validating the same
  trace per configuration pays nothing after the first).
* **Factors and scales** — :func:`validate_factor` /
  :func:`validate_scale` reject the zero/negative/NaN values that today
  would silently produce nonsense workload sizes deep inside
  ``scaled_trace``.
* **Environment** — :func:`validate_environment` eagerly checks every
  ``REPRO_*`` switch the sweep stack reads, so a typo like
  ``REPRO_TRACE_PATH=prepard`` fails at CLI startup with a field-named
  usage error instead of mid-sweep (or worse, silently falling back).
"""

from __future__ import annotations

import math
import os
from typing import Mapping, Sequence

from repro.func.trace import NUM_UNIFIED_REGS
from repro.isa.instructions import Kind

_VALID_KINDS = frozenset(int(kind) for kind in Kind)
_VALID_KIND_LIST = sorted(_VALID_KINDS)

#: Exhaustively validated prefix length.
_HEAD = 4096
#: Beyond the head, validate every ``_STRIDE``-th record.
_STRIDE = 1009  # prime, so sampling never locks onto loop periods

#: Process-wide validation accounting (observability, and the memo's
#: regression tests): full vectorized prepared-trace passes actually run
#: vs. calls answered by the per-instance memo.  The memo lives *on* the
#: PreparedTrace (its ``validated`` slot) precisely so this module never
#: holds a reference that would pin shared traces alive across grouped
#: experiments.
_PREPARED_PASSES = 0
_MEMO_HITS = 0


def validation_snapshot() -> tuple[int, int]:
    """(vectorized prepared passes run, memoized re-validations) so far."""
    return (_PREPARED_PASSES, _MEMO_HITS)


class TraceValidationError(ValueError):
    """A trace record is structurally invalid; names index and field."""


def _record_problem(record: object) -> str | None:
    """Return a description of what is wrong with one record, or None."""
    if not isinstance(record, (tuple, list)) or len(record) != 6:
        return f"record must be a 6-tuple, got {type(record).__name__}"
    pc, kind, dst, s1, s2, addr = record
    for name, value in (("pc", pc), ("kind", kind), ("dst", dst),
                        ("src1", s1), ("src2", s2), ("addr", addr)):
        if not isinstance(value, int) or isinstance(value, bool):
            return f"{name} must be an int, got {type(value).__name__}"
    if pc < 0:
        return f"pc must be >= 0, got {pc}"
    if pc & 3:
        return f"pc must be word aligned, got {pc:#x}"
    if kind not in _VALID_KINDS:
        return f"kind {kind} is not a known instruction Kind"
    for name, reg in (("dst", dst), ("src1", s1), ("src2", s2)):
        if not (-1 <= reg < NUM_UNIFIED_REGS):
            return (
                f"{name} register id {reg} outside the unified space "
                f"[-1, {NUM_UNIFIED_REGS - 1}]"
            )
    if addr < 0:
        return f"addr must be >= 0, got {addr}"
    return None


def validate_trace(
    trace: Sequence,
    *,
    head: int = _HEAD,
    stride: int = _STRIDE,
    allow_empty: bool = True,
) -> None:
    """Structurally validate ``trace`` (sampled; see module docstring).

    Raises :class:`TraceValidationError` naming the first bad record's
    index and field.  ``allow_empty=False`` additionally rejects empty
    traces (the experiment layer uses it: simulating nothing yields a
    0-cycle result that silently poisons suite averages).
    """
    if not isinstance(trace, Sequence) or isinstance(trace, (str, bytes)):
        raise TraceValidationError(
            f"trace must be a sequence of records, got {type(trace).__name__}"
        )
    length = len(trace)
    if length == 0:
        if allow_empty:
            return
        raise TraceValidationError("trace is empty: nothing to simulate")
    from repro.func.prepared import PreparedTrace

    if isinstance(trace, PreparedTrace):
        global _PREPARED_PASSES, _MEMO_HITS
        if not trace.validated:
            _PREPARED_PASSES += 1
            _validate_prepared(trace)
            trace.validated = True
        else:
            _MEMO_HITS += 1
        return
    for index in range(min(head, length)):
        problem = _record_problem(trace[index])
        if problem is not None:
            raise TraceValidationError(f"trace record {index}: {problem}")
    for index in range(head, length, stride):
        problem = _record_problem(trace[index])
        if problem is not None:
            raise TraceValidationError(f"trace record {index}: {problem}")


def _validate_prepared(trace) -> None:
    """Vectorized whole-trace structural check for a PreparedTrace.

    The columnar layout already guarantees 6 integer fields per record
    (enforced at construction), so only the value-range rules remain —
    one boolean mask covers them all.  On failure, the first offending
    index is located and the record delegated to :func:`_record_problem`
    so the error message matches the record-loop path exactly.
    """
    import numpy as np

    bad = (
        (trace.pc < 0)
        | ((trace.pc & 3) != 0)
        | (trace.addr < 0)
        | ~np.isin(trace.kind, _VALID_KIND_LIST)
    )
    for column in (trace.dst, trace.src1, trace.src2):
        bad |= (column < -1) | (column >= NUM_UNIFIED_REGS)
    if not bad.any():
        return
    index = int(np.argmax(bad))
    problem = _record_problem(trace[index])
    raise TraceValidationError(f"trace record {index}: {problem}")


def validate_factor(factor: float, *, where: str = "factor") -> float:
    """Reject non-positive / non-finite workload scaling factors."""
    if isinstance(factor, bool) or not isinstance(factor, (int, float)):
        raise ValueError(
            f"{where} must be a positive number, got {type(factor).__name__}"
        )
    value = float(factor)
    if not math.isfinite(value):
        raise ValueError(f"{where} must be finite, got {factor!r}")
    if value <= 0:
        raise ValueError(f"{where} must be > 0, got {factor!r}")
    return value


class EnvValidationError(ValueError):
    """A ``REPRO_*`` environment variable holds an unusable value.

    The message names every offending variable (all problems are
    collected, not just the first) so one failed run fixes them all.
    """


def validate_environment(environ: Mapping[str, str] | None = None) -> None:
    """Eagerly validate the ``REPRO_*`` switches the sweep stack reads.

    Checked: ``REPRO_TRACE_PATH`` (trace representation),
    ``REPRO_TRACE_MEMO_MAX`` (in-memory trace-memo bound),
    ``REPRO_SIM_KERNEL`` (simulation kernel), ``REPRO_TRACE_CACHE`` /
    ``REPRO_TRACE_CACHE_VERIFY`` (on/off switches),
    ``REPRO_TRACE_CACHE_DIR`` (must not name an existing
    non-directory), ``REPRO_LOG`` (a writable destination, not a
    directory) and ``REPRO_LOG_LEVEL`` (a known level name).  Unset or
    empty variables are always fine — they mean "use the default".
    """
    from repro.core.kernel import KernelError, kernel_mode
    from repro.telemetry import logging as structlog
    from repro.workloads import registry, trace_cache

    env = os.environ if environ is None else environ
    problems: list[str] = []

    trace_path = env.get(registry.ENV_TRACE_PATH, "")
    if trace_path and trace_path.lower() not in ("prepared", "tuples"):
        problems.append(
            f"{registry.ENV_TRACE_PATH}={trace_path!r}: "
            "expected 'prepared' or 'tuples'"
        )

    try:
        registry.trace_memo_max(env)
    except ValueError as error:
        problems.append(str(error))

    try:
        kernel_mode(env)
    except KernelError as error:
        problems.append(str(error))

    switch_values = trace_cache._ON_VALUES + trace_cache._OFF_VALUES
    for variable in (trace_cache.ENV_SWITCH, trace_cache.ENV_VERIFY):
        value = env.get(variable, "")
        if value and value.lower() not in switch_values:
            problems.append(
                f"{variable}={value!r}: expected an on/off value "
                f"({'/'.join(trace_cache._ON_VALUES)} or "
                f"{'/'.join(trace_cache._OFF_VALUES)})"
            )

    cache_dir = env.get(trace_cache.ENV_DIR)
    if cache_dir is not None:
        if not cache_dir.strip():
            problems.append(
                f"{trace_cache.ENV_DIR} is set but empty: unset it or "
                "name a directory"
            )
        elif os.path.exists(cache_dir) and not os.path.isdir(cache_dir):
            problems.append(
                f"{trace_cache.ENV_DIR}={cache_dir!r}: exists but is "
                "not a directory"
            )

    log_level = env.get(structlog.ENV_LOG_LEVEL, "")
    if log_level and log_level.upper() not in structlog.LEVELS:
        problems.append(
            f"{structlog.ENV_LOG_LEVEL}={log_level!r}: expected one of "
            f"{'/'.join(structlog.LEVELS)}"
        )

    log_dest = env.get(structlog.ENV_LOG)
    if log_dest is not None:
        if not log_dest.strip():
            problems.append(
                f"{structlog.ENV_LOG} is set but empty: unset it or "
                "name a file (or 'stderr')"
            )
        elif log_dest not in structlog.STDERR_ALIASES and os.path.isdir(
            log_dest
        ):
            problems.append(
                f"{structlog.ENV_LOG}={log_dest!r}: names a directory, "
                "not a log file"
            )

    if problems:
        raise EnvValidationError(
            "invalid environment: " + "; ".join(problems)
        )


def validate_scale(scale: int | None, *, where: str = "scale") -> int | None:
    """Reject non-positive workload scales (``None`` means default)."""
    if scale is None:
        return None
    if isinstance(scale, bool) or not isinstance(scale, int):
        raise ValueError(
            f"{where} must be a positive int or None, "
            f"got {type(scale).__name__}"
        )
    if scale < 1:
        raise ValueError(f"{where} must be >= 1, got {scale}")
    return scale
