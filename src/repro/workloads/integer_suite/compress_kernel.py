"""compress analogue: LZW-style dictionary compression.

SPEC's compress is LZW: a sequential scan of the input bytes, a large
hash table probed with a double-hash open-addressing scheme (the classic
``(char << hshift) ^ prefix`` probe), and a sequential code output
stream.  The hash table is the D-cache stressor — probes scatter across
a table much larger than the primary cache — while input and output are
perfectly sequential (stream-buffer- and write-cache-friendly).

``scale`` is the input length in bytes.  The input is skewed pseudo-text
(letter frequencies roughly English-like) so dictionary hits and misses
interleave realistically.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.workloads.registry import workload
from repro.workloads.support import (
    Lcg,
    build_and_check,
    emit_library,
    emit_library_rounds,
    emit_round_dispatcher,
)

_TABLE_ENTRIES = 2048  # 2 words each: key, code  -> 16 KB table
_FIRST_FREE_CODE = 257
#: Stop inserting once the dictionary holds this many codes (load factor
#: 0.5), mirroring real compress's code-size limit; prevents the probe
#: loop from degenerating as the table saturates.
_MAX_CODE = _FIRST_FREE_CODE + _TABLE_ENTRIES // 2


@workload(
    "compress",
    suite="int",
    default_scale=4000,
    description="LZW compression: hash probing over a 16 KB table",
)
def build(scale: int) -> Program:
    """``scale`` is the number of input bytes to compress."""
    if scale < 16:
        raise ValueError("compress needs at least 16 input bytes")
    rng = Lcg(seed=0xC03B7E55)
    asm = Assembler()

    # ------------------------------------------------------------ data
    # Skewed byte distribution: a few characters dominate, like text.
    alphabet = b"etaoinshrdlucmfwypvbgkjqxz .,\n"
    weights = [12, 9, 8, 8, 7, 7, 6, 6, 6, 4, 4, 3, 3, 3, 2, 2, 2, 2,
               1, 1, 1, 1, 1, 1, 1, 1, 18, 2, 1, 1]
    cumulative: list[int] = []
    total = 0
    for weight in weights:
        total += weight
        cumulative.append(total)

    def skewed_byte() -> int:
        pick = rng.next_below(total)
        for idx, bound in enumerate(cumulative):
            if pick < bound:
                return alphabet[idx]
        return alphabet[-1]

    asm.data_label("input")
    asm.byte(*[skewed_byte() for _ in range(scale)])
    asm.align(4)
    asm.data_label("htab_key")
    asm.word(*([-1] * _TABLE_ENTRIES))
    asm.data_label("htab_code")
    asm.word(*([0] * _TABLE_ENTRIES))
    asm.data_label("output")
    asm.word(*([0] * (scale // 2 + 8)))
    asm.data_label("out_count")
    asm.word(0)
    asm.data_label("lib_pool")
    asm.word(*[rng.next_u32() & 0xFFFF for _ in range(2048)])

    # ------------------------------------------------------------ main
    # Register plan:
    #   s0 = input cursor        s1 = input end
    #   s2 = &htab_key           s3 = &htab_code
    #   s4 = prefix code         s5 = next free code
    #   s6 = output cursor       s7 = table mask
    asm.la("s0", "input")
    asm.addiu("s1", "s0", scale)
    asm.la("s2", "htab_key")
    asm.la("s3", "htab_code")
    asm.la("s6", "output")
    asm.li("s5", _FIRST_FREE_CODE)
    asm.li("s7", _TABLE_ENTRIES - 1)

    # prefix = first byte
    asm.lbu("s4", 0, "s0")
    asm.addiu("s0", "s0", 1)

    asm.label("main_loop")
    asm.lbu("a0", 0, "s0")  # c = next byte
    asm.addiu("s0", "s0", 1)
    # key = (prefix << 8) | c
    asm.sll("t0", "s4", 8)
    asm.or_("t0", "t0", "a0")  # t0 = key
    # index = (key ^ key>>7 ^ key>>13) & mask  (spread the code bits)
    asm.srl("t1", "t0", 7)
    asm.xor("t1", "t1", "t0")
    asm.srl("t2", "t0", 13)
    asm.xor("t1", "t1", "t2")
    asm.and_("t1", "t1", "s7")  # t1 = index
    # stride = ((key >> 5) | 1) & mask  (odd: full-cycle double hashing)
    asm.srl("a1", "t0", 5)
    asm.ori("a1", "a1", 1)
    asm.and_("a1", "a1", "s7")

    # Open-addressing probe loop with double hashing (as in compress).
    asm.label("probe")
    asm.sll("t2", "t1", 2)
    asm.addu("t3", "s2", "t2")
    asm.lw("t4", 0, "t3")  # table key
    asm.beq("t4", "t0", "dict_hit")
    asm.li("t5", -1)
    asm.beq("t4", "t5", "dict_miss")
    asm.addu("t1", "t1", "a1")
    asm.and_("t1", "t1", "s7")
    asm.b("probe")

    asm.label("dict_hit")
    # prefix = code stored for this key
    asm.addu("t6", "s3", "t2")
    asm.lw("s4", 0, "t6")
    asm.b("next_byte")

    asm.label("dict_miss")
    # emit prefix, insert (key -> next_code) unless the dictionary is
    # full (compress's code limit), prefix = c
    asm.sw("s4", 0, "s6")
    asm.addiu("s6", "s6", 4)
    asm.li("t7", _MAX_CODE)
    asm.slt("t7", "s5", "t7")
    asm.beq("t7", "zero", "dict_full")
    asm.sw("t0", 0, "t3")  # htab_key[index] = key
    asm.addu("t6", "s3", "t2")
    asm.sw("s5", 0, "t6")  # htab_code[index] = next code
    asm.addiu("s5", "s5", 1)
    asm.label("dict_full")
    asm.move("s4", "a0")

    asm.label("next_byte")
    # every 512 input bytes, run IO/bit-packing support work
    asm.andi("t0", "s0", 511)
    asm.bne("t0", "zero", "no_lib")
    asm.srl("a0", "s0", 9)
    asm.jal("lib_round")
    asm.label("no_lib")
    asm.bne("s0", "s1", "main_loop")

    # flush final prefix and store the output length
    asm.sw("s4", 0, "s6")
    asm.addiu("s6", "s6", 4)
    asm.la("t0", "output")
    asm.subu("t1", "s6", "t0")
    asm.sra("t1", "t1", 2)
    asm.la("t2", "out_count")
    asm.sw("t1", 0, "t2")
    asm.halt()

    lib = emit_library(asm, rng, "cmp", 40, "lib_pool", 2048)
    rounds = emit_library_rounds(asm, "cmp", lib, 4, rng, 2048)
    emit_round_dispatcher(asm, "lib_round", rounds)

    return build_and_check(asm)
