"""sc analogue: spreadsheet recalculation.

SPEC's sc is a curses spreadsheet; its compute kernel re-evaluates a grid
of cells whose formulas reference other cells — row-major sweeps with
scattered gather reads (cross-references), a dispatch on formula type per
cell, and column-strided passes that are unkind to a direct-mapped cache.

The grid here is ``scale`` x ``scale`` cells of four words
(type, value, ref1, ref2).  Formula types: constant, sum of the left and
upper neighbours, sum of two random cells (the gather), and a product
formula using the HI/LO multiplier.  Dispatch is through a register-
indirect jump table, as a real interpreter would — these are the
unfoldable jumps of Section 2's branch-folding discussion.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.workloads.registry import workload
from repro.workloads.support import (
    Lcg,
    build_and_check,
    emit_library,
    emit_library_rounds,
    emit_round_dispatcher,
)

_SWEEPS = 3
_CELL_BYTES = 16


@workload(
    "sc",
    suite="int",
    default_scale=22,
    description="spreadsheet grid recalc: type dispatch + gather refs",
)
def build(scale: int) -> Program:
    """``scale`` is the grid edge length (scale x scale cells)."""
    if scale < 4:
        raise ValueError("sc needs at least a 4x4 grid")
    rng = Lcg(seed=0x5C5C5C5C)
    asm = Assembler()
    cells = scale * scale

    # ------------------------------------------------------------ data
    asm.data_label("grid")
    for index in range(cells):
        row, col = divmod(index, scale)
        if row == 0 or col == 0:
            cell_type = 0  # borders are constants
        else:
            cell_type = 1 + rng.next_below(3)
        ref1 = rng.next_below(cells)
        ref2 = rng.next_below(cells)
        asm.word(cell_type, rng.next_below(100), ref1, ref2)
    asm.data_label("jump_table")
    asm.word(0, 0, 0, 0)  # patched at runtime with handler addresses
    asm.data_label("col_sums")
    asm.word(*([0] * scale))
    asm.data_label("lib_pool")
    asm.word(*[rng.next_u32() & 0xFFFF for _ in range(2048)])

    # ------------------------------------------------------------ main
    # s0=&grid s1=cell index s2=cells s3=&jump_table s4=sweep counter
    # s5=grid edge (scale)
    asm.la("s0", "grid")
    asm.la("s3", "jump_table")
    asm.li("s2", cells)
    asm.li("s5", scale)

    # Patch the jump table with handler addresses.
    for slot, handler in enumerate(
        ("cell_const", "cell_neighbors", "cell_gather", "cell_product")
    ):
        asm.la("t0", handler)
        asm.sw("t0", 4 * slot, "s3")

    asm.addiu("sp", "sp", -16)  # eval frame: spill slots live all run
    asm.li("s4", _SWEEPS)
    asm.label("sweep")

    # -- row-major evaluation sweep --------------------------------------
    asm.li("s1", 0)
    asm.label("eval_loop")
    asm.sll("t0", "s1", 4)
    asm.addu("s6", "s0", "t0")  # s6 = &cell
    asm.sw("s1", 0, "sp")  # spill the live index across the dispatch
    asm.sw("s6", 4, "sp")
    asm.lw("t1", 0, "s6")  # type
    asm.sll("t1", "t1", 2)
    asm.addu("t1", "s3", "t1")
    asm.lw("t2", 0, "t1")
    asm.jr("t2")  # dispatch (register jump: not foldable)
    asm.label("cell_done")
    asm.lw("s1", 0, "sp")
    asm.lw("s6", 4, "sp")
    asm.addiu("s1", "s1", 1)
    asm.andi("t0", "s1", 127)
    asm.bne("t0", "zero", "eval_no_lib")
    asm.srl("a0", "s1", 7)
    asm.jal("lib_round")
    asm.label("eval_no_lib")
    asm.bne("s1", "s2", "eval_loop")

    # -- column-strided summary pass (direct-mapped-cache hostile) --------
    asm.la("t9", "col_sums")
    asm.li("t8", 0)  # column index
    asm.label("col_loop")
    asm.li("v0", 0)
    asm.sll("t0", "t8", 4)
    asm.addu("t1", "s0", "t0")  # &grid[0][col]
    asm.li("t2", 0)  # row
    asm.label("col_inner")
    asm.lw("t3", 4, "t1")  # cell value
    asm.addu("v0", "v0", "t3")
    asm.sll("t4", "s5", 4)
    asm.addu("t1", "t1", "t4")  # stride = one row of cells
    asm.addiu("t2", "t2", 1)
    asm.bne("t2", "s5", "col_inner")
    asm.sll("t5", "t8", 2)
    asm.addu("t6", "t9", "t5")
    asm.sw("v0", 0, "t6")
    asm.addiu("t8", "t8", 1)
    asm.bne("t8", "s5", "col_loop")

    # screen-redraw/format support work once per sweep (rotating round)
    asm.move("a0", "s4")
    asm.jal("lib_round")

    asm.addiu("s4", "s4", -1)
    asm.bne("s4", "zero", "sweep")
    asm.addiu("sp", "sp", 16)
    asm.halt()

    # ------------------------------------------------------ cell handlers
    # Each handler updates cell->value (offset 4) and jumps to cell_done.
    asm.label("cell_const")
    asm.lw("t3", 4, "s6")
    asm.addiu("t3", "t3", 1)
    asm.sw("t3", 4, "s6")
    asm.b("cell_done")

    asm.label("cell_neighbors")
    # value = left.value + up.value  (left = cell-16, up = cell - 16*edge)
    asm.lw("t3", -_CELL_BYTES + 4, "s6")
    asm.sll("t4", "s5", 4)
    asm.subu("t5", "s6", "t4")
    asm.lw("t6", 4, "t5")
    asm.addu("t3", "t3", "t6")
    asm.sw("t3", 4, "s6")
    asm.b("cell_done")

    asm.label("cell_gather")
    # value = grid[ref1].value + grid[ref2].value (random gather)
    asm.lw("t3", 8, "s6")
    asm.sll("t3", "t3", 4)
    asm.addu("t3", "s0", "t3")
    asm.lw("t4", 4, "t3")
    asm.lw("t5", 12, "s6")
    asm.sll("t5", "t5", 4)
    asm.addu("t5", "s0", "t5")
    asm.lw("t6", 4, "t5")
    asm.addu("t4", "t4", "t6")
    asm.sw("t4", 4, "s6")
    asm.b("cell_done")

    asm.label("cell_product")
    # value = (value * ref1_value) mod 2^32 via the HI/LO multiplier
    asm.lw("t3", 4, "s6")
    asm.lw("t4", 8, "s6")
    asm.sll("t4", "t4", 4)
    asm.addu("t4", "s0", "t4")
    asm.lw("t5", 4, "t4")
    asm.multu("t3", "t5")
    asm.mflo("t6")
    asm.andi("t6", "t6", 0x7FFF)
    asm.sw("t6", 4, "s6")
    asm.b("cell_done")

    lib = emit_library(asm, rng, "sc", 40, "lib_pool", 2048)
    rounds = emit_library_rounds(asm, "sc", lib, 4, rng, 2048)
    emit_round_dispatcher(asm, "lib_round", rounds)

    return build_and_check(asm)
