"""SPECint92-analogue kernels (espresso, li, eqntott, compress, sc, gcc).

Importing this package registers all six integer workloads.
"""

from repro.workloads.integer_suite import espresso_kernel  # noqa: F401
from repro.workloads.integer_suite import li_kernel  # noqa: F401
from repro.workloads.integer_suite import eqntott_kernel  # noqa: F401
from repro.workloads.integer_suite import compress_kernel  # noqa: F401
from repro.workloads.integer_suite import sc_kernel  # noqa: F401
from repro.workloads.integer_suite import gcc_kernel  # noqa: F401
