"""gcc analogue: multi-pass translation with a large code footprint.

SPEC's gcc distinguishes itself from the rest of the integer suite by its
*instruction* footprint: dozens of distinct passes over an intermediate
representation, each with its own code, give it the worst I-cache
behaviour of the suite (and hence the most to gain from I-stream
prefetching).

This kernel mimics that structure end to end:

1. a lexer scans ``scale`` bytes of pseudo-source, classifying characters
   and hashing identifiers into a symbol table,
2. a parser pass walks the token stream with a state machine and emits an
   IR array,
3. twenty *generated* optimisation passes — each a distinct function with
   its own constants, operations and peephole window, called in sequence —
   rewrite the IR.  The pass bodies are deliberately different from one
   another so the total text footprint (~5 KB) exceeds even the large
   model's 4 KB I-cache, forcing the round-robin pass structure to miss.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.workloads.registry import workload
from repro.workloads.support import Lcg, build_and_check

_NUM_PASSES = 28


@workload(
    "gcc",
    suite="int",
    default_scale=1100,
    description="lexer + parser + 20 distinct IR passes (big code footprint)",
)
def build(scale: int) -> Program:
    """``scale`` is the pseudo-source length in bytes."""
    if scale < 64:
        raise ValueError("gcc needs at least 64 source bytes")
    rng = Lcg(seed=0x6CC6CC6C)
    asm = Assembler()

    # ------------------------------------------------------------ data
    # Pseudo-source: identifiers, numbers, operators, whitespace.
    source: list[int] = []
    while len(source) < scale:
        kind = rng.next_below(10)
        if kind < 4:  # identifier of 1-6 letters
            for _ in range(1 + rng.next_below(6)):
                source.append(ord("a") + rng.next_below(26))
        elif kind < 7:  # number of 1-4 digits
            for _ in range(1 + rng.next_below(4)):
                source.append(ord("0") + rng.next_below(10))
        elif kind < 9:  # operator
            source.append(ord("+-*/=<>&|^"[rng.next_below(10)]))
        else:  # whitespace
            source.append(ord(" "))
    source = source[:scale]
    source[-1] = 0  # NUL terminator

    asm.data_label("src")
    asm.byte(*source)
    asm.align(4)
    asm.data_label("tokens")
    asm.word(*([0] * (scale * 2 + 4)))  # (kind, value) pairs
    asm.data_label("symtab")
    asm.word(*([0] * 512))
    asm.data_label("ir")
    asm.word(*([0] * (scale + 4)))
    asm.data_label("ntokens")
    asm.word(0)
    asm.data_label("nir")
    asm.word(0)
    asm.data_label("pass_stats")
    asm.word(*([0] * (2 * _NUM_PASSES + 32)))
    asm.data_label("log_area")
    asm.word(*([0] * 4096))
    asm.data_label("log_ptr")
    asm.word(0)

    # ------------------------------------------------------------ main
    # Lex, parse, then optimise block-at-a-time: every IR block flows
    # through all passes before the next block (gcc's per-function pass
    # pipeline).  The inner "loop body" is therefore the whole ~7 KB
    # pass sequence — far larger than the primary I-caches.
    asm.jal("lexer")
    asm.jal("parser")
    asm.la("s3", "ir")  # block cursor
    asm.la("t0", "nir")
    asm.lw("t1", 0, "t0")
    asm.sra("t1", "t1", 4)  # 16-word blocks
    asm.addiu("t1", "t1", 1)
    asm.sll("t1", "t1", 6)  # block count * 64 bytes
    asm.addu("s4", "s3", "t1")  # end cursor
    asm.label("opt_blocks")
    for index in range(_NUM_PASSES):
        asm.move("a0", "s3")
        asm.jal(f"pass_{index}")
    asm.addiu("s3", "s3", 64)
    asm.slt("t0", "s3", "s4")
    asm.bne("t0", "zero", "opt_blocks")
    asm.halt()

    # -------------------------------------------------------------- lexer
    # s0=src cursor  s1=&tokens cursor  s2=&symtab  v1=token count
    asm.label("lexer")
    asm.la("s0", "src")
    asm.la("s1", "tokens")
    asm.la("s2", "symtab")
    asm.li("v1", 0)
    asm.label("lex_loop")
    asm.lbu("t0", 0, "s0")
    asm.beq("t0", "zero", "lex_done")
    # classify: letter?
    asm.addiu("t1", "t0", -ord("a"))
    asm.sltiu("t2", "t1", 26)
    asm.bne("t2", "zero", "lex_ident")
    # digit?
    asm.addiu("t1", "t0", -ord("0"))
    asm.sltiu("t2", "t1", 10)
    asm.bne("t2", "zero", "lex_number")
    # whitespace?
    asm.li("t1", ord(" "))
    asm.beq("t0", "t1", "lex_skip")
    # operator: token kind 3, value = char
    asm.li("t3", 3)
    asm.sw("t3", 0, "s1")
    asm.sw("t0", 4, "s1")
    asm.addiu("s1", "s1", 8)
    asm.addiu("v1", "v1", 1)
    asm.addiu("s0", "s0", 1)
    asm.b("lex_loop")

    asm.label("lex_ident")
    # consume letters, compute rolling hash, bump symtab bucket
    asm.li("t4", 0)  # hash
    asm.label("lex_id_more")
    asm.sll("t5", "t4", 3)
    asm.xor("t4", "t5", "t0")
    asm.addiu("s0", "s0", 1)
    asm.lbu("t0", 0, "s0")
    asm.addiu("t1", "t0", -ord("a"))
    asm.sltiu("t2", "t1", 26)
    asm.bne("t2", "zero", "lex_id_more")
    asm.andi("t4", "t4", 511)
    asm.sll("t5", "t4", 2)
    asm.addu("t5", "s2", "t5")
    asm.lw("t6", 0, "t5")  # symtab[h]++
    asm.addiu("t6", "t6", 1)
    asm.sw("t6", 0, "t5")
    asm.li("t3", 1)  # kind 1 = identifier
    asm.sw("t3", 0, "s1")
    asm.sw("t4", 4, "s1")
    asm.addiu("s1", "s1", 8)
    asm.addiu("v1", "v1", 1)
    asm.b("lex_loop")

    asm.label("lex_number")
    asm.li("t4", 0)  # value
    asm.label("lex_num_more")
    asm.sll("t5", "t4", 3)
    asm.sll("t6", "t4", 1)
    asm.addu("t4", "t5", "t6")  # value * 10
    asm.addiu("t6", "t0", -ord("0"))
    asm.addu("t4", "t4", "t6")
    asm.addiu("s0", "s0", 1)
    asm.lbu("t0", 0, "s0")
    asm.addiu("t1", "t0", -ord("0"))
    asm.sltiu("t2", "t1", 10)
    asm.bne("t2", "zero", "lex_num_more")
    asm.li("t3", 2)  # kind 2 = number
    asm.sw("t3", 0, "s1")
    asm.sw("t4", 4, "s1")
    asm.addiu("s1", "s1", 8)
    asm.addiu("v1", "v1", 1)
    asm.b("lex_loop")

    asm.label("lex_skip")
    asm.addiu("s0", "s0", 1)
    asm.b("lex_loop")

    asm.label("lex_done")
    asm.la("t0", "ntokens")
    asm.sw("v1", 0, "t0")
    asm.jr("ra")

    # ------------------------------------------------------------- parser
    # State machine over tokens; emits one IR word per token combining
    # state, kind and value.  s0=token cursor  s1=count  s2=&ir  t7=state
    asm.label("parser")
    asm.la("s0", "tokens")
    asm.la("t0", "ntokens")
    asm.lw("s1", 0, "t0")
    asm.la("s2", "ir")
    asm.li("t7", 0)  # state
    asm.li("v1", 0)  # IR count
    asm.beq("s1", "zero", "parse_done")
    asm.label("parse_loop")
    asm.lw("t0", 0, "s0")  # kind
    asm.lw("t1", 4, "s0")  # value
    # state transition: state = (state * 2 + kind) & 7
    asm.sll("t7", "t7", 1)
    asm.addu("t7", "t7", "t0")
    asm.andi("t7", "t7", 7)
    # IR word = (state << 28) | (kind << 24) | (value & 0xffffff)
    asm.sll("t2", "t7", 28)
    asm.sll("t3", "t0", 24)
    asm.or_("t2", "t2", "t3")
    asm.sll("t4", "t1", 8)
    asm.srl("t4", "t4", 8)
    asm.or_("t2", "t2", "t4")
    asm.sw("t2", 0, "s2")
    asm.addiu("s2", "s2", 4)
    asm.addiu("v1", "v1", 1)
    asm.addiu("s0", "s0", 8)
    asm.addiu("s1", "s1", -1)
    asm.bne("s1", "zero", "parse_loop")
    asm.label("parse_done")
    asm.la("t0", "nir")
    asm.sw("v1", 0, "t0")
    asm.jr("ra")

    # ------------------------------------------------- generated IR passes
    # Each pass walks the IR in unrolled four-word blocks with its own
    # distinct transformation per lane, so a pass body is ~60 unique
    # straight-line instructions — the low code-line residency that gives
    # real gcc the worst I-cache behaviour of the suite.
    ops = ("xor", "or", "and", "addu", "subu")
    for index in range(_NUM_PASSES):
        constant = rng.next_u32() & 0x7FFF
        shift = 1 + (index % 7)
        op1 = ops[index % len(ops)]
        op2 = ops[(index + 2) % len(ops)]
        asm.label(f"pass_{index}")
        asm.move("t0", "a0")  # block pointer
        asm.li("t1", 4)  # 4 unrolled lanes x 4 iterations = 16 words
        asm.li("t8", constant)
        asm.label(f"pass_{index}_loop")
        for lane in range(4):
            lane_op = ops[(index + lane) % len(ops)]
            asm.lw("t2", 4 * lane, "t0")
            asm.srl("t3", "t2", (index + lane) % 8)
            asm.andi("t3", "t3", 1)
            asm.beq("t3", "zero", f"pass_{index}_else{lane}")
            asm.op(op1, "t2", "t2", "t8")
            asm.sll("t4", "t2", shift)
            asm.xor("t2", "t2", "t4")
            asm.b(f"pass_{index}_store{lane}")
            asm.label(f"pass_{index}_else{lane}")
            asm.op(op2, "t2", "t2", "t8")
            asm.srl("t4", "t2", shift)
            asm.op(lane_op, "t2", "t2", "t4")
            asm.label(f"pass_{index}_store{lane}")
            asm.addiu("t5", "t2", index + lane + 1)
            asm.xor("t2", "t2", "t5")
            asm.sw("t2", 4 * lane, "t0")
        asm.addiu("t0", "t0", 16)
        asm.addiu("t1", "t1", -1)
        asm.bne("t1", "zero", f"pass_{index}_loop")
        # per-pass bookkeeping: scattered stat update + log append,
        # displacing write-cache lines between passes as real passes do
        asm.la("t6", "pass_stats")
        asm.lw("t7", 4 * (2 * index), "t6")
        asm.addu("t7", "t7", "t2")
        asm.sw("t7", 4 * (2 * index), "t6")
        asm.la("t6", "log_ptr")
        asm.lw("t7", 0, "t6")
        asm.la("t5", "log_area")
        asm.addu("t5", "t5", "t7")
        asm.sw("t2", 0, "t5")
        asm.addiu("t7", "t7", 4)
        asm.andi("t7", "t7", 16383)
        asm.sw("t7", 0, "t6")
        asm.jr("ra")

    return build_and_check(asm)
