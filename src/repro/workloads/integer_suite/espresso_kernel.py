"""espresso analogue: two-level logic-cover manipulation.

SPEC's espresso minimises boolean functions represented as covers of
*cubes* (bit-vector pairs).  Its hot loops AND cube bit-vectors together,
count literals, and prune covered cubes — word-at-a-time bit manipulation
over a moderate data set with data-dependent branches.

This kernel reproduces that profile: a cover of ``scale`` cubes, each an
8-word bit-vector; an O(n²) containment pass intersects every cube pair,
counts the surviving literals with a Kernighan popcount (data-dependent
inner branch), and marks covered cubes; a final pass compacts the cover,
writing surviving cubes out sequentially (write-cache-friendly bursts).
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.isa.program import DATA_BASE, Program
from repro.workloads.registry import workload
from repro.workloads.support import (
    Frame,
    Lcg,
    build_and_check,
    emit_library,
    emit_library_rounds,
    emit_round_dispatcher,
    enter,
    leave,
)

_WORDS_PER_CUBE = 8
_CUBE_BYTES = 4 * _WORDS_PER_CUBE


@workload(
    "espresso",
    suite="int",
    default_scale=40,
    description="boolean cover containment + compaction (bit-vector heavy)",
)
def build(scale: int) -> Program:
    """``scale`` is the number of cubes in the cover."""
    if scale < 2:
        raise ValueError("espresso needs at least 2 cubes")
    rng = Lcg(seed=0xE5B4E550)
    asm = Assembler()

    # ------------------------------------------------------------ data
    # The cover is an array of *pointers* to cubes (as in espresso's
    # pset/pcover representation); cube storage order is shuffled so
    # walking the cover is pointer-scattered, not streaming.
    perm = list(range(scale))
    for i in range(scale - 1, 0, -1):
        j = rng.next_below(i + 1)
        perm[i], perm[j] = perm[j], perm[i]
    asm.data_label("cubes")
    for _ in range(scale * _WORDS_PER_CUBE):
        # Sparse-ish cubes: ~8 set bits per word keeps popcounts short.
        word = rng.next_u32() & rng.next_u32() & rng.next_u32()
        asm.word(word)
    asm.data_label("cube_ptrs")
    for i in range(scale):
        asm.word(DATA_BASE + _CUBE_BYTES * perm[i])
    asm.data_label("covered")
    asm.word(*([0] * scale))
    asm.data_label("compacted")
    asm.word(*([0] * (scale * _WORDS_PER_CUBE)))
    asm.data_label("survivors")
    asm.word(0)
    asm.data_label("lib_pool")
    asm.word(*[rng.next_u32() & 0xFFFF for _ in range(2048)])

    # ------------------------------------------------------------ main
    # s0=i  s1=j  s2=&cube_ptrs  s3=n  s4=threshold  s5=&covered  s6=n-1
    asm.la("s2", "cube_ptrs")
    asm.la("s5", "covered")
    asm.li("s3", scale)
    asm.li("s4", 10)  # containment threshold (literal count)
    asm.addiu("s6", "s3", -1)
    asm.li("s0", 0)

    asm.label("outer_i")
    asm.addiu("s1", "s0", 1)

    asm.label("outer_j")
    # Skip cubes already covered.
    asm.sll("t0", "s1", 2)
    asm.addu("t0", "s5", "t0")
    asm.lw("t1", 0, "t0")
    asm.bne("t1", "zero", "skip_pair")
    # a0 = cover[i], a1 = cover[j] (pointer loads)
    asm.sll("t2", "s0", 2)
    asm.addu("t2", "s2", "t2")
    asm.lw("a0", 0, "t2")
    asm.sll("t3", "s1", 2)
    asm.addu("t3", "s2", "t3")
    asm.lw("a1", 0, "t3")
    asm.jal("intersect_count")
    # if (count >= threshold) covered[j] = 1
    asm.slt("t4", "v0", "s4")
    asm.bne("t4", "zero", "skip_pair")
    asm.sll("t5", "s1", 2)
    asm.addu("t5", "s5", "t5")
    asm.li("t6", 1)
    asm.sw("t6", 0, "t5")
    asm.label("skip_pair")
    asm.addiu("s1", "s1", 1)
    asm.bne("s1", "s3", "outer_j")
    # every 2nd row, run a rotating round of support-library work
    # (set-up code, allocation, printing analogues) — I-stream churn
    asm.andi("t0", "s0", 1)
    asm.bne("t0", "zero", "no_lib")
    asm.srl("a0", "s0", 1)
    asm.jal("lib_round")
    asm.label("no_lib")
    asm.addiu("s0", "s0", 1)
    asm.bne("s0", "s6", "outer_i")

    # -------------------------------------------------- compaction pass
    # Copy surviving cubes to `compacted`, counting them.
    asm.la("t0", "compacted")  # t0 = output cursor
    asm.li("s0", 0)  # i
    asm.li("v1", 0)  # survivor count
    asm.label("compact_loop")
    asm.sll("t1", "s0", 2)
    asm.addu("t1", "s5", "t1")
    asm.lw("t2", 0, "t1")
    asm.bne("t2", "zero", "compact_next")
    # copy 8 words from *cover[i]
    asm.sll("t3", "s0", 2)
    asm.addu("t3", "s2", "t3")
    asm.lw("t3", 0, "t3")
    for w in range(_WORDS_PER_CUBE):
        asm.lw("t4", 4 * w, "t3")
        asm.sw("t4", 4 * w, "t0")
    asm.addiu("t0", "t0", _CUBE_BYTES)
    asm.addiu("v1", "v1", 1)
    asm.label("compact_next")
    asm.addiu("s0", "s0", 1)
    asm.bne("s0", "s3", "compact_loop")
    asm.la("t5", "survivors")
    asm.sw("v1", 0, "t5")
    asm.halt()

    # --------------------------------------- intersect_count(a0, a1)->v0
    # Popcount of the AND of two 8-word cubes (Kernighan inner loop).
    asm.label("intersect_count")
    frame = Frame(saved=("s0", "s1"))
    enter(asm, frame)
    asm.move("s0", "a0")
    asm.move("s1", "a1")
    asm.li("v0", 0)
    asm.li("t9", _WORDS_PER_CUBE)
    asm.label("ic_word")
    asm.lw("t0", 0, "s0")
    asm.lw("t1", 0, "s1")
    asm.and_("t0", "t0", "t1")
    asm.label("ic_pop")
    asm.beq("t0", "zero", "ic_popdone")
    asm.addiu("t2", "t0", -1)
    asm.op("and", "t0", "t0", "t2")
    asm.addiu("v0", "v0", 1)
    asm.b("ic_pop")
    asm.label("ic_popdone")
    asm.addiu("s0", "s0", 4)
    asm.addiu("s1", "s1", 4)
    asm.addiu("t9", "t9", -1)
    asm.bne("t9", "zero", "ic_word")
    leave(asm, frame)

    lib = emit_library(asm, rng, "esp", 40, "lib_pool", 2048)
    rounds = emit_library_rounds(asm, "esp", lib, 4, rng, 2048)
    emit_round_dispatcher(asm, "lib_round", rounds)

    return build_and_check(asm)
