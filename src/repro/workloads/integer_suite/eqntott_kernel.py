"""eqntott analogue: quicksort dominated by a comparison function.

SPEC's eqntott converts boolean equations to truth tables; its execution
time is famously dominated by ``cmppt``, a small comparison routine
called from ``qsort`` — a tiny, hot code footprint, call-heavy control
flow, and array accesses whose order becomes increasingly random as the
partitions shuffle records around.

This kernel sorts ``scale`` two-word records with a recursive quicksort
(Lomuto partition) whose every comparison is an out-of-line ``cmppt``
call, then emits a truth-table-like bit expansion of the sorted keys into
a sequential output buffer.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.isa.program import DATA_BASE, Program
from repro.workloads.registry import workload
from repro.workloads.support import (
    Frame,
    Lcg,
    build_and_check,
    emit_library,
    emit_library_rounds,
    emit_round_dispatcher,
    enter,
    leave,
)


@workload(
    "eqntott",
    suite="int",
    default_scale=420,
    description="recursive quicksort with out-of-line cmppt comparisons",
)
def build(scale: int) -> Program:
    """``scale`` is the number of two-word records to sort."""
    if scale < 4:
        raise ValueError("eqntott needs at least 4 records")
    rng = Lcg(seed=0xE46707)
    asm = Assembler()

    # ------------------------------------------------------------ data
    # Like the real eqntott, we sort an array of *pointers* (ptv) to
    # records; record storage order is shuffled so dereferences scatter.
    perm = list(range(scale))
    for i in range(scale - 1, 0, -1):
        j = rng.next_below(i + 1)
        perm[i], perm[j] = perm[j], perm[i]
    asm.data_label("pts")
    for _ in range(scale):
        # Few distinct primary keys -> the tie-breaking second compare
        # in cmppt is exercised often, as in the real cmppt.
        asm.word(rng.next_below(64), rng.next_below(1 << 30))
    asm.data_label("ptv")
    for i in range(scale):
        asm.word(DATA_BASE + 8 * perm[i])
    asm.data_label("table")
    asm.word(*([0] * scale))
    asm.data_label("distinct")
    asm.word(0)
    asm.data_label("lib_pool")
    asm.word(*[rng.next_u32() & 0xFFFF for _ in range(2048)])

    # ------------------------------------------------------------ main
    asm.la("s4", "ptv")  # pointer-vector base, live across the whole run
    asm.li("a0", 0)
    asm.li("a1", scale - 1)
    asm.jal("quicksort")

    # Truth-table expansion: sequential walk of the sorted pointer
    # vector, scattered record dereferences, sequential output writes.
    # Loop state lives in s-registers because lib_round clobbers t-regs.
    asm.la("s0", "ptv")
    asm.la("s1", "table")
    asm.li("s2", scale)
    asm.li("s3", -1)  # previous key
    asm.li("s5", 0)  # distinct count
    asm.label("tt_loop")
    asm.lw("t7", 0, "s0")  # record pointer
    asm.lw("t4", 0, "t7")
    asm.lw("t5", 4, "t7")
    asm.xor("t6", "t4", "t5")
    asm.andi("t6", "t6", 0xFF)
    asm.sw("t6", 0, "s1")
    asm.beq("t4", "s3", "tt_same")
    asm.addiu("s5", "s5", 1)
    asm.move("s3", "t4")
    asm.label("tt_same")
    asm.addiu("s0", "s0", 4)
    asm.addiu("s1", "s1", 4)
    # equation-parsing/printing support work every 32 records
    asm.andi("t6", "s2", 31)
    asm.bne("t6", "zero", "tt_no_lib")
    asm.srl("a0", "s2", 5)
    asm.jal("lib_round")
    asm.label("tt_no_lib")
    asm.addiu("s2", "s2", -1)
    asm.bne("s2", "zero", "tt_loop")
    asm.la("t7", "distinct")
    asm.sw("s5", 0, "t7")
    asm.halt()

    # ----------------------------------------- quicksort(a0=lo, a1=hi)
    # Recursive, Lomuto partition; every comparison calls cmppt.
    asm.label("quicksort")
    frame = Frame(saved=("s0", "s1", "s2", "s3"))
    asm.slt("t0", "a0", "a1")
    with asm.noreorder():
        asm.beq("t0", "zero", "qs_return")
        asm.nop()
    enter(asm, frame)
    asm.move("s0", "a0")  # lo
    asm.move("s1", "a1")  # hi
    asm.addiu("s3", "s0", -1)  # i = lo - 1
    asm.move("s2", "s0")  # j = lo

    asm.label("qs_partition")
    # a0 = ptv[j], a1 = ptv[hi] (record pointers)
    asm.sll("t0", "s2", 2)
    asm.addu("t8", "s4", "t0")
    asm.lw("a0", 0, "t8")
    asm.sll("t1", "s1", 2)
    asm.addu("t9", "s4", "t1")
    asm.lw("a1", 0, "t9")
    asm.jal("cmppt")
    asm.bgtz("v0", "qs_noswap")
    asm.addiu("s3", "s3", 1)
    # swap ptv[i] and ptv[j] (single pointer words)
    asm.sll("t0", "s3", 2)
    asm.addu("t0", "s4", "t0")
    asm.sll("t1", "s2", 2)
    asm.addu("t1", "s4", "t1")
    asm.lw("t2", 0, "t0")
    asm.lw("t4", 0, "t1")
    asm.sw("t4", 0, "t0")
    asm.sw("t2", 0, "t1")
    asm.label("qs_noswap")
    asm.addiu("s2", "s2", 1)
    asm.bne("s2", "s1", "qs_partition")

    # place pivot: swap ptv[i+1], ptv[hi]
    asm.addiu("s3", "s3", 1)
    asm.sll("t0", "s3", 2)
    asm.addu("t0", "s4", "t0")
    asm.sll("t1", "s1", 2)
    asm.addu("t1", "s4", "t1")
    asm.lw("t2", 0, "t0")
    asm.lw("t4", 0, "t1")
    asm.sw("t4", 0, "t0")
    asm.sw("t2", 0, "t1")

    # quicksort(lo, p-1)
    asm.move("a0", "s0")
    asm.addiu("a1", "s3", -1)
    asm.jal("quicksort")
    # quicksort(p+1, hi)
    asm.addiu("a0", "s3", 1)
    asm.move("a1", "s1")
    asm.jal("quicksort")
    leave(asm, frame)
    asm.label("qs_return")
    asm.jr("ra")

    # ------------------------------------------- cmppt(a0, a1) -> v0
    # Compare two records: primary key word, then the tie-break word.
    asm.label("cmppt")
    asm.lw("t0", 0, "a0")
    asm.lw("t1", 0, "a1")
    asm.slt("t2", "t0", "t1")
    asm.bne("t2", "zero", "cp_neg")
    asm.slt("t2", "t1", "t0")
    asm.bne("t2", "zero", "cp_pos")
    asm.lw("t0", 4, "a0")
    asm.lw("t1", 4, "a1")
    asm.slt("t2", "t0", "t1")
    asm.bne("t2", "zero", "cp_neg")
    asm.slt("t2", "t1", "t0")
    asm.bne("t2", "zero", "cp_pos")
    with asm.noreorder():
        asm.jr("ra")
        asm.li("v0", 0)
    asm.label("cp_neg")
    with asm.noreorder():
        asm.jr("ra")
        asm.li("v0", -1)
    asm.label("cp_pos")
    with asm.noreorder():
        asm.jr("ra")
        asm.li("v0", 1)

    lib = emit_library(asm, rng, "eqn", 40, "lib_pool", 2048)
    rounds = emit_library_rounds(asm, "eqn", lib, 4, rng, 2048)
    emit_round_dispatcher(asm, "lib_round", rounds)

    return build_and_check(asm)
