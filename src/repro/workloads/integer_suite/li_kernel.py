"""li analogue: lisp-style cons-cell workload.

SPEC's li is the xlisp interpreter: heap-allocated cons cells, deep
recursion, pointer chasing, and periodic garbage-collection sweeps.  Its
memory behaviour is dominated by dependent loads (car/cdr chains) over a
heap whose allocation order does not match traversal order.

This kernel builds a heap of ``scale`` two-word cons cells, threads them
into lists *in shuffled cell order* (so traversal is genuinely
pointer-chasing, not streaming), and then repeatedly runs four
interpreter-like phases:

1. iterative ``list_sum`` over every list (dependent-load chain),
2. in-place ``list_reverse`` (read-modify-write chain),
3. recursive ``list_length`` (deep call stack, like xlisp's evaluator),
4. a mark sweep over the whole heap in allocation order (the GC phase).
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.isa.program import DATA_BASE, Program
from repro.workloads.registry import workload
from repro.workloads.support import (
    Lcg,
    build_and_check,
    emit_library,
    emit_library_rounds,
    emit_round_dispatcher,
)

_AVG_LIST_LEN = 24
_ITERATIONS = 3


@workload(
    "li",
    suite="int",
    default_scale=900,
    description="cons-cell lists: pointer chasing, recursion, GC sweep",
)
def build(scale: int) -> Program:
    """``scale`` is the number of cons cells in the heap."""
    if scale < 2 * _AVG_LIST_LEN:
        raise ValueError("li needs at least %d cells" % (2 * _AVG_LIST_LEN))
    rng = Lcg(seed=0x11511551)
    asm = Assembler()

    # ------------------------------------------------------------ data
    # Shuffle cell slots so cdr chains jump around the heap.
    order = list(range(scale))
    for i in range(scale - 1, 0, -1):
        j = rng.next_below(i + 1)
        order[i], order[j] = order[j], order[i]

    num_lists = max(1, scale // _AVG_LIST_LEN)
    cells_base = DATA_BASE  # the first data label sits at DATA_BASE
    cars = [0] * scale
    cdrs = [0] * scale
    heads: list[int] = []
    cursor = 0
    for k in range(num_lists):
        remaining = scale - cursor
        lists_left = num_lists - k
        length = max(
            1, min(remaining - (lists_left - 1), _AVG_LIST_LEN + (k % 7) - 3)
        )
        slots = order[cursor : cursor + length]
        cursor += length
        heads.append(cells_base + 8 * slots[0])
        for pos, slot in enumerate(slots):
            cars[slot] = rng.next_below(1000)
            if pos + 1 < len(slots):
                cdrs[slot] = cells_base + 8 * slots[pos + 1]
            else:
                cdrs[slot] = 0

    asm.data_label("cells")
    for car, cdr in zip(cars, cdrs):
        asm.word(car, cdr)
    asm.data_label("heads")
    asm.word(*heads)
    asm.data_label("marks")
    asm.word(*([0] * scale))
    asm.data_label("sums")
    asm.word(*([0] * num_lists))
    asm.data_label("lib_pool")
    asm.word(*[rng.next_u32() & 0xFFFF for _ in range(2048)])

    # ------------------------------------------------------------ main
    # s0=&heads s1=list index s2=num_lists s7=iteration counter
    # s6=library round counter
    asm.li("s7", _ITERATIONS)
    asm.la("s0", "heads")
    asm.li("s2", num_lists)
    asm.li("s6", 0)

    asm.label("main_iter")

    # -- phase 1: sum every list ---------------------------------------
    asm.li("s1", 0)
    asm.la("s3", "sums")
    asm.label("sum_loop")
    asm.sll("t0", "s1", 2)
    asm.addu("t0", "s0", "t0")
    asm.lw("a0", 0, "t0")
    asm.jal("list_sum")
    asm.sll("t1", "s1", 2)
    asm.addu("t1", "s3", "t1")
    asm.sw("v0", 0, "t1")
    asm.addiu("s1", "s1", 1)
    asm.andi("t0", "s1", 7)
    asm.bne("t0", "zero", "sum_no_lib")
    asm.move("a0", "s6")
    asm.jal("lib_round")
    asm.addiu("s6", "s6", 1)
    asm.label("sum_no_lib")
    asm.bne("s1", "s2", "sum_loop")
    asm.move("a0", "s6")
    asm.jal("lib_round")
    asm.addiu("s6", "s6", 1)

    # -- phase 2: reverse every list in place ---------------------------
    asm.li("s1", 0)
    asm.label("rev_loop")
    asm.sll("t0", "s1", 2)
    asm.addu("t2", "s0", "t0")
    asm.lw("a0", 0, "t2")
    asm.jal("list_reverse")
    asm.sll("t0", "s1", 2)
    asm.addu("t2", "s0", "t0")
    asm.sw("v0", 0, "t2")
    asm.addiu("s1", "s1", 1)
    asm.bne("s1", "s2", "rev_loop")
    asm.move("a0", "s6")
    asm.jal("lib_round")
    asm.addiu("s6", "s6", 1)

    # -- phase 3: recursive length of every list ------------------------
    asm.li("s1", 0)
    asm.label("len_loop")
    asm.sll("t0", "s1", 2)
    asm.addu("t2", "s0", "t0")
    asm.lw("a0", 0, "t2")
    asm.jal("list_length")
    asm.addiu("s1", "s1", 1)
    asm.bne("s1", "s2", "len_loop")

    # -- phase 4: GC-style mark sweep over the heap ----------------------
    asm.la("t0", "marks")
    asm.la("t1", "cells")
    asm.li("t2", scale)
    asm.label("mark_loop")
    asm.lw("t3", 0, "t1")
    asm.lw("t4", 4, "t1")
    asm.or_("t3", "t3", "t4")
    asm.sw("t3", 0, "t0")
    asm.addiu("t1", "t1", 8)
    asm.addiu("t0", "t0", 4)
    asm.addiu("t2", "t2", -1)
    asm.bne("t2", "zero", "mark_loop")

    # interpreter support work (symbol interning, printing analogues)
    asm.move("a0", "s6")
    asm.jal("lib_round")
    asm.addiu("s6", "s6", 1)

    asm.addiu("s7", "s7", -1)
    asm.bne("s7", "zero", "main_iter")
    asm.halt()

    # ------------------------------------------------ list_sum(a0)->v0
    asm.label("list_sum")
    asm.addiu("sp", "sp", -16)
    asm.sw("s0", 0, "sp")
    asm.sw("a0", 4, "sp")
    asm.li("v0", 0)
    asm.label("ls_loop")
    asm.beq("a0", "zero", "ls_done")
    asm.lw("t0", 0, "a0")
    asm.addu("v0", "v0", "t0")
    asm.lw("a0", 4, "a0")  # dependent pointer chase
    asm.b("ls_loop")
    asm.label("ls_done")
    asm.lw("s0", 0, "sp")
    asm.lw("a0", 4, "sp")
    with asm.noreorder():
        asm.jr("ra")
        asm.addiu("sp", "sp", 16)

    # -------------------------------------------- list_reverse(a0)->v0
    asm.label("list_reverse")
    asm.addiu("sp", "sp", -16)
    asm.sw("s0", 0, "sp")
    asm.sw("a0", 4, "sp")
    asm.li("v0", 0)
    asm.label("lr_loop")
    asm.beq("a0", "zero", "lr_done")
    asm.lw("t0", 4, "a0")
    asm.sw("v0", 4, "a0")
    asm.move("v0", "a0")
    asm.move("a0", "t0")
    asm.b("lr_loop")
    asm.label("lr_done")
    asm.lw("s0", 0, "sp")
    asm.lw("a0", 4, "sp")
    with asm.noreorder():
        asm.jr("ra")
        asm.addiu("sp", "sp", 16)

    # --------------------------------------------- list_length(a0)->v0
    # Deliberately recursive: one stack frame per cell, like an
    # expression-tree evaluator.
    asm.label("list_length")
    asm.bne("a0", "zero", "ll_rec")
    with asm.noreorder():
        asm.jr("ra")
        asm.li("v0", 0)
    asm.label("ll_rec")
    asm.addiu("sp", "sp", -16)
    asm.sw("ra", 12, "sp")
    asm.sw("a0", 8, "sp")
    asm.lw("a0", 4, "a0")
    asm.jal("list_length")
    asm.lw("ra", 12, "sp")
    asm.lw("a0", 8, "sp")
    asm.addiu("sp", "sp", 16)
    with asm.noreorder():
        asm.jr("ra")
        asm.addiu("v0", "v0", 1)

    lib = emit_library(asm, rng, "li", 40, "lib_pool", 2048)
    rounds = emit_library_rounds(asm, "li", lib, 4, rng, 2048)
    emit_round_dispatcher(asm, "lib_round", rounds)

    return build_and_check(asm)
