"""Persistent on-disk trace cache.

The in-memory ``(name, scale)`` memo in :mod:`repro.workloads.registry`
dies with the process, so every fresh CLI run — and every process-pool
worker — used to re-execute the functional simulator for every workload
it touched.  This module gives traces a second, durable tier: numpy
files under ``results/.trace_cache/`` (override with
``$REPRO_TRACE_CACHE_DIR``; disable with ``$REPRO_TRACE_CACHE=off`` or
``--no-trace-cache``).

Format v2 (current).  A cache entry is an **uncompressed** ``.npy``
array named ``<workload>-s<scale>-<fingerprint>.v2.npy``, loaded with
``np.load(mmap_mode="r")`` and wrapped in a
:class:`~repro.func.prepared.PreparedTrace`.  Uncompressed-and-mapped
beats the old compressed archive twice over: loads are lazy (no zip
inflate before the first record is touched), and parallel sweep workers
share the file's pages through the OS page cache instead of each
holding a private decompressed copy.

Format v1 (legacy).  Compressed ``.npz`` archives written by
:func:`repro.func.trace.save_trace`.  A v1 entry found where no v2
exists is **transparently rebuilt**: loaded once, rewritten as v2, and
the v1 file deleted — counted as a hit (``v1_rebuilds`` tracks the
migration).  A v1 file that fails to load is deleted and counted as a
miss, exactly like any corrupt entry.

Invalidation key.  The 16-hex fingerprint in the file name hashes every
``.py`` source file of the packages that determine trace content —
``repro.isa`` (encoding), ``repro.func`` (functional execution) and
``repro.workloads`` (the kernel builders).  Editing any of them changes
the fingerprint, so stale traces are never loaded; they linger only
until eviction.  Timing-model changes (``repro.core``) deliberately do
NOT invalidate traces: a trace is pure architecture, not timing.

Determinism.  Kernel builders and the functional simulator are
deterministic functions of ``(name, scale)``, so a cached trace is
byte-identical to a rebuilt one; caching can change wall time but never
simulation results.

Eviction.  The cache holds at most ``max_entries`` files; inserting past
the bound deletes the oldest files by modification time.  Corrupt or
format-incompatible files are treated as misses and deleted on contact
(a truncated v2 file self-heals the same way: the mmap fails to
validate, the entry is dropped, and the next store rewrites it).
"""

from __future__ import annotations

import functools
import hashlib
import os
import pathlib
import tempfile

import numpy as np

from repro.func.prepared import PreparedTrace, prepare_trace
from repro.func.trace import (
    TraceIOError,
    TraceRecord,
    load_trace,
    load_trace_array,
    save_trace_array,
)

#: Default cache location (relative to the working directory).
DEFAULT_ROOT = pathlib.Path("results") / ".trace_cache"
#: Default bound on the number of cached trace files.
DEFAULT_MAX_ENTRIES = 128

#: On-disk cache format version (encoded in the v2 file suffix).
CACHE_FORMAT_VERSION = 2

#: Environment overrides (read once per process at first use).
ENV_DIR = "REPRO_TRACE_CACHE_DIR"
ENV_SWITCH = "REPRO_TRACE_CACHE"
_OFF_VALUES = ("0", "off", "no", "false", "disabled")

#: Glob patterns covering every cache generation (eviction, clear).
_ENTRY_PATTERNS = ("*.npz", "*.npy")


@functools.lru_cache(maxsize=1)
def trace_fingerprint() -> str:
    """Hash of every source file that determines trace *content*.

    Covers ``repro.isa``, ``repro.func`` and ``repro.workloads``; the
    timing models in ``repro.core`` are excluded on purpose — they
    consume traces but cannot change them.
    """
    package_root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for subpackage in ("isa", "func", "workloads"):
        for path in sorted((package_root / subpackage).rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


class TraceCache:
    """One on-disk trace cache directory (see module docs).

    ``hits`` / ``misses`` / ``stores`` count disk lookups in this
    process; the experiment runner snapshots them around each experiment
    so cache behaviour is visible in its :class:`RunReport`.
    ``mmap_loads`` counts v2 entries served straight off a memory map,
    and ``v1_rebuilds`` counts legacy entries migrated to v2 on contact
    — CI's warm-cache check asserts a warm sweep is all mmap loads and
    zero rebuilds.
    """

    def __init__(
        self,
        root: str | pathlib.Path | None = None,
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        enabled: bool = True,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.root = pathlib.Path(root) if root is not None else DEFAULT_ROOT
        self.max_entries = max_entries
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.mmap_loads = 0
        self.v1_rebuilds = 0

    # ------------------------------------------------------------- paths

    def path_for(self, name: str, scale: int) -> pathlib.Path:
        """Current-format (v2) entry path."""
        return self.root / f"{name}-s{scale}-{trace_fingerprint()}.v2.npy"

    def v1_path_for(self, name: str, scale: int) -> pathlib.Path:
        """Legacy compressed-archive (v1) entry path."""
        return self.root / f"{name}-s{scale}-{trace_fingerprint()}.npz"

    # ------------------------------------------------------------ lookup

    def load(self, name: str, scale: int) -> PreparedTrace | None:
        """Cached prepared trace for ``(name, scale)``, or None (a miss).

        A disabled cache always misses.  A corrupt, truncated or
        stale-format file is deleted and counted as a miss; a legacy v1
        entry is migrated to v2 on contact and counted as a hit.
        """
        if not self.enabled:
            self.misses += 1
            return None
        path = self.path_for(name, scale)
        if path.exists():
            try:
                array = load_trace_array(path, mmap=True)
            except TraceIOError:
                # Unreadable/truncated v2 entry: self-heal by dropping it.
                try:
                    path.unlink()
                except OSError:
                    pass
            else:
                self.hits += 1
                self.mmap_loads += 1
                return prepare_trace(array, workload=name, source="mmap")
        v1_path = self.v1_path_for(name, scale)
        if v1_path.exists():
            try:
                records = load_trace(v1_path)
            except TraceIOError:
                try:
                    v1_path.unlink()
                except OSError:
                    pass
                self.misses += 1
                return None
            # Transparent migration: rewrite as v2, drop the archive.
            prepared = prepare_trace(records, workload=name, source="v1")
            self.store(name, scale, prepared)
            try:
                v1_path.unlink()
            except OSError:
                pass
            self.hits += 1
            self.v1_rebuilds += 1
            return prepared
        self.misses += 1
        return None

    def store(
        self,
        name: str,
        scale: int,
        trace: "list[TraceRecord] | PreparedTrace | np.ndarray",
    ) -> None:
        """Persist ``trace`` atomically as v2, then enforce the bound.

        Never raises on I/O failure — a read-only or full disk degrades
        to an unpopulated cache, not a failed experiment.
        """
        if not self.enabled:
            return
        from repro.telemetry import tracing

        if isinstance(trace, PreparedTrace):
            array = trace.array
        elif isinstance(trace, np.ndarray):
            array = trace
        else:
            array = np.asarray(trace, dtype=np.int64).reshape(len(trace), 6)
        path = self.path_for(name, scale)
        with tracing.span(
            "cache_store", "trace", workload=name, scale=scale
        ):
            try:
                self.root.mkdir(parents=True, exist_ok=True)
                fd, tmp_name = tempfile.mkstemp(
                    dir=self.root, prefix=path.stem, suffix=".tmp"
                )
                os.close(fd)
                try:
                    save_trace_array(tmp_name, array)
                    # numpy appends .npy when the target lacks the suffix
                    tmp = pathlib.Path(tmp_name + ".npy")
                    tmp.replace(path)
                finally:
                    pathlib.Path(tmp_name).unlink(missing_ok=True)
            except OSError:
                return
        self.stores += 1
        self._evict()

    # ---------------------------------------------------------- eviction

    def _evict(self) -> None:
        """Delete the oldest files (by mtime) beyond ``max_entries``."""
        try:
            files = [
                (entry.stat().st_mtime, entry)
                for pattern in _ENTRY_PATTERNS
                for entry in self.root.glob(pattern)
            ]
        except OSError:
            return
        excess = len(files) - self.max_entries
        if excess <= 0:
            return
        files.sort(key=lambda pair: pair[0])
        for _mtime, stale in files[:excess]:
            try:
                stale.unlink()
            except OSError:
                pass

    def clear(self) -> None:
        """Delete every cache file (the directory itself stays)."""
        if not self.root.is_dir():
            return
        for pattern in _ENTRY_PATTERNS:
            for entry in self.root.glob(pattern):
                try:
                    entry.unlink()
                except OSError:
                    pass

    def snapshot(self) -> tuple[int, int]:
        """(hits, misses) so far — for delta accounting around a run."""
        return (self.hits, self.misses)


# ---------------------------------------------------------------- default

_default: TraceCache | None = None


def default_cache() -> TraceCache:
    """The process-wide cache (created from the environment on first use)."""
    global _default
    if _default is None:
        root = os.environ.get(ENV_DIR) or DEFAULT_ROOT
        enabled = os.environ.get(ENV_SWITCH, "").lower() not in _OFF_VALUES
        _default = TraceCache(root, enabled=enabled)
    return _default


def configure(
    root: str | pathlib.Path | None = None,
    *,
    enabled: bool = True,
    max_entries: int = DEFAULT_MAX_ENTRIES,
) -> TraceCache:
    """Replace the process-wide cache (tests; process-pool workers)."""
    global _default
    _default = TraceCache(root, enabled=enabled, max_entries=max_entries)
    return _default


def set_enabled(enabled: bool) -> None:
    """Flip the process-wide cache on or off (``--no-trace-cache``)."""
    default_cache().enabled = enabled


def snapshot() -> tuple[int, int]:
    """(hits, misses) of the process-wide cache."""
    return default_cache().snapshot()
