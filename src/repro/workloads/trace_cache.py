"""Persistent on-disk trace cache.

The in-memory ``(name, scale)`` memo in :mod:`repro.workloads.registry`
dies with the process, so every fresh CLI run — and every process-pool
worker — used to re-execute the functional simulator for every workload
it touched.  This module gives traces a second, durable tier: numpy
files under ``results/.trace_cache/`` (override with
``$REPRO_TRACE_CACHE_DIR``; disable with ``$REPRO_TRACE_CACHE=off`` or
``--no-trace-cache``).

Format v2 (current).  A cache entry is an **uncompressed** ``.npy``
array named ``<workload>-s<scale>-<fingerprint>.v2.npy``, loaded with
``np.load(mmap_mode="r")`` and wrapped in a
:class:`~repro.func.prepared.PreparedTrace`.  Uncompressed-and-mapped
beats the old compressed archive twice over: loads are lazy (no zip
inflate before the first record is touched), and parallel sweep workers
share the file's pages through the OS page cache instead of each
holding a private decompressed copy.

Format v1 (legacy).  Compressed ``.npz`` archives written by
:func:`repro.func.trace.save_trace`.  A v1 entry found where no v2
exists is **transparently rebuilt**: loaded once, rewritten as v2, and
the v1 file deleted — counted as a hit (``v1_rebuilds`` tracks the
migration).  A v1 file that fails to load is deleted and counted as a
miss, exactly like any corrupt entry.

Invalidation key.  The 16-hex fingerprint in the file name hashes every
``.py`` source file of the packages that determine trace content —
``repro.isa`` (encoding), ``repro.func`` (functional execution) and
``repro.workloads`` (the kernel builders).  Editing any of them changes
the fingerprint, so stale traces are never loaded; they linger only
until eviction.  Timing-model changes (``repro.core``) deliberately do
NOT invalidate traces: a trace is pure architecture, not timing.

Determinism.  Kernel builders and the functional simulator are
deterministic functions of ``(name, scale)``, so a cached trace is
byte-identical to a rebuilt one; caching can change wall time but never
simulation results.

Integrity.  Every v2 store writes a CRC32 sidecar
(``<entry>.v2.npy.crc``, itself written atomically) recording the
entry's checksum and size.  Loads verify the sidecar before the first
mmap (once per path per process; the streamed read warms the page cache
the mmap then reuses) — a mismatch means silent payload corruption
(bit rot, torn write, chaos injection) that numpy would happily parse
into wrong simulation results.  Mismatched entries are **quarantined**
(moved to ``<root>/quarantine/`` for forensics) and counted as misses,
so the next build rewrites them; entries predating the sidecar are
verified-and-backfilled on first contact.  Set
``$REPRO_TRACE_CACHE_VERIFY=off`` to skip verification (factor-1.0
traces pay one streamed read per process).

Eviction.  The cache holds at most ``max_entries`` files; inserting past
the bound deletes the oldest files by modification time (sidecars travel
with their entries).  Orphaned ``.tmp`` files older than
``TMP_REAP_SECONDS`` — the debris of a writer killed mid-store — are
reaped on the same sweep.  Corrupt or format-incompatible files are
treated as misses and dropped on contact (a truncated v2 file
self-heals the same way: the mmap fails to validate, the entry is
quarantined, and the next store rewrites it; an entry that maps but
fails checksum is caught by the CRC).

Degradation.  ``store`` never raises: a full disk, read-only root, or
injected fault (see :mod:`repro.robustness.chaos`) degrades to an
in-memory-only cache for that trace and bumps the ``degraded`` counter,
which the experiment runner surfaces as ``runner.cache_degraded``.
"""

from __future__ import annotations

import functools
import hashlib
import os
import pathlib
import tempfile
import time

import numpy as np

from repro.func.prepared import PreparedTrace, prepare_trace
from repro.func.trace import (
    TraceIOError,
    TraceRecord,
    file_crc32,
    load_trace,
    load_trace_array,
    save_trace_array,
)
from repro.telemetry.logging import get_logger

_log = get_logger("trace_cache")

#: Default cache location (relative to the working directory).
DEFAULT_ROOT = pathlib.Path("results") / ".trace_cache"
#: Default bound on the number of cached trace files.
DEFAULT_MAX_ENTRIES = 128

#: On-disk cache format version (encoded in the v2 file suffix).
CACHE_FORMAT_VERSION = 2

#: Environment overrides (read once per process at first use).
ENV_DIR = "REPRO_TRACE_CACHE_DIR"
ENV_SWITCH = "REPRO_TRACE_CACHE"
ENV_VERIFY = "REPRO_TRACE_CACHE_VERIFY"
_OFF_VALUES = ("0", "off", "no", "false", "disabled")
#: Values accepted as "enabled" by the switches above (eager env
#: validation rejects anything outside either list).
_ON_VALUES = ("1", "on", "yes", "true", "enabled")

#: Glob patterns covering every cache generation (eviction, clear).
_ENTRY_PATTERNS = ("*.npz", "*.npy")
#: Subdirectory where checksum-failed entries are parked for forensics.
QUARANTINE_DIR = "quarantine"
#: Orphaned temp files (a writer killed mid-store) older than this many
#: seconds are reaped during eviction sweeps.
TMP_REAP_SECONDS = 300.0


def _chaos_check(site: str) -> None:
    """Chaos fault-site hook (one global check when no plan is active).

    Imported lazily: the robustness package imports this module through
    the runner, so a module-level import would be circular.
    """
    from repro.robustness import chaos

    chaos.fs_check(site)


@functools.lru_cache(maxsize=1)
def trace_fingerprint() -> str:
    """Hash of every source file that determines trace *content*.

    Covers ``repro.isa``, ``repro.func`` and ``repro.workloads``; the
    timing models in ``repro.core`` are excluded on purpose — they
    consume traces but cannot change them.
    """
    package_root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for subpackage in ("isa", "func", "workloads"):
        for path in sorted((package_root / subpackage).rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


class TraceCache:
    """One on-disk trace cache directory (see module docs).

    ``hits`` / ``misses`` / ``stores`` count disk lookups in this
    process; the experiment runner snapshots them around each experiment
    so cache behaviour is visible in its :class:`RunReport`.
    ``mmap_loads`` counts v2 entries served straight off a memory map,
    and ``v1_rebuilds`` counts legacy entries migrated to v2 on contact
    — CI's warm-cache check asserts a warm sweep is all mmap loads and
    zero rebuilds.  The health counters (``degraded`` stores,
    ``checksum_failures``, ``quarantined`` entries, ``mmap_fallbacks``
    served eagerly after an mmap failure) feed the runner's
    ``runner.cache_*`` degradation metrics.
    """

    def __init__(
        self,
        root: str | pathlib.Path | None = None,
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        enabled: bool = True,
        verify: bool = True,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.root = pathlib.Path(root) if root is not None else DEFAULT_ROOT
        self.max_entries = max_entries
        self.enabled = enabled
        self.verify = verify
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.mmap_loads = 0
        self.v1_rebuilds = 0
        self.degraded = 0
        self.checksum_failures = 0
        self.quarantined = 0
        self.mmap_fallbacks = 0
        #: Paths whose checksum verified this process (verify once: the
        #: streamed read is cheap but not free on factor-1.0 traces).
        self._verified: set[pathlib.Path] = set()

    # ------------------------------------------------------------- paths

    def path_for(self, name: str, scale: int) -> pathlib.Path:
        """Current-format (v2) entry path."""
        return self.root / f"{name}-s{scale}-{trace_fingerprint()}.v2.npy"

    def v1_path_for(self, name: str, scale: int) -> pathlib.Path:
        """Legacy compressed-archive (v1) entry path."""
        return self.root / f"{name}-s{scale}-{trace_fingerprint()}.npz"

    @staticmethod
    def sidecar_for(path: pathlib.Path) -> pathlib.Path:
        """CRC32 sidecar path for a v2 entry."""
        return path.with_name(path.name + ".crc")

    # --------------------------------------------------------- integrity

    def _write_sidecar(self, sidecar: pathlib.Path, crc: int, size: int) -> None:
        """Atomically write a checksum sidecar (best-effort, never raises)."""
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=self.root, prefix=sidecar.stem, suffix=".tmp"
            )
        except OSError:
            return
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(f"{crc:08x} {size}\n")
            os.replace(tmp_name, sidecar)
        except OSError:
            pathlib.Path(tmp_name).unlink(missing_ok=True)

    def _quarantine(self, path: pathlib.Path) -> None:
        """Park a bad entry (and its sidecar) under ``quarantine/``.

        Moving rather than deleting keeps the corrupt bytes around for
        forensics; if the move itself fails the entry is deleted so it
        cannot be served again.  Either way the next build re-stores.
        """
        self.quarantined += 1
        _log.warning("cache.quarantined", path=path.name)
        quarantine_root = self.root / QUARANTINE_DIR
        for victim in (path, self.sidecar_for(path)):
            if not victim.exists():
                continue
            try:
                quarantine_root.mkdir(parents=True, exist_ok=True)
                victim.replace(quarantine_root / victim.name)
            except OSError:
                try:
                    victim.unlink()
                except OSError:
                    pass
        self._verified.discard(path)

    def _verify_entry(self, path: pathlib.Path) -> bool:
        """True when ``path`` is safe to load (checksum ok, or verify off).

        Verified paths are memoized per process.  A missing sidecar marks
        a legacy entry: it is checksummed and the sidecar backfilled.  A
        mismatch (or malformed sidecar) quarantines the entry and returns
        False — the caller treats that as a miss and rebuilds.
        """
        if not self.verify or path in self._verified:
            return True
        want_crc = want_size = -1
        sidecar = self.sidecar_for(path)
        try:
            fields = sidecar.read_text().split()
            want_crc, want_size = int(fields[0], 16), int(fields[1])
        except OSError:
            sidecar = None  # legacy entry: backfill below
        except (ValueError, IndexError):
            pass  # malformed sidecar: guaranteed mismatch → quarantine
        try:
            crc, size = file_crc32(str(path))
        except TraceIOError:
            self._quarantine(path)
            return False
        if sidecar is None:
            self._write_sidecar(self.sidecar_for(path), crc, size)
            self._verified.add(path)
            return True
        if crc != want_crc or size != want_size:
            self.checksum_failures += 1
            _log.warning(
                "cache.checksum_failure",
                path=path.name,
                want_crc=f"{want_crc:08x}",
                got_crc=f"{crc:08x}",
                want_size=want_size,
                got_size=size,
            )
            self._quarantine(path)
            return False
        self._verified.add(path)
        return True

    # ------------------------------------------------------------ lookup

    def load(self, name: str, scale: int) -> PreparedTrace | None:
        """Cached prepared trace for ``(name, scale)``, or None (a miss).

        A disabled cache always misses.  A checksum-failed entry is
        quarantined and counted as a miss; an entry that maps but fails
        numpy validation falls back to an eager load, and only if that
        fails too is it quarantined.  A legacy v1 entry is migrated to
        v2 on contact and counted as a hit.  A filesystem fault here
        (injected or real) degrades to a miss — the trace is rebuilt.
        """
        if not self.enabled:
            self.misses += 1
            return None
        try:
            _chaos_check("cache.load")
        except OSError as error:
            self.degraded += 1
            self.misses += 1
            _log.warning("cache.load_degraded", why=str(error))
            return None
        path = self.path_for(name, scale)
        if path.exists() and self._verify_entry(path):
            try:
                array = load_trace_array(path, mmap=True)
            except TraceIOError:
                # Checksum passed but the map failed (filesystem without
                # mmap support, transient map error): try one rung down.
                try:
                    array = load_trace_array(path, mmap=False)
                except TraceIOError:
                    self._quarantine(path)
                else:
                    self.hits += 1
                    self.mmap_fallbacks += 1
                    return prepare_trace(array, workload=name, source="eager")
            else:
                self.hits += 1
                self.mmap_loads += 1
                return prepare_trace(array, workload=name, source="mmap")
        v1_path = self.v1_path_for(name, scale)
        if v1_path.exists():
            try:
                records = load_trace(v1_path)
            except TraceIOError:
                try:
                    v1_path.unlink()
                except OSError:
                    pass
                self.misses += 1
                return None
            # Transparent migration: rewrite as v2, drop the archive.
            prepared = prepare_trace(records, workload=name, source="v1")
            self.store(name, scale, prepared)
            try:
                v1_path.unlink()
            except OSError:
                pass
            self.hits += 1
            self.v1_rebuilds += 1
            return prepared
        self.misses += 1
        return None

    def store(
        self,
        name: str,
        scale: int,
        trace: "list[TraceRecord] | PreparedTrace | np.ndarray",
    ) -> None:
        """Persist ``trace`` atomically as v2, then enforce the bound.

        Never raises on I/O failure — a read-only or full disk degrades
        to an unpopulated cache, not a failed experiment.
        """
        if not self.enabled:
            return
        from repro.telemetry import tracing

        if isinstance(trace, PreparedTrace):
            array = trace.array
        elif isinstance(trace, np.ndarray):
            array = trace
        else:
            array = np.asarray(trace, dtype=np.int64).reshape(len(trace), 6)
        path = self.path_for(name, scale)
        with tracing.span(
            "cache_store", "trace", workload=name, scale=scale
        ):
            try:
                _chaos_check("cache.store")
                self.root.mkdir(parents=True, exist_ok=True)
                fd, tmp_name = tempfile.mkstemp(
                    dir=self.root, prefix=path.stem, suffix=".tmp"
                )
                os.close(fd)
                try:
                    save_trace_array(tmp_name, array)
                    # numpy appends .npy when the target lacks the suffix
                    tmp = pathlib.Path(tmp_name + ".npy")
                    # Checksum the temp file: after the rename a
                    # concurrent evictor may touch the entry, the tmp is
                    # exclusively ours.
                    crc, size = file_crc32(str(tmp))
                    tmp.replace(path)
                finally:
                    pathlib.Path(tmp_name).unlink(missing_ok=True)
            except (OSError, TraceIOError) as error:
                self.degraded += 1
                _log.warning(
                    "cache.store_degraded", path=path.name, why=str(error)
                )
                return
        self._write_sidecar(self.sidecar_for(path), crc, size)
        self._verified.add(path)
        self.stores += 1
        self._evict()

    # ---------------------------------------------------------- eviction

    @staticmethod
    def _reap_tmp(candidate: pathlib.Path, now: float) -> None:
        """Delete a temp file if it is old enough to be writer debris."""
        try:
            if now - candidate.stat().st_mtime >= TMP_REAP_SECONDS:
                candidate.unlink()
        except OSError:
            pass

    def _evict(self) -> None:
        """Enforce the entry bound and sweep debris.

        Oldest entries (by mtime) past ``max_entries`` are deleted with
        their sidecars.  The same pass reaps orphaned temp files older
        than ``TMP_REAP_SECONDS`` — a writer killed mid-store leaves
        both ``<stem>XXXX.tmp`` and ``<stem>XXXX.tmp.npy``, and the
        latter matches the ``*.npy`` entry glob, so temp names are
        excluded from the entry count.  Sidecars whose entry is gone
        (the entry/sidecar writes are two renames; an evictor in another
        process can land between them) are reaped too.  Concurrent
        processes may race every deletion here, so each one tolerates
        a losing race.
        """
        try:
            now = time.time()
            entries = []
            for pattern in _ENTRY_PATTERNS:
                for candidate in self.root.glob(pattern):
                    if ".tmp" in candidate.name:
                        self._reap_tmp(candidate, now)
                        continue
                    try:
                        entries.append((candidate.stat().st_mtime, candidate))
                    except OSError:
                        continue
            for candidate in self.root.glob("*.tmp"):
                self._reap_tmp(candidate, now)
            for sidecar in self.root.glob("*.crc"):
                if not sidecar.with_name(sidecar.name[:-4]).exists():
                    sidecar.unlink(missing_ok=True)
        except OSError:
            return
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        entries.sort(key=lambda pair: pair[0])
        for _mtime, stale in entries[:excess]:
            for victim in (stale, self.sidecar_for(stale)):
                try:
                    victim.unlink(missing_ok=True)
                except OSError:
                    pass
            self._verified.discard(stale)

    def clear(self) -> None:
        """Delete every cache file (the directory itself stays)."""
        if not self.root.is_dir():
            return
        patterns = (*_ENTRY_PATTERNS, "*.crc", "*.tmp", f"{QUARANTINE_DIR}/*")
        for pattern in patterns:
            for entry in self.root.glob(pattern):
                try:
                    if entry.is_file():
                        entry.unlink()
                except OSError:
                    pass
        self._verified.clear()

    def snapshot(self) -> tuple[int, int]:
        """(hits, misses) so far — for delta accounting around a run."""
        return (self.hits, self.misses)

    def health_snapshot(self) -> tuple[int, int]:
        """(degraded, checksum_failures) — for delta accounting."""
        return (self.degraded, self.checksum_failures)


# ---------------------------------------------------------------- default

_default: TraceCache | None = None


def default_cache() -> TraceCache:
    """The process-wide cache (created from the environment on first use)."""
    global _default
    if _default is None:
        root = os.environ.get(ENV_DIR) or DEFAULT_ROOT
        enabled = os.environ.get(ENV_SWITCH, "").lower() not in _OFF_VALUES
        verify = os.environ.get(ENV_VERIFY, "").lower() not in _OFF_VALUES
        _default = TraceCache(root, enabled=enabled, verify=verify)
    return _default


def configure(
    root: str | pathlib.Path | None = None,
    *,
    enabled: bool = True,
    max_entries: int = DEFAULT_MAX_ENTRIES,
    verify: bool = True,
) -> TraceCache:
    """Replace the process-wide cache (tests; process-pool workers)."""
    global _default
    _default = TraceCache(
        root, enabled=enabled, max_entries=max_entries, verify=verify
    )
    return _default


def set_enabled(enabled: bool) -> None:
    """Flip the process-wide cache on or off (``--no-trace-cache``)."""
    default_cache().enabled = enabled


def snapshot() -> tuple[int, int]:
    """(hits, misses) of the process-wide cache."""
    return default_cache().snapshot()


def health_snapshot() -> tuple[int, int]:
    """(degraded, checksum_failures) of the process-wide cache."""
    return default_cache().health_snapshot()
