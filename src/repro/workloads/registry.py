"""Workload registry: SPEC92-analogue kernels by name.

Each kernel module registers a builder with :func:`workload`; users get
programs and traces through :func:`build_program` / :func:`get_trace`.
Traces come back as columnar :class:`~repro.func.prepared.PreparedTrace`
objects, memoised per ``(name, scale)`` because the experiment drivers
time the same trace on dozens of machine configurations — the trace is
built (or mapped off disk) and *prepared* once per process, and every
configuration in the sweep reuses the same prepared columns.  Behind
the memo sits the persistent disk tier of
:mod:`repro.workloads.trace_cache`, so fresh processes (repeat CLI runs,
process-pool workers) memory-map traces instead of re-running the
functional simulator.  Lookup order: memory -> disk -> build (and
populate both).

``REPRO_TRACE_PATH=tuples`` forces :func:`get_trace` to hand out plain
``list[TraceRecord]`` traces instead (the pre-columnar representation);
CI uses it to byte-diff whole experiment sweeps across the two paths.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.func.machine import run_program
from repro.func.prepared import PreparedTrace, prepare_trace
from repro.func.trace import TraceRecord
from repro.isa.program import Program
from repro.workloads import trace_cache

#: SPECint92 benchmarks used in the paper's integer studies (Tables 3-5).
INTEGER_SUITE = ("espresso", "li", "eqntott", "compress", "sc", "gcc")
#: SPECfp92 benchmarks used in the FPU studies (Table 6, Figure 9).
FP_SUITE = (
    "alvinn",
    "doduc",
    "ear",
    "hydro2d",
    "mdljdp2",
    "nasa7",
    "ora",
    "spice2g6",
    "su2cor",
)


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered kernel."""

    name: str
    suite: str  # "int" or "fp"
    builder: Callable[[int], Program]
    default_scale: int
    description: str


_REGISTRY: dict[str, WorkloadSpec] = {}
#: (name, scale, representation) -> trace, LRU-ordered (least recently
#: used first).  The representation key keeps the prepared and tuple
#: forms from shadowing each other when ``REPRO_TRACE_PATH`` flips
#: mid-process (tests do this).  The memo is *bounded*: sweep processes
#: touch a handful of (name, scale) pairs and never noticed, but the
#: long-lived ``aurora-sim serve`` workers would otherwise accumulate
#: one multi-megabyte prepared trace per distinct query shape for the
#: life of the process.  Evictions only drop the in-memory tier — the
#: disk cache still answers the next ``get_trace`` with an mmap load.
_TRACE_CACHE: "OrderedDict[tuple[str, int, str], PreparedTrace | list[TraceRecord]]" = (
    OrderedDict()
)

#: Environment toggle: "prepared" (default) or "tuples".
ENV_TRACE_PATH = "REPRO_TRACE_PATH"
#: Environment override for the in-memory trace-memo bound.
ENV_TRACE_MEMO_MAX = "REPRO_TRACE_MEMO_MAX"
#: Default memo bound: generous for sweeps (the full 15-workload
#: two-representation matrix fits), small enough that a serve worker
#: answering diverse (workload, scale) queries stays bounded.
DEFAULT_TRACE_MEMO_MAX = 32

#: Process-wide memo accounting (mirrors validation_snapshot()):
#: lookups answered from memory, lookups that had to go to disk/build,
#: and entries dropped by the LRU bound.
_MEMO_HITS = 0
_MEMO_MISSES = 0
_MEMO_EVICTIONS = 0


def trace_memo_max(environ=None) -> int:
    """The active trace-memo bound (``REPRO_TRACE_MEMO_MAX`` or default).

    Raises :class:`ValueError` naming the variable for unusable values,
    the same eager-validation contract as ``REPRO_TRACE_PATH``.
    """
    env = os.environ if environ is None else environ
    raw = env.get(ENV_TRACE_MEMO_MAX, "")
    if not raw:
        return DEFAULT_TRACE_MEMO_MAX
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_TRACE_MEMO_MAX}={raw!r}: expected a positive integer"
        ) from None
    if value < 1:
        raise ValueError(
            f"{ENV_TRACE_MEMO_MAX}={raw!r}: must be >= 1"
        )
    return value


def memo_snapshot() -> tuple[int, int, int]:
    """(memory hits, misses, LRU evictions) of the trace memo so far."""
    return (_MEMO_HITS, _MEMO_MISSES, _MEMO_EVICTIONS)


def trace_path_mode() -> str:
    """The active trace representation ("prepared" or "tuples")."""
    mode = os.environ.get(ENV_TRACE_PATH, "prepared").lower() or "prepared"
    if mode not in ("prepared", "tuples"):
        raise ValueError(
            f"{ENV_TRACE_PATH} must be 'prepared' or 'tuples', got {mode!r}"
        )
    return mode


class WorkloadError(KeyError):
    """Raised for unknown workload names."""


def workload(name: str, suite: str, default_scale: int, description: str):
    """Decorator: register ``builder(scale) -> Program`` under ``name``."""

    def register(builder: Callable[[int], Program]) -> Callable[[int], Program]:
        if name in _REGISTRY:
            raise ValueError(f"workload {name!r} registered twice")
        if suite not in ("int", "fp"):
            raise ValueError(f"suite must be 'int' or 'fp', got {suite!r}")
        _REGISTRY[name] = WorkloadSpec(
            name=name,
            suite=suite,
            builder=builder,
            default_scale=default_scale,
            description=description,
        )
        return builder

    return register


def _ensure_loaded() -> None:
    """Import the kernel modules (registration happens at import)."""
    from repro.workloads import fp_suite, integer_suite  # noqa: F401


def get_spec(name: str) -> WorkloadSpec:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise WorkloadError(f"unknown workload {name!r}; known: {known}") from None


def all_specs() -> list[WorkloadSpec]:
    _ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def build_program(name: str, scale: int | None = None) -> Program:
    """Assemble the named kernel at the given (or default) scale."""
    spec = get_spec(name)
    return spec.builder(scale if scale is not None else spec.default_scale)


def get_trace(
    name: str, scale: int | None = None
) -> "PreparedTrace | list[TraceRecord]":
    """Dynamic trace for the named kernel (memory -> disk -> build).

    Returns a columnar :class:`~repro.func.prepared.PreparedTrace`
    (prepared once per process and shared by every configuration that
    sweeps it), or a plain record list under ``REPRO_TRACE_PATH=tuples``.
    """
    from repro.telemetry import tracing

    global _MEMO_HITS, _MEMO_MISSES, _MEMO_EVICTIONS
    spec = get_spec(name)
    effective = scale if scale is not None else spec.default_scale
    mode = trace_path_mode()
    key = (name, effective, mode)
    trace = _TRACE_CACHE.get(key)
    if trace is not None:
        _MEMO_HITS += 1
        _TRACE_CACHE.move_to_end(key)
        return trace
    _MEMO_MISSES += 1
    disk = trace_cache.default_cache()
    with tracing.span(
        "cache_lookup", "trace", workload=name, scale=effective
    ) as lookup_span:
        prepared = disk.load(name, effective)
        if lookup_span is not None:
            lookup_span.annotate(hit=prepared is not None)
    if prepared is None:
        with tracing.span(
            "trace_build", "trace", workload=name, scale=effective
        ):
            program = spec.builder(effective)
            result = run_program(program, max_instructions=50_000_000)
            records = result.trace
            disk.store(name, effective, records)
        prepared = prepare_trace(records, workload=name, source="build")
    trace = prepared.to_records() if mode == "tuples" else prepared
    _TRACE_CACHE[key] = trace
    bound = trace_memo_max()
    while len(_TRACE_CACHE) > bound:
        _TRACE_CACHE.popitem(last=False)
        _MEMO_EVICTIONS += 1
    return trace


def clear_trace_cache() -> None:
    """Drop the in-memory trace memo (the disk tier is untouched)."""
    _TRACE_CACHE.clear()


def integer_traces(
    scale: int | None = None,
) -> "dict[str, PreparedTrace | list[TraceRecord]]":
    """Traces for the whole integer suite, in paper order."""
    return {name: get_trace(name, scale) for name in INTEGER_SUITE}


def fp_traces(
    scale: int | None = None,
) -> "dict[str, PreparedTrace | list[TraceRecord]]":
    """Traces for the whole FP suite, in paper order."""
    return {name: get_trace(name, scale) for name in FP_SUITE}
