"""Shared helpers for workload kernels.

Every SPEC92-analogue kernel is a real assembly program built with
:class:`repro.isa.Assembler`.  This module provides the common idioms —
MIPS o32-style call prologue/epilogue, a deterministic pseudo-random
generator for initialising data segments, and a tiny framework for
registering kernels — so the per-benchmark modules contain only the
algorithm itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.assembler import Assembler
from repro.isa.program import Program


class Lcg:
    """Deterministic 32-bit linear congruential generator (Numerical
    Recipes constants).  Used to synthesise input data at build time so
    every trace is reproducible."""

    def __init__(self, seed: int = 0x12345678) -> None:
        self.state = seed & 0xFFFFFFFF

    def next_u32(self) -> int:
        self.state = (self.state * 1664525 + 1013904223) & 0xFFFFFFFF
        return self.state

    def next_below(self, bound: int) -> int:
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next_u32() % bound

    def next_float(self, low: float = 0.0, high: float = 1.0) -> float:
        return low + (high - low) * (self.next_u32() / 2**32)


@dataclass
class Frame:
    """A stack frame: which callee-saved registers to preserve."""

    saved: tuple[str, ...] = ()
    extra_bytes: int = 0

    @property
    def size(self) -> int:
        raw = 4 * (len(self.saved) + 1) + self.extra_bytes  # +1 for $ra
        return (raw + 7) & ~7  # 8-byte aligned


def enter(asm: Assembler, frame: Frame) -> None:
    """Function prologue: allocate the frame, save $ra and callee-saves."""
    asm.addiu("sp", "sp", -frame.size)
    asm.sw("ra", frame.size - 4, "sp")
    for i, reg in enumerate(frame.saved):
        asm.sw(reg, frame.size - 8 - 4 * i, "sp")


def leave(asm: Assembler, frame: Frame) -> None:
    """Function epilogue: restore registers, pop the frame, return."""
    for i, reg in enumerate(frame.saved):
        asm.lw(reg, frame.size - 8 - 4 * i, "sp")
    asm.lw("ra", frame.size - 4, "sp")
    with asm.noreorder():
        asm.jr("ra")
        asm.addiu("sp", "sp", frame.size)


def call(asm: Assembler, target: str) -> None:
    """Call a function, filling the delay slot with a nop."""
    asm.jal(target)


_UNIQUE = [0]


def unique_label(prefix: str) -> str:
    """Generate a program-unique label (for helper-emitted control flow)."""
    _UNIQUE[0] += 1
    return f"{prefix}__{_UNIQUE[0]}"


def counted_loop(asm: Assembler, counter: str, limit: str, body) -> None:
    """Emit ``for (counter = counter; counter != limit; )`` around ``body``.

    ``body`` is a callable emitting the loop body; it must advance
    ``counter`` itself (so strides and pointer walks stay explicit).
    """
    top = unique_label("loop")
    asm.label(top)
    body()
    with asm.noreorder():
        asm.bne(counter, limit, top)
        asm.nop()


_LIB_OPS = ("xor", "addu", "or", "subu", "and")
#: Byte strides for library scans.  Mostly non-unit *line* strides (a
#: 32-byte line per step or more) so the accesses defeat next-sequential
#: stream buffers, the way scattered heap/structure accesses do.
_LIB_STRIDES = (16, 32, 32, 64, 80)


def emit_library(
    asm: Assembler,
    rng: Lcg,
    prefix: str,
    routines: int,
    data_label: str,
    data_words: int,
    steps: int = 8,
) -> list[str]:
    """Generate ``routines`` distinct straight-line helper functions.

    Real SPEC binaries carry large bodies of support code (string/IO/alloc
    routines, printf, ...) that inflate the instruction footprint well past
    the hot kernels; at the paper's 1-4 KB I-cache sizes that support code
    is what produces I-cache misses and sequential I-prefetch streams.
    Each generated routine is a unique *fully unrolled* read-modify-write
    scan (distinct constants, operations, strides, and epilogues) over a
    window of ``data_label``.  Straight-line bodies mean every dynamic
    execution walks fresh code lines — the property that gives real
    programs their I-cache miss rates.  Returns the routine names, to be
    ``jal``-ed round-robin by the kernel's main loop.

    Calling convention: each routine takes its window *offset in bytes*
    in ``a0`` and clobbers only t-registers, ``a0`` and ``v0``.
    """
    names: list[str] = []
    for index in range(routines):
        name = f"{prefix}_lib{index}"
        names.append(name)
        op_a = _LIB_OPS[rng.next_below(len(_LIB_OPS))]
        op_b = _LIB_OPS[rng.next_below(len(_LIB_OPS))]
        constant = rng.next_below(0x7FFF)
        shift = 1 + rng.next_below(7)
        # Routine archetypes, echoing real support code:
        #   seq_rw     — sprintf/memcpy-like: dense sequential writes
        #   scatter_ro — lookup/strcmp-like: scattered reads, one result
        #   scatter_rw — structure-update-like: scattered read-mod-write
        archetype_pick = rng.next_below(10)
        if archetype_pick < 4:
            archetype, stride = "seq_rw", 4
        elif archetype_pick < 8:
            archetype = "scatter_ro"
            stride = _LIB_STRIDES[rng.next_below(len(_LIB_STRIDES))]
        else:
            archetype = "scatter_rw"
            stride = _LIB_STRIDES[rng.next_below(len(_LIB_STRIDES))]
        spills = index % 4 == 0  # some routines spill callee-saves
        span = steps * stride
        max_base = max(4, 4 * data_words - span - 8)
        asm.label(name)
        if spills:
            asm.addiu("sp", "sp", -16)
            asm.sw("s0", 0, "sp")
            asm.sw("s1", 4, "sp")
        asm.la("t0", data_label)
        asm.addu("t0", "t0", "a0")
        asm.li("t8", constant)
        asm.li("v0", 0)
        offset = 0
        for step in range(steps):
            asm.lw("t2", offset, "t0")
            asm.op(op_a, "t2", "t2", "t8")
            asm.sll("t3", "t2", shift)
            asm.op(op_b, "t2", "t2", "t3")
            if (index + step) % 3 == 0:
                asm.addiu("t4", "t2", index + step + 1)
                asm.xor("t2", "t2", "t4")
            asm.addu("v0", "v0", "t2")
            if archetype == "seq_rw" or (
                archetype == "scatter_rw" and step % 2 == 0
            ):
                asm.sw("t2", offset, "t0")
            offset += stride
        if spills:
            asm.lw("s0", 0, "sp")
            asm.lw("s1", 4, "sp")
            asm.addiu("sp", "sp", 16)
        asm.jr("ra")
        # stash for emit_library_calls to bound offsets
        _LIB_SPANS[name] = max_base
    return names


#: routine name -> largest safe a0 offset (bytes)
_LIB_SPANS: dict[str, int] = {}


def emit_library_calls(
    asm: Assembler,
    names: list[str],
    rng: Lcg,
    data_words: int,
) -> None:
    """Emit one round of ``jal`` calls to every library routine.

    Each call gets a distinct in-range window offset in ``a0``.  Keeps
    ``s``-registers untouched, so kernels can embed a round anywhere.
    """
    for name in names:
        limit = _LIB_SPANS.get(name, 4 * data_words // 2)
        offset = 4 * rng.next_below(max(1, limit // 4))
        asm.li("a0", offset)
        asm.jal(name)


def emit_library_round(
    asm: Assembler,
    round_label: str,
    names: list[str],
    rng: Lcg,
    data_words: int,
) -> None:
    """Emit a ``round_label`` function that calls every listed routine.

    Kernels ``jal round_label`` from their outer loops; the round saves
    ``$ra``, fans out to each routine with a distinct window, and returns.
    """
    asm.label(round_label)
    asm.addiu("sp", "sp", -8)
    asm.sw("ra", 4, "sp")
    emit_library_calls(asm, names, rng, data_words)
    asm.lw("ra", 4, "sp")
    with asm.noreorder():
        asm.jr("ra")
        asm.addiu("sp", "sp", 8)


def emit_library_rounds(
    asm: Assembler,
    prefix: str,
    names: list[str],
    rounds: int,
    rng: Lcg,
    data_words: int,
) -> list[str]:
    """Emit ``rounds`` round functions, each over a rotated overlapping
    subset of the library.

    Rotating subsets mean successive rounds execute *different* mixes of
    routines, so a small I-cache keeps churning through the library the
    way a compiler churns through its passes — this is what produces
    paper-like I-cache miss rates on 1-4 KB caches.  Returns the round
    labels, e.g. ``["esp_round0", "esp_round1", ...]``.
    """
    labels = []
    per_round = max(1, (2 * len(names)) // max(rounds, 2))
    for index in range(rounds):
        start = (index * per_round // 2) % len(names)
        subset = [names[(start + k) % len(names)] for k in range(per_round)]
        # Shuffle the call order so successive routines are not adjacent
        # in memory (keeps the I-stream from looking purely sequential).
        for i in range(len(subset) - 1, 0, -1):
            j = rng.next_below(i + 1)
            subset[i], subset[j] = subset[j], subset[i]
        label = f"{prefix}_round{index}"
        labels.append(label)
        emit_library_round(asm, label, subset, rng, data_words)
    return labels


def emit_round_dispatcher(
    asm: Assembler, label: str, round_labels: list[str]
) -> None:
    """Emit ``label``: call ``round_labels[a0 % len]`` (len must be 2^k).

    Gives kernels a single call site that rotates through the library
    rounds as a counter advances.
    """
    count = len(round_labels)
    if count & (count - 1) != 0:
        raise ValueError("number of rounds must be a power of two")
    asm.label(label)
    asm.addiu("sp", "sp", -8)
    asm.sw("ra", 4, "sp")
    asm.andi("t9", "a0", count - 1)
    for index, round_label in enumerate(round_labels):
        skip = unique_label(f"{label}_skip")
        asm.li("t7", index)
        asm.bne("t9", "t7", skip)
        asm.jal(round_label)
        asm.b(f"{label}_out")
        asm.label(skip)
    asm.label(f"{label}_out")
    asm.lw("ra", 4, "sp")
    with asm.noreorder():
        asm.jr("ra")
        asm.addiu("sp", "sp", 8)


def build_and_check(asm: Assembler) -> Program:
    """Assemble and run basic structural checks common to all kernels."""
    program = asm.assemble()
    if not program.text:
        raise ValueError("kernel produced an empty program")
    if program.text[-1].op != "halt" and all(
        ins.op != "halt" for ins in program.text
    ):
        raise ValueError("kernel has no halt instruction")
    return program
