"""SPEC92-analogue workload kernels and the workload registry."""

from repro.workloads.registry import (
    FP_SUITE,
    INTEGER_SUITE,
    WorkloadError,
    WorkloadSpec,
    all_specs,
    build_program,
    clear_trace_cache,
    fp_traces,
    get_spec,
    get_trace,
    integer_traces,
    workload,
)

__all__ = [
    "FP_SUITE",
    "INTEGER_SUITE",
    "WorkloadError",
    "WorkloadSpec",
    "all_specs",
    "build_program",
    "clear_trace_cache",
    "fp_traces",
    "get_spec",
    "get_trace",
    "integer_traces",
    "workload",
]
