"""SPECfp92-analogue kernels.

Importing this package registers all nine FP workloads used in the
paper's FPU studies (Table 6 and Figure 9).
"""

from repro.workloads.fp_suite import alvinn_kernel  # noqa: F401
from repro.workloads.fp_suite import doduc_kernel  # noqa: F401
from repro.workloads.fp_suite import ear_kernel  # noqa: F401
from repro.workloads.fp_suite import hydro2d_kernel  # noqa: F401
from repro.workloads.fp_suite import mdljdp2_kernel  # noqa: F401
from repro.workloads.fp_suite import nasa7_kernel  # noqa: F401
from repro.workloads.fp_suite import ora_kernel  # noqa: F401
from repro.workloads.fp_suite import spice_kernel  # noqa: F401
from repro.workloads.fp_suite import su2cor_kernel  # noqa: F401
