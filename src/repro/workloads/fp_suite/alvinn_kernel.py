"""alvinn analogue: neural-network forward propagation (single precision).

SPEC's alvinn trains a road-following network; its time goes to
dense matrix-vector products in *single precision* — two loads per
multiply-accumulate, long dot-product dependence chains through one
accumulator, and a divide per unit for the sigmoid.  It is memory-bound:
the paper's Table 6 shows alvinn barely improves from better FPU issue
policies (2.113 / 2.111 / 2.107), and this kernel preserves that
character (the FP loads, not the functional units, are the bottleneck).

``scale`` is the input-layer width.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.workloads.registry import workload
from repro.workloads.support import Lcg, build_and_check

_HIDDEN = 32
_OUTPUTS = 8


@workload(
    "alvinn",
    suite="fp",
    default_scale=192,
    description="NN forward pass: single-precision dot products + sigmoid",
)
def build(scale: int) -> Program:
    if scale < 8:
        raise ValueError("alvinn needs at least 8 inputs")
    rng = Lcg(seed=0xA1B1A1B1)
    asm = Assembler()

    asm.data_label("inputs")
    asm.float_single(*[rng.next_float(-1.0, 1.0) for _ in range(scale)])
    asm.data_label("weights1")
    asm.float_single(*[rng.next_float(-0.5, 0.5) for _ in range(_HIDDEN * scale)])
    asm.data_label("hidden")
    asm.float_single(*([0.0] * _HIDDEN))
    asm.data_label("weights2")
    asm.float_single(*[rng.next_float(-0.5, 0.5) for _ in range(_OUTPUTS * _HIDDEN)])
    asm.data_label("outputs")
    asm.float_single(*([0.0] * _OUTPUTS))
    asm.data_label("fone")
    asm.float_single(1.0)

    asm.li("s7", 4 * scale)  # weight-row stride in bytes, live all run

    def layer(tag: str, in_label: str, w_label: str, out_label: str,
              units: int, width: int) -> None:
        # s0 = unit index, s1 = weight cursor, s2 = input cursor,
        # s3 = inner count, s4 = output cursor
        asm.la("s1", w_label)
        asm.la("s4", out_label)
        asm.li("s0", units)
        asm.label(f"{tag}_unit")
        asm.la("s2", in_label)
        asm.li("s3", width)
        asm.mtc1("zero", "f2")  # accumulator = 0
        asm.label(f"{tag}_dot")
        asm.lwc1("f4", 0, "s1")
        asm.lwc1("f6", 0, "s2")
        asm.mul_s("f4", "f4", "f6")
        asm.add_s("f2", "f2", "f4")
        asm.addiu("s1", "s1", 4)
        asm.addiu("s2", "s2", 4)
        asm.addiu("s3", "s3", -1)
        asm.bne("s3", "zero", f"{tag}_dot")
        # sigmoid approximation: y = x / (1 + |x|)
        asm.abs_s("f8", "f2")
        asm.la("t0", "fone")
        asm.lwc1("f10", 0, "t0")
        asm.add_s("f8", "f8", "f10")
        asm.div_s("f2", "f2", "f8")
        asm.swc1("f2", 0, "s4")
        asm.addiu("s4", "s4", 4)
        asm.addiu("s0", "s0", -1)
        asm.bne("s0", "zero", f"{tag}_unit")

    layer("l1", "inputs", "weights1", "hidden", _HIDDEN, scale)
    layer("l2", "hidden", "weights2", "outputs", _OUTPUTS, _HIDDEN)

    # Backward pass: column-major weight updates, w[h][i] += x[i]*d[h].
    # The column walk strides a whole row of weights per step — every
    # access touches a new cache line and defeats sequential prefetch,
    # which is what makes real alvinn memory-bound and insensitive to
    # FPU issue policy (Table 6: 2.113 / 2.111 / 2.107).
    asm.la("s0", "inputs")
    asm.li("s1", scale)  # input index countdown
    asm.li("t9", 0)  # column byte offset
    asm.label("bp_col")
    asm.lwc1("f0", 0, "s0")  # x[i]
    asm.la("s2", "weights1")
    asm.addu("s2", "s2", "t9")
    asm.la("s3", "hidden")
    asm.li("s5", _HIDDEN)
    asm.label("bp_row")
    asm.lwc1("f2", 0, "s3")  # delta[h] (reuse hidden activations)
    asm.lwc1("f4", 0, "s2")  # w[h][i]
    asm.mul_s("f6", "f0", "f2")
    asm.add_s("f4", "f4", "f6")
    asm.swc1("f4", 0, "s2")
    asm.addu("s2", "s2", "s7")  # stride = one weight row (bytes)
    asm.addiu("s3", "s3", 4)
    asm.addiu("s5", "s5", -1)
    asm.bne("s5", "zero", "bp_row")
    asm.addiu("s0", "s0", 4)
    asm.addiu("t9", "t9", 4)
    asm.addiu("s1", "s1", -1)
    asm.bne("s1", "zero", "bp_col")
    asm.halt()
    return build_and_check(asm)
