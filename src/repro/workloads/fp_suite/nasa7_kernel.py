"""nasa7 analogue: dense matrix multiply (the NAS kernel collection's
dominant member, double precision).

SPEC's nasa7 is seven numerical kernels; matrix multiplication dominates.
The inner product is unrolled two-wide here, exactly the structure whose
independent multiply/accumulate chains let out-of-order completion and
dual issue shine — nasa7 shows the suite's largest policy gains in
Table 6 (1.702 in-order -> 1.294 single OOC -> 0.957 dual).

``scale`` is the square-matrix dimension (must be even).
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.workloads.registry import workload
from repro.workloads.support import Lcg, build_and_check


@workload(
    "nasa7",
    suite="fp",
    default_scale=18,
    description="dense matmul, 2-wide unrolled inner product",
)
def build(scale: int) -> Program:
    if scale < 4:
        raise ValueError("nasa7 needs at least 4x4 matrices")
    if scale % 2:
        raise ValueError("nasa7 scale must be even (2-wide unrolling)")
    rng = Lcg(seed=0x7A547A54)
    asm = Assembler()
    n = scale
    row_bytes = 8 * n

    asm.data_label("mat_a")
    asm.float_double(*[rng.next_float(-1.0, 1.0) for _ in range(n * n)])
    asm.data_label("mat_b")
    asm.float_double(*[rng.next_float(-1.0, 1.0) for _ in range(n * n)])
    asm.data_label("mat_c")
    asm.float_double(*([0.0] * (n * n)))

    asm.la("s0", "mat_a")
    asm.la("s1", "mat_b")
    asm.la("s2", "mat_c")

    asm.li("s3", 0)  # i
    asm.label("i_loop")
    asm.li("s4", 0)  # j
    asm.label("j_loop")
    # two independent accumulators over the unrolled k loop
    asm.mtc1("zero", "f0")
    asm.cvt_d_w("f0", "f0")
    asm.mov_d("f2", "f0")
    # t8 = &A[i][0], t9 = &B[0][j]
    asm.li("t0", row_bytes)
    asm.multu("s3", "t0")
    asm.mflo("t1")
    asm.addu("t8", "s0", "t1")
    asm.sll("t2", "s4", 3)
    asm.addu("t9", "s1", "t2")
    asm.li("s5", n // 2)  # k pairs
    asm.label("k_loop")
    asm.ldc1("f4", 0, "t8")  # A[i][k]
    asm.ldc1("f6", 0, "t9")  # B[k][j]
    asm.mul_d("f8", "f4", "f6")
    asm.add_d("f0", "f0", "f8")
    asm.ldc1("f10", 8, "t8")  # A[i][k+1]
    asm.ldc1("f12", row_bytes, "t9")  # B[k+1][j]
    asm.mul_d("f14", "f10", "f12")
    asm.add_d("f2", "f2", "f14")
    asm.addiu("t8", "t8", 16)
    asm.addiu("t9", "t9", 2 * row_bytes)
    asm.addiu("s5", "s5", -1)
    asm.bne("s5", "zero", "k_loop")
    # C[i][j] = acc0 + acc1
    asm.add_d("f0", "f0", "f2")
    asm.li("t0", row_bytes)
    asm.multu("s3", "t0")
    asm.mflo("t1")
    asm.addu("t3", "s2", "t1")
    asm.sll("t4", "s4", 3)
    asm.addu("t3", "t3", "t4")
    asm.sdc1("f0", 0, "t3")
    asm.addiu("s4", "s4", 1)
    asm.li("t5", n)
    asm.bne("s4", "t5", "j_loop")
    asm.addiu("s3", "s3", 1)
    asm.bne("s3", "t5", "i_loop")
    asm.halt()
    return build_and_check(asm)
