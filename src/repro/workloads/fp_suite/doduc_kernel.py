"""doduc analogue: Monte Carlo reactor simulation (double precision).

SPEC's doduc is a Monte Carlo simulation of a nuclear reactor: an
irregular mix of double-precision adds and multiplies steered by
data-dependent branches, periodic divides, and a sprinkling of state
loads/stores.  Moderate ILP: Table 6 shows a solid single-issue OOC gain
(1.957 -> 1.782) and a further dual gain (1.671).

``scale`` is the number of Monte Carlo steps.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.workloads.registry import workload
from repro.workloads.support import Lcg, build_and_check

_STATE_SLOTS = 32


@workload(
    "doduc",
    suite="fp",
    default_scale=5000,
    description="Monte Carlo: branchy add/mul mix with periodic divides",
)
def build(scale: int) -> Program:
    if scale < 16:
        raise ValueError("doduc needs at least 16 steps")
    rng = Lcg(seed=0xD0D0C)
    asm = Assembler()

    asm.data_label("state")
    asm.float_double(*[rng.next_float(0.5, 2.0) for _ in range(_STATE_SLOTS)])
    asm.data_label("cone")
    asm.float_double(1.0)
    asm.data_label("chalf")
    asm.float_double(0.5)
    asm.data_label("cgain")
    asm.float_double(1.0009765625)

    # f2 = accumulator-1, f4 = accumulator-2, f6 = divide chain
    # f20 = 1.0, f22 = 0.5, f24 = gain
    asm.la("t0", "cone")
    asm.ldc1("f20", 0, "t0")
    asm.la("t0", "chalf")
    asm.ldc1("f22", 0, "t0")
    asm.la("t0", "cgain")
    asm.ldc1("f24", 0, "t0")
    asm.mtc1("zero", "f2")
    asm.cvt_d_w("f2", "f2")
    asm.add_d("f4", "f2", "f20")
    asm.add_d("f6", "f2", "f20")
    asm.la("s2", "state")
    asm.li("s1", 0x2545)  # LCG state
    asm.li("s0", scale)

    asm.label("mc_step")
    # integer LCG particle draw
    asm.li("t0", 1664525)
    asm.multu("s1", "t0")
    asm.mflo("s1")
    asm.addiu("s1", "s1", 12345)
    asm.srl("t1", "s1", 16)
    asm.andi("t1", "t1", 0x7FFF)
    # convert the draw to double in [0, 1)-ish
    asm.mtc1("t1", "f8")
    asm.cvt_d_w("f8", "f8")
    asm.mul_d("f8", "f8", "f24")
    # data-dependent branch: absorption vs. scattering path
    asm.andi("t2", "s1", 1)
    asm.beq("t2", "zero", "mc_scatter")
    # absorption: acc1 = acc1 * 0.5 + draw
    asm.mul_d("f2", "f2", "f22")
    asm.add_d("f2", "f2", "f8")
    asm.b("mc_state")
    asm.label("mc_scatter")
    # scattering: acc2 += draw * gain ; acc1 += 1.0
    asm.mul_d("f10", "f8", "f24")
    asm.add_d("f4", "f4", "f10")
    asm.add_d("f2", "f2", "f20")
    asm.label("mc_state")
    # state-table update (scattered doubles)
    asm.andi("t3", "s1", _STATE_SLOTS - 1)
    asm.sll("t3", "t3", 3)
    asm.addu("t4", "s2", "t3")
    asm.ldc1("f12", 0, "t4")
    asm.add_d("f12", "f12", "f8")
    asm.sdc1("f12", 0, "t4")
    # every 8th step: renormalise with a divide
    asm.andi("t5", "s0", 7)
    asm.bne("t5", "zero", "mc_next")
    asm.add_d("f14", "f4", "f20")  # keep the divisor away from zero
    asm.div_d("f6", "f2", "f14")
    asm.mul_d("f4", "f4", "f22")
    asm.label("mc_next")
    asm.addiu("s0", "s0", -1)
    asm.bne("s0", "zero", "mc_step")

    # fold the accumulators into memory so nothing is dead code
    asm.la("t0", "state")
    asm.sdc1("f2", 0, "t0")
    asm.sdc1("f4", 8, "t0")
    asm.sdc1("f6", 16, "t0")
    asm.halt()
    return build_and_check(asm)
