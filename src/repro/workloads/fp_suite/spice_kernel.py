"""spice2g6 analogue: sparse-matrix circuit solve (integer/memory bound).

SPEC's spice2g6 is a circuit simulator whose inner loops walk sparse
matrix structures: index loads, pointer arithmetic, and scattered
double-precision fetches with only a thin layer of FP arithmetic on top.
Because the bottleneck is the integer/memory side, the FPU issue policy
hardly matters — Table 6 shows 1.219 / 1.204 / 1.203, the flattest row
in the table — and this kernel preserves that by keeping the FP fraction
low relative to the indexing work.

``scale`` is the matrix dimension (rows).
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.isa.program import DATA_BASE, Program
from repro.workloads.registry import workload
from repro.workloads.support import Lcg, build_and_check

_NNZ_PER_ROW = 5
_ITERATIONS = 3


@workload(
    "spice2g6",
    suite="fp",
    default_scale=400,
    description="sparse mat-vec: index chasing with thin FP on top",
)
def build(scale: int) -> Program:
    if scale < 8:
        raise ValueError("spice2g6 needs at least 8 rows")
    rng = Lcg(seed=0x5B1CE)
    asm = Assembler()
    nnz = scale * _NNZ_PER_ROW

    # CSR-ish structure: column indices + values per row, dense x and y.
    asm.data_label("colidx")
    cols = [rng.next_below(scale) for _ in range(nnz)]
    asm.word(*cols)
    asm.align(8)
    asm.data_label("values")
    asm.float_double(*[rng.next_float(-2.0, 2.0) for _ in range(nnz)])
    asm.data_label("xvec")
    asm.float_double(*[rng.next_float(-1.0, 1.0) for _ in range(scale)])
    asm.data_label("yvec")
    asm.float_double(*([0.0] * scale))

    asm.la("s6", "xvec")
    asm.li("s7", _ITERATIONS)

    asm.label("solve_iter")
    asm.la("s0", "colidx")
    asm.la("s1", "values")
    asm.la("s2", "yvec")
    asm.li("s3", scale)  # rows left

    asm.label("row_loop")
    asm.mtc1("zero", "f0")
    asm.cvt_d_w("f0", "f0")  # row accumulator
    asm.li("s4", _NNZ_PER_ROW)
    asm.label("nnz_loop")
    asm.lw("t0", 0, "s0")  # column index
    asm.sll("t0", "t0", 3)
    asm.addu("t1", "s6", "t0")  # &x[col]
    asm.ldc1("f2", 0, "t1")  # scattered x fetch
    asm.ldc1("f4", 0, "s1")  # matrix value
    asm.mul_d("f6", "f2", "f4")
    asm.add_d("f0", "f0", "f6")
    asm.addiu("s0", "s0", 4)
    asm.addiu("s1", "s1", 8)
    asm.addiu("s4", "s4", -1)
    asm.bne("s4", "zero", "nnz_loop")
    asm.sdc1("f0", 0, "s2")
    asm.addiu("s2", "s2", 8)
    asm.addiu("s3", "s3", -1)
    asm.bne("s3", "zero", "row_loop")
    asm.addiu("s7", "s7", -1)
    asm.bne("s7", "zero", "solve_iter")
    asm.halt()
    return build_and_check(asm)
