"""mdljdp2 analogue: molecular-dynamics pair forces (double precision).

SPEC's mdljdp2 integrates Lennard-Jones particle motion; the dominant
loop computes pairwise distances and forces — subtract/multiply/add
chains with one reciprocal (divide) per pair, and scattered particle
array updates.  Independent work across pairs gives dual issue a large
win (Table 6: 1.344 -> 0.948).

``scale`` is the particle count (pairs grow quadratically).
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.workloads.registry import workload
from repro.workloads.support import Lcg, build_and_check

_ITERATIONS = 2


@workload(
    "mdljdp2",
    suite="fp",
    default_scale=44,
    description="N-body pair forces: sub/mul/add chains + divide per pair",
)
def build(scale: int) -> Program:
    if scale < 4:
        raise ValueError("mdljdp2 needs at least 4 particles")
    rng = Lcg(seed=0x3D13D2)
    asm = Assembler()

    # positions and forces: 3 doubles each (x, y, z), AoS layout
    asm.data_label("pos")
    asm.float_double(*[rng.next_float(-4.0, 4.0) for _ in range(3 * scale)])
    asm.data_label("force")
    asm.float_double(*([0.0] * (3 * scale)))
    asm.data_label("cone")
    asm.float_double(1.0)
    asm.data_label("ceps")
    asm.float_double(0.0625)

    asm.la("t0", "cone")
    asm.ldc1("f28", 0, "t0")
    asm.la("t0", "ceps")
    asm.ldc1("f30", 0, "t0")

    asm.la("s6", "pos")
    asm.la("s7", "force")
    asm.li("s5", _ITERATIONS)

    asm.label("iter_loop")
    asm.li("s0", 0)  # i
    asm.label("i_loop")
    asm.addiu("s1", "s0", 1)  # j
    asm.label("j_loop")
    # addresses: pos + 24*i, pos + 24*j
    asm.li("t0", 24)
    asm.multu("s0", "t0")
    asm.mflo("t1")
    asm.addu("s2", "s6", "t1")  # &pos[i]
    asm.multu("s1", "t0")
    asm.mflo("t2")
    asm.addu("s3", "s6", "t2")  # &pos[j]
    # dx, dy, dz
    asm.ldc1("f0", 0, "s2")
    asm.ldc1("f2", 0, "s3")
    asm.sub_d("f0", "f0", "f2")
    asm.ldc1("f4", 8, "s2")
    asm.ldc1("f6", 8, "s3")
    asm.sub_d("f4", "f4", "f6")
    asm.ldc1("f8", 16, "s2")
    asm.ldc1("f10", 16, "s3")
    asm.sub_d("f8", "f8", "f10")
    # r2 = dx*dx + dy*dy + dz*dz + eps
    asm.mul_d("f12", "f0", "f0")
    asm.mul_d("f14", "f4", "f4")
    asm.mul_d("f16", "f8", "f8")
    asm.add_d("f12", "f12", "f14")
    asm.add_d("f12", "f12", "f16")
    asm.add_d("f12", "f12", "f30")
    # inv = 1 / r2  (the per-pair divide)
    asm.div_d("f18", "f28", "f12")
    # f = inv * inv * inv (LJ-ish repulsion term)
    asm.mul_d("f20", "f18", "f18")
    asm.mul_d("f20", "f20", "f18")
    # accumulate forces on i (scattered read-modify-write)
    asm.addu("t3", "s7", "t1")  # &force[i]
    asm.ldc1("f22", 0, "t3")
    asm.mul_d("f24", "f0", "f20")
    asm.add_d("f22", "f22", "f24")
    asm.sdc1("f22", 0, "t3")
    asm.ldc1("f22", 8, "t3")
    asm.mul_d("f24", "f4", "f20")
    asm.add_d("f22", "f22", "f24")
    asm.sdc1("f22", 8, "t3")
    asm.ldc1("f22", 16, "t3")
    asm.mul_d("f24", "f8", "f20")
    asm.add_d("f22", "f22", "f24")
    asm.sdc1("f22", 16, "t3")
    asm.addiu("s1", "s1", 1)
    asm.li("t4", scale)
    asm.bne("s1", "t4", "j_loop")
    asm.addiu("s0", "s0", 1)
    asm.li("t5", scale - 1)
    asm.bne("s0", "t5", "i_loop")
    asm.addiu("s5", "s5", -1)
    asm.bne("s5", "zero", "iter_loop")
    asm.halt()
    return build_and_check(asm)
