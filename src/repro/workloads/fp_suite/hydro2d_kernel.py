"""hydro2d analogue: 2-D hydrodynamics stencil sweeps (double precision).

SPEC's hydro2d solves Navier-Stokes on a 2-D grid; the time goes to
regular stencil sweeps — neighbouring cells are independent, so there is
abundant instruction-level parallelism and dual issue pays off strongly
(Table 6: 1.298 in-order -> 0.999 dual, one of the best dual-issue
results in the suite).  The streaming grid walks also make it a good
D-prefetch citizen.

``scale`` is the grid edge length.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.workloads.registry import workload
from repro.workloads.support import Lcg, build_and_check

_SWEEPS = 3


@workload(
    "hydro2d",
    suite="fp",
    default_scale=36,
    description="Jacobi-style 2D stencil: independent mul/add streams",
)
def build(scale: int) -> Program:
    if scale < 6:
        raise ValueError("hydro2d needs at least a 6x6 grid")
    rng = Lcg(seed=0x44D420)
    asm = Assembler()
    cells = scale * scale
    row_bytes = 8 * scale

    asm.data_label("grid_a")
    asm.float_double(*[rng.next_float(0.0, 4.0) for _ in range(cells)])
    asm.data_label("grid_b")
    asm.float_double(*([0.0] * cells))
    asm.data_label("cquarter")
    asm.float_double(0.25)
    asm.data_label("crelax")
    asm.float_double(0.9)

    asm.la("t0", "cquarter")
    asm.ldc1("f20", 0, "t0")
    asm.la("t0", "crelax")
    asm.ldc1("f22", 0, "t0")

    # s0 = source base, s1 = dest base, s7 = sweeps
    asm.la("s0", "grid_a")
    asm.la("s1", "grid_b")
    asm.li("s7", _SWEEPS)

    asm.label("sweep")
    # interior rows 1..scale-2, columns 1..scale-2
    asm.li("s2", 1)  # row
    asm.label("row_loop")
    # s4 = &src[row][1], s5 = &dst[row][1]
    asm.li("t0", row_bytes)
    asm.multu("s2", "t0")
    asm.mflo("t1")
    asm.addu("s4", "s0", "t1")
    asm.addiu("s4", "s4", 8)
    asm.addu("s5", "s1", "t1")
    asm.addiu("s5", "s5", 8)
    asm.li("s3", scale - 2)  # columns in this row
    asm.label("col_loop")
    # two independent stencil chains per iteration (ILP for dual issue)
    asm.ldc1("f0", -8, "s4")  # west
    asm.ldc1("f2", 8, "s4")  # east
    asm.ldc1("f4", -row_bytes, "s4")  # north
    asm.ldc1("f6", row_bytes, "s4")  # south
    asm.ldc1("f8", 0, "s4")  # centre
    asm.add_d("f10", "f0", "f2")
    asm.add_d("f12", "f4", "f6")
    asm.add_d("f10", "f10", "f12")
    asm.mul_d("f10", "f10", "f20")  # neighbour average
    asm.mul_d("f14", "f8", "f22")  # relaxed centre
    asm.add_d("f10", "f10", "f14")
    asm.sdc1("f10", 0, "s5")
    asm.addiu("s4", "s4", 8)
    asm.addiu("s5", "s5", 8)
    asm.addiu("s3", "s3", -1)
    asm.bne("s3", "zero", "col_loop")
    asm.addiu("s2", "s2", 1)
    asm.li("t2", scale - 1)
    asm.bne("s2", "t2", "row_loop")
    # ping-pong the grids
    asm.move("t3", "s0")
    asm.move("s0", "s1")
    asm.move("s1", "t3")
    asm.addiu("s7", "s7", -1)
    asm.bne("s7", "zero", "sweep")
    asm.halt()
    return build_and_check(asm)
