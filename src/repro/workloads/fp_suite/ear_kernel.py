"""ear analogue: cochlear filterbank (cascaded second-order IIR sections).

SPEC's ear models the human ear with a cascade of second-order filter
sections per channel: tight multiply-add recurrences through per-channel
state (the output of one section feeds the next), giving long dependence
chains that expose the add/multiply unit latencies — but across channels
there is parallelism, so out-of-order completion and dual issue help
(Table 6: 1.299 -> 1.155 -> 1.022).

``scale`` is the number of input samples.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.workloads.registry import workload
from repro.workloads.support import Lcg, build_and_check

_CHANNELS = 12


@workload(
    "ear",
    suite="fp",
    default_scale=160,
    description="IIR filterbank: mul-add recurrences across channels",
)
def build(scale: int) -> Program:
    if scale < 4:
        raise ValueError("ear needs at least 4 samples")
    rng = Lcg(seed=0xEA4EA4)
    asm = Assembler()

    asm.data_label("samples")
    asm.float_double(*[rng.next_float(-1.0, 1.0) for _ in range(scale)])
    asm.data_label("coeffs")  # per channel: b0, b1, b2, a1, a2
    for _ in range(_CHANNELS):
        asm.float_double(
            rng.next_float(0.1, 0.9),
            rng.next_float(-0.5, 0.5),
            rng.next_float(-0.5, 0.5),
            rng.next_float(-0.9, -0.1),
            rng.next_float(0.05, 0.4),
        )
    asm.data_label("zstate")  # per channel: z1, z2
    asm.float_double(*([0.0] * (2 * _CHANNELS)))
    asm.data_label("energy")  # per channel accumulated output energy
    asm.float_double(*([0.0] * _CHANNELS))

    # s0 = sample cursor, s1 = samples left, s2 = channel cursor bases
    asm.la("s0", "samples")
    asm.li("s1", scale)

    asm.label("sample_loop")
    asm.ldc1("f0", 0, "s0")  # x = input sample
    asm.la("s2", "coeffs")
    asm.la("s3", "zstate")
    asm.la("s4", "energy")
    asm.li("s5", _CHANNELS)

    asm.label("chan_loop")
    # Direct-form-II-transposed second-order section:
    #   y  = b0*x + z1
    #   z1 = b1*x - a1*y + z2
    #   z2 = b2*x - a2*y
    asm.ldc1("f2", 0, "s2")  # b0
    asm.ldc1("f4", 8, "s2")  # b1
    asm.ldc1("f6", 16, "s2")  # b2
    asm.ldc1("f8", 24, "s2")  # a1
    asm.ldc1("f10", 32, "s2")  # a2
    asm.ldc1("f12", 0, "s3")  # z1
    asm.ldc1("f14", 8, "s3")  # z2
    asm.mul_d("f16", "f2", "f0")
    asm.add_d("f16", "f16", "f12")  # y
    asm.mul_d("f18", "f4", "f0")
    asm.mul_d("f20", "f8", "f16")
    asm.add_d("f18", "f18", "f20")
    asm.add_d("f18", "f18", "f14")  # new z1
    asm.mul_d("f22", "f6", "f0")
    asm.mul_d("f24", "f10", "f16")
    asm.sub_d("f22", "f22", "f24")  # new z2
    asm.sdc1("f18", 0, "s3")
    asm.sdc1("f22", 8, "s3")
    # accumulate output energy: e += y*y
    asm.ldc1("f26", 0, "s4")
    asm.mul_d("f28", "f16", "f16")
    asm.add_d("f26", "f26", "f28")
    asm.sdc1("f26", 0, "s4")
    # the cascade: this section's output feeds the next channel's input
    asm.mov_d("f0", "f16")
    asm.addiu("s2", "s2", 40)
    asm.addiu("s3", "s3", 16)
    asm.addiu("s4", "s4", 8)
    asm.addiu("s5", "s5", -1)
    asm.bne("s5", "zero", "chan_loop")

    asm.addiu("s0", "s0", 8)
    asm.addiu("s1", "s1", -1)
    asm.bne("s1", "zero", "sample_loop")
    asm.halt()
    return build_and_check(asm)
